//! Time-series load flow: solve 24 hourly load scenarios of a feeder in
//! one batched GPU call and print the daily voltage/loss profile.
//!
//! Run: `cargo run --release --example daily_profile`

use fbs::{BatchSolver, SolverConfig};
use numc::Complex;
use powergrid::ieee::ieee123_style;
use simt::{Device, DeviceProps};

/// A stylised residential daily demand curve (per-unit of peak).
fn hourly_scale(hour: usize) -> f64 {
    const CURVE: [f64; 24] = [
        0.42, 0.38, 0.36, 0.35, 0.36, 0.42, 0.55, 0.68, 0.72, 0.70, 0.68, 0.67, 0.66, 0.65, 0.66,
        0.70, 0.80, 0.92, 1.00, 0.98, 0.90, 0.78, 0.62, 0.50,
    ];
    CURVE[hour % 24]
}

fn main() {
    let net = ieee123_style();
    let cfg = SolverConfig::default();

    let scenarios: Vec<Vec<Complex>> = (0..24)
        .map(|h| net.buses().iter().map(|b| b.load * hourly_scale(h)).collect())
        .collect();

    let mut solver = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
    let res = solver.solve(&net, &scenarios, &cfg);
    assert!(res.converged(), "all 24 hours must converge");

    let v0 = net.source_voltage().abs();
    println!("24-hour load flow on the IEEE-123-style feeder ({} buses)", net.num_buses());
    println!("batched GPU solve: {} iterations, {:.1} µs modeled total\n", res.iterations, res.timing.total_us());
    println!("{:>4} {:>7} {:>12} {:>12} {:>10}", "hour", "load", "min |V| (pu)", "losses (kW)", "profile");
    for h in 0..24 {
        let min_pu = res.v[h].iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min) / v0;
        // Losses: Σ R·|J|² over branches.
        let mut loss = Complex::ZERO;
        for bus in 0..net.num_buses() {
            if let Some(br) = net.parent_branch(bus) {
                loss += br.z * res.j[h][bus].norm_sqr();
            }
        }
        let bar = "▇".repeat((hourly_scale(h) * 30.0) as usize);
        println!(
            "{:>4} {:>6.0}% {:>12.4} {:>12.2} {:>10}",
            h,
            hourly_scale(h) * 100.0,
            min_pu,
            loss.re / 1e3,
            bar
        );
    }

    println!(
        "\nper-scenario modeled cost: {:.1} µs (vs {:.1} µs for 24 separate GPU solves' fixed costs alone)",
        res.timing.total_us() / 24.0,
        res.timing.phases.setup_us + res.timing.phases.teardown_us
    );
}
