//! Unbalanced three-phase analysis of the IEEE 13-node feeder: per-phase
//! voltage profile, unbalance factors, and the effect of mutual coupling.
//!
//! Run: `cargo run --release --example unbalanced_feeder`

use fbs::{Gpu3Solver, Serial3Solver, SolverConfig};
use powergrid::three_phase::ieee13_unbalanced;
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let net = ieee13_unbalanced();
    let cfg = SolverConfig::default();
    let v0 = net.source_voltage().abs_max();

    let res = Serial3Solver::new(HostProps::paper_rig()).solve(&net, &cfg);
    assert!(res.converged());
    println!(
        "IEEE 13-node, unbalanced three-phase solve: {} iterations (residual {:.2e} V)\n",
        res.iterations, res.residual
    );

    let names = ["650", "632", "633", "634", "645", "646", "671", "680", "684", "611", "652", "675", "692"];
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "bus", "|Va| (pu)", "|Vb| (pu)", "|Vc| (pu)", "unbal %"
    );
    for bus in 0..net.num_buses() {
        let v = res.v[bus];
        println!(
            "{:>5} {:>10.4} {:>10.4} {:>10.4} {:>10.2}",
            names.get(bus).unwrap_or(&"?"),
            v.a.abs() / v0,
            v.b.abs() / v0,
            v.c.abs() / v0,
            100.0 * v.unbalance()
        );
    }

    let (worst_unb, worst_bus) = res.max_unbalance();
    let (worst_v, sag_bus) = res.min_phase_voltage();
    println!(
        "\nworst unbalance: {:.2}% at bus {} | deepest phase sag: {:.4} pu at bus {}",
        100.0 * worst_unb,
        names.get(worst_bus).unwrap_or(&"?"),
        worst_v / v0,
        names.get(sag_bus).unwrap_or(&"?")
    );

    // GPU agreement check.
    let mut gpu = Gpu3Solver::new(Device::new(DeviceProps::paper_rig()));
    let g = gpu.solve(&net, &cfg);
    let max_diff = (0..net.num_buses())
        .map(|b| (g.v[b] - res.v[b]).abs_max())
        .fold(0.0f64, f64::max);
    println!("\nGPU solve agrees with serial to {max_diff:.2e} V ({} iterations, {:.1} µs modeled)",
        g.iterations, g.timing.total_us());
}
