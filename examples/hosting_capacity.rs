//! Hosting-capacity study: how much *additional* load each candidate bus
//! of a feeder can host before the worst voltage violates ANSI C84.1's
//! 0.95 pu floor — evaluated with the batched GPU solver (every candidate
//! size for every candidate bus in a handful of batch calls).
//!
//! Run: `cargo run --release --example hosting_capacity`

use fbs::{BatchSolver, SolverConfig};
use numc::{c, Complex};
use powergrid::ieee::ieee37;
use powergrid::{LevelOrder, RadialNetwork};
use simt::{Device, DeviceProps};

const V_FLOOR_PU: f64 = 0.95;
/// Candidate additional load sizes (per-phase kW, at 0.95 pf).
const SIZES_KW: [f64; 8] = [50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 600.0, 800.0];

fn scenario(net: &RadialNetwork, bus: usize, kw: f64) -> Vec<Complex> {
    let extra = c(kw * 1e3, kw * 1e3 * 0.33); // 0.95 pf lagging
    net.buses()
        .iter()
        .enumerate()
        .map(|(b, x)| if b == bus { x.load + extra } else { x.load })
        .collect()
}

fn main() {
    // Planning case: the feeder at 60% of peak (capacity is evaluated
    // against the off-peak margin, as hosting studies do).
    let mut net = ieee37();
    net.scale_loads(0.6);
    let cfg = SolverConfig::default();
    let v0 = net.source_voltage().abs();
    let levels = LevelOrder::new(&net);

    // Candidates: the feeder's leaf buses (where new customers connect).
    let candidates: Vec<usize> =
        (0..net.num_buses()).filter(|&b| levels.child_lo[levels.pos_of[b] as usize] == levels.child_hi[levels.pos_of[b] as usize]).collect();

    println!(
        "hosting capacity on the IEEE-37-style feeder ({} buses, {} leaf candidates, floor {V_FLOOR_PU} pu)\n",
        net.num_buses(),
        candidates.len()
    );

    let mut solver = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
    let mut total_modeled_us = 0.0;
    println!("{:>5} {:>14} {:>14}", "bus", "capacity (kW)", "min |V| at cap");

    for &bus in &candidates {
        // One batch call evaluates every candidate size at this bus.
        let scenarios: Vec<Vec<Complex>> =
            SIZES_KW.iter().map(|&kw| scenario(&net, bus, kw)).collect();
        let res = solver.solve(&net, &scenarios, &cfg);
        total_modeled_us += res.timing.total_us();

        // Largest size whose worst voltage stays above the floor.
        let mut best: Option<(f64, f64)> = None;
        for (k, &kw) in SIZES_KW.iter().enumerate() {
            let min_pu = res.v[k].iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min) / v0;
            if res.converged() && min_pu >= V_FLOOR_PU {
                best = Some((kw, min_pu));
            }
        }
        match best {
            Some((kw, pu)) => println!("{bus:>5} {kw:>14.0} {pu:>14.4}"),
            None => println!("{bus:>5} {:>14} {:>14}", "< 50", "-"),
        }
    }

    println!(
        "\n{} batched solves ({} scenarios each): {:.1} ms modeled device time total",
        candidates.len(),
        SIZES_KW.len(),
        total_modeled_us / 1e3
    );
}
