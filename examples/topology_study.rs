//! The paper's topology discussion as a runnable study: how the shape of
//! a 16K-bus distribution tree decides whether the GPU helps.
//!
//! Run: `cargo run --release --example topology_study`

use fbs::{GpuSolver, SerialSolver, SolverConfig};
use powergrid::gen::{balanced_binary, balanced_kary, caterpillar, chain, random_tree, star, GenSpec};
use powergrid::{LevelOrder, RadialNetwork};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

const N: usize = 16_384;

fn main() {
    let spec = GenSpec::default();
    let cfg = SolverConfig::default();
    let mut rng = StdRng::seed_from_u64(2020);

    let cases: Vec<(&str, RadialNetwork)> = vec![
        ("chain (feeder w/o laterals)", chain(N, &spec, &mut rng)),
        ("caterpillar (trunk + laterals)", caterpillar(N, 3, &spec, &mut rng)),
        ("random attachment", random_tree(N, 8, &spec, &mut rng)),
        ("balanced binary (paper)", balanced_binary(N, &spec, &mut rng)),
        ("balanced 8-ary", balanced_kary(N, 8, &spec, &mut rng)),
        ("star (all on substation)", star(N, &spec, &mut rng)),
    ];

    println!(
        "{:<32} {:>7} {:>11} {:>12} {:>12} {:>9}",
        "topology", "levels", "mean width", "serial (µs)", "gpu (µs)", "speedup"
    );
    for (name, net) in &cases {
        let levels = LevelOrder::new(net);
        let s = SerialSolver::new(HostProps::paper_rig()).solve(net, &cfg);
        let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let g = gpu.solve(net, &cfg);
        assert!(s.converged() && g.converged(), "{name}");
        println!(
            "{:<32} {:>7} {:>11.1} {:>12.1} {:>12.1} {:>8.2}x",
            name,
            levels.num_levels(),
            levels.mean_level_width(),
            s.timing.total_us(),
            g.timing.total_us(),
            s.timing.total_us() / g.timing.total_us()
        );
    }

    println!(
        "\nEvery level costs at least one kernel launch: depth ≈ launches, width ≈ parallelism.\n\
         The GPU wins exactly when mean level width is large — the paper's topology point."
    );
}
