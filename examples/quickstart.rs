//! Quickstart: build a small feeder by hand, solve it on the CPU and the
//! (simulated) GPU, and inspect the results.
//!
//! Run: `cargo run --release --example quickstart`

use fbs::{GpuSolver, SerialSolver, SolverConfig};
use numc::{c, Complex};
use powergrid::NetworkBuilder;
use simt::{Device, DeviceProps, HostProps};

fn main() {
    // A 7.2 kV feeder: substation → trunk bus → two laterals.
    //
    //        0 (substation)
    //        |
    //        1 (500 kW shopping strip)
    //       / \
    //      2   3 (two 150 kW neighbourhoods)
    let mut b = NetworkBuilder::new(c(7200.0, 0.0));
    let sub = b.add_bus(Complex::ZERO);
    let trunk = b.add_bus(c(500e3, 180e3));
    let west = b.add_bus(c(150e3, 60e3));
    let east = b.add_bus(c(150e3, 45e3));
    b.connect(sub, trunk, c(0.35, 0.24));
    b.connect(trunk, west, c(0.52, 0.38));
    b.connect(trunk, east, c(0.45, 0.30));
    let net = b.build().expect("radial by construction");

    let cfg = SolverConfig::default();

    // Serial CPU solve — the paper's baseline.
    let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
    println!("serial: converged={} in {} iterations", serial.converged(), serial.iterations);
    for bus in 0..net.num_buses() {
        println!(
            "  V[{bus}] = {:7.1} V  ∠{:6.3}°   J[{bus}] = {:6.1} A",
            serial.v[bus].abs(),
            serial.v[bus].arg().to_degrees(),
            serial.j[bus].abs()
        );
    }
    let losses = serial.losses(&net);
    println!("  losses: {:.2} kW", losses.re / 1e3);

    // GPU solve — identical physics, level-synchronous kernels.
    let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
    let par = gpu.solve(&net, &cfg);
    println!("\ngpu:    converged={} in {} iterations", par.converged(), par.iterations);
    let worst = net
        .buses()
        .iter()
        .enumerate()
        .map(|(i, _)| (par.v[i] - serial.v[i]).abs())
        .fold(0.0f64, f64::max);
    println!("  max |V_gpu − V_serial| = {worst:.2e} V");

    // Physics check: Kirchhoff's laws hold on the solved state.
    fbs::validate::assert_physical(&net, &par, 1e-6);
    println!("  physics validation passed (KCL, KVL, power balance)");

    // The timeline shows what the device "did".
    println!("\ndevice timeline:\n{}", gpu.device().timeline().breakdown());
}
