//! Solve the IEEE-style test feeders and print an engineering report:
//! voltage profile, feeder losses, and the worst-served bus.
//!
//! Run: `cargo run --release --example ieee_feeder`

use fbs::{SerialSolver, SolverConfig};
use powergrid::ieee::{ieee123_style, ieee13, ieee37};
use powergrid::{LevelOrder, RadialNetwork};
use simt::HostProps;

fn report(name: &str, net: &RadialNetwork) {
    let cfg = SolverConfig::default();
    let res = SerialSolver::new(HostProps::paper_rig()).solve(net, &cfg);
    assert!(res.converged(), "{name} must converge");
    fbs::validate::assert_physical(net, &res, 1e-4);

    let levels = LevelOrder::new(net);
    let v0 = net.source_voltage().abs();
    let (vmin, worst_bus) = res.min_voltage();
    let losses = res.losses(net);
    let src = res.source_power(net);

    println!("=== {name} ===");
    println!("  buses {} | levels {} | iterations {}", net.num_buses(), levels.num_levels(), res.iterations);
    println!("  feeder demand: {:8.1} kW + j{:.1} kvar (per phase)", src.re / 1e3, src.im / 1e3);
    println!("  series losses: {:8.2} kW ({:.2}% of demand)", losses.re / 1e3, 100.0 * losses.re / src.re);
    println!("  worst bus: {worst_bus} at {:.4} pu ({:.1} V)", vmin / v0, vmin);

    // Voltage histogram in half-percent bins, the classic feeder plot.
    let mut bins = [0usize; 8];
    for v in &res.v {
        let pu = v.abs() / v0;
        let idx = (((1.0 - pu) / 0.005) as usize).min(7);
        bins[idx] += 1;
    }
    println!("  voltage profile (buses per 0.5% drop bin below 1.0 pu):");
    for (i, count) in bins.iter().enumerate() {
        if *count > 0 {
            let lo = 1.0 - 0.005 * (i + 1) as f64;
            println!("    {:>5.3}–{:>5.3} pu: {:>4} {}", lo, lo + 0.005, count, "#".repeat((*count).min(60)));
        }
    }
    println!();
}

fn main() {
    report("IEEE 13-node (positive-sequence equivalent)", &ieee13());
    report("IEEE 37-node (positive-sequence equivalent)", &ieee37());
    report("IEEE 123-style long feeder", &ieee123_style());
}
