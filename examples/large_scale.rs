//! The paper's headline scenario end-to-end: a 256K-bus balanced binary
//! distribution tree, serial vs GPU, with the full phase breakdown.
//!
//! Run: `cargo run --release --example large_scale`

use fbs::{GpuSolver, SerialSolver, SolverConfig};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::LevelOrder;
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let n = 256 * 1024;
    let spec = GenSpec::default();
    let mut rng = StdRng::seed_from_u64(256);
    println!("generating a balanced binary tree with {n} buses…");
    let net = balanced_binary(n, &spec, &mut rng);
    let levels = LevelOrder::new(&net);
    println!(
        "  {} levels, deepest level {} buses, total load {:.1} MW\n",
        levels.num_levels(),
        levels.level_width(levels.num_levels() - 1),
        net.total_load().re / 1e6
    );

    let cfg = SolverConfig::default();

    let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
    assert!(serial.converged());
    println!(
        "serial CPU : {:9.1} µs modeled ({} iterations)",
        serial.timing.total_us(),
        serial.iterations
    );

    let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
    let par = gpu.solve(&net, &cfg);
    assert!(par.converged());
    fbs::validate::assert_physical(&net, &par, 1e-4);
    let p = par.timing.phases;
    println!("GPU        : {:9.1} µs modeled ({} iterations)", par.timing.total_us(), par.iterations);
    println!("  upload    {:9.1} µs", p.setup_us);
    println!("  inject    {:9.1} µs", p.injection_us);
    println!("  backward  {:9.1} µs", p.backward_us);
    println!("  forward   {:9.1} µs", p.forward_us);
    println!("  converge  {:9.1} µs", p.convergence_us);
    println!("  download  {:9.1} µs", p.teardown_us);

    let total_x = serial.timing.total_us() / par.timing.total_us();
    let sweep_x = serial.timing.phases.sweep_us() / par.timing.sweep_kernel_us();
    println!("\ntotal speedup      : {total_x:.2}x  (paper: up to 3.9x at 256K)");
    println!("kernel-only speedup: {sweep_x:.2}x  (paper: grows with tree size)");
    println!(
        "simulation wall    : {:.2} s (host cost of emulating the device — not a perf claim)",
        par.timing.wall_us / 1e6
    );
}
