//! Root re-export crate; see crate docs in members.
