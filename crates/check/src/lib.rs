//! Minimal property-testing harness (in-repo `proptest` replacement).
//!
//! A property is a function from a generated value to a
//! [`CaseResult`]; the [`Checker`] runs it over a fixed budget of
//! seeded cases, discards cases rejected by [`prop_assume!`], and on
//! failure greedily shrinks the input before panicking with the failing
//! seed. Each case's seed is derived deterministically from the
//! property name, so suites are reproducible offline with no state
//! files; a failure can be replayed alone by setting `CHECK_SEED`.
//!
//! ```
//! use check::gen::{tuple2, usize_in, u64_any};
//! use check::{checker, prop_assert, CaseResult};
//!
//! fn commutes(&(a, b): &(usize, u64)) -> CaseResult {
//!     prop_assert!(a as u64 + b == b + a as u64, "a = {a}, b = {b}");
//!     Ok(())
//! }
//! checker("addition_commutes")
//!     .cases(64)
//!     .run(tuple2(usize_in(0..1000), u64_any()), commutes);
//! ```
//!
//! Panics inside a property (index bounds, internal `assert!`s such as
//! `check_invariants`) are caught and treated as failures, so ported
//! suites may keep panicking helpers.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng, SplitMix64};

pub mod gen;
pub use gen::Gen;

/// Why a case did not pass.
#[derive(Clone, Debug)]
pub enum CaseError {
    /// The case's preconditions don't hold ([`prop_assume!`]); draw a
    /// fresh case instead, it counts toward the discard cap only.
    Discard,
    /// The property is false for this input.
    Fail(String),
}

impl CaseError {
    /// Failure with a message (used by the assertion macros).
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }
}

/// What a property returns per case.
pub type CaseResult = Result<(), CaseError>;

/// Asserts a condition inside a property; optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::CaseError::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::CaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property; optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err($crate::CaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($a), stringify!($b), lhs, rhs, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err($crate::CaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs
            )));
        }
    }};
}

/// Discards the case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::CaseError::Discard);
        }
    };
}

/// Case budget for one property. Build with [`checker`].
pub struct Checker {
    name: String,
    cases: u32,
    max_discards: u32,
}

/// Starts a checker for the named property (the name seeds the case
/// schedule and appears in failure reports).
pub fn checker(name: &str) -> Checker {
    Checker { name: name.to_string(), cases: 32, max_discards: 0 }
}

/// Cap on successful shrink steps per failure.
const MAX_SHRINKS: u32 = 200;

impl Checker {
    /// Sets the number of passing cases required (default 32).
    pub fn cases(mut self, n: u32) -> Self {
        assert!(n > 0, "case budget must be positive");
        self.cases = n;
        self
    }

    /// Sets the discard cap (default: 10× the case budget).
    pub fn max_discards(mut self, n: u32) -> Self {
        self.max_discards = n;
        self
    }

    /// Runs the property over the case budget; panics on the first
    /// failure with the shrunk input and its reproduction seed.
    pub fn run<T: Debug + 'static>(self, gen: Gen<T>, prop: impl Fn(&T) -> CaseResult) {
        // Replay mode: CHECK_SEED pins a single case.
        if let Ok(s) = std::env::var("CHECK_SEED") {
            let seed = parse_seed(&s);
            eprintln!("[check] {}: replaying single case CHECK_SEED={seed:#x}", self.name);
            self.run_case(&gen, &prop, seed, 0);
            return;
        }

        let max_discards = if self.max_discards == 0 { self.cases * 10 } else { self.max_discards };
        // The property name keys the schedule: independent properties
        // get independent streams even with identical generators.
        let mut schedule = SplitMix64::new(fnv1a(self.name.as_bytes()));
        let mut passed = 0u32;
        let mut discarded = 0u32;
        while passed < self.cases {
            let case_seed = schedule.next_u64();
            if self.run_case(&gen, &prop, case_seed, passed) {
                passed += 1;
            } else {
                discarded += 1;
                assert!(
                    discarded <= max_discards,
                    "property '{}': gave up after {discarded} discards ({passed} cases passed); \
                     weaken prop_assume! or widen the generator",
                    self.name
                );
            }
        }
    }

    /// Runs one case; returns false when discarded, panics on failure.
    fn run_case<T>(
        &self,
        gen: &Gen<T>,
        prop: &impl Fn(&T) -> CaseResult,
        case_seed: u64,
        case_no: u32,
    ) -> bool
    where
        T: Debug + 'static,
    {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let value = gen.sample(&mut rng);
        match run_guarded(prop, &value) {
            Ok(()) => true,
            Err(CaseError::Discard) => false,
            Err(CaseError::Fail(msg)) => {
                let (min_value, min_msg, steps) = shrink_failure(gen, prop, value, msg.clone());
                panic!(
                    "property '{}' failed (case {} of {})\n\
                     minimal input (after {} shrink steps): {:?}\n\
                     failure: {}\n\
                     original failure: {}\n\
                     reproduce with: CHECK_SEED={:#x} cargo test {}",
                    self.name, case_no + 1, self.cases, steps, min_value, min_msg, msg,
                    case_seed, self.name
                );
            }
        }
    }
}

/// Runs the property, converting panics into failures.
fn run_guarded<T>(prop: &impl Fn(&T) -> CaseResult, value: &T) -> CaseResult {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(res) => res,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(CaseError::fail(format!("panicked: {msg}")))
        }
    }
}

/// Greedy shrink: repeatedly move to the first simpler candidate that
/// still fails, until none does or the step cap is hit.
fn shrink_failure<T: Debug + 'static>(
    gen: &Gen<T>,
    prop: &impl Fn(&T) -> CaseResult,
    mut value: T,
    mut msg: String,
) -> (T, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < MAX_SHRINKS {
        for cand in gen.shrink(&value) {
            if let Err(CaseError::Fail(m)) = run_guarded(prop, &cand) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Accepts decimal or 0x-prefixed hex seeds.
fn parse_seed(s: &str) -> u64 {
    let s = s.trim();
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("CHECK_SEED must be a u64 (decimal or 0x-hex), got `{s}`"))
}

/// FNV-1a 64-bit hash (names → schedule seeds).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::gen::{tuple2, u64_any, usize_in};
    use super::*;

    #[test]
    fn passing_property_runs_budget() {
        use std::cell::Cell;
        let count = Cell::new(0u32);
        checker("always_true").cases(17).run(usize_in(0..100), |_| {
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn failing_property_panics_with_seed_and_shrinks() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            checker("fails_above_ten").cases(64).run(usize_in(0..1000), |&v| {
                prop_assert!(v <= 10, "v = {v} exceeds 10");
                Ok(())
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("CHECK_SEED="), "{msg}");
        // Greedy integer shrinking must land on the boundary.
        assert!(msg.contains("minimal input (after"), "{msg}");
        assert!(msg.contains("11"), "shrunk to boundary: {msg}");
    }

    #[test]
    fn panicking_property_is_a_failure() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            checker("panics").cases(8).run(usize_in(0..10), |&v| {
                assert!(v > 100, "inner assert fires");
                Ok(())
            });
        }))
        .expect_err("panic must be converted to failure");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("panicked"), "{msg}");
    }

    #[test]
    fn assume_discards_but_budget_still_met() {
        use std::cell::Cell;
        let ran = Cell::new(0u32);
        checker("assume_half").cases(20).run(usize_in(0..100), |&v| {
            prop_assume!(v % 2 == 0);
            ran.set(ran.get() + 1);
            prop_assert!(v % 2 == 0);
            Ok(())
        });
        assert_eq!(ran.get(), 20, "20 even cases must pass");
    }

    #[test]
    fn over_assuming_gives_up() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            checker("assume_never").cases(10).max_discards(30).run(usize_in(0..10), |_| {
                prop_assume!(false);
                Ok(())
            });
        }))
        .expect_err("must give up");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("gave up"), "{msg}");
    }

    #[test]
    fn tuple_failure_shrinks_component() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            checker("tuple_fail").cases(64).run(
                tuple2(usize_in(2..600), u64_any()),
                |&(n, _seed)| {
                    prop_assert!(n < 2, "always false for n >= 2");
                    Ok(())
                },
            );
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        // n shrinks to its lower bound 2 regardless of the seed drawn.
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains("(2,"), "{msg}");
    }

    #[test]
    fn seeds_differ_across_property_names() {
        let mut a = SplitMix64::new(fnv1a(b"prop_a"));
        let mut b = SplitMix64::new(fnv1a(b"prop_b"));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("255"), 255);
        assert_eq!(parse_seed("0xff"), 255);
        assert_eq!(parse_seed(" 0XFF "), 255);
    }
}
