//! Composable value generators with simple integer/size shrinking.
//!
//! A [`Gen<T>`] pairs a sampling function (seeded `StdRng` in, value
//! out) with a shrinker (value in, simpler candidate values out). The
//! combinators mirror the slice of `proptest` this repo used: ranges,
//! constants, one-of alternation, tuples, mapped values and vectors.
//!
//! Shrinking is deliberately minimal: integer and length shrinking move
//! values toward the generator's lower bound, tuples shrink one
//! component at a time, and `map`ped generators don't shrink (the
//! mapping is not invertible). That is enough to turn "fails at
//! n = 793, seed 0x…" into "fails at n = 2" for the suites here.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use rng::rngs::StdRng;
use rng::Rng;

/// A shared shrinking function: candidate smaller values for a failure.
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A reusable generator of `T` values: sampling plus shrinking.
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut StdRng) -> T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { sample: Rc::clone(&self.sample), shrink: Rc::clone(&self.shrink) }
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from explicit sample and shrink functions.
    pub fn new(
        sample: impl Fn(&mut StdRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen { sample: Rc::new(sample), shrink: Rc::new(shrink) }
    }

    /// A generator that samples with `sample` and never shrinks.
    pub fn no_shrink(sample: impl Fn(&mut StdRng) -> T + 'static) -> Self {
        Gen::new(sample, |_| Vec::new())
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut StdRng) -> T {
        (self.sample)(rng)
    }

    /// Proposes strictly-simpler candidates for `value` (possibly none).
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Maps generated values through `f`. The result does not shrink:
    /// `f` is not invertible, so shrunk pre-images can't be recovered.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let sample = self.sample;
        Gen::no_shrink(move |rng| f(sample(rng)))
    }
}

/// Integer candidates between `lo` and `v` (exclusive), simplest first.
fn shrink_toward(lo: u64, v: u64) -> Vec<u64> {
    // Halving ladder from below (QuickCheck-style): lo, v - d/2, v - d/4,
    // …, v - 1. Greedy retries from the first failing candidate, so the
    // boundary of a failing region is located in O(log d) rounds rather
    // than the minus-one linear walk a [lo, mid, v-1] list collapses to.
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let mut step = (v - lo) / 2;
        while step > 0 {
            let cand = v - step;
            if cand != lo && out.last() != Some(&cand) {
                out.push(cand);
            }
            step /= 2;
        }
    }
    out
}

/// Uniform `usize` in `lo..hi`, shrinking toward `lo`.
pub fn usize_in(range: Range<usize>) -> Gen<usize> {
    let (lo, hi) = (range.start, range.end);
    assert!(lo < hi, "empty range");
    Gen::new(
        move |rng| rng.gen_range(lo..hi),
        move |&v| shrink_toward(lo as u64, v as u64).into_iter().map(|x| x as usize).collect(),
    )
}

/// Uniform `u64` over the full domain, shrinking toward 0.
pub fn u64_any() -> Gen<u64> {
    Gen::new(|rng| rng.next_u64(), |&v| shrink_toward(0, v))
}

/// Uniform `u64` in `lo..hi`, shrinking toward `lo`.
pub fn u64_in(range: Range<u64>) -> Gen<u64> {
    let (lo, hi) = (range.start, range.end);
    assert!(lo < hi, "empty range");
    Gen::new(move |rng| rng.gen_range(lo..hi), move |&v| shrink_toward(lo, v))
}

/// Uniform `f64` in `lo..hi`. Floats don't shrink.
pub fn f64_in(range: Range<f64>) -> Gen<f64> {
    let (lo, hi) = (range.start, range.end);
    assert!(lo < hi, "empty range");
    Gen::no_shrink(move |rng| rng.gen_range(lo..hi))
}

/// Always `value`.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::no_shrink(move |_| value.clone())
}

/// Picks one alternative uniformly per case. Does not shrink (the
/// chosen alternative isn't recorded in the value).
pub fn one_of<T: 'static>(alts: Vec<Gen<T>>) -> Gen<T> {
    assert!(!alts.is_empty(), "one_of needs at least one alternative");
    Gen::no_shrink(move |rng| {
        let i = rng.gen_range(0..alts.len());
        alts[i].sample(rng)
    })
}

/// Vector of `elem` values with length in `len`, shrinking by dropping
/// chunks (toward the minimum length) and then shrinking single
/// elements in place.
pub fn vec_of<T: Clone + Debug + 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    let (lo, hi) = (len.start, len.end);
    assert!(lo < hi, "empty length range");
    let sample_elem = elem.clone();
    Gen::new(
        move |rng| {
            let n = rng.gen_range(lo..hi);
            (0..n).map(|_| sample_elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            // Structural shrinks first: halves, then drop-one.
            if v.len() / 2 >= lo && v.len() > 1 {
                out.push(v[..v.len() / 2].to_vec());
                out.push(v[v.len() / 2..].to_vec());
            }
            if v.len() > lo {
                for i in 0..v.len().min(4) {
                    let mut shorter = v.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            // Element shrinks: first candidate per position, capped.
            for i in 0..v.len().min(8) {
                if let Some(simpler) = elem.shrink(&v[i]).into_iter().next() {
                    let mut modified = v.clone();
                    modified[i] = simpler;
                    out.push(modified);
                }
            }
            out
        },
    )
}

macro_rules! tuple_gen {
    ($fn_name:ident, $($g:ident : $T:ident @ $idx:tt),+) => {
        /// Tuple generator; shrinks one component at a time.
        pub fn $fn_name<$($T: Clone + 'static),+>($($g: Gen<$T>),+) -> Gen<($($T,)+)> {
            let samplers = ($($g.clone(),)+);
            let shrinkers = ($($g,)+);
            Gen::new(
                move |rng| ($(samplers.$idx.sample(rng),)+),
                move |v| {
                    let mut out = Vec::new();
                    $(
                        for cand in shrinkers.$idx.shrink(&v.$idx) {
                            let mut t = v.clone();
                            t.$idx = cand;
                            out.push(t);
                        }
                    )+
                    out
                },
            )
        }
    };
}

tuple_gen!(tuple2, a: A @ 0, b: B @ 1);
tuple_gen!(tuple3, a: A @ 0, b: B @ 1, c: C @ 2);
tuple_gen!(tuple4, a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3);

#[cfg(test)]
mod tests {
    use super::*;
    use rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn ranges_respect_bounds() {
        let g = usize_in(5..10);
        let mut r = rng();
        for _ in 0..500 {
            assert!((5..10).contains(&g.sample(&mut r)));
        }
    }

    #[test]
    fn shrink_moves_toward_lower_bound() {
        let g = usize_in(2..600);
        let cands = g.shrink(&500);
        assert!(cands.contains(&2));
        assert!(cands.iter().all(|&c| c < 500 && c >= 2), "{cands:?}");
        assert!(g.shrink(&2).is_empty(), "lower bound is minimal");
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let g = tuple2(usize_in(1..100), u64_any());
        for (a, b) in g.shrink(&(50, 40)) {
            assert!((a == 50) ^ (b == 40), "({a}, {b})");
        }
    }

    #[test]
    fn vec_of_shrinks_length() {
        let g = vec_of(usize_in(0..50), 1..20);
        let v: Vec<usize> = vec![9; 10];
        assert!(g.shrink(&v).iter().any(|c| c.len() < v.len()));
    }

    #[test]
    fn map_transforms_and_does_not_shrink() {
        let g = usize_in(1..10).map(|x| x * 2);
        let mut r = rng();
        let v = g.sample(&mut r);
        assert_eq!(v % 2, 0);
        assert!(g.shrink(&v).is_empty());
    }

    #[test]
    fn one_of_picks_all_alternatives() {
        let g = one_of(vec![just(1usize), just(2), just(3)]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[g.sample(&mut r)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = tuple3(usize_in(0..1000), u64_any(), f64_in(0.0..1.0));
        let a = g.sample(&mut rng());
        let b = g.sample(&mut rng());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2.to_bits(), b.2.to_bits());
    }
}
