//! Self-contained numeric utilities for the FBS power-flow reproduction.
//!
//! The centerpiece is [`Complex`], a `f64` complex number used for phasor
//! voltages, currents, impedances and apparent power throughout the
//! workspace. It is implemented in-repo (rather than pulling an external
//! crate) to keep the reproduction's substrate fully self-contained; the
//! operations needed by forward-backward sweep are a small, well-tested
//! subset of complex arithmetic.
//!
//! The crate also provides approximate-comparison helpers used by tests
//! across the workspace.

mod approx;
mod complex;
mod linsolve;
mod vec3;

pub use approx::{approx_eq, approx_eq_eps, max_abs_diff, RelAbs};
pub use complex::Complex;
pub use linsolve::{solve_dense, LinSolveError};
pub use vec3::{CMat3, CVec3};

/// Convenience constructor: `c(re, im)` is `Complex::new(re, im)`.
#[inline]
pub const fn c(re: f64, im: f64) -> Complex {
    Complex::new(re, im)
}
