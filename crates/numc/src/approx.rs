//! Approximate floating-point comparison helpers shared by tests and
//! validation code across the workspace.

/// Returns true when `a` and `b` agree within a *relative-or-absolute*
/// tolerance: `|a−b| ≤ tol · max(1, |a|, |b|)`.
///
/// This single-knob check behaves like an absolute tolerance near zero and
/// like a relative tolerance for large magnitudes, which is the right
/// default for per-unit power-flow quantities (all O(1)) as well as raw
/// watt/var values (O(1e6)).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true; // covers infinities of equal sign and exact hits
    }
    if !a.is_finite() || !b.is_finite() {
        return false; // unequal infinities / NaNs never compare equal
    }
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

/// Two-knob comparison with independent relative and absolute tolerances:
/// `|a−b| ≤ max(abs_tol, rel_tol · max(|a|, |b|))`.
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, rel_tol: f64, abs_tol: f64) -> bool {
    if a == b {
        return true;
    }
    let diff = (a - b).abs();
    diff <= abs_tol.max(rel_tol * a.abs().max(b.abs()))
}

/// Maximum absolute element-wise difference between two equal-length
/// slices. Panics if lengths differ (a test helper, not a hot path).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// A reusable relative+absolute tolerance pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelAbs {
    /// Relative tolerance.
    pub rel: f64,
    /// Absolute tolerance floor.
    pub abs: f64,
}

impl RelAbs {
    /// Creates a tolerance pair.
    pub const fn new(rel: f64, abs: f64) -> Self {
        RelAbs { rel, abs }
    }

    /// Tight default used when comparing GPU results against the serial
    /// reference (both are f64; divergence comes only from summation
    /// order).
    pub const TIGHT: RelAbs = RelAbs::new(1e-10, 1e-12);

    /// Loose default used when comparing independently converged solver
    /// runs (dominated by the convergence tolerance, not FP noise).
    pub const SOLVER: RelAbs = RelAbs::new(1e-6, 1e-9);

    /// Checks `a ≈ b` under this tolerance.
    #[inline]
    pub fn eq(&self, a: f64, b: f64) -> bool {
        approx_eq_eps(a, b, self.rel, self.abs)
    }

    /// Checks two complex values component-wise.
    #[inline]
    pub fn eq_c(&self, a: crate::Complex, b: crate::Complex) -> bool {
        self.eq(a.re, b.re) && self.eq(a.im, b.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c;

    #[test]
    fn approx_eq_near_zero_is_absolute() {
        assert!(approx_eq(1e-13, 0.0, 1e-12));
        assert!(!approx_eq(1e-11, 0.0, 1e-12));
    }

    #[test]
    fn approx_eq_large_is_relative() {
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-13), 1e-12));
        assert!(!approx_eq(1e9, 1e9 * (1.0 + 1e-11), 1e-12));
    }

    #[test]
    fn approx_eq_exact_and_inf() {
        assert!(approx_eq(2.0, 2.0, 0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-9));
        assert!(!approx_eq(f64::INFINITY, 1.0, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
    }

    #[test]
    fn two_knob_comparison() {
        assert!(approx_eq_eps(0.0, 1e-10, 0.0, 1e-9));
        assert!(!approx_eq_eps(0.0, 1e-8, 0.0, 1e-9));
        assert!(approx_eq_eps(100.0, 100.001, 1e-4, 0.0));
        assert!(!approx_eq_eps(100.0, 100.1, 1e-4, 0.0));
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0, 3.0], &[1.0, 2.5, 2.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn max_abs_diff_len_mismatch_panics() {
        max_abs_diff(&[1.0], &[]);
    }

    #[test]
    fn relabs_complex() {
        let t = RelAbs::new(1e-9, 1e-12);
        assert!(t.eq_c(c(1.0, -1.0), c(1.0 + 1e-10, -1.0)));
        assert!(!t.eq_c(c(1.0, -1.0), c(1.0 + 1e-6, -1.0)));
    }
}
