//! Double-precision complex numbers.
//!
//! Layout is `#[repr(C)]` `{ re, im }` so a slice of `Complex` can be
//! reinterpreted as an interleaved `f64` buffer by the device layer
//! without padding surprises.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` over `f64`.
///
/// Power-engineering convention: `j` denotes the imaginary unit. All
/// arithmetic is plain IEEE-754; no NaN-protection is performed, matching
/// the CUDA kernels the paper describes (device code uses raw `float2`
/// style arithmetic as well).
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero (additive identity).
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One (multiplicative identity).
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + j·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a phasor from polar form: `mag·e^{j·angle}` (angle in radians).
    #[inline]
    pub fn from_polar(mag: f64, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Complex { re: mag * c, im: mag * s }
    }

    /// Complex conjugate `re − j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Magnitude `|z| = sqrt(re² + im²)`.
    ///
    /// Uses `hypot` for robustness against overflow/underflow in the
    /// squares; magnitudes feed convergence checks so this matters at
    /// extreme per-unit scalings.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `re² + im²` (cheaper than [`abs`](Self::abs);
    /// used in hot convergence kernels).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Division by zero yields infinities/NaNs exactly as IEEE-754
    /// dictates; callers in the solver guard against zero voltage.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex { re: self.re / d, im: -self.im / d }
    }

    /// Fused multiply-add convenience: `self * b + acc`.
    #[inline]
    pub fn mul_add(self, b: Complex, acc: Complex) -> Self {
        self * b + acc
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Floating-point count of one complex multiply (4 mul + 2 add).
    /// Exposed so kernels can tally modeled flops consistently.
    pub const MUL_FLOPS: u64 = 6;
    /// Floating-point count of one complex add.
    pub const ADD_FLOPS: u64 = 2;
    /// Floating-point cost model of one complex divide (mul + conj trick:
    /// 6 mul/add for numerator, 3 for |d|², 2 divides ≈ 11).
    pub const DIV_FLOPS: u64 = 11;
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, k: f64) -> Complex {
        self.scale(k)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, z: Complex) -> Complex {
        z.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, o: Complex) -> Complex {
        let d = o.norm_sqr();
        Complex {
            re: (self.re * o.re + self.im * o.im) / d,
            im: (self.im * o.re - self.re * o.im) / d,
        }
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, o: Complex) {
        *self = *self / o;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, k: f64) -> Complex {
        Complex { re: self.re / k, im: self.im / k }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, &b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Complex {
        Complex::from_re(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}j)", self.re, self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}{:+.*}j", p, self.re, p, self.im)
        } else {
            write!(f, "{}{:+}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn close(a: Complex, b: Complex) -> bool {
        approx_eq(a.re, b.re, 1e-12) && approx_eq(a.im, b.im, 1e-12)
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex::new(1.0, 2.0).im, 2.0);
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::J * Complex::J, -Complex::ONE);
        assert_eq!(Complex::from_re(3.5), Complex::new(3.5, 0.0));
        assert_eq!(Complex::from(2.0), Complex::new(2.0, 0.0));
    }

    #[test]
    fn add_sub_neg() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        let mut m = a;
        m += b;
        assert_eq!(m, a + b);
        m -= b;
        assert_eq!(m, a);
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.0, 4.0);
        // (3 - 2j)(-1 + 4j) = -3 + 12j + 2j - 8j² = 5 + 14j
        assert_eq!(a * b, Complex::new(5.0, 14.0));
        let mut m = a;
        m *= b;
        assert_eq!(m, a * b);
    }

    #[test]
    fn scalar_ops() {
        let a = Complex::new(2.0, -6.0);
        assert_eq!(a * 0.5, Complex::new(1.0, -3.0));
        assert_eq!(0.5 * a, Complex::new(1.0, -3.0));
        assert_eq!(a / 2.0, Complex::new(1.0, -3.0));
        assert_eq!(a.scale(-1.0), -a);
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.0, 4.0);
        assert!(close((a * b) / b, a));
        assert!(close(a / a, Complex::ONE));
        let mut m = a * b;
        m /= b;
        assert!(close(m, a));
    }

    #[test]
    fn inverse() {
        let a = Complex::new(0.3, -1.7);
        assert!(close(a * a.inv(), Complex::ONE));
        assert!(close(a.inv(), Complex::ONE / a));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(1.5, 2.5);
        assert_eq!(a.conj().conj(), a);
        assert_eq!((a * a.conj()).im, 0.0);
        assert!(approx_eq((a * a.conj()).re, a.norm_sqr(), 1e-12));
    }

    #[test]
    fn abs_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        // hypot robustness: components whose squares overflow
        let big = Complex::new(1e200, 1e200);
        assert!(big.abs().is_finite());
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!(approx_eq(z.abs(), 2.0, 1e-12));
        assert!(approx_eq(z.arg(), std::f64::consts::FRAC_PI_3, 1e-12));
        // angle convention: arg of −1 is +π
        assert!(approx_eq(Complex::new(-1.0, 0.0).arg(), std::f64::consts::PI, 1e-12));
    }

    #[test]
    fn sum_iterators() {
        let v = [Complex::new(1.0, 1.0), Complex::new(2.0, -3.0), Complex::new(-0.5, 0.25)];
        let owned: Complex = v.iter().copied().sum();
        let byref: Complex = v.iter().sum();
        assert_eq!(owned, Complex::new(2.5, -1.75));
        assert_eq!(owned, byref);
        let empty: Complex = std::iter::empty::<Complex>().sum();
        assert_eq!(empty, Complex::ZERO);
    }

    #[test]
    fn nan_and_finite_predicates() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(Complex::new(0.0, f64::NAN).is_nan());
        assert!(!Complex::new(1.0, 2.0).is_nan());
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2j");
        assert_eq!(format!("{:.2}", Complex::new(1.0, 2.0)), "1.00+2.00j");
        assert_eq!(format!("{:?}", Complex::new(0.5, 0.5)), "(0.5+0.5j)");
    }

    #[test]
    fn layout_is_two_f64() {
        assert_eq!(std::mem::size_of::<Complex>(), 16);
        assert_eq!(std::mem::align_of::<Complex>(), 8);
    }

    #[test]
    fn mul_add_helper() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(2.0, 0.0);
        let acc = Complex::new(-1.0, 0.5);
        assert_eq!(a.mul_add(b, acc), a * b + acc);
    }
}
