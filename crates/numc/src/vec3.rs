//! Three-phase complex linear algebra: phase vectors and 3×3 phase
//! impedance matrices.
//!
//! Unbalanced distribution analysis works per phase: a bus voltage is a
//! triple `(V_a, V_b, V_c)` and a line section is a full 3×3 complex
//! impedance matrix whose off-diagonals carry the mutual coupling
//! between conductors (Carson's equations). These types are the minimal
//! dense kernels forward-backward sweep needs — add/sub on vectors and
//! matrix·vector products — kept `#[repr(C)]`, `Copy` + `Default` so they
//! live in device buffers unchanged.

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::Complex;

/// A per-phase complex triple (voltages, currents or powers).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct CVec3 {
    /// Phase a.
    pub a: Complex,
    /// Phase b.
    pub b: Complex,
    /// Phase c.
    pub c: Complex,
}

impl CVec3 {
    /// All-zero triple.
    pub const ZERO: CVec3 = CVec3 { a: Complex::ZERO, b: Complex::ZERO, c: Complex::ZERO };

    /// Builds from the three phases.
    pub const fn new(a: Complex, b: Complex, c: Complex) -> Self {
        CVec3 { a, b, c }
    }

    /// The same value on every phase.
    pub const fn splat(v: Complex) -> Self {
        CVec3 { a: v, b: v, c: v }
    }

    /// A balanced positive-sequence set of magnitude `mag`: phase a at
    /// 0°, b at −120°, c at +120°.
    pub fn balanced(mag: f64) -> Self {
        let third = 2.0 * std::f64::consts::PI / 3.0;
        CVec3 {
            a: Complex::from_polar(mag, 0.0),
            b: Complex::from_polar(mag, -third),
            c: Complex::from_polar(mag, third),
        }
    }

    /// Element-wise conjugate.
    pub fn conj(self) -> Self {
        CVec3 { a: self.a.conj(), b: self.b.conj(), c: self.c.conj() }
    }

    /// Largest phase magnitude.
    pub fn abs_max(self) -> f64 {
        self.a.abs().max(self.b.abs()).max(self.c.abs())
    }

    /// Smallest phase magnitude.
    pub fn abs_min(self) -> f64 {
        self.a.abs().min(self.b.abs()).min(self.c.abs())
    }

    /// Phase array view `[a, b, c]`.
    pub fn phases(self) -> [Complex; 3] {
        [self.a, self.b, self.c]
    }

    /// Applies `f` per phase.
    pub fn map(self, f: impl Fn(Complex) -> Complex) -> Self {
        CVec3 { a: f(self.a), b: f(self.b), c: f(self.c) }
    }

    /// Element-wise product (used by per-phase injection).
    pub fn mul_elem(self, o: CVec3) -> Self {
        CVec3 { a: self.a * o.a, b: self.b * o.b, c: self.c * o.c }
    }

    /// Voltage-unbalance estimate: max deviation of a phase magnitude
    /// from the three-phase mean, over the mean (the NEMA/IEEE "percent
    /// unbalance" definition on magnitudes). Zero for balanced sets.
    pub fn unbalance(self) -> f64 {
        let m = (self.a.abs() + self.b.abs() + self.c.abs()) / 3.0;
        if m == 0.0 {
            return 0.0;
        }
        self.phases().iter().map(|p| (p.abs() - m).abs()).fold(0.0, f64::max) / m
    }

    /// True when every phase is finite.
    pub fn is_finite(self) -> bool {
        self.a.is_finite() && self.b.is_finite() && self.c.is_finite()
    }

    /// Modeled flop count of one `CVec3` add.
    pub const ADD_FLOPS: u64 = 3 * Complex::ADD_FLOPS;
}

impl Add for CVec3 {
    type Output = CVec3;
    fn add(self, o: CVec3) -> CVec3 {
        CVec3 { a: self.a + o.a, b: self.b + o.b, c: self.c + o.c }
    }
}

impl AddAssign for CVec3 {
    fn add_assign(&mut self, o: CVec3) {
        *self = *self + o;
    }
}

impl Sub for CVec3 {
    type Output = CVec3;
    fn sub(self, o: CVec3) -> CVec3 {
        CVec3 { a: self.a - o.a, b: self.b - o.b, c: self.c - o.c }
    }
}

impl SubAssign for CVec3 {
    fn sub_assign(&mut self, o: CVec3) {
        *self = *self - o;
    }
}

impl Neg for CVec3 {
    type Output = CVec3;
    fn neg(self) -> CVec3 {
        CVec3 { a: -self.a, b: -self.b, c: -self.c }
    }
}

impl Mul<f64> for CVec3 {
    type Output = CVec3;
    fn mul(self, k: f64) -> CVec3 {
        CVec3 { a: self.a * k, b: self.b * k, c: self.c * k }
    }
}

/// A 3×3 complex matrix in row-major order (phase impedance/admittance).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct CMat3 {
    /// Rows `[row][col]`, phases ordered a, b, c.
    pub m: [[Complex; 3]; 3],
}

impl CMat3 {
    /// All-zero matrix.
    pub const ZERO: CMat3 = CMat3 { m: [[Complex::ZERO; 3]; 3] };

    /// Builds from rows.
    pub const fn from_rows(r0: [Complex; 3], r1: [Complex; 3], r2: [Complex; 3]) -> Self {
        CMat3 { m: [r0, r1, r2] }
    }

    /// `z_self` on the diagonal, `z_mutual` elsewhere — the symmetric
    /// approximation of a transposed line's Carson matrix.
    pub const fn coupled(z_self: Complex, z_mutual: Complex) -> Self {
        CMat3 {
            m: [
                [z_self, z_mutual, z_mutual],
                [z_mutual, z_self, z_mutual],
                [z_mutual, z_mutual, z_self],
            ],
        }
    }

    /// Diagonal (uncoupled) matrix.
    pub const fn diag(z: Complex) -> Self {
        Self::coupled(z, Complex::ZERO)
    }

    /// Matrix–vector product.
    pub fn mul_vec(self, v: CVec3) -> CVec3 {
        let p = v.phases();
        let row = |r: [Complex; 3]| r[0] * p[0] + r[1] * p[1] + r[2] * p[2];
        CVec3 { a: row(self.m[0]), b: row(self.m[1]), c: row(self.m[2]) }
    }

    /// Scales every entry.
    pub fn scale(self, k: f64) -> Self {
        let s = |r: [Complex; 3]| [r[0] * k, r[1] * k, r[2] * k];
        CMat3 { m: [s(self.m[0]), s(self.m[1]), s(self.m[2])] }
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.m.iter().flatten().all(|z| z.is_finite())
    }

    /// Modeled flop count of one matrix–vector product
    /// (9 complex multiplies + 6 complex adds).
    pub const MULVEC_FLOPS: u64 = 9 * Complex::MUL_FLOPS + 6 * Complex::ADD_FLOPS;
}

impl Add for CMat3 {
    type Output = CMat3;
    fn add(self, o: CMat3) -> CMat3 {
        let mut out = CMat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + o.m[r][c];
            }
        }
        out
    }
}

impl Mul<CVec3> for CMat3 {
    type Output = CVec3;
    fn mul(self, v: CVec3) -> CVec3 {
        self.mul_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c;

    #[test]
    fn vector_arithmetic() {
        let x = CVec3::new(c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 0.0));
        let y = CVec3::splat(c(1.0, 1.0));
        assert_eq!(x + y, CVec3::new(c(2.0, 1.0), c(1.0, 2.0), c(0.0, 1.0)));
        assert_eq!((x + y) - y, x);
        assert_eq!(-x, CVec3::new(c(-1.0, 0.0), c(0.0, -1.0), c(1.0, 0.0)));
        assert_eq!(x * 2.0, CVec3::new(c(2.0, 0.0), c(0.0, 2.0), c(-2.0, 0.0)));
        let mut z = x;
        z += y;
        z -= y;
        assert_eq!(z, x);
    }

    #[test]
    fn balanced_set_properties() {
        let v = CVec3::balanced(100.0);
        for p in v.phases() {
            assert!((p.abs() - 100.0).abs() < 1e-9);
        }
        // Phasors sum to zero for a balanced set.
        let sum = v.a + v.b + v.c;
        assert!(sum.abs() < 1e-9);
        assert!(v.unbalance() < 1e-12);
        assert_eq!(v.abs_max(), v.abs_min());
    }

    #[test]
    fn unbalance_detects_sag() {
        let mut v = CVec3::balanced(100.0);
        v.b = v.b * 0.9; // 10% sag on phase b
        assert!(v.unbalance() > 0.05 && v.unbalance() < 0.10);
    }

    #[test]
    fn matvec_identity_and_coupling() {
        let eye = CMat3::diag(Complex::ONE);
        let v = CVec3::new(c(1.0, 2.0), c(3.0, -1.0), c(0.5, 0.0));
        assert_eq!(eye.mul_vec(v), v);

        // Pure mutual coupling mixes the other phases.
        let mutual = CMat3::coupled(Complex::ZERO, Complex::ONE);
        let got = mutual.mul_vec(v);
        assert_eq!(got.a, v.b + v.c);
        assert_eq!(got.b, v.a + v.c);
        assert_eq!(got.c, v.a + v.b);
    }

    #[test]
    fn matvec_matches_manual_expansion() {
        let m = CMat3::from_rows(
            [c(1.0, 0.0), c(0.0, 1.0), c(2.0, 0.0)],
            [c(0.0, 0.0), c(1.0, 1.0), c(0.0, 0.0)],
            [c(1.0, -1.0), c(0.0, 0.0), c(3.0, 0.0)],
        );
        let v = CVec3::new(c(1.0, 1.0), c(2.0, 0.0), c(0.0, -1.0));
        let got = m.mul_vec(v);
        assert_eq!(got.a, c(1.0, 0.0) * c(1.0, 1.0) + c(0.0, 1.0) * c(2.0, 0.0) + c(2.0, 0.0) * c(0.0, -1.0));
        assert_eq!(got.b, c(1.0, 1.0) * c(2.0, 0.0));
        assert_eq!(got.c, c(1.0, -1.0) * c(1.0, 1.0) + c(3.0, 0.0) * c(0.0, -1.0));
    }

    #[test]
    fn matrix_add_and_scale() {
        let a = CMat3::diag(c(1.0, 0.0));
        let b = CMat3::coupled(c(1.0, 0.0), c(0.5, 0.0));
        let s = a + b;
        assert_eq!(s.m[0][0], c(2.0, 0.0));
        assert_eq!(s.m[0][1], c(0.5, 0.0));
        let h = b.scale(2.0);
        assert_eq!(h.m[1][0], c(1.0, 0.0));
    }

    #[test]
    fn layout_is_flat_complex() {
        assert_eq!(std::mem::size_of::<CVec3>(), 48);
        assert_eq!(std::mem::size_of::<CMat3>(), 144);
    }

    #[test]
    fn finite_predicates() {
        assert!(CVec3::balanced(1.0).is_finite());
        let mut v = CVec3::ZERO;
        v.b = c(f64::NAN, 0.0);
        assert!(!v.is_finite());
        assert!(CMat3::diag(Complex::ONE).is_finite());
        let mut m = CMat3::ZERO;
        m.m[2][1] = c(f64::INFINITY, 0.0);
        assert!(!m.is_finite());
    }
}
