//! Dense complex linear solve for small systems.
//!
//! Break-point compensation for weakly-meshed networks reduces each
//! outer iteration to one k×k complex solve, where k is the number of
//! loops opened out of the spanning tree — single digits for realistic
//! feeders. Gaussian elimination with partial pivoting is exact enough
//! and allocation-light at that size; there is no need (and no appetite,
//! in a zero-dependency workspace) for a general LAPACK binding.

use crate::complex::Complex;

/// Why a dense solve failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinSolveError {
    /// The matrix is singular to working precision (no usable pivot).
    Singular {
        /// Elimination column at which no pivot above the threshold
        /// remained.
        column: usize,
    },
    /// The matrix or right-hand side contained NaN/±Inf entries.
    NonFinite,
}

impl std::fmt::Display for LinSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinSolveError::Singular { column } => {
                write!(f, "matrix is singular (no pivot in column {column})")
            }
            LinSolveError::NonFinite => write!(f, "matrix or rhs contains non-finite entries"),
        }
    }
}

impl std::error::Error for LinSolveError {}

/// Solves the dense complex system `A·x = b` in place.
///
/// `a` is a row-major `n×n` matrix (`a[r * n + c]`), `b` the
/// right-hand side; on success `b` holds the solution. Gaussian
/// elimination with partial (row) pivoting; both inputs are consumed as
/// scratch. `n == 0` is a valid empty system.
pub fn solve_dense(a: &mut [Complex], b: &mut [Complex], n: usize) -> Result<(), LinSolveError> {
    assert_eq!(a.len(), n * n, "matrix must be n×n row-major");
    assert_eq!(b.len(), n, "rhs must have n entries");
    if a.iter().any(|z| !z.is_finite()) || b.iter().any(|z| !z.is_finite()) {
        return Err(LinSolveError::NonFinite);
    }

    for col in 0..n {
        // Partial pivoting: the largest remaining |entry| in this column.
        let (pivot_row, pivot_mag) = (col..n)
            .map(|r| (r, a[r * n + col].abs()))
            .fold((col, -1.0), |best, cand| if cand.1 > best.1 { cand } else { best });
        if pivot_mag <= 0.0 || !pivot_mag.is_finite() {
            return Err(LinSolveError::Singular { column: col });
        }
        if pivot_row != col {
            for c in col..n {
                a.swap(pivot_row * n + c, col * n + c);
            }
            b.swap(pivot_row, col);
        }

        let pivot = a[col * n + col];
        for r in col + 1..n {
            let factor = a[r * n + col] / pivot;
            if factor == Complex::ZERO {
                continue;
            }
            a[r * n + col] = Complex::ZERO;
            for c in col + 1..n {
                let sub = factor * a[col * n + c];
                a[r * n + c] -= sub;
            }
            let sub = factor * b[col];
            b[r] -= sub;
        }
    }

    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col * n + c] * b[c];
        }
        b[col] = acc / a[col * n + col];
        if !b[col].is_finite() {
            return Err(LinSolveError::Singular { column: col });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c;

    fn residual(a: &[Complex], x: &[Complex], b: &[Complex], n: usize) -> f64 {
        (0..n)
            .map(|r| {
                let mut acc = Complex::ZERO;
                for col in 0..n {
                    acc += a[r * n + col] * x[col];
                }
                (acc - b[r]).abs()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_identity() {
        let mut a = vec![c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(1.0, 0.0)];
        let mut b = vec![c(3.0, -1.0), c(2.5, 4.0)];
        solve_dense(&mut a, &mut b, 2).unwrap();
        assert_eq!(b, vec![c(3.0, -1.0), c(2.5, 4.0)]);
    }

    #[test]
    fn solves_known_2x2_complex_system() {
        // A = [[1+i, 2], [3, 4-i]], x = [1-i, 2+i] → b = A·x.
        let a0 = vec![c(1.0, 1.0), c(2.0, 0.0), c(3.0, 0.0), c(4.0, -1.0)];
        let x0 = [c(1.0, -1.0), c(2.0, 1.0)];
        let mut b = vec![
            a0[0] * x0[0] + a0[1] * x0[1],
            a0[2] * x0[0] + a0[3] * x0[1],
        ];
        let mut a = a0.clone();
        solve_dense(&mut a, &mut b, 2).unwrap();
        for (got, want) in b.iter().zip(x0) {
            assert!((*got - want).abs() < 1e-12, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Without row swaps the first pivot is exactly zero.
        let a0 = vec![c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(1.0, 0.0)];
        let mut a = a0.clone();
        let b0 = vec![c(2.0, 0.0), c(5.0, 0.0)];
        let mut b = b0.clone();
        solve_dense(&mut a, &mut b, 2).unwrap();
        assert!(residual(&a0, &b, &b0, 2) < 1e-12);
    }

    #[test]
    fn random_like_systems_have_tiny_residual() {
        // Deterministic pseudo-random fill via a simple LCG.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in 1..=8 {
            let a0: Vec<Complex> = (0..n * n).map(|_| c(next(), next())).collect();
            let b0: Vec<Complex> = (0..n).map(|_| c(next(), next())).collect();
            let mut a = a0.clone();
            let mut b = b0.clone();
            solve_dense(&mut a, &mut b, n).unwrap();
            assert!(residual(&a0, &b, &b0, n) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn singular_matrix_is_reported_not_nan() {
        let mut a = vec![c(1.0, 0.0), c(2.0, 0.0), c(2.0, 0.0), c(4.0, 0.0)];
        let mut b = vec![c(1.0, 0.0), c(2.0, 0.0)];
        let err = solve_dense(&mut a, &mut b, 2).unwrap_err();
        assert!(matches!(err, LinSolveError::Singular { .. }), "{err:?}");
    }

    #[test]
    fn non_finite_inputs_rejected_up_front() {
        let mut a = vec![c(f64::NAN, 0.0)];
        let mut b = vec![c(1.0, 0.0)];
        assert_eq!(solve_dense(&mut a, &mut b, 1).unwrap_err(), LinSolveError::NonFinite);
        let mut a = vec![c(1.0, 0.0)];
        let mut b = vec![c(f64::INFINITY, 0.0)];
        assert_eq!(solve_dense(&mut a, &mut b, 1).unwrap_err(), LinSolveError::NonFinite);
    }

    #[test]
    fn empty_system_is_a_no_op() {
        let mut a: Vec<Complex> = vec![];
        let mut b: Vec<Complex> = vec![];
        assert_eq!(solve_dense(&mut a, &mut b, 0), Ok(()));
    }
}
