//! Property tests: complex arithmetic field axioms (up to rounding) and
//! three-phase algebra identities.

use check::gen::{f64_in, tuple2, tuple3, tuple4, Gen};
use check::{checker, prop_assert, prop_assert_eq, prop_assume, CaseResult};
use numc::{c, CMat3, CVec3, Complex};

fn finite_complex() -> Gen<Complex> {
    tuple2(f64_in(-1e6..1e6), f64_in(-1e6..1e6)).map(|(re, im)| c(re, im))
}

fn close(a: Complex, b: Complex, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn addition_commutes_and_associates() {
    checker("addition_commutes_and_associates").cases(64).run(
        tuple3(finite_complex(), finite_complex(), finite_complex()),
        |&(a, b, cc)| -> CaseResult {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(close((a + b) + cc, a + (b + cc), 1e-12));
            Ok(())
        },
    );
}

#[test]
fn multiplication_commutes_and_distributes() {
    checker("multiplication_commutes_and_distributes").cases(64).run(
        tuple3(finite_complex(), finite_complex(), finite_complex()),
        |&(a, b, cc)| -> CaseResult {
            prop_assert!(close(a * b, b * a, 1e-12));
            prop_assert!(close(a * (b + cc), a * b + a * cc, 1e-10));
            Ok(())
        },
    );
}

#[test]
fn division_inverts_multiplication() {
    checker("division_inverts_multiplication").cases(64).run(
        tuple2(finite_complex(), finite_complex()),
        |&(a, b)| -> CaseResult {
            prop_assume!(b.abs() > 1e-3);
            prop_assert!(close((a * b) / b, a, 1e-10));
            Ok(())
        },
    );
}

#[test]
fn conjugate_is_involutive_and_multiplicative() {
    checker("conjugate_is_involutive_and_multiplicative").cases(64).run(
        tuple2(finite_complex(), finite_complex()),
        |&(a, b)| -> CaseResult {
            prop_assert_eq!(a.conj().conj(), a);
            prop_assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-12));
            Ok(())
        },
    );
}

#[test]
fn magnitude_is_multiplicative() {
    checker("magnitude_is_multiplicative").cases(64).run(
        tuple2(finite_complex(), finite_complex()),
        |&(a, b)| -> CaseResult {
            let lhs = (a * b).abs();
            let rhs = a.abs() * b.abs();
            prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
            Ok(())
        },
    );
}

#[test]
fn polar_roundtrip() {
    checker("polar_roundtrip").cases(64).run(
        tuple2(f64_in(1e-3..1e6), f64_in(-3.1..3.1)),
        |&(mag, angle)| -> CaseResult {
            let z = Complex::from_polar(mag, angle);
            prop_assert!((z.abs() - mag).abs() < 1e-9 * mag);
            prop_assert!((z.arg() - angle).abs() < 1e-9);
            Ok(())
        },
    );
}

#[test]
fn matvec_is_linear() {
    checker("matvec_is_linear").cases(64).run(
        tuple4(finite_complex(), finite_complex(), finite_complex(), finite_complex()),
        |&(a, b, x, y)| -> CaseResult {
            let m = CMat3::coupled(a, b);
            let u = CVec3::splat(x);
            let v = CVec3::new(y, x, y);
            let lhs = m.mul_vec(u + v);
            let rhs = m.mul_vec(u) + m.mul_vec(v);
            for (p, q) in lhs.phases().iter().zip(rhs.phases()) {
                prop_assert!(close(*p, q, 1e-9));
            }
            Ok(())
        },
    );
}

#[test]
fn coupled_matrix_on_balanced_vector_stays_balanced() {
    checker("coupled_matrix_on_balanced_vector_stays_balanced").cases(64).run(
        tuple3(finite_complex(), finite_complex(), f64_in(1.0..1e5)),
        |&(zs, zm, mag)| -> CaseResult {
            // A transposition-symmetric matrix maps a balanced set to a
            // balanced set (the positive-sequence eigenvector property):
            // M·v = (z_self − z_mutual)·v for balanced v. Guard against
            // catastrophic cancellation when z_self ≈ z_mutual, where the
            // identity holds only to absolute (not relative) rounding.
            prop_assume!((zs - zm).abs() > 1e-6 * (zs.abs() + zm.abs() + 1.0));
            let m = CMat3::coupled(zs, zm);
            let v = CVec3::balanced(mag);
            let out = m.mul_vec(v);
            prop_assume!(out.abs_max() > 1e-6);
            prop_assert!(out.unbalance() < 1e-6, "unbalance {}", out.unbalance());
            Ok(())
        },
    );
}
