//! Property tests: complex arithmetic field axioms (up to rounding) and
//! three-phase algebra identities.

use numc::{c, CMat3, CVec3, Complex};
use proptest::prelude::*;

fn finite_complex() -> impl Strategy<Value = Complex> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(re, im)| c(re, im))
}

fn close(a: Complex, b: Complex, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes_and_associates(a in finite_complex(), b in finite_complex(), cc in finite_complex()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert!(close((a + b) + cc, a + (b + cc), 1e-12));
    }

    #[test]
    fn multiplication_commutes_and_distributes(a in finite_complex(), b in finite_complex(), cc in finite_complex()) {
        prop_assert!(close(a * b, b * a, 1e-12));
        prop_assert!(close(a * (b + cc), a * b + a * cc, 1e-10));
    }

    #[test]
    fn division_inverts_multiplication(a in finite_complex(), b in finite_complex()) {
        prop_assume!(b.abs() > 1e-3);
        prop_assert!(close((a * b) / b, a, 1e-10));
    }

    #[test]
    fn conjugate_is_involutive_and_multiplicative(a in finite_complex(), b in finite_complex()) {
        prop_assert_eq!(a.conj().conj(), a);
        prop_assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-12));
    }

    #[test]
    fn magnitude_is_multiplicative(a in finite_complex(), b in finite_complex()) {
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
    }

    #[test]
    fn polar_roundtrip(mag in 1e-3f64..1e6, angle in -3.1f64..3.1) {
        let z = Complex::from_polar(mag, angle);
        prop_assert!((z.abs() - mag).abs() < 1e-9 * mag);
        prop_assert!((z.arg() - angle).abs() < 1e-9);
    }

    #[test]
    fn matvec_is_linear(
        a in finite_complex(), b in finite_complex(),
        x in finite_complex(), y in finite_complex(),
    ) {
        let m = CMat3::coupled(a, b);
        let u = CVec3::splat(x);
        let v = CVec3::new(y, x, y);
        let lhs = m.mul_vec(u + v);
        let rhs = m.mul_vec(u) + m.mul_vec(v);
        for (p, q) in lhs.phases().iter().zip(rhs.phases()) {
            prop_assert!(close(*p, q, 1e-9));
        }
    }

    #[test]
    fn coupled_matrix_on_balanced_vector_stays_balanced(
        zs in finite_complex(), zm in finite_complex(), mag in 1.0f64..1e5,
    ) {
        // A transposition-symmetric matrix maps a balanced set to a
        // balanced set (the positive-sequence eigenvector property):
        // M·v = (z_self − z_mutual)·v for balanced v. Guard against
        // catastrophic cancellation when z_self ≈ z_mutual, where the
        // identity holds only to absolute (not relative) rounding.
        prop_assume!((zs - zm).abs() > 1e-6 * (zs.abs() + zm.abs() + 1.0));
        let m = CMat3::coupled(zs, zm);
        let v = CVec3::balanced(mag);
        let out = m.mul_vec(v);
        prop_assume!(out.abs_max() > 1e-6);
        prop_assert!(out.unbalance() < 1e-6, "unbalance {}", out.unbalance());
    }
}
