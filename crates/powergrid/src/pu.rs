//! The per-unit system.
//!
//! Power engineers normalise quantities to chosen bases — voltages to
//! `V_base`, powers to `S_base` — so that impedances and voltages land
//! near 1.0 regardless of the voltage class. The solvers in this
//! workspace are scale-invariant (everything is linear in the bases),
//! but per-unit form matters to downstream users: `.grid` files from
//! different feeders become comparable, and per-unit voltage limits
//! (e.g. ANSI C84.1's 0.95–1.05) read directly off the solution.

use numc::Complex;

use crate::network::{NetworkBuilder, RadialNetwork};

/// A per-unit base pair (single-phase convention: `v_base` is the
/// line-to-neutral voltage, `s_base` the per-phase power).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PuBase {
    /// Voltage base, volts.
    pub v_base: f64,
    /// Apparent-power base, volt-amperes.
    pub s_base: f64,
}

impl PuBase {
    /// Creates a base pair; both must be positive and finite.
    pub fn new(v_base: f64, s_base: f64) -> Self {
        assert!(v_base > 0.0 && v_base.is_finite(), "v_base must be positive");
        assert!(s_base > 0.0 && s_base.is_finite(), "s_base must be positive");
        PuBase { v_base, s_base }
    }

    /// The conventional distribution base for a network: its own source
    /// voltage and 1 MVA.
    pub fn for_network(net: &RadialNetwork) -> Self {
        PuBase::new(net.source_voltage().abs(), 1e6)
    }

    /// Impedance base `V²/S`, ohms.
    pub fn z_base(&self) -> f64 {
        self.v_base * self.v_base / self.s_base
    }

    /// Current base `S/V`, amperes.
    pub fn i_base(&self) -> f64 {
        self.s_base / self.v_base
    }

    /// Volts → per-unit.
    pub fn v_to_pu(&self, v: Complex) -> Complex {
        v / self.v_base
    }

    /// Per-unit → volts.
    pub fn v_from_pu(&self, v: Complex) -> Complex {
        v * self.v_base
    }

    /// VA → per-unit.
    pub fn s_to_pu(&self, s: Complex) -> Complex {
        s / self.s_base
    }

    /// Ohms → per-unit.
    pub fn z_to_pu(&self, z: Complex) -> Complex {
        z / self.z_base()
    }

    /// Amperes → per-unit.
    pub fn i_to_pu(&self, i: Complex) -> Complex {
        i / self.i_base()
    }
}

/// Returns the network re-expressed in per-unit on the given base: the
/// source voltage, loads and impedances are all normalised. Solving the
/// per-unit network yields per-unit voltages/currents directly.
pub fn to_per_unit(net: &RadialNetwork, base: PuBase) -> RadialNetwork {
    let mut b = NetworkBuilder::with_capacity(base.v_to_pu(net.source_voltage()), net.num_buses());
    for bus in net.buses() {
        b.add_bus(base.s_to_pu(bus.load));
    }
    for br in net.branches() {
        b.connect(br.from, br.to, base.z_to_pu(br.z));
    }
    b.build().expect("per-unit scaling preserves radiality")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::ieee13;
    use numc::c;

    #[test]
    fn base_derived_quantities() {
        let base = PuBase::new(2400.0, 1e6);
        assert!((base.z_base() - 5.76).abs() < 1e-12);
        assert!((base.i_base() - 416.666_666_666_666_7).abs() < 1e-9);
    }

    #[test]
    fn conversions_roundtrip() {
        let base = PuBase::new(7200.0, 2e6);
        let v = c(7000.0, -150.0);
        assert!((base.v_from_pu(base.v_to_pu(v)) - v).abs() < 1e-9);
        assert_eq!(base.v_to_pu(c(7200.0, 0.0)), c(1.0, 0.0));
        assert_eq!(base.s_to_pu(c(2e6, 0.0)), c(1.0, 0.0));
    }

    #[test]
    fn per_unit_network_has_unity_source() {
        let net = ieee13();
        let base = PuBase::for_network(&net);
        let pu = to_per_unit(&net, base);
        assert!((pu.source_voltage() - c(1.0, 0.0)).abs() < 1e-12);
        assert_eq!(pu.num_buses(), net.num_buses());
        // Total load in pu × S_base recovers the SI total.
        let si = net.total_load();
        let back = pu.total_load() * base.s_base;
        assert!((si - back).abs() < 1e-6 * si.abs());
    }

    #[test]
    #[should_panic(expected = "v_base must be positive")]
    fn zero_base_rejected() {
        PuBase::new(0.0, 1e6);
    }
}
