//! The `.grid` text format — a minimal, dependency-free serialization of
//! radial and weakly-meshed networks for the CLI and examples.
//!
//! ```text
//! # comment
//! grid 1
//! source 7200 0
//! bus 0 0 0
//! bus 1 50000 20000
//! branch 0 1 0.10 0.06
//! tie 1 0 0.20 0.12 open
//! gen 1 40000 7100 -30000 30000
//! ```
//!
//! * `grid <version>` — header, version 1.
//! * `source <re> <im>` — slack voltage, volts.
//! * `bus <id> <p_watts> <q_vars>` — ids must be dense `0..n` (any order).
//! * `branch <from> <to> <r_ohms> <x_ohms>`.
//! * `tie <from> <to> <r_ohms> <x_ohms> [open|closed]` — a tie switch
//!   (default `closed`); closed ties may form loops.
//! * `gen <bus> <p_watts> <v_set_volts> <q_min_vars> <q_max_vars>` — a
//!   PV-bus generator record.
//!
//! Blank lines and `#` comments are ignored. [`parse_grid`] reads
//! strictly radial files (no `tie`/`gen` records) and validates through
//! [`NetworkBuilder::build`]; [`parse_grid_meshed`] additionally accepts
//! tie switches and generators and validates through
//! [`MeshedNetworkBuilder::build`], so a parsed file is always a
//! well-formed network either way.

use std::fmt::Write as _;

use numc::{c, Complex};

use crate::mesh::{MeshError, MeshedNetwork, MeshedNetworkBuilder, PvBus};
use crate::network::{NetworkBuilder, NetworkError, RadialNetwork};

/// Why parsing failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Missing or malformed `grid` header.
    BadHeader,
    /// Unsupported format version.
    BadVersion(String),
    /// A line could not be parsed; carries (1-based line number, reason).
    BadLine(usize, String),
    /// Bus ids were not dense `0..n`.
    SparseBusIds,
    /// No `source` line.
    MissingSource,
    /// A numeric field parsed but is NaN or infinite (1-based line
    /// number). `f64::from_str` happily accepts `NaN` and `inf`, which
    /// would otherwise poison every downstream sweep.
    NonFinite(usize),
    /// A branch or tie connects a bus to itself (1-based line number).
    SelfLoop(usize),
    /// The same pair of buses is connected twice (1-based line number
    /// of the second occurrence), in either orientation.
    DuplicateEdge(usize),
    /// A tie switch duplicates an existing branch or tie (1-based line
    /// number of the tie), in either orientation.
    TieDuplicatesEdge(usize),
    /// Two `gen` records name the same bus (1-based line number of the
    /// second).
    DuplicateGenerator(usize),
    /// A generator's reactive limits are inverted, `q_min > q_max`
    /// (1-based line number).
    BadQLimits(usize),
    /// The file contains `tie`/`gen` records, which the strictly radial
    /// reader ([`parse_grid`]) cannot represent — use
    /// [`parse_grid_meshed`].
    MeshedGrid,
    /// The parsed network failed radiality validation.
    Invalid(NetworkError),
    /// The parsed network failed meshed validation (bad generator bus,
    /// disconnected component, ...).
    InvalidMesh(MeshError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing `grid <version>` header"),
            ParseError::BadVersion(v) => write!(f, "unsupported grid version {v}"),
            ParseError::BadLine(n, why) => write!(f, "line {n}: {why}"),
            ParseError::SparseBusIds => write!(f, "bus ids must be dense 0..n"),
            ParseError::MissingSource => write!(f, "missing `source` line"),
            ParseError::NonFinite(n) => write!(f, "line {n}: numbers must be finite"),
            ParseError::SelfLoop(n) => write!(f, "line {n}: edge connects a bus to itself"),
            ParseError::DuplicateEdge(n) => write!(f, "line {n}: duplicate branch"),
            ParseError::TieDuplicatesEdge(n) => {
                write!(f, "line {n}: tie switch duplicates an existing edge")
            }
            ParseError::DuplicateGenerator(n) => {
                write!(f, "line {n}: bus already has a generator")
            }
            ParseError::BadQLimits(n) => write!(f, "line {n}: generator has q_min > q_max"),
            ParseError::MeshedGrid => {
                write!(f, "file has tie/gen records; use the meshed reader")
            }
            ParseError::Invalid(e) => write!(f, "invalid network: {e}"),
            ParseError::InvalidMesh(e) => write!(f, "invalid meshed network: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialises a radial network to `.grid` text.
pub fn write_grid(net: &RadialNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# radial distribution network ({} buses)", net.num_buses());
    let _ = writeln!(out, "grid 1");
    let v = net.source_voltage();
    let _ = writeln!(out, "source {} {}", v.re, v.im);
    for (i, bus) in net.buses().iter().enumerate() {
        let _ = writeln!(out, "bus {i} {} {}", bus.load.re, bus.load.im);
    }
    for br in net.branches() {
        let _ = writeln!(out, "branch {} {} {} {}", br.from, br.to, br.z.re, br.z.im);
    }
    out
}

/// Serialises a meshed network to `.grid` text: the spanning tree as
/// `branch` records, each break point as a closed `tie`, open ties
/// verbatim, and the generator records.
pub fn write_grid_meshed(net: &MeshedNetwork) -> String {
    let tree = net.tree();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# weakly-meshed distribution network ({} buses, {} loops, {} generators)",
        tree.num_buses(),
        net.num_loops(),
        net.generators().len()
    );
    let _ = writeln!(out, "grid 1");
    let v = tree.source_voltage();
    let _ = writeln!(out, "source {} {}", v.re, v.im);
    for (i, bus) in tree.buses().iter().enumerate() {
        let _ = writeln!(out, "bus {i} {} {}", bus.load.re, bus.load.im);
    }
    for br in tree.branches() {
        let _ = writeln!(out, "branch {} {} {} {}", br.from, br.to, br.z.re, br.z.im);
    }
    for bp in net.break_points() {
        let _ = writeln!(out, "tie {} {} {} {} closed", bp.a, bp.b, bp.z.re, bp.z.im);
    }
    for t in net.ties().iter().filter(|t| !t.closed) {
        let _ = writeln!(out, "tie {} {} {} {} open", t.from, t.to, t.z.re, t.z.im);
    }
    for g in net.generators() {
        let _ = writeln!(out, "gen {} {} {} {} {}", g.bus, g.p_gen, g.v_set, g.q_min, g.q_max);
    }
    out
}

/// Everything a `.grid` file can carry, scanned with line-level
/// validation but not yet graph-validated.
struct RawGrid {
    source: Complex,
    /// Loads by (dense) bus id.
    loads: Vec<Complex>,
    branches: Vec<(usize, usize, Complex)>,
    /// (from, to, z, closed).
    ties: Vec<(usize, usize, Complex, bool)>,
    gens: Vec<PvBus>,
}

fn parse_records(text: &str) -> Result<RawGrid, ParseError> {
    let mut source = None;
    let mut buses: Vec<(usize, f64, f64)> = Vec::new();
    let mut branches: Vec<(usize, usize, Complex)> = Vec::new();
    let mut ties: Vec<(usize, usize, Complex, bool)> = Vec::new();
    let mut gens: Vec<PvBus> = Vec::new();
    let mut edges: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut gen_buses: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut saw_header = false;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        let kind = tok.next().expect("non-empty line has a token");
        let bad = |why: &str| ParseError::BadLine(ln + 1, why.to_string());

        match kind {
            "grid" => {
                let ver = tok.next().ok_or(ParseError::BadHeader)?;
                if ver != "1" {
                    return Err(ParseError::BadVersion(ver.to_string()));
                }
                saw_header = true;
            }
            "source" => {
                let re: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let im: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[re, im], ln)?;
                source = Some(c(re, im));
            }
            "bus" => {
                let id: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let p: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let q: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[p, q], ln)?;
                buses.push((id, p, q));
            }
            "branch" => {
                let from: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let to: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let r: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let x: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[r, x], ln)?;
                if from == to {
                    return Err(ParseError::SelfLoop(ln + 1));
                }
                if !edges.insert((from.min(to), from.max(to))) {
                    return Err(ParseError::DuplicateEdge(ln + 1));
                }
                branches.push((from, to, c(r, x)));
            }
            "tie" => {
                let from: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let to: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let r: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let x: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[r, x], ln)?;
                let closed = match tok.next() {
                    None | Some("closed") => true,
                    Some("open") => false,
                    Some(other) => {
                        return Err(bad(&format!("tie state must be open|closed, got `{other}`")))
                    }
                };
                if from == to {
                    return Err(ParseError::SelfLoop(ln + 1));
                }
                if !edges.insert((from.min(to), from.max(to))) {
                    return Err(ParseError::TieDuplicatesEdge(ln + 1));
                }
                ties.push((from, to, c(r, x), closed));
            }
            "gen" => {
                let bus: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let p_gen: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let v_set: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let q_min: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let q_max: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[p_gen, v_set, q_min, q_max], ln)?;
                if q_min > q_max {
                    return Err(ParseError::BadQLimits(ln + 1));
                }
                if !gen_buses.insert(bus) {
                    return Err(ParseError::DuplicateGenerator(ln + 1));
                }
                gens.push(PvBus { bus, p_gen, v_set, q_min, q_max });
            }
            other => return Err(bad(&format!("unknown directive `{other}`"))),
        }
        if tok.next().is_some() {
            return Err(bad("trailing tokens"));
        }
    }

    if !saw_header {
        return Err(ParseError::BadHeader);
    }
    let source = source.ok_or(ParseError::MissingSource)?;

    // Bus ids must be dense 0..n (order in the file is free).
    let n = buses.len();
    let mut loads = vec![None; n];
    for (id, p, q) in buses {
        if id >= n || loads[id].is_some() {
            return Err(ParseError::SparseBusIds);
        }
        loads[id] = Some(c(p, q));
    }
    let loads = loads.into_iter().map(|l| l.expect("dense check guarantees presence")).collect();

    Ok(RawGrid { source, loads, branches, ties, gens })
}

/// Parses `.grid` text into a validated radial network. Files carrying
/// `tie`/`gen` records are rejected with [`ParseError::MeshedGrid`] —
/// callers that can handle them use [`parse_grid_meshed`].
pub fn parse_grid(text: &str) -> Result<RadialNetwork, ParseError> {
    let raw = parse_records(text)?;
    if !raw.ties.is_empty() || !raw.gens.is_empty() {
        return Err(ParseError::MeshedGrid);
    }
    let mut b = NetworkBuilder::with_capacity(raw.source, raw.loads.len());
    for load in raw.loads {
        b.add_bus(load);
    }
    for (from, to, z) in raw.branches {
        b.connect(from, to, z);
    }
    b.build().map_err(ParseError::Invalid)
}

/// Parses `.grid` text into a validated meshed network. A strictly
/// radial file (no `tie`/`gen` records, branches forming a tree) parses
/// into a [`MeshedNetwork`] that [`MeshedNetwork::is_plain_radial`],
/// whose spanning tree is branch-for-branch the [`parse_grid`] result.
pub fn parse_grid_meshed(text: &str) -> Result<MeshedNetwork, ParseError> {
    let raw = parse_records(text)?;
    // Surplus branch records (loops among `branch` lines) are *not*
    // silently opened: a radial section that declares a loop is a data
    // error, and `tie` is the record that says "this edge closes a
    // loop". Detect it through the same branch-count arithmetic the
    // radial reader uses.
    let n = raw.loads.len();
    if n > 0 && raw.branches.len() != n - 1 {
        return Err(ParseError::Invalid(NetworkError::WrongBranchCount {
            got: raw.branches.len(),
            want: n - 1,
        }));
    }
    let mut b = MeshedNetworkBuilder::new(raw.source);
    for load in raw.loads {
        b.add_bus(load);
    }
    for (from, to, z) in raw.branches {
        b.connect(from, to, z);
    }
    for (from, to, z, closed) in raw.ties {
        b.tie(from, to, z, closed);
    }
    for g in raw.gens {
        b.generator(g);
    }
    b.build().map_err(|e| match e {
        MeshError::Network(ne) => ParseError::Invalid(ne),
        other => ParseError::InvalidMesh(other),
    })
}

fn parse_tok<T: std::str::FromStr>(tok: &mut std::str::SplitAsciiWhitespace<'_>) -> Result<T, String> {
    let s = tok.next().ok_or_else(|| "missing field".to_string())?;
    s.parse().map_err(|_| format!("cannot parse `{s}`"))
}

/// Rejects NaN/infinite numeric fields on line `ln` (0-based).
pub(crate) fn finite(vals: &[f64], ln: usize) -> Result<(), ParseError> {
    if vals.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(ParseError::NonFinite(ln + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{balanced_binary, GenSpec};
    use crate::ieee::{ieee123_dg, ieee13};
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn roundtrip_small_network() {
        let net = ieee13();
        let text = write_grid(&net);
        let back = parse_grid(&text).unwrap();
        assert_eq!(back.num_buses(), net.num_buses());
        assert_eq!(back.source_voltage(), net.source_voltage());
        for (a, b) in back.buses().iter().zip(net.buses()) {
            assert_eq!(a, b);
        }
        for (a, b) in back.branches().iter().zip(net.branches()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_generated_network() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = balanced_binary(257, &GenSpec::default(), &mut rng);
        let back = parse_grid(&write_grid(&net)).unwrap();
        assert_eq!(back.num_buses(), 257);
        assert_eq!(back.total_load(), net.total_load());
    }

    #[test]
    fn roundtrip_meshed_network() {
        let net = ieee123_dg();
        let text = write_grid_meshed(&net);
        let back = parse_grid_meshed(&text).unwrap();
        assert_eq!(back.tree().num_buses(), net.tree().num_buses());
        assert_eq!(back.num_loops(), net.num_loops());
        assert_eq!(back.break_points(), net.break_points());
        assert_eq!(back.generators(), net.generators());
        for (a, b) in back.tree().branches().iter().zip(net.tree().branches()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn meshed_reader_accepts_plain_radial_files_identically() {
        let net = ieee13();
        let text = write_grid(&net);
        let mesh = parse_grid_meshed(&text).unwrap();
        assert!(mesh.is_plain_radial());
        for (a, b) in mesh.tree().branches().iter().zip(net.branches()) {
            assert_eq!(a, b, "spanning tree preserves the file's branch order");
        }
    }

    #[test]
    fn radial_reader_rejects_meshed_records() {
        let tie = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 0 1 1 0\ntie 0 1 1 0 open\n";
        assert_eq!(parse_grid(tie).unwrap_err(), ParseError::TieDuplicatesEdge(6));
        let tie = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbus 2 0 0\nbranch 0 1 1 0\nbranch 1 2 1 0\ntie 2 0 1 0\n";
        assert_eq!(parse_grid(tie).unwrap_err(), ParseError::MeshedGrid);
        let gen = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 0 1 1 0\ngen 1 100 1 -5 5\n";
        assert_eq!(parse_grid(gen).unwrap_err(), ParseError::MeshedGrid);
    }

    #[test]
    fn parses_comments_blanks_and_any_order() {
        let text = "\n# header comment\ngrid 1\nbus 1 100 50 # inline\n\nsource 240 0\nbus 0 0 0\nbranch 0 1 0.5 0.25\n";
        let net = parse_grid(text).unwrap();
        assert_eq!(net.num_buses(), 2);
        assert_eq!(net.buses()[1].load, c(100.0, 50.0));
        assert_eq!(net.source_voltage(), c(240.0, 0.0));
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse_grid("source 1 0\nbus 0 0 0\n").unwrap_err(), ParseError::BadHeader);
    }

    #[test]
    fn wrong_version_rejected() {
        assert_eq!(
            parse_grid("grid 2\nsource 1 0\nbus 0 0 0\n").unwrap_err(),
            ParseError::BadVersion("2".into())
        );
    }

    #[test]
    fn missing_source_rejected() {
        assert_eq!(parse_grid("grid 1\nbus 0 0 0\n").unwrap_err(), ParseError::MissingSource);
    }

    #[test]
    fn bad_numbers_carry_line_info() {
        let err = parse_grid("grid 1\nsource 1 0\nbus 0 oops 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(3, _)), "{err:?}");
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse_grid("grid 1\nsource 1 0\nbus 0 0 0\ncapacitor 0 5\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(4, _)));
    }

    #[test]
    fn sparse_and_duplicate_ids_rejected() {
        let sparse = "grid 1\nsource 1 0\nbus 0 0 0\nbus 5 0 0\nbranch 0 5 1 0\n";
        assert_eq!(parse_grid(sparse).unwrap_err(), ParseError::SparseBusIds);
        let dup = "grid 1\nsource 1 0\nbus 0 0 0\nbus 0 0 0\nbranch 0 1 1 0\n";
        assert_eq!(parse_grid(dup).unwrap_err(), ParseError::SparseBusIds);
    }

    #[test]
    fn invalid_topology_surfaces_network_error() {
        let cyclic = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbus 2 0 0\nbranch 0 1 1 0\nbranch 1 2 1 0\nbranch 2 0 1 0\n";
        let err = parse_grid(cyclic).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)), "{err:?}");
        // The meshed reader agrees: loops must be declared as ties.
        let err = parse_grid_meshed(cyclic).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn non_finite_numbers_rejected() {
        // `f64::from_str` accepts all of these spellings; the parser
        // must not let them into a network.
        for field in ["NaN", "inf", "-inf", "Infinity"] {
            let text = format!("grid 1\nsource 1 0\nbus 0 {field} 0\nbus 1 0 0\nbranch 0 1 1 0\n");
            assert_eq!(parse_grid(&text).unwrap_err(), ParseError::NonFinite(3), "{field}");
        }
        let z = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 0 1 NaN 0\n";
        assert_eq!(parse_grid(z).unwrap_err(), ParseError::NonFinite(5));
        let s = "grid 1\nsource inf 0\nbus 0 0 0\n";
        assert_eq!(parse_grid(s).unwrap_err(), ParseError::NonFinite(2));
    }

    #[test]
    fn self_loops_and_duplicate_edges_rejected() {
        let loop_ = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 1 1 1 0\n";
        assert_eq!(parse_grid(loop_).unwrap_err(), ParseError::SelfLoop(5));
        // The reversed orientation is the same edge.
        let dup = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 0 1 1 0\nbranch 1 0 2 0\n";
        assert_eq!(parse_grid(dup).unwrap_err(), ParseError::DuplicateEdge(6));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse_grid("grid 1\nsource 1 0 extra\nbus 0 0 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
    }

    // ---- meshed record hardening -------------------------------------

    /// A valid 4-bus meshed prologue to append records to.
    const MESH4: &str = "grid 1\nsource 2400 0\nbus 0 0 0\nbus 1 1000 300\nbus 2 1000 300\nbus 3 1000 300\nbranch 0 1 0.1 0.05\nbranch 1 2 0.1 0.05\nbranch 2 3 0.1 0.05\n";

    #[test]
    fn meshed_records_parse() {
        let text = format!("{MESH4}tie 0 3 0.2 0.1 closed\ntie 1 3 0.3 0.1 open\ngen 2 5000 2380 -3000 3000\n");
        let net = parse_grid_meshed(&text).unwrap();
        assert_eq!(net.num_loops(), 1);
        assert_eq!(net.ties().len(), 2);
        assert_eq!(net.generators().len(), 1);
        assert_eq!(net.generators()[0].v_set, 2380.0);
    }

    #[test]
    fn duplicate_generator_rejected_with_line() {
        let text = format!("{MESH4}gen 2 5000 2380 -3000 3000\ngen 2 1000 2390 -1000 1000\n");
        assert_eq!(parse_grid_meshed(&text).unwrap_err(), ParseError::DuplicateGenerator(11));
    }

    #[test]
    fn tie_duplicating_tree_edge_rejected_with_line() {
        let text = format!("{MESH4}tie 2 1 0.2 0.1\n");
        assert_eq!(parse_grid_meshed(&text).unwrap_err(), ParseError::TieDuplicatesEdge(10));
        // Two ties over the same pair collide too.
        let text = format!("{MESH4}tie 0 3 0.2 0.1\ntie 3 0 0.2 0.1 open\n");
        assert_eq!(parse_grid_meshed(&text).unwrap_err(), ParseError::TieDuplicatesEdge(11));
    }

    #[test]
    fn inverted_q_limits_rejected_with_line() {
        let text = format!("{MESH4}gen 2 5000 2380 3000 -3000\n");
        assert_eq!(parse_grid_meshed(&text).unwrap_err(), ParseError::BadQLimits(10));
    }

    #[test]
    fn nan_set_points_rejected_with_line() {
        for field in ["NaN", "inf", "-inf"] {
            let text = format!("{MESH4}gen 2 5000 {field} -3000 3000\n");
            assert_eq!(
                parse_grid_meshed(&text).unwrap_err(),
                ParseError::NonFinite(10),
                "{field}"
            );
        }
        let text = format!("{MESH4}tie 0 3 NaN 0.1\n");
        assert_eq!(parse_grid_meshed(&text).unwrap_err(), ParseError::NonFinite(10));
    }

    #[test]
    fn bad_tie_state_and_self_loop_rejected() {
        let text = format!("{MESH4}tie 0 3 0.2 0.1 ajar\n");
        assert!(matches!(parse_grid_meshed(&text).unwrap_err(), ParseError::BadLine(10, _)));
        let text = format!("{MESH4}tie 3 3 0.2 0.1\n");
        assert_eq!(parse_grid_meshed(&text).unwrap_err(), ParseError::SelfLoop(10));
    }

    #[test]
    fn mesh_validation_errors_surface() {
        let text = format!("{MESH4}gen 9 5000 2380 -3000 3000\n");
        assert_eq!(
            parse_grid_meshed(&text).unwrap_err(),
            ParseError::InvalidMesh(MeshError::GeneratorBusOutOfRange(9))
        );
        let text = format!("{MESH4}gen 2 -5000 2380 -3000 3000\n");
        assert_eq!(
            parse_grid_meshed(&text).unwrap_err(),
            ParseError::InvalidMesh(MeshError::BadGenerator(2))
        );
    }
}
