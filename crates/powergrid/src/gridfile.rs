//! The `.grid` text format — a minimal, dependency-free serialization of
//! radial networks for the CLI and examples.
//!
//! ```text
//! # comment
//! grid 1
//! source 7200 0
//! bus 0 0 0
//! bus 1 50000 20000
//! branch 0 1 0.10 0.06
//! ```
//!
//! * `grid <version>` — header, version 1.
//! * `source <re> <im>` — slack voltage, volts.
//! * `bus <id> <p_watts> <q_vars>` — ids must be dense `0..n` (any order).
//! * `branch <from> <to> <r_ohms> <x_ohms>`.
//!
//! Blank lines and `#` comments are ignored. The reader validates through
//! [`NetworkBuilder::build`], so a parsed file is always a well-formed
//! radial network.

use std::fmt::Write as _;

use numc::c;

use crate::network::{NetworkBuilder, NetworkError, RadialNetwork};

/// Why parsing failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Missing or malformed `grid` header.
    BadHeader,
    /// Unsupported format version.
    BadVersion(String),
    /// A line could not be parsed; carries (1-based line number, reason).
    BadLine(usize, String),
    /// Bus ids were not dense `0..n`.
    SparseBusIds,
    /// No `source` line.
    MissingSource,
    /// A numeric field parsed but is NaN or infinite (1-based line
    /// number). `f64::from_str` happily accepts `NaN` and `inf`, which
    /// would otherwise poison every downstream sweep.
    NonFinite(usize),
    /// A branch connects a bus to itself (1-based line number).
    SelfLoop(usize),
    /// The same pair of buses is connected twice (1-based line number
    /// of the second occurrence), in either orientation.
    DuplicateEdge(usize),
    /// The parsed network failed radiality validation.
    Invalid(NetworkError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing `grid <version>` header"),
            ParseError::BadVersion(v) => write!(f, "unsupported grid version {v}"),
            ParseError::BadLine(n, why) => write!(f, "line {n}: {why}"),
            ParseError::SparseBusIds => write!(f, "bus ids must be dense 0..n"),
            ParseError::MissingSource => write!(f, "missing `source` line"),
            ParseError::NonFinite(n) => write!(f, "line {n}: numbers must be finite"),
            ParseError::SelfLoop(n) => write!(f, "line {n}: branch connects a bus to itself"),
            ParseError::DuplicateEdge(n) => write!(f, "line {n}: duplicate branch"),
            ParseError::Invalid(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialises a network to `.grid` text.
pub fn write_grid(net: &RadialNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# radial distribution network ({} buses)", net.num_buses());
    let _ = writeln!(out, "grid 1");
    let v = net.source_voltage();
    let _ = writeln!(out, "source {} {}", v.re, v.im);
    for (i, bus) in net.buses().iter().enumerate() {
        let _ = writeln!(out, "bus {i} {} {}", bus.load.re, bus.load.im);
    }
    for br in net.branches() {
        let _ = writeln!(out, "branch {} {} {} {}", br.from, br.to, br.z.re, br.z.im);
    }
    out
}

/// Parses `.grid` text into a validated network.
pub fn parse_grid(text: &str) -> Result<RadialNetwork, ParseError> {
    let mut source = None;
    let mut buses: Vec<(usize, f64, f64)> = Vec::new();
    let mut branches: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut edges: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut saw_header = false;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        let kind = tok.next().expect("non-empty line has a token");
        let bad = |why: &str| ParseError::BadLine(ln + 1, why.to_string());

        match kind {
            "grid" => {
                let ver = tok.next().ok_or(ParseError::BadHeader)?;
                if ver != "1" {
                    return Err(ParseError::BadVersion(ver.to_string()));
                }
                saw_header = true;
            }
            "source" => {
                let re: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let im: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[re, im], ln)?;
                source = Some(c(re, im));
            }
            "bus" => {
                let id: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let p: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let q: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[p, q], ln)?;
                buses.push((id, p, q));
            }
            "branch" => {
                let from: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let to: usize = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let r: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                let x: f64 = parse_tok(&mut tok).map_err(|w| bad(&w))?;
                finite(&[r, x], ln)?;
                if from == to {
                    return Err(ParseError::SelfLoop(ln + 1));
                }
                if !edges.insert((from.min(to), from.max(to))) {
                    return Err(ParseError::DuplicateEdge(ln + 1));
                }
                branches.push((from, to, r, x));
            }
            other => return Err(bad(&format!("unknown directive `{other}`"))),
        }
        if tok.next().is_some() {
            return Err(bad("trailing tokens"));
        }
    }

    if !saw_header {
        return Err(ParseError::BadHeader);
    }
    let source = source.ok_or(ParseError::MissingSource)?;

    // Bus ids must be dense 0..n (order in the file is free).
    let n = buses.len();
    let mut loads = vec![None; n];
    for (id, p, q) in buses {
        if id >= n || loads[id].is_some() {
            return Err(ParseError::SparseBusIds);
        }
        loads[id] = Some(c(p, q));
    }

    let mut b = NetworkBuilder::with_capacity(source, n);
    for load in loads {
        b.add_bus(load.expect("dense check guarantees presence"));
    }
    for (from, to, r, x) in branches {
        b.connect(from, to, c(r, x));
    }
    b.build().map_err(ParseError::Invalid)
}

fn parse_tok<T: std::str::FromStr>(tok: &mut std::str::SplitAsciiWhitespace<'_>) -> Result<T, String> {
    let s = tok.next().ok_or_else(|| "missing field".to_string())?;
    s.parse().map_err(|_| format!("cannot parse `{s}`"))
}

/// Rejects NaN/infinite numeric fields on line `ln` (0-based).
pub(crate) fn finite(vals: &[f64], ln: usize) -> Result<(), ParseError> {
    if vals.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(ParseError::NonFinite(ln + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{balanced_binary, GenSpec};
    use crate::ieee::ieee13;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn roundtrip_small_network() {
        let net = ieee13();
        let text = write_grid(&net);
        let back = parse_grid(&text).unwrap();
        assert_eq!(back.num_buses(), net.num_buses());
        assert_eq!(back.source_voltage(), net.source_voltage());
        for (a, b) in back.buses().iter().zip(net.buses()) {
            assert_eq!(a, b);
        }
        for (a, b) in back.branches().iter().zip(net.branches()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_generated_network() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = balanced_binary(257, &GenSpec::default(), &mut rng);
        let back = parse_grid(&write_grid(&net)).unwrap();
        assert_eq!(back.num_buses(), 257);
        assert_eq!(back.total_load(), net.total_load());
    }

    #[test]
    fn parses_comments_blanks_and_any_order() {
        let text = "\n# header comment\ngrid 1\nbus 1 100 50 # inline\n\nsource 240 0\nbus 0 0 0\nbranch 0 1 0.5 0.25\n";
        let net = parse_grid(text).unwrap();
        assert_eq!(net.num_buses(), 2);
        assert_eq!(net.buses()[1].load, c(100.0, 50.0));
        assert_eq!(net.source_voltage(), c(240.0, 0.0));
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse_grid("source 1 0\nbus 0 0 0\n").unwrap_err(), ParseError::BadHeader);
    }

    #[test]
    fn wrong_version_rejected() {
        assert_eq!(
            parse_grid("grid 2\nsource 1 0\nbus 0 0 0\n").unwrap_err(),
            ParseError::BadVersion("2".into())
        );
    }

    #[test]
    fn missing_source_rejected() {
        assert_eq!(parse_grid("grid 1\nbus 0 0 0\n").unwrap_err(), ParseError::MissingSource);
    }

    #[test]
    fn bad_numbers_carry_line_info() {
        let err = parse_grid("grid 1\nsource 1 0\nbus 0 oops 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(3, _)), "{err:?}");
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse_grid("grid 1\nsource 1 0\nbus 0 0 0\ncapacitor 0 5\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(4, _)));
    }

    #[test]
    fn sparse_and_duplicate_ids_rejected() {
        let sparse = "grid 1\nsource 1 0\nbus 0 0 0\nbus 5 0 0\nbranch 0 5 1 0\n";
        assert_eq!(parse_grid(sparse).unwrap_err(), ParseError::SparseBusIds);
        let dup = "grid 1\nsource 1 0\nbus 0 0 0\nbus 0 0 0\nbranch 0 1 1 0\n";
        assert_eq!(parse_grid(dup).unwrap_err(), ParseError::SparseBusIds);
    }

    #[test]
    fn invalid_topology_surfaces_network_error() {
        let cyclic = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbus 2 0 0\nbranch 0 1 1 0\nbranch 1 2 1 0\nbranch 2 0 1 0\n";
        let err = parse_grid(cyclic).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn non_finite_numbers_rejected() {
        // `f64::from_str` accepts all of these spellings; the parser
        // must not let them into a network.
        for field in ["NaN", "inf", "-inf", "Infinity"] {
            let text = format!("grid 1\nsource 1 0\nbus 0 {field} 0\nbus 1 0 0\nbranch 0 1 1 0\n");
            assert_eq!(parse_grid(&text).unwrap_err(), ParseError::NonFinite(3), "{field}");
        }
        let z = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 0 1 NaN 0\n";
        assert_eq!(parse_grid(z).unwrap_err(), ParseError::NonFinite(5));
        let s = "grid 1\nsource inf 0\nbus 0 0 0\n";
        assert_eq!(parse_grid(s).unwrap_err(), ParseError::NonFinite(2));
    }

    #[test]
    fn self_loops_and_duplicate_edges_rejected() {
        let loop_ = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 1 1 1 0\n";
        assert_eq!(parse_grid(loop_).unwrap_err(), ParseError::SelfLoop(5));
        // The reversed orientation is the same edge.
        let dup = "grid 1\nsource 1 0\nbus 0 0 0\nbus 1 0 0\nbranch 0 1 1 0\nbranch 1 0 2 0\n";
        assert_eq!(parse_grid(dup).unwrap_err(), ParseError::DuplicateEdge(6));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse_grid("grid 1\nsource 1 0 extra\nbus 0 0 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
    }
}
