//! Unbalanced three-phase radial networks.
//!
//! Real distribution feeders are unbalanced: loads differ per phase and
//! line sections couple the phases through their mutual impedances. The
//! IEEE test feeders this workspace approximates in [`crate::ieee`] are
//! published as three-phase systems; this module carries the full model:
//!
//! * a bus load is a per-phase triple [`CVec3`] (VA per phase),
//! * a branch is a 3×3 phase impedance matrix [`CMat3`] (ohms), whose
//!   off-diagonals are the Carson mutual terms,
//! * the slack voltage is a (usually balanced) three-phase set.
//!
//! Topology layout (levels, preorder) is shared with the single-phase
//! model through [`LevelOrder::from_edges`] / [`crate::DfsOrder::from_edges`] —
//! the tree doesn't care how wide the per-bus payload is.

use numc::{CMat3, CVec3};

use crate::levels::LevelOrder;
use crate::mesh::PvBus;
use crate::network::NetworkError;

/// A three-phase bus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bus3 {
    /// Per-phase constant-power load, VA.
    pub load: CVec3,
}

/// A three-phase branch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Branch3 {
    /// Upstream bus id.
    pub from: usize,
    /// Downstream bus id.
    pub to: usize,
    /// Phase impedance matrix, ohms.
    pub z: CMat3,
}

/// A validated three-phase radial network.
#[derive(Clone, Debug)]
pub struct ThreePhaseNetwork {
    source_voltage: CVec3,
    buses: Vec<Bus3>,
    branches: Vec<Branch3>,
    parent_branch: Vec<usize>,
    root: usize,
    gens: Vec<PvBus>,
}

impl ThreePhaseNetwork {
    /// Number of buses.
    pub fn num_buses(&self) -> usize {
        self.buses.len()
    }

    /// Number of branches.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// The substation bus id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Slack three-phase voltage set, volts.
    pub fn source_voltage(&self) -> CVec3 {
        self.source_voltage
    }

    /// All buses.
    pub fn buses(&self) -> &[Bus3] {
        &self.buses
    }

    /// All branches.
    pub fn branches(&self) -> &[Branch3] {
        &self.branches
    }

    /// The branch feeding bus `b`, or `None` at the root.
    pub fn parent_branch(&self, b: usize) -> Option<&Branch3> {
        let idx = self.parent_branch[b];
        (idx != usize::MAX).then(|| &self.branches[idx])
    }

    /// Parent bus of `b`.
    pub fn parent(&self, b: usize) -> Option<usize> {
        self.parent_branch(b).map(|br| br.from)
    }

    /// Total connected per-phase load, VA.
    pub fn total_load(&self) -> CVec3 {
        self.buses.iter().fold(CVec3::ZERO, |acc, b| acc + b.load)
    }

    /// Scales every load by `scale` (loading sweeps).
    pub fn scale_loads(&mut self, scale: f64) {
        for b in &mut self.buses {
            b.load = b.load * scale;
        }
    }

    /// Edge list for the shared layout builders.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        self.branches.iter().map(|br| (br.from as u32, br.to as u32)).collect()
    }

    /// BFS level order of this network (shared layout machinery).
    pub fn level_order(&self) -> LevelOrder {
        LevelOrder::from_edges(self.num_buses(), self.root, &self.edges())
    }

    /// Distributed generators holding voltage set-points. The record is
    /// the single-phase [`PvBus`]; a three-phase generator is balanced —
    /// `p_gen` and the dispatched Q split equally across the phases, and
    /// the set-point regulates the mean phase magnitude.
    pub fn generators(&self) -> &[PvBus] {
        &self.gens
    }
}

/// Incremental construction of a [`ThreePhaseNetwork`].
#[derive(Clone, Debug)]
pub struct ThreePhaseBuilder {
    source_voltage: CVec3,
    buses: Vec<Bus3>,
    branches: Vec<Branch3>,
    root: usize,
    gens: Vec<PvBus>,
}

impl ThreePhaseBuilder {
    /// Starts a network with the given slack voltage set; the first bus
    /// added is the root.
    pub fn new(source_voltage: CVec3) -> Self {
        ThreePhaseBuilder {
            source_voltage,
            buses: Vec::new(),
            branches: Vec::new(),
            root: 0,
            gens: Vec::new(),
        }
    }

    /// Adds a bus with the given per-phase load; returns its id.
    pub fn add_bus(&mut self, load: CVec3) -> usize {
        self.buses.push(Bus3 { load });
        self.buses.len() - 1
    }

    /// Adds a branch with a full phase impedance matrix.
    pub fn connect(&mut self, from: usize, to: usize, z: CMat3) {
        self.branches.push(Branch3 { from, to, z });
    }

    /// Registers a balanced distributed generator (validated at
    /// [`ThreePhaseBuilder::build`]).
    pub fn generator(&mut self, gen: PvBus) {
        self.gens.push(gen);
    }

    /// Validates and freezes the network (same radiality rules as the
    /// single-phase builder; impedance validity = finite entries and
    /// positive resistance on every diagonal).
    pub fn build(self) -> Result<ThreePhaseNetwork, NetworkError> {
        let n = self.buses.len();
        if n == 0 {
            return Err(NetworkError::Empty);
        }
        if !self.source_voltage.is_finite() || self.source_voltage == CVec3::ZERO {
            return Err(NetworkError::BadSource);
        }
        for (i, bus) in self.buses.iter().enumerate() {
            if !bus.load.is_finite() {
                return Err(NetworkError::BadLoad(i));
            }
        }
        if self.branches.len() != n - 1 {
            return Err(NetworkError::WrongBranchCount { got: self.branches.len(), want: n - 1 });
        }
        let mut parent_branch = vec![usize::MAX; n];
        for (bi, br) in self.branches.iter().enumerate() {
            for id in [br.from, br.to] {
                if id >= n {
                    return Err(NetworkError::BadBusId { id, n });
                }
            }
            if br.from == br.to {
                return Err(NetworkError::SelfLoop(br.from));
            }
            if br.to == self.root {
                return Err(NetworkError::RootHasParent);
            }
            if parent_branch[br.to] != usize::MAX {
                return Err(NetworkError::DuplicateChild(br.to));
            }
            let diag_ok = (0..3).all(|p| br.z.m[p][p].re > 0.0);
            if !br.z.is_finite() || !diag_ok {
                return Err(NetworkError::BadImpedance(br.to));
            }
            parent_branch[br.to] = bi;
        }
        // Reachability via parent pointers.
        let mut reached = vec![false; n];
        reached[self.root] = true;
        for start in 0..n {
            if reached[start] {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            let mut steps = 0;
            loop {
                if reached[cur] {
                    break;
                }
                steps += 1;
                if steps > n {
                    return Err(NetworkError::Disconnected { example: start });
                }
                path.push(cur);
                let pb = parent_branch[cur];
                if pb == usize::MAX {
                    return Err(NetworkError::Disconnected { example: cur });
                }
                cur = self.branches[pb].from;
            }
            for b in path {
                reached[b] = true;
            }
        }
        let mut gen_seen = vec![false; n];
        for g in &self.gens {
            let sane = g.bus < n
                && g.bus != self.root
                && g.p_gen.is_finite()
                && g.v_set.is_finite()
                && g.v_set > 0.0
                && g.q_min.is_finite()
                && g.q_max.is_finite()
                && g.q_min <= g.q_max;
            if !sane || gen_seen[g.bus.min(n - 1)] {
                return Err(NetworkError::BadGenerator(g.bus));
            }
            gen_seen[g.bus] = true;
        }
        Ok(ThreePhaseNetwork {
            source_voltage: self.source_voltage,
            buses: self.buses,
            branches: self.branches,
            parent_branch,
            root: self.root,
            gens: self.gens,
        })
    }
}

/// The IEEE 13-node feeder with its published per-phase (unbalanced)
/// spot loads and mutually-coupled line sections — the three-phase
/// counterpart of [`crate::ieee::ieee13`].
///
/// Approximations: one overhead phase-impedance matrix (self
/// 0.0644+0.1341j Ω/kft, mutual 0.020+0.060j Ω/kft) stands in for the
/// per-configuration Carson matrices; single/two-phase laterals are
/// carried as three-wire sections with the unused phases unloaded.
pub fn ieee13_unbalanced() -> ThreePhaseNetwork {
    use numc::c;
    let z_line = |kft: f64| {
        CMat3::coupled(c(0.0644, 0.1341), c(0.020, 0.060)).scale(kft)
    };
    let z_link = CMat3::coupled(c(0.01, 0.02), numc::Complex::ZERO);
    let kw = |a: (f64, f64), b: (f64, f64), cc: (f64, f64)| {
        CVec3::new(c(a.0 * 1e3, a.1 * 1e3), c(b.0 * 1e3, b.1 * 1e3), c(cc.0 * 1e3, cc.1 * 1e3))
    };

    let mut bld = ThreePhaseBuilder::new(CVec3::balanced(4160.0 / 3f64.sqrt()));
    // Published per-phase spot loads (kW, kvar); the 632–671 distributed
    // load is lumped at 632. Bus order matches `ieee::ieee13`.
    let loads = [
        kw((0.0, 0.0), (0.0, 0.0), (0.0, 0.0)),          // 650
        kw((17.0, 10.0), (66.0, 38.0), (117.0, 68.0)),   // 632 (distributed)
        kw((0.0, 0.0), (0.0, 0.0), (0.0, 0.0)),          // 633
        kw((160.0, 110.0), (120.0, 90.0), (120.0, 90.0)), // 634
        kw((0.0, 0.0), (170.0, 125.0), (0.0, 0.0)),      // 645
        kw((0.0, 0.0), (230.0, 132.0), (0.0, 0.0)),      // 646
        kw((385.0, 220.0), (385.0, 220.0), (385.0, 220.0)), // 671
        kw((0.0, 0.0), (0.0, 0.0), (0.0, 0.0)),          // 680
        kw((0.0, 0.0), (0.0, 0.0), (0.0, 0.0)),          // 684
        kw((0.0, 0.0), (0.0, 0.0), (170.0, 80.0)),       // 611
        kw((128.0, 86.0), (0.0, 0.0), (0.0, 0.0)),       // 652
        kw((0.0, 0.0), (0.0, 0.0), (170.0, 151.0)),      // 692
        kw((485.0, 190.0), (68.0, 60.0), (290.0, 212.0)), // 675
    ];
    for load in loads {
        bld.add_bus(load);
    }
    let sections: [(usize, usize, CMat3); 12] = [
        (0, 1, z_line(2.0)),
        (1, 2, z_line(0.5)),
        (2, 3, z_link),
        (1, 4, z_line(0.5)),
        (4, 5, z_line(0.3)),
        (1, 6, z_line(2.0)),
        (6, 7, z_line(1.0)),
        (6, 8, z_line(0.3)),
        (8, 9, z_line(0.3)),
        (8, 10, z_line(0.8)),
        (6, 11, z_link),
        (11, 12, z_line(0.5)),
    ];
    for (f, t, z) in sections {
        bld.connect(f, t, z);
    }
    bld.build().expect("ieee13 three-phase data is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::{c, Complex};

    #[test]
    fn builder_validates_like_single_phase() {
        let mut b = ThreePhaseBuilder::new(CVec3::balanced(2400.0));
        b.add_bus(CVec3::ZERO);
        b.add_bus(CVec3::splat(c(1000.0, 300.0)));
        b.connect(0, 1, CMat3::coupled(c(0.1, 0.2), c(0.02, 0.05)));
        let net = b.build().unwrap();
        assert_eq!(net.num_buses(), 2);
        assert_eq!(net.parent(1), Some(0));
        assert_eq!(net.parent(0), None);
    }

    #[test]
    fn bad_impedance_matrix_rejected() {
        let mut b = ThreePhaseBuilder::new(CVec3::balanced(2400.0));
        b.add_bus(CVec3::ZERO);
        b.add_bus(CVec3::ZERO);
        // Zero diagonal resistance.
        b.connect(0, 1, CMat3::diag(Complex::J));
        assert_eq!(b.build().unwrap_err(), NetworkError::BadImpedance(1));
    }

    #[test]
    fn wrong_branch_count_rejected() {
        let mut b = ThreePhaseBuilder::new(CVec3::balanced(2400.0));
        b.add_bus(CVec3::ZERO);
        b.add_bus(CVec3::ZERO);
        assert!(matches!(
            b.build().unwrap_err(),
            NetworkError::WrongBranchCount { got: 0, want: 1 }
        ));
    }

    #[test]
    fn ieee13_unbalanced_shape() {
        let net = ieee13_unbalanced();
        assert_eq!(net.num_buses(), 13);
        let lo = net.level_order();
        lo.check_invariants();
        assert_eq!(lo.num_levels(), 5);
        // Total three-phase load: ≈ 3466 kW (sum over phases × 3φ... the
        // published total) — per-phase loads already carry the imbalance.
        let total = net.total_load();
        let p_total = total.a.re + total.b.re + total.c.re;
        assert!((p_total / 1e3 - 3466.0).abs() < 5.0, "P = {} kW", p_total / 1e3);
        // The feeder is genuinely unbalanced.
        assert!(total.unbalance() > 0.05);
    }

    #[test]
    fn scale_loads_scales_phases() {
        let mut net = ieee13_unbalanced();
        let before = net.total_load();
        net.scale_loads(0.5);
        let after = net.total_load();
        assert!((after.a - before.a * 0.5).abs() < 1e-9);
        assert!((after.c - before.c * 0.5).abs() < 1e-9);
    }
}

/// Expands a single-phase network into a three-phase one: each bus's
/// load is split across phases with multiplicative `unbalance` jitter
/// (0 = balanced thirds), and each branch's scalar impedance becomes a
/// coupled matrix with `mutual_ratio · z` off-diagonals. The total
/// three-phase power equals the original bus power, so loading stays
/// feasible.
pub fn from_single_phase(
    net: &crate::RadialNetwork,
    unbalance: f64,
    mutual_ratio: f64,
    rng: &mut impl rng::Rng,
) -> ThreePhaseNetwork {
    assert!((0.0..1.0).contains(&unbalance), "unbalance must be in [0, 1)");
    let mut b = ThreePhaseBuilder::new(CVec3::balanced(net.source_voltage().abs()));
    for bus in net.buses() {
        // Random positive weights, jittered around equal thirds.
        let w: [f64; 3] =
            std::array::from_fn(|_| 1.0 + unbalance * rng.gen_range(-1.0..1.0f64));
        let total: f64 = w.iter().sum();
        let s = bus.load;
        b.add_bus(CVec3::new(
            s * (w[0] / total),
            s * (w[1] / total),
            s * (w[2] / total),
        ));
    }
    for br in net.branches() {
        b.connect(br.from, br.to, CMat3::coupled(br.z, br.z * mutual_ratio));
    }
    b.build().expect("phase expansion preserves radiality")
}

#[cfg(test)]
mod expand_tests {
    use super::*;
    use crate::gen::{balanced_binary, GenSpec};
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn expansion_preserves_total_power_and_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = balanced_binary(255, &GenSpec::default(), &mut rng);
        let net3 = from_single_phase(&net, 0.4, 0.3, &mut rng);
        assert_eq!(net3.num_buses(), 255);
        let t1 = net.total_load();
        let t3 = net3.total_load();
        let sum3 = t3.a + t3.b + t3.c;
        assert!((sum3 - t1).abs() < 1e-6 * t1.abs());
        assert!(t3.unbalance() > 0.01, "jitter must unbalance the phases");
        net3.level_order().check_invariants();
    }

    #[test]
    fn zero_unbalance_gives_equal_thirds() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = balanced_binary(63, &GenSpec::default(), &mut rng);
        let net3 = from_single_phase(&net, 0.0, 0.2, &mut rng);
        for bus in net3.buses() {
            assert!((bus.load.a - bus.load.b).abs() < 1e-12);
            assert!((bus.load.b - bus.load.c).abs() < 1e-12);
        }
    }
}
