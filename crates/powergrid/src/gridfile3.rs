//! The `.grid3` text format — three-phase network serialization.
//!
//! ```text
//! grid3 1
//! source3 2401.7 0 -1200.8 -2079.9 -1200.8 2079.9
//! bus3 0 0 0 0 0 0 0
//! bus3 1 160000 110000 120000 90000 120000 90000
//! branch3 0 1 0.1288 0.2682 0.040 0.120
//! ```
//!
//! * `grid3 <version>` — header, version 1.
//! * `source3 <re_a> <im_a> <re_b> <im_b> <re_c> <im_c>` — slack set.
//! * `bus3 <id> <p_a> <q_a> <p_b> <q_b> <p_c> <q_c>` — per-phase loads,
//!   W / var; ids dense `0..n`.
//! * `branch3 <from> <to> <r_self> <x_self> <r_mutual> <x_mutual>` —
//!   the symmetric coupled impedance matrix
//!   [`CMat3::coupled`](numc::CMat3::coupled). (Full 3×3 matrices are a
//!   documented format-v2 extension; everything this workspace generates
//!   is self/mutual symmetric.)
//! * `gen <bus> <p_watts> <v_set_volts> <q_min> <q_max>` — a balanced
//!   distributed generator, same record shape as the single-phase
//!   format: `p_gen` and the dispatched Q split equally across phases,
//!   the set-point regulates the mean phase magnitude.
//!
//! Blank lines and `#` comments are ignored; validation goes through
//! [`ThreePhaseBuilder::build`].

use std::fmt::Write as _;

use numc::{c, CMat3, CVec3};

use crate::gridfile::ParseError;
use crate::mesh::PvBus;
use crate::three_phase::{ThreePhaseBuilder, ThreePhaseNetwork};

/// Serialises a three-phase network to `.grid3` text.
///
/// Branch matrices are emitted in self/mutual form: the self term is the
/// mean of the diagonal, the mutual term the mean of the off-diagonals
/// (exact for everything built by this workspace's constructors).
pub fn write_grid3(net: &ThreePhaseNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# three-phase radial network ({} buses)", net.num_buses());
    let _ = writeln!(out, "grid3 1");
    let v = net.source_voltage();
    let _ = writeln!(
        out,
        "source3 {} {} {} {} {} {}",
        v.a.re, v.a.im, v.b.re, v.b.im, v.c.re, v.c.im
    );
    for (i, bus) in net.buses().iter().enumerate() {
        let s = bus.load;
        let _ = writeln!(
            out,
            "bus3 {i} {} {} {} {} {} {}",
            s.a.re, s.a.im, s.b.re, s.b.im, s.c.re, s.c.im
        );
    }
    for br in net.branches() {
        let z = br.z;
        let z_self = (z.m[0][0] + z.m[1][1] + z.m[2][2]) / 3.0;
        let z_mut = (z.m[0][1] + z.m[0][2] + z.m[1][0] + z.m[1][2] + z.m[2][0] + z.m[2][1]) / 6.0;
        let _ = writeln!(
            out,
            "branch3 {} {} {} {} {} {}",
            br.from, br.to, z_self.re, z_self.im, z_mut.re, z_mut.im
        );
    }
    for g in net.generators() {
        let _ = writeln!(out, "gen {} {} {} {} {}", g.bus, g.p_gen, g.v_set, g.q_min, g.q_max);
    }
    out
}

/// Parses `.grid3` text into a validated three-phase network.
pub fn parse_grid3(text: &str) -> Result<ThreePhaseNetwork, ParseError> {
    let mut source = None;
    let mut buses: Vec<(usize, CVec3)> = Vec::new();
    let mut branches: Vec<(usize, usize, CMat3)> = Vec::new();
    let mut edges: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut gens: Vec<PvBus> = Vec::new();
    let mut gen_buses: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut saw_header = false;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        let kind = tok.next().expect("non-empty line has a token");
        let bad = |why: &str| ParseError::BadLine(ln + 1, why.to_string());
        let num = |tok: &mut std::str::SplitAsciiWhitespace<'_>| -> Result<f64, ParseError> {
            let s = tok.next().ok_or_else(|| bad("missing field"))?;
            s.parse().map_err(|_| bad(&format!("cannot parse `{s}`")))
        };

        match kind {
            "grid3" => {
                let ver = tok.next().ok_or(ParseError::BadHeader)?;
                if ver != "1" {
                    return Err(ParseError::BadVersion(ver.to_string()));
                }
                saw_header = true;
            }
            "source3" => {
                let vals: Result<Vec<f64>, _> = (0..6).map(|_| num(&mut tok)).collect();
                let v = vals?;
                crate::gridfile::finite(&v, ln)?;
                source = Some(CVec3::new(c(v[0], v[1]), c(v[2], v[3]), c(v[4], v[5])));
            }
            "bus3" => {
                let id = tok
                    .next()
                    .ok_or_else(|| bad("missing id"))?
                    .parse::<usize>()
                    .map_err(|_| bad("bad bus id"))?;
                let vals: Result<Vec<f64>, _> = (0..6).map(|_| num(&mut tok)).collect();
                let v = vals?;
                crate::gridfile::finite(&v, ln)?;
                buses.push((id, CVec3::new(c(v[0], v[1]), c(v[2], v[3]), c(v[4], v[5]))));
            }
            "branch3" => {
                let from = tok
                    .next()
                    .ok_or_else(|| bad("missing from"))?
                    .parse::<usize>()
                    .map_err(|_| bad("bad from id"))?;
                let to = tok
                    .next()
                    .ok_or_else(|| bad("missing to"))?
                    .parse::<usize>()
                    .map_err(|_| bad("bad to id"))?;
                let vals: Result<Vec<f64>, _> = (0..4).map(|_| num(&mut tok)).collect();
                let v = vals?;
                crate::gridfile::finite(&v, ln)?;
                if from == to {
                    return Err(ParseError::SelfLoop(ln + 1));
                }
                if !edges.insert((from.min(to), from.max(to))) {
                    return Err(ParseError::DuplicateEdge(ln + 1));
                }
                branches.push((from, to, CMat3::coupled(c(v[0], v[1]), c(v[2], v[3]))));
            }
            // Same record shape and hardening as the single-phase reader:
            // `gen <bus> <p_watts> <v_set_volts> <q_min> <q_max>`.
            "gen" => {
                let bus = tok
                    .next()
                    .ok_or_else(|| bad("missing bus"))?
                    .parse::<usize>()
                    .map_err(|_| bad("bad bus id"))?;
                let vals: Result<Vec<f64>, _> = (0..4).map(|_| num(&mut tok)).collect();
                let v = vals?;
                crate::gridfile::finite(&v, ln)?;
                if v[2] > v[3] {
                    return Err(ParseError::BadQLimits(ln + 1));
                }
                if !gen_buses.insert(bus) {
                    return Err(ParseError::DuplicateGenerator(ln + 1));
                }
                gens.push(PvBus { bus, p_gen: v[0], v_set: v[1], q_min: v[2], q_max: v[3] });
            }
            other => return Err(bad(&format!("unknown directive `{other}`"))),
        }
        if tok.next().is_some() {
            return Err(bad("trailing tokens"));
        }
    }

    if !saw_header {
        return Err(ParseError::BadHeader);
    }
    let source = source.ok_or(ParseError::MissingSource)?;

    let n = buses.len();
    let mut loads = vec![None; n];
    for (id, s) in buses {
        if id >= n || loads[id].is_some() {
            return Err(ParseError::SparseBusIds);
        }
        loads[id] = Some(s);
    }
    let mut b = ThreePhaseBuilder::new(source);
    for load in loads {
        b.add_bus(load.expect("dense check guarantees presence"));
    }
    for (from, to, z) in branches {
        b.connect(from, to, z);
    }
    for g in gens {
        b.generator(g);
    }
    b.build().map_err(ParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_phase::ieee13_unbalanced;

    #[test]
    fn roundtrip_gen_records() {
        let net = ieee13_unbalanced();
        let mut text = write_grid3(&net);
        text.push_str("gen 5 20000 2350 -9000 9000\n");
        let back = parse_grid3(&text).unwrap();
        assert_eq!(back.generators().len(), 1);
        let g = back.generators()[0];
        assert_eq!(g.bus, 5);
        assert_eq!((g.p_gen, g.v_set, g.q_min, g.q_max), (20000.0, 2350.0, -9000.0, 9000.0));
        // And it survives a second roundtrip via the writer.
        let again = parse_grid3(&write_grid3(&back)).unwrap();
        assert_eq!(again.generators(), back.generators());
    }

    #[test]
    fn hostile_gen_records_are_rejected_with_line_numbers() {
        let base = write_grid3(&ieee13_unbalanced());
        let lines = base.lines().count();
        for (extra, want) in [
            ("gen 5 1 2350 9000 -9000", "BadQLimits"),
            ("gen 5 1 NaN -9000 9000", "NonFinite"),
            ("gen 99 1 2350 -9000 9000", "Invalid"),
            ("gen 0 1 2350 -9000 9000", "Invalid"), // root bus
            ("gen 5 1 2350 -1 1\ngen 5 2 2350 -1 1", "DuplicateGenerator"),
        ] {
            let err = parse_grid3(&format!("{base}{extra}\n")).unwrap_err();
            let dbg = format!("{err:?}");
            assert!(dbg.starts_with(want), "{extra}: got {dbg}");
            match err {
                ParseError::BadQLimits(ln)
                | ParseError::NonFinite(ln)
                | ParseError::DuplicateGenerator(ln) => {
                    assert!(ln > lines, "line {ln} must point at the appended record");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn roundtrip_ieee13_unbalanced() {
        let net = ieee13_unbalanced();
        let text = write_grid3(&net);
        let back = parse_grid3(&text).unwrap();
        assert_eq!(back.num_buses(), net.num_buses());
        for (a, b) in back.buses().iter().zip(net.buses()) {
            assert!((a.load - b.load).abs_max() < 1e-9);
        }
        for (a, b) in back.branches().iter().zip(net.branches()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            // ieee13's matrices are exactly self/mutual symmetric.
            for r in 0..3 {
                for col in 0..3 {
                    assert!((a.z.m[r][col] - b.z.m[r][col]).abs() < 1e-12);
                }
            }
        }
        let sv = back.source_voltage();
        assert!((sv - net.source_voltage()).abs_max() < 1e-9);
    }

    #[test]
    fn header_and_structure_errors() {
        assert!(matches!(parse_grid3("bus3 0 0 0 0 0 0 0\n"), Err(ParseError::BadHeader)));
        assert!(matches!(
            parse_grid3("grid3 9\n"),
            Err(ParseError::BadVersion(_))
        ));
        assert!(matches!(
            parse_grid3("grid3 1\nbus3 0 0 0 0 0 0 0\n"),
            Err(ParseError::MissingSource)
        ));
        let bad_line = "grid3 1\nsource3 1 0 1 0 1 0\nbus3 0 x 0 0 0 0 0\n";
        assert!(matches!(parse_grid3(bad_line), Err(ParseError::BadLine(3, _))));
    }

    #[test]
    fn hardening_mirrors_the_single_phase_parser() {
        let head = "grid3 1\nsource3 1 0 1 0 1 0\nbus3 0 0 0 0 0 0 0\nbus3 1 0 0 0 0 0 0\n";
        let nan = format!("{head}branch3 0 1 NaN 0 0 0\n");
        assert!(matches!(parse_grid3(&nan), Err(ParseError::NonFinite(5))));
        let inf_load = "grid3 1\nsource3 1 0 1 0 1 0\nbus3 0 0 inf 0 0 0 0\n";
        assert!(matches!(parse_grid3(inf_load), Err(ParseError::NonFinite(3))));
        let loop_ = format!("{head}branch3 1 1 1 0 0 0\n");
        assert!(matches!(parse_grid3(&loop_), Err(ParseError::SelfLoop(5))));
        let dup = format!("{head}branch3 0 1 1 0 0 0\nbranch3 1 0 1 0 0 0\n");
        assert!(matches!(parse_grid3(&dup), Err(ParseError::DuplicateEdge(6))));
    }

    #[test]
    fn single_phase_grid_is_rejected_here() {
        let err = parse_grid3("grid 1\nsource 100 0\nbus 0 0 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(1, _)));
    }
}
