//! Network editing: derive modified networks from existing ones.
//!
//! [`RadialNetwork`] is immutable after validation; planning studies
//! (hosting capacity, reconfiguration, lateral additions) need modified
//! copies. Every editor here returns a freshly *re-validated* network,
//! so no sequence of edits can produce a non-radial system.

use numc::Complex;

use crate::network::{NetworkBuilder, NetworkError, RadialNetwork};

/// Returns a copy with bus `bus`'s load replaced by `load`. A bus id
/// outside the network is a [`NetworkError::BadBusId`] — it used to be a
/// silent no-op (the edit "succeeded" without changing anything).
pub fn with_load(net: &RadialNetwork, bus: usize, load: Complex) -> Result<RadialNetwork, NetworkError> {
    check_bus(net, bus)?;
    let mut b = builder_of(net);
    b = rebuild_buses(b, net, |i, old| if i == bus { load } else { old });
    rebuild_branches(&mut b, net);
    b.build()
}

/// Returns a copy with `delta` added to bus `bus`'s load (negative
/// `delta.re` models generation). A bus id outside the network is a
/// [`NetworkError::BadBusId`], not an index panic.
pub fn with_added_load(
    net: &RadialNetwork,
    bus: usize,
    delta: Complex,
) -> Result<RadialNetwork, NetworkError> {
    check_bus(net, bus)?;
    with_load(net, bus, net.buses()[bus].load + delta)
}

/// Returns a copy with a new lateral appended: a chain of
/// `loads.len()` new buses hanging off `at_bus`, each section with
/// impedance `z`. New bus ids continue from the old count. Returns the
/// new network and the id of the lateral's last bus.
pub fn with_lateral(
    net: &RadialNetwork,
    at_bus: usize,
    loads: &[Complex],
    z: Complex,
) -> Result<(RadialNetwork, usize), NetworkError> {
    assert!(!loads.is_empty(), "lateral needs at least one bus");
    // An out-of-range attachment point used to collide with the freshly
    // assigned lateral ids and surface as an unrelated error (self-loop,
    // detached cycle, …) deep inside validation; reject it by name.
    check_bus(net, at_bus)?;
    let mut b = builder_of(net);
    b = rebuild_buses(b, net, |_, old| old);
    rebuild_branches(&mut b, net);
    let mut up = at_bus;
    let mut last = at_bus;
    for &load in loads {
        let new = b.add_bus(load);
        b.connect(up, new, z);
        up = new;
        last = new;
    }
    Ok((b.build()?, last))
}

/// Extracts the subtree rooted at `at_bus` as a standalone network whose
/// root (the new bus 0) is `at_bus` itself with its load removed (it
/// becomes the new slack/interconnection point). Returns the network and
/// the old-id → new-id map (`usize::MAX` for buses outside the subtree).
pub fn extract_subtree(
    net: &RadialNetwork,
    at_bus: usize,
) -> Result<(RadialNetwork, Vec<usize>), NetworkError> {
    let n = net.num_buses();
    check_bus(net, at_bus)?;

    // Membership: walk parents until root or at_bus.
    let mut member = vec![false; n];
    member[at_bus] = true;
    for start in 0..n {
        let mut path = Vec::new();
        let mut cur = start;
        let mut inside = false;
        loop {
            if member[cur] {
                inside = true;
                break;
            }
            if cur == net.root() {
                break;
            }
            path.push(cur);
            cur = net.parent(cur).expect("non-root has parent");
        }
        if inside {
            for b in path {
                member[b] = true;
            }
        }
    }

    let mut map = vec![usize::MAX; n];
    let mut b = NetworkBuilder::new(net.source_voltage());
    map[at_bus] = b.add_bus(Complex::ZERO); // new slack carries no load
    for bus in 0..n {
        if member[bus] && bus != at_bus {
            map[bus] = b.add_bus(net.buses()[bus].load);
        }
    }
    for br in net.branches() {
        if member[br.from] && member[br.to] && br.to != at_bus {
            b.connect(map[br.from], map[br.to], br.z);
        }
    }
    Ok((b.build()?, map))
}

fn check_bus(net: &RadialNetwork, bus: usize) -> Result<(), NetworkError> {
    if bus >= net.num_buses() {
        return Err(NetworkError::BadBusId { id: bus, n: net.num_buses() });
    }
    Ok(())
}

fn builder_of(net: &RadialNetwork) -> NetworkBuilder {
    NetworkBuilder::with_capacity(net.source_voltage(), net.num_buses())
}

fn rebuild_buses(
    mut b: NetworkBuilder,
    net: &RadialNetwork,
    load_of: impl Fn(usize, Complex) -> Complex,
) -> NetworkBuilder {
    for (i, bus) in net.buses().iter().enumerate() {
        b.add_bus(load_of(i, bus.load));
    }
    b
}

fn rebuild_branches(b: &mut NetworkBuilder, net: &RadialNetwork) {
    for br in net.branches() {
        b.connect(br.from, br.to, br.z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::ieee13;
    use crate::LevelOrder;
    use numc::c;

    #[test]
    fn with_load_replaces_one_bus() {
        let net = ieee13();
        let edited = with_load(&net, 3, c(999.0, 111.0)).unwrap();
        assert_eq!(edited.buses()[3].load, c(999.0, 111.0));
        assert_eq!(edited.buses()[4].load, net.buses()[4].load);
        assert_eq!(edited.num_branches(), net.num_branches());
    }

    #[test]
    fn with_added_load_accumulates() {
        let net = ieee13();
        let before = net.buses()[6].load;
        let edited = with_added_load(&net, 6, c(50_000.0, 0.0)).unwrap();
        assert_eq!(edited.buses()[6].load, before + c(50_000.0, 0.0));
    }

    #[test]
    fn lateral_extends_the_tree() {
        let net = ieee13();
        let loads = [c(10e3, 3e3), c(12e3, 4e3), c(8e3, 2e3)];
        let (edited, tip) = with_lateral(&net, 6, &loads, c(0.1, 0.05)).unwrap();
        assert_eq!(edited.num_buses(), 16);
        assert_eq!(tip, 15);
        assert_eq!(edited.parent(13), Some(6));
        assert_eq!(edited.parent(14), Some(13));
        assert_eq!(edited.parent(15), Some(14));
        LevelOrder::new(&edited).check_invariants();
        // Total load grew by the lateral's loads.
        let grown = edited.total_load() - net.total_load();
        assert!((grown - loads.iter().copied().sum::<numc::Complex>()).abs() < 1e-9);
    }

    #[test]
    fn extract_subtree_renumbers_consistently() {
        let net = ieee13();
        // Bus 6 (node 671) heads the lower half of the feeder.
        let (sub, map) = extract_subtree(&net, 6).unwrap();
        assert_eq!(map[6], 0, "subtree root becomes bus 0");
        assert_eq!(sub.buses()[0].load, numc::Complex::ZERO, "new slack is unloaded");
        // 671's subtree: 671, 680, 684, 611, 652, 692, 675 → 7 buses.
        assert_eq!(sub.num_buses(), 7);
        assert_eq!(map[0], usize::MAX, "old root is outside");
        // Parent relations survive the renumbering: 675 under 692.
        assert_eq!(sub.parent(map[12]), Some(map[11]));
        LevelOrder::new(&sub).check_invariants();
    }

    #[test]
    fn extract_leaf_gives_single_bus_network() {
        let net = ieee13();
        let (sub, map) = extract_subtree(&net, 12).unwrap();
        assert_eq!(sub.num_buses(), 1);
        assert_eq!(map[12], 0);
    }

    #[test]
    fn out_of_range_edits_are_bad_bus_id_not_silent() {
        use crate::network::NetworkError;
        let net = ieee13();
        let n = net.num_buses();
        // with_load used to return Ok with *nothing changed* for an
        // out-of-range bus; with_added_load used to panic on the index.
        assert_eq!(
            with_load(&net, n, c(1.0, 0.0)).unwrap_err(),
            NetworkError::BadBusId { id: n, n }
        );
        assert_eq!(
            with_added_load(&net, n + 3, c(1.0, 0.0)).unwrap_err(),
            NetworkError::BadBusId { id: n + 3, n }
        );
        // An out-of-range lateral attachment used to collide with the new
        // lateral ids and surface as a self-loop or detached cycle.
        for at in [n, n + 1, n + 5] {
            assert_eq!(
                with_lateral(&net, at, &[c(5e3, 1e3); 2], c(0.2, 0.1)).unwrap_err(),
                NetworkError::BadBusId { id: at, n },
                "attachment at {at}"
            );
        }
        assert_eq!(
            extract_subtree(&net, n).unwrap_err(),
            NetworkError::BadBusId { id: n, n }
        );
    }

    #[test]
    fn subtree_load_accounting_is_exact() {
        let net = ieee13();
        let (sub, map) = extract_subtree(&net, 6).unwrap();
        // Members' loads survive exactly, minus the new slack's own load.
        let member_sum: numc::Complex = (0..net.num_buses())
            .filter(|&b| map[b] != usize::MAX && b != 6)
            .map(|b| net.buses()[b].load)
            .sum();
        assert!((sub.total_load() - member_sum).abs() < 1e-12);
        // The id map is injective over the members (no duplicate ids).
        let mut seen = vec![false; sub.num_buses()];
        for &m in map.iter().filter(|&&m| m != usize::MAX) {
            assert!(!seen[m], "duplicate new id {m}");
            seen[m] = true;
        }
        assert!(seen.iter().all(|&s| s), "every new id is claimed");
    }

    #[test]
    fn edits_keep_radial_validation() {
        // Adding a lateral to a lateral tip keeps everything valid.
        let net = ieee13();
        let (e1, tip) = with_lateral(&net, 9, &[c(5e3, 1e3)], c(0.2, 0.1)).unwrap();
        let (e2, _) = with_lateral(&e1, tip, &[c(5e3, 1e3); 4], c(0.2, 0.1)).unwrap();
        assert_eq!(e2.num_buses(), net.num_buses() + 5);
        LevelOrder::new(&e2).check_invariants();
    }
}
