//! Topology deltas: bounded edits applied to a [`RadialNetwork`] in
//! place, with an exact undo.
//!
//! Contingency screening and switching studies solve thousands of
//! variants of one base network, each differing by a single branch.
//! Rebuilding (and re-validating) the whole network per variant is
//! `O(n)` work and — worse — loses the identity between the base and
//! the variant, which the warm-start and batched-screening paths rely
//! on. A [`TopologyDelta`] instead captures one edit:
//!
//! * **Outage** — opening the branch that feeds a bus. The subtree
//!   hanging off that bus is de-energized: its loads are zeroed in
//!   place (so energized-side branch currents are exact) and the
//!   isolated bus set is reported via [`TopologyDelta::isolated`] so
//!   solvers can mask those buses out. The branch itself stays in the
//!   model as an open switch, which keeps every radial invariant (and
//!   the level/DFS layouts) intact.
//! * **Impedance** — replacing the series impedance of the branch
//!   feeding a bus (conductor upgrade, temperature derate, fault
//!   impedance).
//! * **Splice** — re-parenting a bus onto a different upstream bus
//!   (tie-switch reconfiguration), with a cycle check that the new
//!   parent lies outside the moved subtree.
//!
//! [`TopologyDelta::apply`] mutates the network; [`TopologyDelta::revert`]
//! restores it *bitwise* — every load and impedance comes back from a
//! saved copy, not from recomputation. Apply/revert pairs may be
//! repeated.

use numc::Complex;

use crate::network::RadialNetwork;

/// The edit a [`TopologyDelta`] performs.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp {
    /// Open the branch feeding `bus`, de-energizing its subtree.
    Outage {
        /// Downstream end of the opened branch.
        bus: usize,
    },
    /// Replace the impedance of the branch feeding `bus` with `z`.
    Impedance {
        /// Downstream end of the retuned branch.
        bus: usize,
        /// New series impedance, ohms.
        z: Complex,
    },
    /// Re-parent `bus` onto `new_parent` through impedance `z`.
    Splice {
        /// The bus being moved (with its whole subtree).
        bus: usize,
        /// Its new upstream bus.
        new_parent: usize,
        /// Impedance of the new section, ohms.
        z: Complex,
    },
}

/// Why a delta could not be constructed or applied.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaError {
    /// A bus id lies outside the network.
    BadBus {
        /// The offending id.
        id: usize,
        /// Bus count.
        n: usize,
    },
    /// The root has no feeding branch to outage, retune or splice.
    RootDelta,
    /// The splice target lies inside the moved subtree (would create a
    /// cycle / detach the subtree from the source).
    CycleSplice {
        /// The bus being moved.
        bus: usize,
        /// The in-subtree parent that was requested.
        new_parent: usize,
    },
    /// The replacement impedance is zero, negative-resistance or
    /// non-finite.
    BadImpedance,
    /// `apply` called while the delta is already applied.
    AlreadyApplied,
    /// `revert` called while the delta is not applied.
    NotApplied,
    /// The network passed to `apply`/`revert` is not the one the delta
    /// was built from (bus count mismatch is the detectable symptom).
    WrongNetwork {
        /// Bus count the delta was built against.
        expect: usize,
        /// Bus count of the network passed in.
        got: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BadBus { id, n } => write!(f, "delta references bus {id} (only {n} buses)"),
            DeltaError::RootDelta => write!(f, "the root bus has no feeding branch to edit"),
            DeltaError::CycleSplice { bus, new_parent } => write!(
                f,
                "splicing bus {bus} under {new_parent} would create a cycle ({new_parent} is inside the moved subtree)"
            ),
            DeltaError::BadImpedance => write!(f, "replacement impedance is zero, negative-resistance or non-finite"),
            DeltaError::AlreadyApplied => write!(f, "delta is already applied"),
            DeltaError::NotApplied => write!(f, "delta is not applied"),
            DeltaError::WrongNetwork { expect, got } => {
                write!(f, "delta was built for a {expect}-bus network, got {got} buses")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Saved state for the exact undo.
#[derive(Clone, Debug)]
enum Undo {
    /// Outage: the de-energized buses' original loads, in `isolated`
    /// order.
    Loads(Vec<Complex>),
    /// Impedance: the original `z`.
    Z(Complex),
    /// Splice: the original `(from, z)` of the branch slot.
    Parent(usize, Complex),
}

/// One revertible topology edit, bound to the network it was built
/// from. See the [module docs](crate::delta) for the operation
/// semantics.
#[derive(Clone, Debug)]
pub struct TopologyDelta {
    op: DeltaOp,
    /// Buses de-energized by an outage (the subtree of `bus`, in BFS
    /// order, `bus` first). Empty for impedance/splice deltas.
    isolated: Vec<usize>,
    /// Bus count of the origin network (sanity-checks apply/revert).
    n: usize,
    undo: Option<Undo>,
}

impl TopologyDelta {
    /// Builds an outage delta: opening the branch that feeds `bus`.
    pub fn outage(net: &RadialNetwork, bus: usize) -> Result<Self, DeltaError> {
        check_editable(net, bus)?;
        Ok(TopologyDelta {
            op: DeltaOp::Outage { bus },
            isolated: subtree_of(net, bus),
            n: net.num_buses(),
            undo: None,
        })
    }

    /// Builds an impedance-change delta on the branch feeding `bus`.
    pub fn impedance(net: &RadialNetwork, bus: usize, z: Complex) -> Result<Self, DeltaError> {
        check_editable(net, bus)?;
        check_z(z)?;
        Ok(TopologyDelta {
            op: DeltaOp::Impedance { bus, z },
            isolated: Vec::new(),
            n: net.num_buses(),
            undo: None,
        })
    }

    /// Builds a splice delta: re-parenting `bus` under `new_parent`
    /// through impedance `z`.
    pub fn splice(
        net: &RadialNetwork,
        bus: usize,
        new_parent: usize,
        z: Complex,
    ) -> Result<Self, DeltaError> {
        check_editable(net, bus)?;
        if new_parent >= net.num_buses() {
            return Err(DeltaError::BadBus { id: new_parent, n: net.num_buses() });
        }
        check_z(z)?;
        if subtree_of(net, bus).contains(&new_parent) {
            return Err(DeltaError::CycleSplice { bus, new_parent });
        }
        Ok(TopologyDelta {
            op: DeltaOp::Splice { bus, new_parent, z },
            isolated: Vec::new(),
            n: net.num_buses(),
            undo: None,
        })
    }

    /// The edit this delta performs.
    pub fn op(&self) -> &DeltaOp {
        &self.op
    }

    /// Buses de-energized by an outage delta (the subtree of the outaged
    /// bus, BFS order, outaged bus first); empty for other ops.
    pub fn isolated(&self) -> &[usize] {
        &self.isolated
    }

    /// Whether the delta is currently applied.
    pub fn is_applied(&self) -> bool {
        self.undo.is_some()
    }

    /// Applies the edit to `net` in place, saving exact undo state.
    pub fn apply(&mut self, net: &mut RadialNetwork) -> Result<(), DeltaError> {
        if self.undo.is_some() {
            return Err(DeltaError::AlreadyApplied);
        }
        if net.num_buses() != self.n {
            return Err(DeltaError::WrongNetwork { expect: self.n, got: net.num_buses() });
        }
        self.undo = Some(match self.op {
            DeltaOp::Outage { .. } => {
                let mut saved = Vec::with_capacity(self.isolated.len());
                for &b in &self.isolated {
                    let bus = net.bus_mut(b);
                    saved.push(bus.load);
                    bus.load = Complex::ZERO;
                }
                Undo::Loads(saved)
            }
            DeltaOp::Impedance { bus, z } => {
                let br = net.branch_mut(net.parent_branch_index(bus));
                let old = br.z;
                br.z = z;
                Undo::Z(old)
            }
            DeltaOp::Splice { bus, new_parent, z } => {
                let br = net.branch_mut(net.parent_branch_index(bus));
                let old = (br.from, br.z);
                br.from = new_parent;
                br.z = z;
                Undo::Parent(old.0, old.1)
            }
        });
        Ok(())
    }

    /// Restores `net` to its pre-apply state, bitwise.
    pub fn revert(&mut self, net: &mut RadialNetwork) -> Result<(), DeltaError> {
        let undo = self.undo.take().ok_or(DeltaError::NotApplied)?;
        if net.num_buses() != self.n {
            self.undo = Some(undo); // leave the delta applied; nothing touched
            return Err(DeltaError::WrongNetwork { expect: self.n, got: net.num_buses() });
        }
        match (&self.op, undo) {
            (DeltaOp::Outage { .. }, Undo::Loads(saved)) => {
                for (&b, load) in self.isolated.iter().zip(saved) {
                    net.bus_mut(b).load = load;
                }
            }
            (DeltaOp::Impedance { bus, .. }, Undo::Z(old)) => {
                net.branch_mut(net.parent_branch_index(*bus)).z = old;
            }
            (DeltaOp::Splice { bus, .. }, Undo::Parent(from, z)) => {
                let br = net.branch_mut(net.parent_branch_index(*bus));
                br.from = from;
                br.z = z;
            }
            _ => unreachable!("undo variant always matches op"),
        }
        Ok(())
    }
}

/// Validates that `bus` exists and has a feeding branch to edit.
fn check_editable(net: &RadialNetwork, bus: usize) -> Result<(), DeltaError> {
    if bus >= net.num_buses() {
        return Err(DeltaError::BadBus { id: bus, n: net.num_buses() });
    }
    if bus == net.root() {
        return Err(DeltaError::RootDelta);
    }
    Ok(())
}

/// Same admissibility rule as the network builder's impedance check.
fn check_z(z: Complex) -> Result<(), DeltaError> {
    if !z.is_finite() || z.abs() == 0.0 || z.re < 0.0 {
        return Err(DeltaError::BadImpedance);
    }
    Ok(())
}

/// The subtree rooted at `bus` (BFS order, `bus` first).
fn subtree_of(net: &RadialNetwork, bus: usize) -> Vec<usize> {
    let n = net.num_buses();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for br in net.branches() {
        children[br.from].push(br.to);
    }
    let mut out = vec![bus];
    let mut head = 0;
    while head < out.len() {
        let cur = out[head];
        head += 1;
        out.extend_from_slice(&children[cur]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::ieee13;
    use numc::c;

    fn snapshot(net: &RadialNetwork) -> (Vec<u64>, Vec<u64>) {
        let loads = net
            .buses()
            .iter()
            .flat_map(|b| [b.load.re.to_bits(), b.load.im.to_bits()])
            .collect();
        let branches = net
            .branches()
            .iter()
            .flat_map(|br| {
                [br.from as u64, br.to as u64, br.z.re.to_bits(), br.z.im.to_bits()]
            })
            .collect();
        (loads, branches)
    }

    #[test]
    fn outage_zeroes_exactly_the_subtree_and_reverts_bitwise() {
        let mut net = ieee13();
        let before = snapshot(&net);
        // Bus 6 (node 671) heads the lower half of the feeder.
        let mut d = TopologyDelta::outage(&net, 6).unwrap();
        let mut iso = d.isolated().to_vec();
        assert_eq!(iso[0], 6, "outaged bus leads the isolated set");
        iso.sort_unstable();
        assert_eq!(iso, vec![6, 7, 8, 9, 10, 11, 12], "671's subtree");
        d.apply(&mut net).unwrap();
        assert!(d.is_applied());
        for b in 0..net.num_buses() {
            if d.isolated().contains(&b) {
                assert_eq!(net.buses()[b].load, Complex::ZERO, "bus {b} de-energized");
            } else {
                assert_eq!(
                    net.buses()[b].load, ieee13().buses()[b].load,
                    "bus {b} untouched"
                );
            }
        }
        // Branches are untouched — the opened branch is an open switch.
        assert_eq!(snapshot(&net).1, before.1);
        d.revert(&mut net).unwrap();
        assert_eq!(snapshot(&net), before, "revert restores the network bitwise");
    }

    #[test]
    fn impedance_swaps_one_branch_and_reverts_bitwise() {
        let mut net = ieee13();
        let before = snapshot(&net);
        let mut d = TopologyDelta::impedance(&net, 3, c(0.77, 0.33)).unwrap();
        assert!(d.isolated().is_empty());
        d.apply(&mut net).unwrap();
        assert_eq!(net.parent_branch(3).unwrap().z, c(0.77, 0.33));
        // Only that one slot changed.
        let mid = snapshot(&net);
        assert_eq!(mid.0, before.0);
        let diffs = mid.1.iter().zip(&before.1).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 2, "exactly re+im of one branch");
        d.revert(&mut net).unwrap();
        assert_eq!(snapshot(&net), before);
    }

    #[test]
    fn splice_reparents_and_reverts_bitwise() {
        let mut net = ieee13();
        let before = snapshot(&net);
        let old_parent = net.parent(9).unwrap();
        let mut d = TopologyDelta::splice(&net, 9, 2, c(0.5, 0.2)).unwrap();
        d.apply(&mut net).unwrap();
        assert_eq!(net.parent(9), Some(2));
        assert_ne!(net.parent(9), Some(old_parent));
        // The spliced network is still a valid radial tree.
        crate::LevelOrder::new(&net).check_invariants();
        d.revert(&mut net).unwrap();
        assert_eq!(net.parent(9), Some(old_parent));
        assert_eq!(snapshot(&net), before);
    }

    #[test]
    fn apply_revert_cycles_are_repeatable() {
        let mut net = ieee13();
        let before = snapshot(&net);
        let mut d = TopologyDelta::outage(&net, 4).unwrap();
        for _ in 0..3 {
            d.apply(&mut net).unwrap();
            d.revert(&mut net).unwrap();
        }
        assert_eq!(snapshot(&net), before);
    }

    #[test]
    fn structured_errors_cover_the_misuse_space() {
        let mut net = ieee13();
        let n = net.num_buses();
        assert_eq!(
            TopologyDelta::outage(&net, n).unwrap_err(),
            DeltaError::BadBus { id: n, n }
        );
        assert_eq!(TopologyDelta::outage(&net, 0).unwrap_err(), DeltaError::RootDelta);
        assert_eq!(
            TopologyDelta::impedance(&net, 3, Complex::ZERO).unwrap_err(),
            DeltaError::BadImpedance
        );
        assert_eq!(
            TopologyDelta::impedance(&net, 3, c(-1.0, 0.5)).unwrap_err(),
            DeltaError::BadImpedance
        );
        // Splicing 6 under its own descendant 12 would orphan the subtree.
        assert_eq!(
            TopologyDelta::splice(&net, 6, 12, c(0.1, 0.1)).unwrap_err(),
            DeltaError::CycleSplice { bus: 6, new_parent: 12 }
        );
        // Self-splice is the degenerate cycle.
        assert_eq!(
            TopologyDelta::splice(&net, 6, 6, c(0.1, 0.1)).unwrap_err(),
            DeltaError::CycleSplice { bus: 6, new_parent: 6 }
        );
        let mut d = TopologyDelta::outage(&net, 4).unwrap();
        assert_eq!(d.revert(&mut net).unwrap_err(), DeltaError::NotApplied);
        d.apply(&mut net).unwrap();
        assert_eq!(d.apply(&mut net).unwrap_err(), DeltaError::AlreadyApplied);
        // Wrong network: different bus count is detected.
        let (mut bigger, _) =
            crate::edit::with_lateral(&net, 1, &[c(1e3, 0.0)], c(0.1, 0.05)).unwrap();
        assert_eq!(
            d.revert(&mut bigger).unwrap_err(),
            DeltaError::WrongNetwork { expect: n, got: n + 1 }
        );
        assert!(d.is_applied(), "failed revert leaves the delta applied");
        d.revert(&mut net).unwrap();
    }
}
