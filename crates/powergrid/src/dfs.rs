//! Depth-first (preorder) topology layout.
//!
//! The complement of [`crate::LevelOrder`]: in preorder, every subtree is
//! a *contiguous* range `[d, d + size)`, which turns the backward sweep's
//! subtree sums into differences of one whole-array prefix scan — the
//! basis of the depth-insensitive "jump" solver (`fbs::JumpSolver`) that
//! removes the per-level kernel launches the paper's topology discussion
//! identifies as the deep-tree bottleneck.

use crate::levels::LayoutError;
use crate::network::RadialNetwork;

/// Sentinel for "no parent" (the root's parent pointer).
pub const DFS_NO_PARENT: u32 = u32::MAX;

/// Preorder permutation and per-position subtree metadata.
#[derive(Clone, Debug)]
pub struct DfsOrder {
    /// `order[d]` = bus id at preorder position `d` (position 0 = root).
    pub order: Vec<u32>,
    /// Inverse permutation: `pos_of[bus]` = its preorder position.
    pub pos_of: Vec<u32>,
    /// Parent preorder position per position ([`DFS_NO_PARENT`] at root).
    pub parent_pos: Vec<u32>,
    /// Subtree size (bus count including self) per position; the subtree
    /// of position `d` occupies `[d, d + subtree_size[d])`.
    pub subtree_size: Vec<u32>,
    /// Depth (edges from the root) per position.
    pub depth: Vec<u32>,
    /// Maximum depth over all buses.
    pub max_depth: u32,
}

impl DfsOrder {
    /// Computes the preorder layout of a network (iterative DFS — deep
    /// chains must not overflow the call stack).
    pub fn new(net: &RadialNetwork) -> Self {
        let edges: Vec<(u32, u32)> =
            net.branches().iter().map(|br| (br.from as u32, br.to as u32)).collect();
        Self::from_edges(net.num_buses(), net.root(), &edges)
    }

    /// Preorder layout of any validated radial edge list (shared by the
    /// single- and three-phase network types). Panics (with the orphan
    /// set) on inputs [`DfsOrder::try_from_edges`] rejects — previously
    /// an unreachable bus was only a `debug_assert`, and release builds
    /// indexed out of bounds in the subtree-size pass.
    pub fn from_edges(n: usize, root: usize, edges: &[(u32, u32)]) -> Self {
        assert_eq!(edges.len(), n.saturating_sub(1), "radial edge count");
        Self::try_from_edges(n, root, edges)
            .unwrap_or_else(|e| panic!("from_edges on an invalid edge list: {e}"))
    }

    /// Fallible [`DfsOrder::from_edges`] for edge lists that may not span
    /// every bus — the post-outage case. Accepts any forest-shaped list
    /// (`edges.len() ≤ n − 1`); buses the DFS never reaches are reported
    /// as an explicit orphan set.
    pub fn try_from_edges(n: usize, root: usize, edges: &[(u32, u32)]) -> Result<Self, LayoutError> {
        assert!(root < n, "root bus out of range");
        let mut has_parent = vec![false; n];
        for &(from, to) in edges {
            if from as usize >= n || to as usize >= n {
                return Err(LayoutError::BadEdge { from, to, n });
            }
            if to as usize == root {
                return Err(LayoutError::RootHasParent);
            }
            if has_parent[to as usize] {
                return Err(LayoutError::DuplicateParent(to));
            }
            has_parent[to as usize] = true;
        }

        // Children adjacency in edge-insertion order.
        let mut child_count = vec![0u32; n];
        for &(from, _) in edges {
            child_count[from as usize] += 1;
        }
        let mut adj_off = vec![0u32; n + 1];
        for i in 0..n {
            adj_off[i + 1] = adj_off[i] + child_count[i];
        }
        let mut adj = vec![0u32; edges.len()];
        let mut cursor = adj_off.clone();
        for &(from, to) in edges {
            adj[cursor[from as usize] as usize] = to;
            cursor[from as usize] += 1;
        }

        let mut order = Vec::with_capacity(n);
        let mut pos_of = vec![u32::MAX; n];
        let mut parent_pos = Vec::with_capacity(n);
        let mut depth = Vec::with_capacity(n);
        let mut subtree_size = vec![1u32; n];
        let mut max_depth = 0u32;

        // Explicit stack of (bus, parent_pos, depth); children pushed in
        // reverse so preorder visits them in adjacency order.
        let mut stack: Vec<(u32, u32, u32)> = vec![(root as u32, DFS_NO_PARENT, 0)];
        while let Some((bus, par, d)) = stack.pop() {
            let pos = order.len() as u32;
            pos_of[bus as usize] = pos;
            order.push(bus);
            parent_pos.push(par);
            depth.push(d);
            max_depth = max_depth.max(d);
            let (lo, hi) = (adj_off[bus as usize], adj_off[bus as usize + 1]);
            for k in (lo..hi).rev() {
                stack.push((adj[k as usize], pos, d + 1));
            }
        }
        if order.len() < n {
            let orphans: Vec<u32> =
                (0..n as u32).filter(|&b| pos_of[b as usize] == u32::MAX).collect();
            return Err(LayoutError::Unreachable { orphans });
        }

        // Subtree sizes: positions descend, a child always has a higher
        // position than its parent, so one reverse pass accumulates.
        for pos in (1..n).rev() {
            let par = parent_pos[pos] as usize;
            subtree_size[par] += subtree_size[pos];
        }

        Ok(DfsOrder { order, pos_of, parent_pos, subtree_size, depth, max_depth })
    }

    /// Bus count.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Never empty after network validation.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Permutes a by-bus attribute array into preorder.
    pub fn permute<T: Copy>(&self, by_bus: &[T]) -> Vec<T> {
        assert_eq!(by_bus.len(), self.len(), "permute: length mismatch");
        self.order.iter().map(|&b| by_bus[b as usize]).collect()
    }

    /// Un-permutes a by-position array back to bus order.
    pub fn unpermute<T: Copy>(&self, by_pos: &[T]) -> Vec<T> {
        assert_eq!(by_pos.len(), self.len(), "unpermute: length mismatch");
        let mut out = vec![by_pos[0]; self.len()];
        for (p, &b) in self.order.iter().enumerate() {
            out[b as usize] = by_pos[p];
        }
        out
    }

    /// Internal consistency check: permutation validity, subtree
    /// contiguity, parent/depth relations. Panics with a description.
    pub fn check_invariants(&self) {
        let n = self.len();
        for d in 0..n {
            assert_eq!(self.pos_of[self.order[d] as usize] as usize, d, "inverse permutation");
            let m = self.subtree_size[d] as usize;
            assert!(d + m <= n, "subtree range in bounds");
            if d == 0 {
                assert_eq!(self.parent_pos[0], DFS_NO_PARENT);
                assert_eq!(self.depth[0], 0);
                assert_eq!(m, n, "root subtree is everything");
            } else {
                let par = self.parent_pos[d] as usize;
                assert!(par < d, "preorder parents precede children");
                assert_eq!(self.depth[d], self.depth[par] + 1, "depth increments");
                // Child range nests inside the parent range.
                let pm = self.subtree_size[par] as usize;
                assert!(d + m <= par + pm, "subtree nesting at {d}");
            }
        }
        // Every position except descendants-of-previous starts after its
        // parent's position + ...: covered by nesting; also total depth.
        assert_eq!(self.depth.iter().copied().max().unwrap_or(0), self.max_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use numc::{c, Complex};

    /// Same example tree as the level-order tests:
    /// 0 → {1, 2, 3}; 1 → {4, 5}; 3 → {6}; 6 → {7}.
    fn example() -> RadialNetwork {
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        for _ in 0..8 {
            b.add_bus(Complex::ZERO);
        }
        for (f, t) in [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (3, 6), (6, 7)] {
            b.connect(f, t, c(0.1, 0.05));
        }
        b.build().unwrap()
    }

    #[test]
    fn preorder_of_example() {
        let dfs = DfsOrder::new(&example());
        dfs.check_invariants();
        // Preorder: 0, 1, 4, 5, 2, 3, 6, 7.
        assert_eq!(dfs.order, vec![0, 1, 4, 5, 2, 3, 6, 7]);
        assert_eq!(dfs.subtree_size, vec![8, 3, 1, 1, 1, 3, 2, 1]);
        assert_eq!(dfs.depth, vec![0, 1, 2, 2, 1, 1, 2, 3]);
        assert_eq!(dfs.max_depth, 3);
        // Subtree of bus 3 (position 5) is positions 5..8 = buses {3,6,7}.
        assert_eq!(&dfs.order[5..8], &[3, 6, 7]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 200_000;
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        for _ in 0..n {
            b.add_bus(Complex::ZERO);
        }
        for i in 0..n - 1 {
            b.connect(i, i + 1, c(0.1, 0.0));
        }
        let dfs = DfsOrder::new(&b.build().unwrap());
        assert_eq!(dfs.max_depth, (n - 1) as u32);
        assert_eq!(dfs.subtree_size[0], n as u32);
        assert_eq!(dfs.subtree_size[n - 1], 1);
    }

    #[test]
    fn shuffled_ids_keep_invariants() {
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        for _ in 0..8 {
            b.add_bus(Complex::ZERO);
        }
        for (f, t) in [(1, 6), (0, 5), (5, 7), (0, 3), (6, 4), (0, 1), (5, 2)] {
            b.connect(f, t, c(0.1, 0.05));
        }
        let net = b.build().unwrap();
        let dfs = DfsOrder::new(&net);
        dfs.check_invariants();
        assert_eq!(dfs.subtree_size[0], 8);
    }

    #[test]
    fn permute_roundtrip() {
        let dfs = DfsOrder::new(&example());
        let by_bus: Vec<u32> = (0..8).map(|i| i * 3).collect();
        assert_eq!(dfs.unpermute(&dfs.permute(&by_bus)), by_bus);
    }

    #[test]
    fn single_bus() {
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        b.add_bus(Complex::ZERO);
        let dfs = DfsOrder::new(&b.build().unwrap());
        dfs.check_invariants();
        assert_eq!(dfs.subtree_size, vec![1]);
        assert_eq!(dfs.max_depth, 0);
    }

    // ---- try_from_edges regression tests (the post-outage case):
    // before the fallible path existed, an unreachable bus was only a
    // debug_assert and release builds indexed out of bounds below it.

    #[test]
    fn cut_branch_reports_its_stranded_subtree() {
        use crate::levels::LayoutError;
        // example() minus the (3, 6) branch: buses 6 and 7 are stranded.
        let edges = [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (6, 7)];
        let err = DfsOrder::try_from_edges(8, 0, &edges).unwrap_err();
        assert_eq!(err, LayoutError::Unreachable { orphans: vec![6, 7] });
    }

    #[test]
    fn detached_cycle_is_a_structured_error_not_oob() {
        use crate::levels::LayoutError;
        let err = DfsOrder::try_from_edges(4, 0, &[(0, 1), (2, 3), (3, 2)]).unwrap_err();
        assert_eq!(err, LayoutError::Unreachable { orphans: vec![2, 3] });
    }

    #[test]
    fn full_span_try_matches_from_edges() {
        let net = example();
        let edges: Vec<(u32, u32)> =
            net.branches().iter().map(|br| (br.from as u32, br.to as u32)).collect();
        let dfs = DfsOrder::try_from_edges(8, 0, &edges).unwrap();
        dfs.check_invariants();
        assert_eq!(dfs.order, DfsOrder::new(&net).order);
        assert_eq!(dfs.subtree_size, DfsOrder::new(&net).subtree_size);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn from_edges_panics_loudly_on_orphans() {
        let _ = DfsOrder::from_edges(4, 0, &[(0, 1), (2, 3), (3, 2)]);
    }
}
