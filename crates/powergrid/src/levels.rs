//! Level-ordered topology — the data layout of the paper's GPU method.
//!
//! Buses are permuted into BFS *level order* with one extra guarantee:
//! within each level, **children of the same parent are contiguous**
//! (FIFO BFS gives this for free). The layout is what makes the GPU
//! sweeps data-parallel:
//!
//! * a level is a contiguous slice → one kernel launch per level;
//! * a parent's children form a *segment* of the next level → summing
//!   child branch currents is a head-flag segmented reduction;
//! * the whole permutation is computed once per topology and reused every
//!   iteration (topology is static during a solve).
//!
//! Everything here is in *position* space (`0..n` in level order); the
//! [`LevelOrder::order`] / [`LevelOrder::pos_of`] arrays convert to and
//! from bus ids.

use crate::network::RadialNetwork;

/// Sentinel for "no parent" (the root position's parent).
pub const NO_PARENT: u32 = u32::MAX;

/// Why a topology layout could not be built from a raw edge list.
///
/// A *validated* [`RadialNetwork`] can never trip these, but the delta
/// workflows (line outage, splice preview) hand the layout builders edge
/// lists that are no longer guaranteed to span every bus — most
/// importantly the post-outage case, where cutting one branch strands an
/// entire subtree. Before this error existed, [`LevelOrder::from_edges`]
/// silently produced garbage on such inputs (a short `order` with
/// `u32::MAX` holes in `pos_of`) and [`DfsOrder::from_edges`] indexed out
/// of bounds in release builds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// An edge endpoint names a bus outside `0..n`.
    BadEdge {
        /// Upstream bus id.
        from: u32,
        /// Downstream bus id.
        to: u32,
        /// Bus count.
        n: usize,
    },
    /// An edge's downstream end is the root (the root has no parent).
    RootHasParent,
    /// Two edges feed the same downstream bus.
    DuplicateParent(u32),
    /// Traversal from the root did not reach these buses (sorted ids).
    Unreachable {
        /// Every bus the traversal never visited.
        orphans: Vec<u32>,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::BadEdge { from, to, n } => {
                write!(f, "edge {from}→{to} references a bus outside 0..{n}")
            }
            LayoutError::RootHasParent => write!(f, "an edge feeds the root bus"),
            LayoutError::DuplicateParent(b) => write!(f, "bus {b} has two upstream edges"),
            LayoutError::Unreachable { orphans } => {
                write!(f, "{} bus(es) unreachable from the root (first: {:?})",
                    orphans.len(), orphans.first())
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// The level-order permutation and per-position topology arrays.
#[derive(Clone, Debug)]
pub struct LevelOrder {
    /// `order[p]` = bus id at position `p` (position 0 is the root).
    pub order: Vec<u32>,
    /// Inverse permutation: `pos_of[bus]` = its position.
    pub pos_of: Vec<u32>,
    /// Level `l` occupies positions `level_offsets[l] ..
    /// level_offsets[l+1]`; `level_offsets.len() == num_levels() + 1`.
    pub level_offsets: Vec<u32>,
    /// Parent position per position ([`NO_PARENT`] at the root).
    pub parent_pos: Vec<u32>,
    /// First child position per position (`child_lo[p] == child_hi[p]`
    /// for leaves).
    pub child_lo: Vec<u32>,
    /// One past the last child position per position.
    pub child_hi: Vec<u32>,
    /// 1 where a position is the first child of its parent (and at the
    /// root) — the segmented-scan head flags.
    pub head_flags: Vec<u32>,
}

impl LevelOrder {
    /// Computes the level order of a network by FIFO BFS from the root.
    pub fn new(net: &RadialNetwork) -> Self {
        let edges: Vec<(u32, u32)> =
            net.branches().iter().map(|br| (br.from as u32, br.to as u32)).collect();
        Self::from_edges(net.num_buses(), net.root(), &edges)
    }

    /// Computes the level order of any validated radial edge list
    /// (`(from, to)` pairs, one per non-root bus) — shared by the
    /// single- and three-phase network types. Panics (with the orphan
    /// set) on inputs [`LevelOrder::try_from_edges`] rejects.
    pub fn from_edges(n: usize, root: usize, edges: &[(u32, u32)]) -> Self {
        assert_eq!(edges.len(), n.saturating_sub(1), "radial edge count");
        Self::try_from_edges(n, root, edges)
            .unwrap_or_else(|e| panic!("from_edges on an invalid edge list: {e}"))
    }

    /// Fallible [`LevelOrder::from_edges`] for edge lists that may not
    /// span every bus — the post-outage case. Accepts any forest-shaped
    /// list (`edges.len() ≤ n − 1`); buses the BFS never reaches are
    /// reported as an explicit orphan set instead of silently producing
    /// a truncated layout.
    pub fn try_from_edges(n: usize, root: usize, edges: &[(u32, u32)]) -> Result<Self, LayoutError> {
        assert!(root < n, "root bus out of range");
        let mut has_parent = vec![false; n];
        for &(from, to) in edges {
            if from as usize >= n || to as usize >= n {
                return Err(LayoutError::BadEdge { from, to, n });
            }
            if to as usize == root {
                return Err(LayoutError::RootHasParent);
            }
            if has_parent[to as usize] {
                return Err(LayoutError::DuplicateParent(to));
            }
            has_parent[to as usize] = true;
        }

        // Children adjacency in edge-insertion order (deterministic).
        let mut child_count = vec![0u32; n];
        for &(from, _) in edges {
            child_count[from as usize] += 1;
        }
        let mut adj_off = vec![0u32; n + 1];
        for i in 0..n {
            adj_off[i + 1] = adj_off[i] + child_count[i];
        }
        let mut adj = vec![0u32; edges.len()];
        let mut cursor = adj_off.clone();
        for &(from, to) in edges {
            adj[cursor[from as usize] as usize] = to;
            cursor[from as usize] += 1;
        }

        let mut order = Vec::with_capacity(n);
        let mut pos_of = vec![u32::MAX; n];
        let mut parent_pos = Vec::with_capacity(n);
        let mut child_lo = vec![0u32; n];
        let mut child_hi = vec![0u32; n];
        let mut level_offsets = vec![0u32];

        // FIFO BFS: `order` doubles as the queue (head = next position to
        // process, tail = next position to assign).
        order.push(root as u32);
        pos_of[root] = 0;
        parent_pos.push(NO_PARENT);
        let mut head = 0usize;
        let mut level_end = 1usize;
        while head < order.len() {
            if head == level_end {
                level_offsets.push(level_end as u32);
                level_end = order.len();
            }
            let bus = order[head] as usize;
            let p = head as u32;
            child_lo[head] = order.len() as u32;
            for k in adj_off[bus]..adj_off[bus + 1] {
                let c = adj[k as usize];
                pos_of[c as usize] = order.len() as u32;
                order.push(c);
                parent_pos.push(p);
            }
            child_hi[head] = order.len() as u32;
            head += 1;
        }
        if order.len() < n {
            let orphans: Vec<u32> =
                (0..n as u32).filter(|&b| pos_of[b as usize] == u32::MAX).collect();
            return Err(LayoutError::Unreachable { orphans });
        }
        level_offsets.push(n as u32);

        let mut head_flags = vec![0u32; n];
        head_flags[0] = 1;
        for p in 0..n {
            let lo = child_lo[p] as usize;
            if lo < child_hi[p] as usize {
                head_flags[lo] = 1;
            }
        }

        Ok(LevelOrder { order, pos_of, level_offsets, parent_pos, child_lo, child_hi, head_flags })
    }

    /// Number of buses.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the (impossible after validation) empty layout.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of BFS levels (a 1-bus network has 1 level).
    pub fn num_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Position range of level `l`.
    pub fn level_range(&self, l: usize) -> std::ops::Range<usize> {
        self.level_offsets[l] as usize..self.level_offsets[l + 1] as usize
    }

    /// Width (bus count) of level `l`.
    pub fn level_width(&self, l: usize) -> usize {
        self.level_range(l).len()
    }

    /// Mean level width = n / depth; the paper's topology discussion
    /// turns on this number (wide levels parallelise, narrow ones pay
    /// launch overhead).
    pub fn mean_level_width(&self) -> f64 {
        self.len() as f64 / self.num_levels() as f64
    }

    /// Permutes a by-bus attribute array into position order.
    pub fn permute<T: Copy>(&self, by_bus: &[T]) -> Vec<T> {
        assert_eq!(by_bus.len(), self.len(), "permute: length mismatch");
        self.order.iter().map(|&b| by_bus[b as usize]).collect()
    }

    /// Un-permutes a by-position array back to bus order.
    pub fn unpermute<T: Copy>(&self, by_pos: &[T]) -> Vec<T> {
        assert_eq!(by_pos.len(), self.len(), "unpermute: length mismatch");
        let mut out = vec![by_pos[0]; self.len()];
        for (p, &b) in self.order.iter().enumerate() {
            out[b as usize] = by_pos[p];
        }
        out
    }

    /// Internal consistency check (used by tests and debug assertions):
    /// verifies the permutation, level monotonicity, child contiguity and
    /// head flags. Panics with a description on violation.
    pub fn check_invariants(&self) {
        let n = self.len();
        assert_eq!(self.pos_of.len(), n);
        assert_eq!(self.parent_pos.len(), n);
        assert_eq!(self.head_flags.len(), n);
        // order/pos_of are inverse permutations.
        for p in 0..n {
            assert_eq!(self.pos_of[self.order[p] as usize] as usize, p, "inverse permutation");
        }
        // Levels tile 0..n.
        assert_eq!(*self.level_offsets.first().unwrap(), 0);
        assert_eq!(*self.level_offsets.last().unwrap() as usize, n);
        assert!(self.level_offsets.windows(2).all(|w| w[0] < w[1]), "empty level");
        // Parents live exactly one level up; children are contiguous.
        for l in 0..self.num_levels() {
            for p in self.level_range(l) {
                if l == 0 {
                    assert_eq!(self.parent_pos[p], NO_PARENT);
                } else {
                    let pp = self.parent_pos[p] as usize;
                    assert!(self.level_range(l - 1).contains(&pp), "parent one level up");
                    assert!(
                        (self.child_lo[pp] as usize..self.child_hi[pp] as usize).contains(&p),
                        "child within parent range"
                    );
                }
                let first_of_parent = p == 0
                    || (self.parent_pos[p] != NO_PARENT
                        && self.child_lo[self.parent_pos[p] as usize] as usize == p);
                assert_eq!(self.head_flags[p] != 0, first_of_parent, "head flag at {p}");
            }
        }
        // Child ranges tile the non-root positions exactly once, and each
        // child's parent pointer agrees with the range that claims it —
        // together these reject duplicated or dropped buses that the
        // per-position checks above cannot see.
        let mut claimed = 0usize;
        for p in 0..n {
            let (lo, hi) = (self.child_lo[p] as usize, self.child_hi[p] as usize);
            assert!(lo <= hi && hi <= n, "child range bounds at {p}");
            for c in lo..hi {
                assert_eq!(self.parent_pos[c] as usize, p, "child {c} claims another parent");
            }
            claimed += hi - lo;
        }
        assert_eq!(claimed, n - 1, "child ranges must tile the non-root positions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use numc::{c, Complex};

    /// Builds the example tree:
    /// ```text
    ///        0
    ///      / | \
    ///     1  2  3
    ///    /|     |
    ///   4 5     6
    ///           |
    ///           7
    /// ```
    fn example() -> RadialNetwork {
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        for _ in 0..8 {
            b.add_bus(Complex::ZERO);
        }
        for (f, t) in [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (3, 6), (6, 7)] {
            b.connect(f, t, c(0.1, 0.05));
        }
        b.build().unwrap()
    }

    use crate::network::RadialNetwork;

    #[test]
    fn example_levels_are_correct() {
        let lo = LevelOrder::new(&example());
        lo.check_invariants();
        assert_eq!(lo.len(), 8);
        assert_eq!(lo.num_levels(), 4);
        assert_eq!(lo.order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(lo.level_offsets, vec![0, 1, 4, 7, 8]);
        assert_eq!(lo.level_width(0), 1);
        assert_eq!(lo.level_width(1), 3);
        assert_eq!(lo.level_width(2), 3);
        assert_eq!(lo.level_width(3), 1);
        assert_eq!(lo.parent_pos[4], 1);
        assert_eq!(lo.parent_pos[6], 3);
        assert_eq!(lo.parent_pos[7], 6);
        // Children ranges.
        assert_eq!((lo.child_lo[0], lo.child_hi[0]), (1, 4));
        assert_eq!((lo.child_lo[1], lo.child_hi[1]), (4, 6));
        assert_eq!((lo.child_lo[2], lo.child_hi[2]), (6, 6)); // leaf
        assert_eq!((lo.child_lo[3], lo.child_hi[3]), (6, 7));
        // Head flags: root, first children of 0, 1, 3, 6.
        assert_eq!(lo.head_flags, vec![1, 1, 0, 0, 1, 0, 1, 1]);
    }

    #[test]
    fn shuffled_bus_ids_still_level_order() {
        // Same shape as `example` but bus ids permuted and branches in
        // scrambled insertion order.
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        for _ in 0..8 {
            b.add_bus(Complex::ZERO);
        }
        // root = 0; map example ids {1→5, 2→3, 3→1, 4→7, 5→2, 6→6, 7→4}.
        for (f, t) in [(1, 6), (0, 5), (5, 7), (0, 3), (6, 4), (0, 1), (5, 2)] {
            b.connect(f, t, c(0.1, 0.05));
        }
        let lo = LevelOrder::new(&b.build().unwrap());
        lo.check_invariants();
        assert_eq!(lo.num_levels(), 4);
        assert_eq!(lo.level_offsets, vec![0, 1, 4, 7, 8]);
    }

    #[test]
    fn single_bus_network() {
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        b.add_bus(Complex::ZERO);
        let lo = LevelOrder::new(&b.build().unwrap());
        lo.check_invariants();
        assert_eq!(lo.len(), 1);
        assert_eq!(lo.num_levels(), 1);
        assert_eq!(lo.head_flags, vec![1]);
        assert_eq!(lo.parent_pos, vec![NO_PARENT]);
    }

    #[test]
    fn chain_has_n_levels() {
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        for _ in 0..5 {
            b.add_bus(Complex::ZERO);
        }
        for i in 0..4 {
            b.connect(i, i + 1, c(0.1, 0.0));
        }
        let lo = LevelOrder::new(&b.build().unwrap());
        lo.check_invariants();
        assert_eq!(lo.num_levels(), 5);
        assert!(lo.level_offsets.windows(2).all(|w| w[1] - w[0] == 1));
        assert_eq!(lo.mean_level_width(), 1.0);
    }

    #[test]
    fn star_has_two_levels() {
        let mut b = NetworkBuilder::new(c(1.0, 0.0));
        for _ in 0..6 {
            b.add_bus(Complex::ZERO);
        }
        for i in 1..6 {
            b.connect(0, i, c(0.1, 0.0));
        }
        let lo = LevelOrder::new(&b.build().unwrap());
        lo.check_invariants();
        assert_eq!(lo.num_levels(), 2);
        assert_eq!(lo.level_width(1), 5);
        // Exactly one head flag in level 1 (all children share the root).
        let flags: u32 = lo.level_range(1).map(|p| lo.head_flags[p]).sum();
        assert_eq!(flags, 1);
    }

    #[test]
    fn permute_roundtrip() {
        let lo = LevelOrder::new(&example());
        let by_bus: Vec<f64> = (0..8).map(|i| i as f64 * 10.0).collect();
        let by_pos = lo.permute(&by_bus);
        assert_eq!(lo.unpermute(&by_pos), by_bus);
    }

    // ---- try_from_edges regression tests: edge lists with buses
    // unreachable from the root (the post-outage case) must surface a
    // structured orphan set, never silent garbage.

    #[test]
    fn cut_branch_reports_its_stranded_subtree() {
        // example() minus the (3, 6) branch: buses 6 and 7 are stranded.
        let edges = [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (6, 7)];
        let err = LevelOrder::try_from_edges(8, 0, &edges).unwrap_err();
        assert_eq!(err, LayoutError::Unreachable { orphans: vec![6, 7] });
    }

    #[test]
    fn detached_cycle_is_unreachable_not_a_hang() {
        let edges = [(0, 1), (2, 3), (3, 2)];
        let err = LevelOrder::try_from_edges(4, 0, &edges).unwrap_err();
        assert!(matches!(err, LayoutError::DuplicateParent(2) | LayoutError::Unreachable { .. }));
    }

    #[test]
    fn full_span_try_matches_from_edges() {
        let net = example();
        let edges: Vec<(u32, u32)> =
            net.branches().iter().map(|br| (br.from as u32, br.to as u32)).collect();
        let lo = LevelOrder::try_from_edges(8, 0, &edges).unwrap();
        lo.check_invariants();
        assert_eq!(lo.order, LevelOrder::new(&net).order);
    }

    #[test]
    fn bad_endpoint_and_root_edge_are_structured_errors() {
        assert_eq!(
            LevelOrder::try_from_edges(3, 0, &[(0, 1), (1, 9)]).unwrap_err(),
            LayoutError::BadEdge { from: 1, to: 9, n: 3 }
        );
        assert_eq!(
            LevelOrder::try_from_edges(3, 0, &[(1, 0), (1, 2)]).unwrap_err(),
            LayoutError::RootHasParent
        );
        assert_eq!(
            LevelOrder::try_from_edges(3, 0, &[(0, 2), (1, 2)]).unwrap_err(),
            LayoutError::DuplicateParent(2)
        );
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn from_edges_panics_loudly_on_orphans() {
        // Right edge count (n−1 = 3) but buses 2 and 3 form a detached
        // cycle — the panicking wrapper must name the problem instead of
        // returning a truncated layout.
        let _ = LevelOrder::from_edges(4, 0, &[(0, 1), (2, 3), (3, 2)]);
    }

    #[test]
    fn error_display_names_the_orphans() {
        let e = LayoutError::Unreachable { orphans: vec![4, 5] };
        assert!(e.to_string().contains("2 bus(es)"));
        assert!(LayoutError::RootHasParent.to_string().contains("root"));
    }
}
