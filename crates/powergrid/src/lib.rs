//! # powergrid — radial distribution-network modeling
//!
//! The power-system substrate of the forward-backward sweep
//! reproduction: network model with radiality validation
//! ([`RadialNetwork`], [`NetworkBuilder`]), the BFS [`LevelOrder`] layout
//! that makes the GPU sweeps data-parallel, synthetic topology
//! generators ([`gen`] — including the paper's balanced binary trees),
//! IEEE-style test feeders ([`ieee`]) and a text serialization format
//! ([`gridfile`]).
//!
//! Loads are constant-power (`S = P + jQ`, volt-amperes), branches are
//! series impedances (ohms), and the root bus is the substation (slack).
//!
//! ```
//! use powergrid::{gen, LevelOrder};
//! use rng::SeedableRng;
//!
//! let mut rng = rng::rngs::StdRng::seed_from_u64(1);
//! let net = gen::balanced_binary(1023, &gen::GenSpec::default(), &mut rng);
//! let levels = LevelOrder::new(&net);
//! assert_eq!(levels.num_levels(), 10);
//! ```

#![warn(missing_docs)]

pub mod delta;
mod dfs;
pub mod edit;
pub mod gen;
pub mod gridfile;
pub mod gridfile3;
pub mod ieee;
pub mod mesh;
pub mod pu;
pub mod three_phase;
mod levels;
mod network;

pub use delta::{DeltaError, DeltaOp, TopologyDelta};
pub use dfs::{DfsOrder, DFS_NO_PARENT};
pub use levels::{LayoutError, LevelOrder, NO_PARENT};
pub use mesh::{BreakPoint, MeshError, MeshedNetwork, MeshedNetworkBuilder, PvBus, TieSwitch};
pub use network::{Branch, Bus, NetworkBuilder, NetworkError, RadialNetwork};
