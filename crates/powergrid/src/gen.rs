//! Synthetic topology generators — the paper's workloads.
//!
//! The abstract evaluates on *balanced binary trees of 1K–256K buses*;
//! [`balanced_binary`] generates exactly those. The topology-discussion
//! experiment (E4) additionally uses [`chain`], [`star`], [`balanced_kary`],
//! [`caterpillar`], [`broom`] and [`random_tree`] to sweep the mean level
//! width at fixed bus count.
//!
//! ## Electrical feasibility
//!
//! Synthetic trees have a physics trap: with branch impedances drawn
//! independently of the topology, a 256K-bus chain drops gigavolts and
//! FBS diverges. Generators therefore size impedances *after* the shape
//! is fixed: [`GenSpec::target_drop`] sets the worst-case flat-voltage
//! drop as a fraction of nominal (default 5%), and branch impedances are
//! scaled so the most-loaded root-to-leaf path meets it. The scaling is
//! documented in `DESIGN.md` as part of the synthetic-workload
//! substitution.

use numc::{c, Complex};
use rng::Rng;

use crate::network::{NetworkBuilder, RadialNetwork};

/// Parameters for synthetic networks.
#[derive(Clone, Debug)]
pub struct GenSpec {
    /// Source (slack) phase voltage, volts. Default 7200 V (a 12.47 kV
    /// three-phase feeder's line-to-neutral voltage).
    pub source_volts: f64,
    /// Total connected real power, watts, split across buses. Default
    /// 2 MW.
    pub total_kw: f64,
    /// Load power factor range (lagging), drawn per bus.
    pub power_factor: (f64, f64),
    /// Per-bus load jitter: each bus gets `mean · U(1−j, 1+j)`.
    pub load_jitter: f64,
    /// Worst-case flat-voltage drop target as a fraction of nominal;
    /// branch impedances are scaled to meet it.
    pub target_drop: f64,
    /// Branch X/R ratio.
    pub x_over_r: f64,
    /// Per-branch impedance jitter (multiplicative, uniform).
    pub z_jitter: f64,
}

impl Default for GenSpec {
    fn default() -> Self {
        GenSpec {
            source_volts: 7200.0,
            total_kw: 2_000.0,
            power_factor: (0.85, 0.98),
            load_jitter: 0.5,
            target_drop: 0.05,
            x_over_r: 0.5,
            z_jitter: 0.3,
        }
    }
}

/// Balanced binary distribution tree of `n` buses (the paper's workload).
pub fn balanced_binary(n: usize, spec: &GenSpec, rng: &mut impl Rng) -> RadialNetwork {
    balanced_kary(n, 2, spec, rng)
}

/// Balanced `k`-ary tree of `n` buses: bus `i`'s children are
/// `k·i+1 ..= k·i+k` (level order by construction).
pub fn balanced_kary(n: usize, k: usize, spec: &GenSpec, rng: &mut impl Rng) -> RadialNetwork {
    assert!(k >= 1, "k-ary tree needs k >= 1");
    from_parent_fn(n, spec, rng, |i| if i == 0 { None } else { Some((i - 1) / k) })
}

/// Chain (feeder with no laterals) — the deepest topology, worst case for
/// level-parallel GPU execution.
pub fn chain(n: usize, spec: &GenSpec, rng: &mut impl Rng) -> RadialNetwork {
    from_parent_fn(n, spec, rng, |i| i.checked_sub(1))
}

/// Star — every load bus hangs off the substation; the shallowest
/// topology, best case for level-parallel execution.
pub fn star(n: usize, spec: &GenSpec, rng: &mut impl Rng) -> RadialNetwork {
    from_parent_fn(n, spec, rng, |i| (i > 0).then_some(0))
}

/// Caterpillar: a spine of `n / (1 + leaves_per_spine)` buses, each spine
/// bus carrying `leaves_per_spine` leaf laterals — the shape of many real
/// feeders (a main trunk with short laterals).
pub fn caterpillar(n: usize, leaves_per_spine: usize, spec: &GenSpec, rng: &mut impl Rng) -> RadialNetwork {
    let stride = 1 + leaves_per_spine;
    from_parent_fn(n, spec, rng, move |i| {
        if i == 0 {
            return None;
        }
        let (seg, off) = (i / stride, i % stride);
        if off == 0 {
            // Next spine bus hangs off the previous spine bus.
            Some((seg - 1) * stride)
        } else {
            // Leaves hang off their segment's spine bus.
            Some(seg * stride)
        }
    })
}

/// Broom: a chain handle of `handle` buses ending in a star of the
/// remaining buses — pathological mix of depth and width.
pub fn broom(n: usize, handle: usize, spec: &GenSpec, rng: &mut impl Rng) -> RadialNetwork {
    assert!(handle >= 1 && handle <= n, "broom handle must be 1..=n");
    from_parent_fn(n, spec, rng, move |i| {
        if i == 0 {
            None
        } else if i < handle {
            Some(i - 1)
        } else {
            Some(handle - 1)
        }
    })
}

/// Random tree: bus `i`'s parent is uniform over the previous
/// `min(i, window)` buses. Small windows give deep, skewed trees; large
/// windows give shallow bushy ones.
pub fn random_tree(n: usize, window: usize, spec: &GenSpec, rng: &mut impl Rng) -> RadialNetwork {
    assert!(window >= 1, "random tree needs window >= 1");
    let parents: Vec<usize> = (0..n)
        .map(|i| {
            if i == 0 {
                usize::MAX
            } else {
                let lo = i.saturating_sub(window);
                rng.gen_range(lo..i)
            }
        })
        .collect();
    from_parent_fn(n, spec, rng, move |i| (i > 0).then(|| parents[i]))
}

/// Core generator: builds a tree from a parent function, assigns random
/// loads summing to `spec.total_kw`, and sizes impedances for the
/// [`GenSpec::target_drop`] feasibility target.
pub fn from_parent_fn(
    n: usize,
    spec: &GenSpec,
    rng: &mut impl Rng,
    parent_of: impl Fn(usize) -> Option<usize>,
) -> RadialNetwork {
    assert!(n >= 1, "network needs at least one bus");
    let mut b = NetworkBuilder::with_capacity(c(spec.source_volts, 0.0), n);

    // Loads: the root carries none (substation); others jittered uniform.
    let mean_w = spec.total_kw * 1e3 / (n.max(2) - 1) as f64;
    let (j_lo, j_hi) = (1.0 - spec.load_jitter, 1.0 + spec.load_jitter);
    for i in 0..n {
        let load = if i == 0 {
            Complex::ZERO
        } else {
            let p = mean_w * rng.gen_range(j_lo..=j_hi);
            let pf: f64 = rng.gen_range(spec.power_factor.0..=spec.power_factor.1);
            let q = p * (1.0 / (pf * pf) - 1.0).sqrt();
            c(p, q)
        };
        b.add_bus(load);
    }

    // Placeholder unit impedances; retuned below once downstream loads
    // are known.
    let mut parent = vec![usize::MAX; n];
    for (i, slot) in parent.iter_mut().enumerate().skip(1) {
        let p = parent_of(i).expect("non-root bus must have a parent");
        *slot = p;
        b.connect(p, i, c(1.0, spec.x_over_r));
    }
    let mut net = b.build().expect("generator produced an invalid tree");

    size_impedances(&mut net, spec, rng, &parent);
    net
}

/// Scales branch impedances so the worst root-to-leaf flat-voltage drop
/// estimate equals `spec.target_drop` of nominal.
///
/// Flat-voltage estimate: branch current ≈ (downstream load) / V, so the
/// drop along a path is `Σ_path |z_unit|·scale·S_down / V`. We compute
/// `W = max over buses of Σ_path S_down` with unit-magnitude impedances
/// and set `scale = target_drop · V² / W`.
fn size_impedances(net: &mut RadialNetwork, spec: &GenSpec, rng: &mut impl Rng, parent: &[usize]) {
    let n = net.num_buses();
    if n == 1 {
        return;
    }
    // Downstream apparent power per bus (including own load): children
    // have higher ids than parents in every generator here? NOT true for
    // random trees… it is: parents are always < i. Rely on that.
    let mut down_va = vec![0.0f64; n];
    for i in (1..n).rev() {
        down_va[i] += net.buses()[i].load.abs();
        let p = parent[i];
        down_va[p] += down_va[i];
    }
    // Path-accumulated drop weight with unit |z|.
    let mut path_w = vec![0.0f64; n];
    let mut worst: f64 = 0.0;
    for i in 1..n {
        let w = path_w[parent[i]] + down_va[i];
        path_w[i] = w;
        worst = worst.max(w);
    }
    if worst == 0.0 {
        return; // no load anywhere; leave unit impedances
    }
    let v = net.source_voltage().abs();
    let scale = spec.target_drop * v * v / worst;
    let (z_lo, z_hi) = (1.0 - spec.z_jitter, 1.0 + spec.z_jitter);
    let unit = c(1.0, spec.x_over_r);
    let jitters: Vec<f64> = (0..net.num_branches()).map(|_| rng.gen_range(z_lo..=z_hi)).collect();
    net.retune_impedances(|i, _| unit * (scale * jitters[i]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelOrder;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn spec() -> GenSpec {
        GenSpec::default()
    }

    #[test]
    fn binary_tree_shape() {
        let net = balanced_binary(1023, &spec(), &mut rng());
        let lo = LevelOrder::new(&net);
        lo.check_invariants();
        assert_eq!(net.num_buses(), 1023);
        assert_eq!(lo.num_levels(), 10); // 2^10 − 1 buses
        assert_eq!(lo.level_width(9), 512);
        // Every non-leaf has exactly 2 children.
        let with_two =
            (0..1023).filter(|&p| lo.child_hi[p] - lo.child_lo[p] == 2).count();
        assert_eq!(with_two, 511);
    }

    #[test]
    fn kary_tree_shape() {
        let net = balanced_kary(100, 4, &spec(), &mut rng());
        let lo = LevelOrder::new(&net);
        lo.check_invariants();
        assert_eq!(lo.num_levels(), 5); // 1+4+16+64 = 85 < 100 ≤ 341
    }

    #[test]
    fn chain_star_extremes() {
        let ch = chain(50, &spec(), &mut rng());
        assert_eq!(LevelOrder::new(&ch).num_levels(), 50);
        let st = star(50, &spec(), &mut rng());
        assert_eq!(LevelOrder::new(&st).num_levels(), 2);
    }

    #[test]
    fn caterpillar_shape() {
        let net = caterpillar(40, 3, &spec(), &mut rng());
        let lo = LevelOrder::new(&net);
        lo.check_invariants();
        // Spine of 10 segments → depth ≈ 11 (spine + final leaves level).
        assert!(lo.num_levels() >= 10 && lo.num_levels() <= 12, "{}", lo.num_levels());
    }

    #[test]
    fn broom_shape() {
        let net = broom(100, 20, &spec(), &mut rng());
        let lo = LevelOrder::new(&net);
        lo.check_invariants();
        assert_eq!(lo.num_levels(), 21); // 20-deep handle + bristle level
        assert_eq!(lo.level_width(20), 80);
    }

    #[test]
    fn random_tree_valid_and_seeded_deterministic() {
        let a = random_tree(500, 8, &spec(), &mut rng());
        let b = random_tree(500, 8, &spec(), &mut rng());
        LevelOrder::new(&a).check_invariants();
        assert_eq!(a.num_buses(), 500);
        // Same seed → identical networks.
        for (x, y) in a.branches().iter().zip(b.branches()) {
            assert_eq!(x, y);
        }
        for (x, y) in a.buses().iter().zip(b.buses()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn loads_sum_to_spec_total() {
        let net = balanced_binary(2000, &spec(), &mut rng());
        let total = net.total_load();
        let want = spec().total_kw * 1e3;
        // Jitter is ±50% per bus but averages out over 2000 buses.
        assert!((total.re - want).abs() < 0.05 * want, "P = {} vs {want}", total.re);
        assert!(total.im > 0.0, "lagging loads consume vars");
    }

    #[test]
    fn impedance_sizing_hits_drop_target() {
        // Flat-voltage drop estimate along the worst path should be ~5%
        // of nominal for every topology, chain included.
        for net in [
            chain(200, &spec(), &mut rng()),
            balanced_binary(511, &spec(), &mut rng()),
            star(200, &spec(), &mut rng()),
        ] {
            let v = net.source_voltage().abs();
            let n = net.num_buses();
            // Recompute the generator's own estimate from the built net.
            let mut down = vec![0.0f64; n];
            for i in (1..n).rev() {
                down[i] += net.buses()[i].load.abs();
                let p = net.parent(i).unwrap();
                down[p] += down[i];
            }
            let mut path = vec![0.0f64; n];
            let mut worst: f64 = 0.0;
            for i in 1..n {
                let p = net.parent(i).unwrap();
                let zb = net.parent_branch(i).unwrap().z.abs();
                path[i] = path[p] + zb * down[i] / v;
                worst = worst.max(path[i]);
            }
            let frac = worst / v;
            assert!(
                frac > 0.02 && frac < 0.08,
                "drop fraction {frac} should be near the 5% target (jitter moves it)"
            );
        }
    }

    #[test]
    fn root_carries_no_load() {
        let net = balanced_binary(100, &spec(), &mut rng());
        assert_eq!(net.buses()[0].load, Complex::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn zero_buses_panics() {
        let _ = chain(0, &spec(), &mut rng());
    }

    #[test]
    fn single_bus_ok() {
        let net = star(1, &spec(), &mut rng());
        assert_eq!(net.num_buses(), 1);
    }
}
