//! Weakly-meshed network model: tie switches and distributed generation.
//!
//! Real feeders are *operated* radially but *built* with loops: normally
//! open tie switches between laterals, and the odd normally closed loop.
//! They also host distributed generation — PV buses holding a voltage
//! set-point within reactive-power limits. Forward-backward sweep is only
//! defined on trees, so a [`MeshedNetwork`] keeps the radial invariant by
//! construction: a spanning tree is extracted over every closed edge,
//! each loop is opened at a *break point*, and the break-point pair list
//! plus the generator records ride alongside the tree for the solver's
//! compensation machinery (`fbs::mesh`).
//!
//! Open tie switches are carried through for provenance (and so a
//! scenario engine can close them later) but are structurally inert: a
//! meshed network whose ties are all open solves exactly — bitwise — like
//! its spanning tree.

use numc::Complex;

use crate::network::{NetworkBuilder, NetworkError, RadialNetwork};

/// A distributed generator holding a voltage set-point (PV bus).
///
/// Modeled as a negative constant-power load whose reactive part is
/// adjusted by the solver's outer loop: `P = p_gen` fixed, `Q` moved
/// toward holding `|V| = v_set` and clamped to `[q_min, q_max]` (at a
/// limit the bus degrades to PQ).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PvBus {
    /// Bus the generator is connected to.
    pub bus: usize,
    /// Active-power generation, watts (≥ 0).
    pub p_gen: f64,
    /// Voltage-magnitude set-point, volts.
    pub v_set: f64,
    /// Minimum reactive injection, vars (absorption is negative).
    pub q_min: f64,
    /// Maximum reactive injection, vars.
    pub q_max: f64,
}

/// A tie switch: an edge that would close a loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TieSwitch {
    /// One endpoint bus.
    pub from: usize,
    /// Other endpoint bus.
    pub to: usize,
    /// Series impedance of the tie when closed, ohms.
    pub z: Complex,
    /// Whether the switch is closed (carries a loop) or open (inert).
    pub closed: bool,
}

/// One opened loop: the pair of buses the loop was cut between, and the
/// impedance of the removed (tie) edge. The compensation solver drives
/// the voltage mismatch across each pair to the tie's own drop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakPoint {
    /// Tree-side bus of the open pair.
    pub a: usize,
    /// Far-side bus of the open pair.
    pub b: usize,
    /// Impedance of the edge the loop was opened at, ohms.
    pub z: Complex,
}

/// Why a meshed network failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum MeshError {
    /// The underlying spanning tree failed radial validation.
    Network(NetworkError),
    /// Two generator records name the same bus.
    DuplicateGenerator(usize),
    /// A generator's numeric fields are non-finite, `v_set ≤ 0`, or
    /// `p_gen < 0`.
    BadGenerator(usize),
    /// A generator's reactive limits are inverted (`q_min > q_max`).
    BadQLimits(usize),
    /// A generator names a bus outside `0..n`.
    GeneratorBusOutOfRange(usize),
    /// A tie endpoint names a bus outside `0..n`, or the tie is a
    /// self-loop or has an invalid impedance.
    BadTie(usize, usize),
    /// A tie switch duplicates an existing edge (tree or tie), in either
    /// orientation.
    DuplicateTie(usize, usize),
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::Network(e) => write!(f, "{e}"),
            MeshError::DuplicateGenerator(b) => write!(f, "bus {b} has two generators"),
            MeshError::BadGenerator(b) => {
                write!(f, "generator at bus {b} has invalid p_gen/v_set")
            }
            MeshError::BadQLimits(b) => {
                write!(f, "generator at bus {b} has q_min > q_max")
            }
            MeshError::GeneratorBusOutOfRange(b) => {
                write!(f, "generator references nonexistent bus {b}")
            }
            MeshError::BadTie(a, b) => write!(f, "tie {a}–{b} is invalid"),
            MeshError::DuplicateTie(a, b) => {
                write!(f, "tie {a}–{b} duplicates an existing edge")
            }
        }
    }
}

impl std::error::Error for MeshError {}

impl From<NetworkError> for MeshError {
    fn from(e: NetworkError) -> Self {
        MeshError::Network(e)
    }
}

/// A weakly-meshed network with distributed generation, reduced to a
/// spanning tree plus break points and generator records.
#[derive(Clone, Debug)]
pub struct MeshedNetwork {
    tree: RadialNetwork,
    break_points: Vec<BreakPoint>,
    ties: Vec<TieSwitch>,
    generators: Vec<PvBus>,
}

impl MeshedNetwork {
    /// Wraps an already-radial network (no loops, no generators).
    pub fn from_radial(tree: RadialNetwork) -> Self {
        MeshedNetwork { tree, break_points: Vec::new(), ties: Vec::new(), generators: Vec::new() }
    }

    /// The spanning tree the sweeps run on.
    pub fn tree(&self) -> &RadialNetwork {
        &self.tree
    }

    /// The break-point pair list — one entry per opened loop.
    pub fn break_points(&self) -> &[BreakPoint] {
        &self.break_points
    }

    /// Every tie-switch record, open ones included.
    pub fn ties(&self) -> &[TieSwitch] {
        &self.ties
    }

    /// Generator (PV bus) records.
    pub fn generators(&self) -> &[PvBus] {
        &self.generators
    }

    /// Number of loops the compensation solver must close.
    pub fn num_loops(&self) -> usize {
        self.break_points.len()
    }

    /// `true` when the network is plain radial with no DG — solvers can
    /// skip the outer loop entirely and the answer is bitwise identical
    /// to a radial solve of [`MeshedNetwork::tree`].
    pub fn is_plain_radial(&self) -> bool {
        self.break_points.is_empty() && self.generators.is_empty()
    }
}

/// Incremental construction of a [`MeshedNetwork`].
///
/// Buses and edges go in like [`NetworkBuilder`], except `connect` may
/// form loops: `build` runs a BFS from the root over all closed edges,
/// keeps the first-discovery edge into each bus as the spanning tree
/// (preserving the given orientation when the input is already a tree),
/// and opens every remaining closed edge at a break point. Explicit tie
/// switches ([`MeshedNetworkBuilder::tie`]) are kept as records; the
/// closed ones contribute loops exactly like surplus `connect` edges.
#[derive(Clone, Debug)]
pub struct MeshedNetworkBuilder {
    source_voltage: Complex,
    loads: Vec<Complex>,
    edges: Vec<(usize, usize, Complex)>,
    ties: Vec<TieSwitch>,
    generators: Vec<PvBus>,
}

impl MeshedNetworkBuilder {
    /// Starts a network with the given slack voltage; bus 0 is the root.
    pub fn new(source_voltage: Complex) -> Self {
        MeshedNetworkBuilder {
            source_voltage,
            loads: Vec::new(),
            edges: Vec::new(),
            ties: Vec::new(),
            generators: Vec::new(),
        }
    }

    /// Adds a bus with the given constant-power load; returns its id.
    pub fn add_bus(&mut self, load: Complex) -> usize {
        self.loads.push(load);
        self.loads.len() - 1
    }

    /// Adds an edge with series impedance `z`; loops are allowed.
    pub fn connect(&mut self, from: usize, to: usize, z: Complex) {
        self.edges.push((from, to, z));
    }

    /// Adds a tie switch between `from` and `to`.
    pub fn tie(&mut self, from: usize, to: usize, z: Complex, closed: bool) {
        self.ties.push(TieSwitch { from, to, z, closed });
    }

    /// Adds a generator (PV bus) record.
    pub fn generator(&mut self, gen: PvBus) {
        self.generators.push(gen);
    }

    /// Current bus count.
    pub fn num_buses(&self) -> usize {
        self.loads.len()
    }

    /// Validates, extracts the spanning tree, and freezes the network.
    pub fn build(self) -> Result<MeshedNetwork, MeshError> {
        let n = self.loads.len();
        if n == 0 {
            return Err(NetworkError::Empty.into());
        }

        // Edge sanity + duplicate detection across edges *and* ties, in
        // either orientation. Edge endpoint/impedance details beyond
        // range checks are re-validated by `NetworkBuilder`.
        let mut seen = std::collections::HashSet::new();
        for &(from, to, _) in &self.edges {
            for id in [from, to] {
                if id >= n {
                    return Err(NetworkError::BadBusId { id, n }.into());
                }
            }
            if from == to {
                return Err(NetworkError::SelfLoop(from).into());
            }
            seen.insert((from.min(to), from.max(to)));
        }
        for t in &self.ties {
            if t.from >= n || t.to >= n || t.from == t.to {
                return Err(MeshError::BadTie(t.from, t.to));
            }
            if !t.z.is_finite() || t.z == Complex::ZERO || t.z.re < 0.0 {
                return Err(MeshError::BadTie(t.from, t.to));
            }
            if !seen.insert((t.from.min(t.to), t.from.max(t.to))) {
                return Err(MeshError::DuplicateTie(t.from, t.to));
            }
        }

        // Generators: one per bus, sane fields.
        let mut gen_seen = std::collections::HashSet::new();
        for g in &self.generators {
            if g.bus >= n {
                return Err(MeshError::GeneratorBusOutOfRange(g.bus));
            }
            if !gen_seen.insert(g.bus) {
                return Err(MeshError::DuplicateGenerator(g.bus));
            }
            let finite =
                [g.p_gen, g.v_set, g.q_min, g.q_max].iter().all(|v| v.is_finite());
            if !finite || g.v_set <= 0.0 || g.p_gen < 0.0 {
                return Err(MeshError::BadGenerator(g.bus));
            }
            if g.q_min > g.q_max {
                return Err(MeshError::BadQLimits(g.bus));
            }
        }

        // Spanning tree over all closed edges from the root, extracted
        // by a stratified BFS: plain edges are preferred (so an input
        // that is already a tree keeps its exact orientation and
        // impedances), and explicit tie switches enter the tree only
        // when a region is reachable through no plain edge — a tie
        // switch is the *designated* place to open its loop.
        let n_plain = self.edges.len();
        let mut closed: Vec<(usize, usize, Complex)> = self.edges.clone();
        for t in self.ties.iter().filter(|t| t.closed) {
            closed.push((t.from, t.to, t.z));
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ei, &(from, to, _)) in closed.iter().enumerate() {
            adj[from].push(ei);
            adj[to].push(ei);
        }

        let root = 0usize;
        let mut visited = vec![false; n];
        // `tree_slot[ei]` = the BFS-oriented tree edge built from closed
        // edge `ei`, if the tree uses it. Keeping edges slotted by input
        // index lets the final branch list preserve the caller's edge
        // order — an input that is already a tree round-trips exactly.
        let mut tree_slot: Vec<Option<(usize, usize, Complex)>> = vec![None; closed.len()];
        visited[root] = true;
        let mut frontier = std::collections::VecDeque::from([root]);
        loop {
            // Exhaust everything reachable through plain edges.
            while let Some(u) = frontier.pop_front() {
                for &ei in &adj[u] {
                    if ei >= n_plain {
                        continue;
                    }
                    let (from, to, z) = closed[ei];
                    let other = if from == u { to } else { from };
                    if visited[other] || tree_slot[ei].is_some() {
                        continue;
                    }
                    visited[other] = true;
                    tree_slot[ei] = Some((u, other, z));
                    frontier.push_back(other);
                }
            }
            // Bridge into any still-unreached region through one closed
            // tie, then go back to plain-edge BFS from there.
            let bridge = (n_plain..closed.len()).find(|&ei| {
                let (from, to, _) = closed[ei];
                tree_slot[ei].is_none() && (visited[from] != visited[to])
            });
            match bridge {
                Some(ei) => {
                    let (from, to, z) = closed[ei];
                    let (u, other) = if visited[from] { (from, to) } else { (to, from) };
                    visited[other] = true;
                    tree_slot[ei] = Some((u, other, z));
                    frontier.push_back(other);
                }
                None => break,
            }
        }
        if let Some(example) = visited.iter().position(|&r| !r) {
            return Err(NetworkError::Disconnected { example }.into());
        }
        let tree_edges: Vec<(usize, usize, Complex)> =
            tree_slot.iter().filter_map(|s| *s).collect();

        // Every closed edge the tree skipped is a loop — open it there.
        let break_points: Vec<BreakPoint> = closed
            .iter()
            .zip(&tree_slot)
            .filter(|&(_, slot)| slot.is_none())
            .map(|(&(a, b, z), _)| BreakPoint { a, b, z })
            .collect();

        let mut nb = NetworkBuilder::with_capacity(self.source_voltage, n);
        for load in &self.loads {
            nb.add_bus(*load);
        }
        for (from, to, z) in tree_edges {
            nb.connect(from, to, z);
        }
        let tree = nb.build()?;

        Ok(MeshedNetwork {
            tree,
            break_points,
            ties: self.ties,
            generators: self.generators,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;

    fn v0() -> Complex {
        c(7200.0, 0.0)
    }

    /// 0—1—2—3 chain plus a 0—3 loop-closing edge.
    fn looped() -> MeshedNetworkBuilder {
        let mut b = MeshedNetworkBuilder::new(v0());
        for _ in 0..4 {
            b.add_bus(c(1000.0, 300.0));
        }
        b.connect(0, 1, c(0.1, 0.05));
        b.connect(1, 2, c(0.2, 0.10));
        b.connect(2, 3, c(0.3, 0.15));
        b
    }

    #[test]
    fn tree_input_is_preserved_exactly() {
        let net = looped().build().unwrap();
        assert!(net.is_plain_radial());
        assert_eq!(net.num_loops(), 0);
        let t = net.tree();
        assert_eq!(t.num_buses(), 4);
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.parent_branch(2).unwrap().z, c(0.2, 0.10));
    }

    #[test]
    fn surplus_edge_becomes_a_break_point() {
        let mut b = looped();
        b.connect(0, 3, c(0.4, 0.2));
        let net = b.build().unwrap();
        assert_eq!(net.num_loops(), 1);
        assert!(!net.is_plain_radial());
        let bp = net.break_points()[0];
        // BFS discovers 3 through 0 before the chain gets there, so
        // which edge lands in the tree depends on discovery order — the
        // break point is the *other* one. Either way one loop opens.
        assert!(bp.a == 0 || bp.a == 2, "{bp:?}");
        assert_eq!(net.tree().num_branches(), 3);
    }

    #[test]
    fn closed_tie_opens_a_loop_open_tie_is_inert() {
        let mut b = looped();
        b.tie(1, 3, c(0.5, 0.25), true);
        let net = b.build().unwrap();
        assert_eq!(net.num_loops(), 1);
        assert_eq!(net.break_points()[0], BreakPoint { a: 1, b: 3, z: c(0.5, 0.25) });

        let mut b = looped();
        b.tie(1, 3, c(0.5, 0.25), false);
        let net = b.build().unwrap();
        assert_eq!(net.num_loops(), 0);
        assert!(net.is_plain_radial());
        assert_eq!(net.ties().len(), 1, "open tie is still recorded");
    }

    #[test]
    fn generator_records_validate() {
        let ok = PvBus { bus: 2, p_gen: 50e3, v_set: 4100.0, q_min: -30e3, q_max: 30e3 };
        let mut b = looped();
        b.generator(ok);
        let net = b.build().unwrap();
        assert_eq!(net.generators(), &[ok]);
        assert!(!net.is_plain_radial());

        let mut b = looped();
        b.generator(ok);
        b.generator(PvBus { bus: 2, ..ok });
        assert_eq!(b.build().unwrap_err(), MeshError::DuplicateGenerator(2));

        let mut b = looped();
        b.generator(PvBus { q_min: 5.0, q_max: -5.0, ..ok });
        assert_eq!(b.build().unwrap_err(), MeshError::BadQLimits(2));

        let mut b = looped();
        b.generator(PvBus { v_set: f64::NAN, ..ok });
        assert_eq!(b.build().unwrap_err(), MeshError::BadGenerator(2));

        let mut b = looped();
        b.generator(PvBus { bus: 9, ..ok });
        assert_eq!(b.build().unwrap_err(), MeshError::GeneratorBusOutOfRange(9));
    }

    #[test]
    fn tie_duplicating_a_tree_edge_rejected() {
        let mut b = looped();
        b.tie(2, 1, c(0.5, 0.25), true); // 1—2 exists as a branch
        assert_eq!(b.build().unwrap_err(), MeshError::DuplicateTie(2, 1));
    }

    #[test]
    fn bad_ties_rejected() {
        for (from, to, z) in
            [(1usize, 1usize, c(0.1, 0.0)), (0, 9, c(0.1, 0.0)), (0, 3, Complex::ZERO)]
        {
            let mut b = looped();
            b.tie(from, to, z, true);
            assert_eq!(b.build().unwrap_err(), MeshError::BadTie(from, to), "{from}-{to}");
        }
    }

    #[test]
    fn disconnected_meshed_graph_rejected() {
        let mut b = MeshedNetworkBuilder::new(v0());
        for _ in 0..3 {
            b.add_bus(Complex::ZERO);
        }
        b.connect(0, 1, c(0.1, 0.05));
        assert!(matches!(
            b.build().unwrap_err(),
            MeshError::Network(NetworkError::Disconnected { example: 2 })
        ));
    }

    #[test]
    fn from_radial_is_plain() {
        let tree = looped().build().unwrap().tree().clone();
        let net = MeshedNetwork::from_radial(tree);
        assert!(net.is_plain_radial());
        assert_eq!(net.num_loops(), 0);
    }
}
