//! IEEE-style test feeders.
//!
//! Balanced positive-sequence, single-phase equivalents of the IEEE 13-
//! and 37-node distribution test feeders, plus a 123-bus-style long
//! feeder. **These are approximations**: the IEEE originals are unbalanced
//! multiphase systems with regulators, capacitors and switched elements;
//! here each is reduced to a radial R+jX tree with constant-power loads
//! (three-phase totals divided evenly across phases, line-to-neutral
//! source voltage). They exist to exercise the solvers on realistic
//! irregular topologies and load distributions — not to reproduce the
//! IEEE benchmark voltages digit-for-digit. The reduction is recorded in
//! `DESIGN.md` as part of the workload substitution.

use numc::{c, Complex};

use crate::mesh::{MeshedNetwork, MeshedNetworkBuilder, PvBus};
use crate::network::{NetworkBuilder, RadialNetwork};

/// Positive-sequence impedance per 1000 ft used for overhead sections,
/// ohms (typical 556.5 ACSR geometry).
const Z_OH_PER_KFT: Complex = Complex { re: 0.0644, im: 0.1341 };
/// Impedance used for transformers/switches modeled as short links, ohms.
const Z_LINK: Complex = Complex { re: 0.01, im: 0.02 };

fn line(len_ft: f64) -> Complex {
    Z_OH_PER_KFT * (len_ft / 1000.0)
}

/// Three-phase kW/kvar totals → per-phase constant-power load, VA.
fn load3(kw: f64, kvar: f64) -> Complex {
    c(kw * 1e3 / 3.0, kvar * 1e3 / 3.0)
}

/// IEEE 13-node test feeder (positive-sequence equivalent).
///
/// 4.16 kV feeder: substation 650 feeding a trunk 632–671 with laterals.
/// Bus order: 650, 632, 633, 634, 645, 646, 671, 680, 684, 611, 652,
/// 692, 675 (ids 0..=12).
pub fn ieee13() -> RadialNetwork {
    let mut b = NetworkBuilder::new(c(4160.0 / 3f64.sqrt(), 0.0));
    // (name, kW, kvar) — three-phase totals from the published spec,
    // distributed spot + the 632–671 distributed load lumped at 632.
    let buses = [
        ("650", 0.0, 0.0),
        ("632", 200.0, 116.0),
        ("633", 0.0, 0.0),
        ("634", 400.0, 290.0),
        ("645", 170.0, 125.0),
        ("646", 230.0, 132.0),
        ("671", 1155.0, 660.0),
        ("680", 0.0, 0.0),
        ("684", 0.0, 0.0),
        ("611", 170.0, 80.0),
        ("652", 128.0, 86.0),
        ("692", 170.0, 151.0),
        ("675", 843.0, 462.0),
    ];
    for (_, kw, kvar) in buses {
        b.add_bus(load3(kw, kvar));
    }
    // (from, to, impedance): section lengths in feet from the spec;
    // 633–634 is the XFM-1 transformer and 671–692 the closed switch.
    let sections: [(usize, usize, Complex); 12] = [
        (0, 1, line(2000.0)),  // 650-632
        (1, 2, line(500.0)),   // 632-633
        (2, 3, Z_LINK),        // 633-634 (transformer)
        (1, 4, line(500.0)),   // 632-645
        (4, 5, line(300.0)),   // 645-646
        (1, 6, line(2000.0)),  // 632-671
        (6, 7, line(1000.0)),  // 671-680
        (6, 8, line(300.0)),   // 671-684
        (8, 9, line(300.0)),   // 684-611
        (8, 10, line(800.0)),  // 684-652
        (6, 11, Z_LINK),       // 671-692 (switch)
        (11, 12, line(500.0)), // 692-675
    ];
    for (f, t, z) in sections {
        b.connect(f, t, z);
    }
    b.build().expect("ieee13 data is a valid radial network")
}

/// IEEE 37-node test feeder (positive-sequence equivalent).
///
/// 4.8 kV underground feeder. Bus ids follow the published node numbers
/// 799 (substation), 701..742 in the table below.
pub fn ieee37() -> RadialNetwork {
    // Spot loads: (node, kW, kvar) three-phase totals. Junction nodes
    // (702–711, 744 carries a spot load too) appear only in the section
    // table below.
    let spot_loads: [(u32, f64, f64); 25] = [
        (701, 630.0, 315.0),
        (712, 85.0, 40.0),
        (713, 85.0, 40.0),
        (714, 38.0, 18.0),
        (718, 85.0, 40.0),
        (720, 85.0, 40.0),
        (722, 161.0, 77.0),
        (724, 42.0, 21.0),
        (725, 42.0, 21.0),
        (727, 42.0, 21.0),
        (728, 126.0, 63.0),
        (729, 42.0, 21.0),
        (730, 85.0, 40.0),
        (731, 85.0, 40.0),
        (732, 42.0, 21.0),
        (733, 85.0, 40.0),
        (734, 42.0, 21.0),
        (735, 85.0, 40.0),
        (736, 42.0, 21.0),
        (737, 140.0, 70.0),
        (738, 126.0, 62.0),
        (740, 85.0, 40.0),
        (741, 42.0, 21.0),
        (742, 8.0, 4.0),
        (744, 42.0, 21.0),
    ];
    // Line sections: (upstream, downstream, length ft), following the
    // published segment table (the 799–701 regulator and the 709–775
    // transformer are folded into their adjacent lines).
    let sections: [(u32, u32, f64); 35] = [
        (799, 701, 1850.0),
        (701, 702, 960.0),
        (702, 705, 400.0),
        (702, 713, 360.0),
        (702, 703, 1320.0),
        (705, 742, 320.0),
        (705, 712, 240.0),
        (713, 704, 520.0),
        (704, 714, 80.0),
        (704, 720, 800.0),
        (714, 718, 520.0),
        (720, 707, 920.0),
        (720, 706, 600.0),
        (706, 725, 280.0),
        (707, 724, 760.0),
        (707, 722, 120.0),
        (703, 727, 240.0),
        (703, 730, 600.0),
        (727, 744, 280.0),
        (744, 728, 200.0),
        (744, 729, 280.0),
        (730, 709, 200.0),
        (709, 731, 600.0),
        (709, 708, 320.0),
        (708, 732, 320.0),
        (708, 733, 320.0),
        (733, 734, 560.0),
        (734, 737, 640.0),
        (734, 710, 520.0),
        (737, 738, 400.0),
        (738, 711, 400.0),
        (710, 735, 200.0),
        (710, 736, 1280.0),
        (711, 740, 200.0),
        (711, 741, 400.0),
    ];

    let mut b = NetworkBuilder::new(c(4800.0 / 3f64.sqrt(), 0.0));
    let mut ids: Vec<(u32, usize)> = Vec::new();
    let get = |b: &mut NetworkBuilder, node: u32, ids: &mut Vec<(u32, usize)>| -> usize {
        if let Some(&(_, i)) = ids.iter().find(|&&(n, _)| n == node) {
            return i;
        }
        let load = spot_loads
            .iter()
            .find(|&&(n, _, _)| n == node)
            .map(|&(_, kw, kvar)| load3(kw, kvar))
            .unwrap_or(Complex::ZERO);
        let i = b.add_bus(load);
        ids.push((node, i));
        i
    };

    // Substation first so it becomes bus 0, then connect sections in
    // upstream-first order (fixpoint over the tree's section list).
    get(&mut b, 799, &mut ids);
    let mut pending: Vec<(u32, u32, f64)> = sections.to_vec();
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|&(f, t, len)| {
            if let Some(&(_, fi)) = ids.iter().find(|&&(n, _)| n == f) {
                let ti = get(&mut b, t, &mut ids);
                b.connect(fi, ti, line(len.max(50.0)));
                false
            } else {
                true
            }
        });
        assert!(pending.len() < before, "ieee37 section data must be connected");
    }
    b.build().expect("ieee37 data is a valid radial network")
}

/// A 123-bus-style long feeder: deterministic synthetic stand-in for the
/// IEEE 123-node feeder's gross shape (deep main trunk, many short
/// laterals, 4.16 kV), for tests and examples that want a "realistic
/// large feeder" without the full multiphase dataset. Loading is scaled
/// to ~1 MW so the deep positive-sequence trunk stays well away from
/// voltage collapse (the full 123-node load on a collapsed single-phase
/// trunk diverges — see DESIGN.md on feasibility of reduced feeders).
pub fn ieee123_style() -> RadialNetwork {
    let mut b = NetworkBuilder::new(c(4160.0 / 3f64.sqrt(), 0.0));
    let n = 123usize;
    // Deterministic shape: a 40-bus trunk; each trunk bus i (from 1)
    // sprouts laterals of length 0–3 decided by a fixed pattern.
    let mut parents = vec![usize::MAX; n];
    let mut next = 1usize;
    let mut trunk_prev = 0usize;
    let mut trunk = Vec::new();
    for _ in 0..40 {
        if next >= n {
            break;
        }
        parents[next] = trunk_prev;
        trunk_prev = next;
        trunk.push(next);
        next += 1;
    }
    let mut t = 0usize;
    'outer: while next < n {
        let spine = trunk[t % trunk.len()];
        let lat_len = 1 + (t * 7 % 3);
        let mut up = spine;
        for _ in 0..lat_len {
            if next >= n {
                break 'outer;
            }
            parents[next] = up;
            up = next;
            next += 1;
        }
        t += 1;
    }
    // Loads: 40/20 kW-kvar on even laterals, 20/10 on odd, none on trunk
    // junctions — totals ≈ 3.5 MW three-phase.
    for i in 0..n {
        if i == 0 || trunk.contains(&i) {
            b.add_bus(Complex::ZERO);
        } else {
            let (kw, kvar) = if i % 2 == 0 { (15.0, 7.0) } else { (8.0, 4.0) };
            b.add_bus(load3(kw, kvar));
        }
    }
    for (i, &p) in parents.iter().enumerate().skip(1) {
        let len_ft = if trunk.contains(&i) { 250.0 } else { 100.0 };
        b.connect(p, i, line(len_ft));
    }
    b.build().expect("ieee123-style data is a valid radial network")
}

/// The 123-bus-style feeder with distributed generation and tie
/// switches: the weakly-meshed/DG reference case for the `fbs::mesh`
/// subsystem and experiment E17.
///
/// Topology is [`ieee123_style`] plus:
///
/// * three PV-bus generators on lateral buses (55, 83, 110) — per-phase
///   injections of 12–20 kW with voltage set-points just under the
///   local no-DG profile and symmetric Q limits wide enough to hold the
///   set-point at nominal loading;
/// * two **closed** tie switches bridging distant laterals, (45, 122)
///   and (70, 101), each opened at a break point by the spanning-tree
///   extraction; and
/// * one **open** (inert) tie (60, 90), carried for switching studies.
pub fn ieee123_dg() -> MeshedNetwork {
    let radial = ieee123_style();
    let mut b = MeshedNetworkBuilder::new(radial.source_voltage());
    for bus in radial.buses() {
        b.add_bus(bus.load);
    }
    for br in radial.branches() {
        b.connect(br.from, br.to, br.z);
    }
    b.tie(45, 122, line(500.0), true);
    b.tie(70, 101, line(450.0), true);
    b.tie(60, 90, line(400.0), false);
    // Per-phase quantities, like the loads. Set-points sit at ~0.988 pu
    // of the 2401.8 V source — below the lightly-loaded feeder's natural
    // profile near the trunk, above the deep-lateral sag — so the Q
    // loops do real work without pinning at a limit at nominal loading.
    for (bus, p_kw, v_set, q_kvar) in
        [(55, 20.0, 2374.0, 18.0), (83, 12.0, 2372.0, 12.0), (110, 16.0, 2373.0, 15.0)]
    {
        b.generator(PvBus {
            bus,
            p_gen: p_kw * 1e3,
            v_set,
            q_min: -q_kvar * 1e3,
            q_max: q_kvar * 1e3,
        });
    }
    b.build().expect("ieee123-dg data is a valid meshed network")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelOrder;

    #[test]
    fn ieee13_shape_and_load() {
        let net = ieee13();
        assert_eq!(net.num_buses(), 13);
        let lo = LevelOrder::new(&net);
        lo.check_invariants();
        assert_eq!(lo.num_levels(), 5); // 650→632→{633,645,671}→{634,646,680,684,692}→{611,652,675}
        // Total three-phase load: 3466 kW.
        let total = net.total_load() * 3.0;
        assert!((total.re / 1e3 - 3466.0).abs() < 1.0, "P = {} kW", total.re / 1e3);
    }

    #[test]
    fn ieee37_shape_and_load() {
        let net = ieee37();
        // 35 sections + substation (regulator/transformer nodes folded in).
        assert_eq!(net.num_buses(), 36);
        let lo = LevelOrder::new(&net);
        lo.check_invariants();
        assert!(lo.num_levels() >= 8, "long underground trunk: {}", lo.num_levels());
        let total = net.total_load() * 3.0;
        // The table above sums to 2372 kW (published feeder ≈ 2.4 MW).
        assert!((total.re / 1e3 - 2372.0).abs() < 1.0, "P = {} kW", total.re / 1e3);
    }

    #[test]
    fn ieee123_style_shape() {
        let net = ieee123_style();
        assert_eq!(net.num_buses(), 123);
        let lo = LevelOrder::new(&net);
        lo.check_invariants();
        assert!(lo.num_levels() >= 30, "deep trunk: {}", lo.num_levels());
        let total = net.total_load() * 3.0;
        assert!(total.re > 0.6e6 && total.re < 1.5e6, "P = {} MW", total.re / 1e6);
    }

    #[test]
    fn ieee123_dg_shape() {
        let net = ieee123_dg();
        assert_eq!(net.tree().num_buses(), 123);
        assert_eq!(net.num_loops(), 2, "two closed ties open into break points");
        assert_eq!(net.ties().iter().filter(|t| !t.closed).count(), 1);
        assert_eq!(net.generators().len(), 3);
        // The spanning tree keeps the radial feeder's branch list intact
        // (ties never displace plain edges), so the no-DG baseline is
        // exactly ieee123_style().
        let radial = ieee123_style();
        assert_eq!(net.tree().branches(), radial.branches());
        let lo = LevelOrder::new(net.tree());
        lo.check_invariants();
    }

    #[test]
    fn feeders_are_deterministic() {
        let a = ieee13();
        let b = ieee13();
        assert_eq!(a.branches(), b.branches());
    }
}
