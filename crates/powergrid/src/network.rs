//! The radial distribution-network model.
//!
//! A network is a rooted tree: bus 0..n−1 with constant-power loads,
//! branches carrying a series impedance, and one *root* (the substation /
//! slack bus) that holds the source voltage. Forward-backward sweep is
//! only defined on radial systems, so construction validates radiality.

use std::collections::HashSet;

use numc::Complex;

/// A bus (node) of the network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bus {
    /// Constant-power load `S = P + jQ`, volt-amperes. Positive P
    /// consumes; a generator at a bus is a negative load.
    pub load: Complex,
}

/// A branch (edge) of the network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Branch {
    /// Upstream bus id.
    pub from: usize,
    /// Downstream bus id.
    pub to: usize,
    /// Series impedance `Z = R + jX`, ohms.
    pub z: Complex,
}

/// Why a network failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkError {
    /// A branch endpoint names a bus id outside `0..n`.
    BadBusId {
        /// The offending id.
        id: usize,
        /// Bus count.
        n: usize,
    },
    /// A branch connects a bus to itself.
    SelfLoop(usize),
    /// Two branches feed the same downstream bus (creates a cycle or a
    /// parallel path — either way, not radial).
    DuplicateChild(usize),
    /// The root bus appears as a branch's downstream end.
    RootHasParent,
    /// Branch count differs from n−1 (tree requirement).
    WrongBranchCount {
        /// Branches present.
        got: usize,
        /// Branches required (n − 1).
        want: usize,
    },
    /// Some bus is unreachable from the root.
    Disconnected {
        /// An example unreachable bus.
        example: usize,
    },
    /// A branch impedance is zero, negative-resistance or non-finite.
    BadImpedance(usize),
    /// A load is non-finite.
    BadLoad(usize),
    /// The source voltage is zero or non-finite.
    BadSource,
    /// The network has no buses.
    Empty,
    /// A generator record is invalid (duplicate bus, generator on the
    /// root, inverted or non-finite Q limits, non-finite set-point).
    BadGenerator(usize),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::BadBusId { id, n } => write!(f, "branch references bus {id} (only {n} buses)"),
            NetworkError::SelfLoop(b) => write!(f, "self-loop at bus {b}"),
            NetworkError::DuplicateChild(b) => write!(f, "bus {b} has two upstream branches"),
            NetworkError::RootHasParent => write!(f, "root bus has an upstream branch"),
            NetworkError::WrongBranchCount { got, want } => {
                write!(f, "{got} branches but a radial network of this size needs {want}")
            }
            NetworkError::Disconnected { example } => {
                write!(f, "bus {example} is not reachable from the root")
            }
            NetworkError::BadImpedance(b) => write!(f, "branch into bus {b} has invalid impedance"),
            NetworkError::BadLoad(b) => write!(f, "bus {b} has a non-finite load"),
            NetworkError::BadSource => write!(f, "source voltage must be finite and nonzero"),
            NetworkError::Empty => write!(f, "network has no buses"),
            NetworkError::BadGenerator(b) => {
                write!(f, "generator at bus {b} has an invalid record")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated radial distribution network.
///
/// Immutable once built (via [`NetworkBuilder`]); solvers derive their
/// level-ordered arrays from it.
#[derive(Clone, Debug)]
pub struct RadialNetwork {
    source_voltage: Complex,
    buses: Vec<Bus>,
    branches: Vec<Branch>,
    /// `parent_branch[b]` = index into `branches` of the branch whose
    /// `to == b`; `usize::MAX` for the root.
    parent_branch: Vec<usize>,
    root: usize,
}

impl RadialNetwork {
    /// Number of buses.
    pub fn num_buses(&self) -> usize {
        self.buses.len()
    }

    /// Number of branches (always `num_buses() − 1`).
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// The substation (slack) bus id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Slack-bus voltage phasor, volts.
    pub fn source_voltage(&self) -> Complex {
        self.source_voltage
    }

    /// All buses, indexed by id.
    pub fn buses(&self) -> &[Bus] {
        &self.buses
    }

    /// All branches (unordered).
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// The branch feeding bus `b` from its parent, or `None` for the root.
    pub fn parent_branch(&self, b: usize) -> Option<&Branch> {
        let idx = self.parent_branch[b];
        (idx != usize::MAX).then(|| &self.branches[idx])
    }

    /// Parent bus of `b`, or `None` for the root.
    pub fn parent(&self, b: usize) -> Option<usize> {
        self.parent_branch(b).map(|br| br.from)
    }

    /// Total connected load `Σ S`, volt-amperes.
    pub fn total_load(&self) -> Complex {
        self.buses.iter().map(|b| b.load).sum()
    }

    /// Replaces every bus load by `scale ×` itself (loading-sweep
    /// experiments).
    pub fn scale_loads(&mut self, scale: f64) {
        for b in &mut self.buses {
            b.load = b.load * scale;
        }
    }

    /// Replaces the impedance of every branch (feasibility retuning; used
    /// by generators). The closure receives the branch index and current
    /// branch.
    pub(crate) fn retune_impedances(&mut self, mut f: impl FnMut(usize, &Branch) -> Complex) {
        for i in 0..self.branches.len() {
            let z = f(i, &self.branches[i]);
            self.branches[i].z = z;
        }
    }

    /// Index into `branches` of the branch feeding bus `b`, or
    /// `usize::MAX` for the root (delta operations).
    pub(crate) fn parent_branch_index(&self, b: usize) -> usize {
        self.parent_branch[b]
    }

    /// Mutable branch access for validated in-place delta operations —
    /// callers ([`crate::delta`]) are responsible for keeping the tree
    /// radial.
    pub(crate) fn branch_mut(&mut self, idx: usize) -> &mut Branch {
        &mut self.branches[idx]
    }

    /// Mutable bus access for validated in-place delta operations.
    pub(crate) fn bus_mut(&mut self, b: usize) -> &mut Bus {
        &mut self.buses[b]
    }
}

/// Incremental construction of a [`RadialNetwork`].
///
/// ```
/// use numc::c;
/// use powergrid::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new(c(7200.0, 0.0));
/// let root = b.add_bus(c(0.0, 0.0));
/// let feeder = b.add_bus(c(50_000.0, 20_000.0));
/// let lateral = b.add_bus(c(25_000.0, 8_000.0));
/// b.connect(root, feeder, c(0.10, 0.06));
/// b.connect(feeder, lateral, c(0.25, 0.10));
/// let net = b.build().unwrap();
/// assert_eq!(net.num_buses(), 3);
/// assert_eq!(net.parent(lateral), Some(feeder));
/// ```
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    source_voltage: Complex,
    buses: Vec<Bus>,
    branches: Vec<Branch>,
    root: usize,
}

impl NetworkBuilder {
    /// Starts a network with the given slack voltage. Bus 0 — created by
    /// the first [`NetworkBuilder::add_bus`] call — is the root.
    pub fn new(source_voltage: Complex) -> Self {
        NetworkBuilder { source_voltage, buses: Vec::new(), branches: Vec::new(), root: 0 }
    }

    /// Pre-allocates for `n` buses.
    pub fn with_capacity(source_voltage: Complex, n: usize) -> Self {
        let mut b = Self::new(source_voltage);
        b.buses.reserve(n);
        b.branches.reserve(n.saturating_sub(1));
        b
    }

    /// Adds a bus with the given constant-power load; returns its id.
    pub fn add_bus(&mut self, load: Complex) -> usize {
        self.buses.push(Bus { load });
        self.buses.len() - 1
    }

    /// Adds a branch `from → to` with series impedance `z`.
    pub fn connect(&mut self, from: usize, to: usize, z: Complex) {
        self.branches.push(Branch { from, to, z });
    }

    /// Current bus count (generator convenience).
    pub fn num_buses(&self) -> usize {
        self.buses.len()
    }

    /// Validates and freezes the network.
    pub fn build(self) -> Result<RadialNetwork, NetworkError> {
        let n = self.buses.len();
        if n == 0 {
            return Err(NetworkError::Empty);
        }
        if !self.source_voltage.is_finite() || self.source_voltage == Complex::ZERO {
            return Err(NetworkError::BadSource);
        }
        for (i, bus) in self.buses.iter().enumerate() {
            if !bus.load.is_finite() {
                return Err(NetworkError::BadLoad(i));
            }
        }
        if self.branches.len() != n - 1 {
            return Err(NetworkError::WrongBranchCount { got: self.branches.len(), want: n - 1 });
        }

        let mut parent_branch = vec![usize::MAX; n];
        for (bi, br) in self.branches.iter().enumerate() {
            for id in [br.from, br.to] {
                if id >= n {
                    return Err(NetworkError::BadBusId { id, n });
                }
            }
            if br.from == br.to {
                return Err(NetworkError::SelfLoop(br.from));
            }
            if br.to == self.root {
                return Err(NetworkError::RootHasParent);
            }
            if parent_branch[br.to] != usize::MAX {
                return Err(NetworkError::DuplicateChild(br.to));
            }
            if !br.z.is_finite() || br.z == Complex::ZERO || br.z.re < 0.0 {
                return Err(NetworkError::BadImpedance(br.to));
            }
            parent_branch[br.to] = bi;
        }

        // Reachability: follow parent pointers from every bus to the root.
        // Radial + unique-parent + right edge count already excludes most
        // malformed graphs, but detached cycles still need catching.
        let mut reached_root = vec![false; n];
        reached_root[self.root] = true;
        for start in 0..n {
            if reached_root[start] {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            let mut seen = HashSet::new();
            loop {
                if reached_root[cur] {
                    break;
                }
                if !seen.insert(cur) {
                    // Cycle detached from the root.
                    return Err(NetworkError::Disconnected { example: start });
                }
                path.push(cur);
                let pb = parent_branch[cur];
                if pb == usize::MAX {
                    return Err(NetworkError::Disconnected { example: cur });
                }
                cur = self.branches[pb].from;
            }
            for b in path {
                reached_root[b] = true;
            }
        }

        Ok(RadialNetwork {
            source_voltage: self.source_voltage,
            buses: self.buses,
            branches: self.branches,
            parent_branch,
            root: self.root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;

    fn v0() -> Complex {
        c(7200.0, 0.0)
    }

    fn chain3() -> NetworkBuilder {
        let mut b = NetworkBuilder::new(v0());
        let r = b.add_bus(Complex::ZERO);
        let m = b.add_bus(c(1000.0, 300.0));
        let l = b.add_bus(c(2000.0, 700.0));
        b.connect(r, m, c(0.1, 0.05));
        b.connect(m, l, c(0.2, 0.1));
        b
    }

    #[test]
    fn builds_valid_chain() {
        let net = chain3().build().unwrap();
        assert_eq!(net.num_buses(), 3);
        assert_eq!(net.num_branches(), 2);
        assert_eq!(net.root(), 0);
        assert_eq!(net.parent(0), None);
        assert_eq!(net.parent(1), Some(0));
        assert_eq!(net.parent(2), Some(1));
        assert_eq!(net.parent_branch(2).unwrap().z, c(0.2, 0.1));
        assert_eq!(net.total_load(), c(3000.0, 1000.0));
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(NetworkBuilder::new(v0()).build().unwrap_err(), NetworkError::Empty);
    }

    #[test]
    fn zero_source_rejected() {
        let mut b = NetworkBuilder::new(Complex::ZERO);
        b.add_bus(Complex::ZERO);
        assert_eq!(b.build().unwrap_err(), NetworkError::BadSource);
    }

    #[test]
    fn wrong_branch_count_rejected() {
        let mut b = NetworkBuilder::new(v0());
        b.add_bus(Complex::ZERO);
        b.add_bus(Complex::ZERO);
        assert!(matches!(b.build().unwrap_err(), NetworkError::WrongBranchCount { got: 0, want: 1 }));
    }

    #[test]
    fn duplicate_parent_rejected() {
        let mut b = NetworkBuilder::new(v0());
        let r = b.add_bus(Complex::ZERO);
        let x = b.add_bus(Complex::ZERO);
        let y = b.add_bus(Complex::ZERO);
        let _ = y;
        b.connect(r, x, c(0.1, 0.0));
        b.connect(r, x, c(0.1, 0.0)); // x fed twice; y orphaned
        assert_eq!(b.build().unwrap_err(), NetworkError::DuplicateChild(1));
    }

    #[test]
    fn root_with_parent_rejected() {
        let mut b = NetworkBuilder::new(v0());
        let r = b.add_bus(Complex::ZERO);
        let x = b.add_bus(Complex::ZERO);
        b.connect(x, r, c(0.1, 0.0));
        assert_eq!(b.build().unwrap_err(), NetworkError::RootHasParent);
    }

    #[test]
    fn detached_cycle_rejected() {
        let mut b = NetworkBuilder::new(v0());
        let _r = b.add_bus(Complex::ZERO);
        let x = b.add_bus(Complex::ZERO);
        let y = b.add_bus(Complex::ZERO);
        b.connect(x, y, c(0.1, 0.0));
        b.connect(y, x, c(0.1, 0.0));
        assert!(matches!(b.build().unwrap_err(), NetworkError::Disconnected { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = NetworkBuilder::new(v0());
        let _r = b.add_bus(Complex::ZERO);
        let x = b.add_bus(Complex::ZERO);
        b.connect(x, x, c(0.1, 0.0));
        assert_eq!(b.build().unwrap_err(), NetworkError::SelfLoop(1));
    }

    #[test]
    fn bad_bus_id_rejected() {
        let mut b = NetworkBuilder::new(v0());
        let r = b.add_bus(Complex::ZERO);
        let _x = b.add_bus(Complex::ZERO);
        b.connect(r, 9, c(0.1, 0.0));
        assert!(matches!(b.build().unwrap_err(), NetworkError::BadBusId { id: 9, n: 2 }));
    }

    #[test]
    fn invalid_impedance_rejected() {
        for z in [Complex::ZERO, c(-1.0, 0.0), c(f64::NAN, 0.0)] {
            let mut b = NetworkBuilder::new(v0());
            let r = b.add_bus(Complex::ZERO);
            let x = b.add_bus(Complex::ZERO);
            b.connect(r, x, z);
            assert_eq!(b.build().unwrap_err(), NetworkError::BadImpedance(1), "z = {z:?}");
        }
    }

    #[test]
    fn non_finite_load_rejected() {
        let mut b = NetworkBuilder::new(v0());
        b.add_bus(c(f64::INFINITY, 0.0));
        assert_eq!(b.build().unwrap_err(), NetworkError::BadLoad(0));
    }

    #[test]
    fn scale_loads_scales() {
        let mut net = chain3().build().unwrap();
        net.scale_loads(2.0);
        assert_eq!(net.total_load(), c(6000.0, 2000.0));
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetworkError::Disconnected { example: 7 };
        assert!(e.to_string().contains("bus 7"));
        assert!(NetworkError::Empty.to_string().contains("no buses"));
    }
}
