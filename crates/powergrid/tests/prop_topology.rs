//! Property tests over random radial networks: layout invariants,
//! serialization round-trips, and generator feasibility.

use check::gen::{f64_in, tuple2, tuple3, u64_any, usize_in};
use check::{checker, prop_assert, prop_assert_eq, CaseResult};
use powergrid::gen::{from_parent_fn, random_tree, GenSpec};
use powergrid::gridfile::{parse_grid, write_grid};
use powergrid::{DfsOrder, LevelOrder};
use rng::rngs::StdRng;
use rng::SeedableRng;

#[test]
fn level_order_invariants_hold_on_random_trees() {
    checker("level_order_invariants_hold_on_random_trees").cases(48).run(
        tuple3(usize_in(1..800), usize_in(1..40), u64_any()),
        |&(n, window, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, window, &GenSpec::default(), &mut rng);
            let lo = LevelOrder::new(&net);
            lo.check_invariants();
            prop_assert_eq!(lo.len(), n);
            // Total level widths tile the bus count.
            let total: usize = (0..lo.num_levels()).map(|l| lo.level_width(l)).sum();
            prop_assert_eq!(total, n);
            Ok(())
        },
    );
}

#[test]
fn dfs_order_invariants_hold_on_random_trees() {
    checker("dfs_order_invariants_hold_on_random_trees").cases(48).run(
        tuple3(usize_in(1..800), usize_in(1..40), u64_any()),
        |&(n, window, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, window, &GenSpec::default(), &mut rng);
            let dfs = DfsOrder::new(&net);
            dfs.check_invariants();
            // Subtree sizes sum to the total path count: Σ size = Σ (depth+1).
            let sum_sizes: u64 = dfs.subtree_size.iter().map(|&x| x as u64).sum();
            let sum_depths: u64 = dfs.depth.iter().map(|&d| d as u64 + 1).sum();
            prop_assert_eq!(sum_sizes, sum_depths);
            Ok(())
        },
    );
}

#[test]
fn level_and_dfs_agree_on_parent_relation() {
    checker("level_and_dfs_agree_on_parent_relation").cases(48).run(
        tuple2(usize_in(2..400), u64_any()),
        |&(n, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 16, &GenSpec::default(), &mut rng);
            let lo = LevelOrder::new(&net);
            let dfs = DfsOrder::new(&net);
            for bus in 0..n {
                let via_level = {
                    let p = lo.parent_pos[lo.pos_of[bus] as usize];
                    (p != powergrid::NO_PARENT).then(|| lo.order[p as usize])
                };
                let via_dfs = {
                    let p = dfs.parent_pos[dfs.pos_of[bus] as usize];
                    (p != powergrid::DFS_NO_PARENT).then(|| dfs.order[p as usize])
                };
                prop_assert_eq!(via_level, via_dfs, "bus {}", bus);
            }
            Ok(())
        },
    );
}

#[test]
fn gridfile_roundtrip_is_lossless() {
    checker("gridfile_roundtrip_is_lossless").cases(48).run(
        tuple2(usize_in(1..300), u64_any()),
        |&(n, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &GenSpec::default(), &mut rng);
            let back = parse_grid(&write_grid(&net)).expect("generated nets reparse");
            prop_assert_eq!(back.num_buses(), net.num_buses());
            for (a, b) in back.buses().iter().zip(net.buses()) {
                prop_assert_eq!(a, b);
            }
            for (a, b) in back.branches().iter().zip(net.branches()) {
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(back.source_voltage(), net.source_voltage());
            Ok(())
        },
    );
}

#[test]
fn generator_feasibility_bounds_flat_drop() {
    checker("generator_feasibility_bounds_flat_drop").cases(48).run(
        tuple3(usize_in(2..500), u64_any(), usize_in(0..3)),
        |&(n, seed, shape)| -> CaseResult {
            let spec = GenSpec::default();
            let mut rng = StdRng::seed_from_u64(seed);
            // Three shapes with wildly different depth profiles.
            let net = match shape {
                0 => from_parent_fn(n, &spec, &mut rng, |i| i.checked_sub(1)), // chain
                1 => from_parent_fn(n, &spec, &mut rng, |i| (i > 0).then_some(0)), // star
                _ => from_parent_fn(n, &spec, &mut rng, |i| (i > 0).then(|| (i - 1) / 2)), // binary
            };
            // Flat-voltage worst drop estimate must be within ~2× of the 5%
            // target regardless of shape (jitter moves it around).
            let v = net.source_voltage().abs();
            let mut down = vec![0.0f64; n];
            for i in (1..n).rev() {
                down[i] += net.buses()[i].load.abs();
                down[net.parent(i).unwrap()] += down[i];
            }
            let mut path = vec![0.0f64; n];
            let mut worst: f64 = 0.0;
            for i in 1..n {
                let p = net.parent(i).unwrap();
                path[i] = path[p] + net.parent_branch(i).unwrap().z.abs() * down[i] / v;
                worst = worst.max(path[i]);
            }
            let frac = worst / v;
            prop_assert!(frac < 0.10, "drop fraction {} too large for shape {}", frac, shape);
            Ok(())
        },
    );
}

#[test]
fn grid3_roundtrip_is_lossless_for_coupled_matrices() {
    checker("grid3_roundtrip_is_lossless_for_coupled_matrices").cases(24).run(
        tuple3(usize_in(1..200), u64_any(), f64_in(0.0..0.5)),
        |&(n, seed, unbalance)| -> CaseResult {
            use powergrid::gridfile3::{parse_grid3, write_grid3};
            use powergrid::three_phase::from_single_phase;

            let mut rng = StdRng::seed_from_u64(seed);
            let net1 = random_tree(n, 8, &GenSpec::default(), &mut rng);
            let net3 = from_single_phase(&net1, unbalance, 0.25, &mut rng);
            let back = parse_grid3(&write_grid3(&net3)).expect("generated 3φ nets reparse");
            prop_assert_eq!(back.num_buses(), n);
            for (a, b) in back.buses().iter().zip(net3.buses()) {
                prop_assert!((a.load - b.load).abs_max() < 1e-9 * (1.0 + b.load.abs_max()));
            }
            for (a, b) in back.branches().iter().zip(net3.branches()) {
                prop_assert_eq!((a.from, a.to), (b.from, b.to));
                for r in 0..3 {
                    for c in 0..3 {
                        let (x, y) = (a.z.m[r][c], b.z.m[r][c]);
                        prop_assert!((x - y).abs() < 1e-12 * (1.0 + y.abs()));
                    }
                }
            }
            Ok(())
        },
    );
}
