//! Fuzz-style hardening property: no input text — however mangled —
//! may make `parse_grid` / `parse_grid3` panic. Every outcome is either
//! a structured [`ParseError`] or a validated network.
//!
//! Golden `.grid` / `.grid3` bytes are mutated by a seeded pipeline of
//! line-level and byte-level edits (the kind of damage truncated
//! downloads, editor accidents, and hostile inputs actually produce),
//! then parsed under `catch_unwind`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use check::gen::{tuple3, u64_any, usize_in};
use check::{checker, CaseResult};
use powergrid::gen::{random_tree, GenSpec};
use powergrid::gridfile::{parse_grid, parse_grid_meshed, write_grid, write_grid_meshed};
use powergrid::gridfile3::{parse_grid3, write_grid3};
use powergrid::ieee::ieee123_dg;
use powergrid::three_phase::ieee13_unbalanced;
use powergrid::LevelOrder;
use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};

/// Tokens that stress the numeric and structural paths.
const EVIL_TOKENS: [&str; 16] = [
    "NaN", "inf", "-inf", "1e999", "-1e999", "0", "-0.0", "18446744073709551616",
    "branch 3 3 1 0", "bus 0 0 0", "grid 2", "\u{fffd}",
    "tie 1 2 0.1 0.1 ajar", "tie 2 2 NaN 0", "gen 1 -5 NaN 3 -3", "gen 0 1 1 5 -5",
];

/// Applies `count` seeded mutations to `text`, staying valid UTF-8.
fn mutate(text: &str, seed: u64, count: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = text.to_string();
    for _ in 0..count {
        let mut bytes = s.into_bytes();
        match rng.gen_below(6) {
            // Replace one byte with something from the printable range.
            0 if !bytes.is_empty() => {
                let i = rng.gen_below(bytes.len() as u64) as usize;
                bytes[i] = b' ' + (rng.gen_below(95) as u8);
            }
            // Delete a random slice.
            1 if !bytes.is_empty() => {
                let a = rng.gen_below(bytes.len() as u64) as usize;
                let b = (a + 1 + rng.gen_below(32) as usize).min(bytes.len());
                bytes.drain(a..b);
            }
            // Truncate.
            2 if !bytes.is_empty() => {
                let at = rng.gen_below(bytes.len() as u64) as usize;
                bytes.truncate(at);
            }
            // Duplicate a random line.
            3 => {
                let text = String::from_utf8_lossy(&bytes).into_owned();
                let lines: Vec<&str> = text.lines().collect();
                if !lines.is_empty() {
                    let i = rng.gen_below(lines.len() as u64) as usize;
                    let mut out = lines.clone();
                    out.insert(i, lines[i]);
                    bytes = out.join("\n").into_bytes();
                }
            }
            // Splice in a hostile token at a whitespace boundary.
            4 => {
                let tok = EVIL_TOKENS[rng.gen_below(EVIL_TOKENS.len() as u64) as usize];
                let at = if bytes.is_empty() { 0 } else { rng.gen_below(bytes.len() as u64) as usize };
                let at = bytes[..at].iter().rposition(|&b| b == b' ' || b == b'\n').map_or(0, |p| p + 1);
                bytes.splice(at..at, tok.bytes());
            }
            // Swap two lines.
            _ => {
                let text = String::from_utf8_lossy(&bytes).into_owned();
                let mut lines: Vec<&str> = text.lines().collect();
                if lines.len() >= 2 {
                    let i = rng.gen_below(lines.len() as u64) as usize;
                    let j = rng.gen_below(lines.len() as u64) as usize;
                    lines.swap(i, j);
                    bytes = lines.join("\n").into_bytes();
                }
            }
        }
        s = String::from_utf8_lossy(&bytes).into_owned();
    }
    s
}

#[test]
fn mutated_grid_files_never_panic_the_parser() {
    checker("mutated_grid_files_never_panic_the_parser").cases(300).run(
        tuple3(u64_any(), usize_in(1..10), usize_in(2..120)),
        |&(seed, muts, n)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let golden = write_grid(&random_tree(n, 8, &GenSpec::default(), &mut rng));
            let mangled = mutate(&golden, seed ^ 0xdead, muts);
            let outcome = catch_unwind(AssertUnwindSafe(|| parse_grid(&mangled)));
            match outcome {
                Err(_) => Err(check::CaseError::fail(format!(
                    "parse_grid panicked on:\n{mangled}"
                ))),
                Ok(Err(_structured)) => Ok(()),
                Ok(Ok(net)) => {
                    // Anything accepted must be a well-formed radial
                    // network the solvers can level-schedule.
                    LevelOrder::new(&net).check_invariants();
                    Ok(())
                }
            }
        },
    );
}

#[test]
fn mutated_meshed_grid_files_never_panic_either_parser() {
    let golden = write_grid_meshed(&ieee123_dg());
    checker("mutated_meshed_grid_files_never_panic_either_parser").cases(300).run(
        tuple3(u64_any(), usize_in(1..10), usize_in(0..1)),
        |&(seed, muts, _)| -> CaseResult {
            let mangled = mutate(&golden, seed ^ 0xfeed, muts);
            // The meshed reader is the permissive one; the radial reader
            // must structurally reject (never panic on) tie/gen records.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                (parse_grid_meshed(&mangled), parse_grid(&mangled))
            }));
            match outcome {
                Err(_) => Err(check::CaseError::fail(format!(
                    "a grid parser panicked on:\n{mangled}"
                ))),
                Ok((meshed, _radial)) => {
                    if let Ok(net) = meshed {
                        // Anything accepted must carry a solvable
                        // spanning tree and consistent loop bookkeeping.
                        LevelOrder::new(net.tree()).check_invariants();
                        if net.num_loops() != net.break_points().len() {
                            return Err(check::CaseError::fail(
                                "loop count disagrees with break-point list",
                            ));
                        }
                        for g in net.generators() {
                            if g.bus >= net.tree().num_buses() || g.q_min > g.q_max {
                                return Err(check::CaseError::fail(
                                    "accepted an invalid generator record",
                                ));
                            }
                        }
                    }
                    Ok(())
                }
            }
        },
    );
}

#[test]
fn shuffled_valid_mesh_records_parse_or_reject_with_line_numbers() {
    use powergrid::gridfile::ParseError;
    // Assemble syntactically valid tie/gen records in random order and
    // random multiplicity onto a valid radial core; the parser must
    // accept (validated) or reject with a *located* structured error —
    // the hostile-but-well-formed half of the hardening story.
    checker("shuffled_valid_mesh_records_parse_or_reject_with_line_numbers").cases(200).run(
        tuple3(u64_any(), usize_in(1..6), usize_in(8..40)),
        |&(seed, extras, n)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let core = write_grid(&random_tree(n, 4, &GenSpec::default(), &mut rng));
            let mut text = core;
            for _ in 0..extras {
                let a = rng.gen_below(n as u64) as usize;
                let b = rng.gen_below(n as u64) as usize;
                if rng.gen_below(2) == 0 {
                    let state = if rng.gen_below(2) == 0 { "open" } else { "closed" };
                    text.push_str(&format!("tie {a} {b} 0.2 0.1 {state}\n"));
                } else {
                    let q = 1000.0 + rng.gen_below(9000) as f64;
                    text.push_str(&format!("gen {a} 5000 2380 {} {q}\n", -q));
                }
            }
            match parse_grid_meshed(&text) {
                Ok(net) => {
                    LevelOrder::new(net.tree()).check_invariants();
                    Ok(())
                }
                Err(
                    ParseError::SelfLoop(ln)
                    | ParseError::TieDuplicatesEdge(ln)
                    | ParseError::DuplicateGenerator(ln)
                    | ParseError::BadQLimits(ln)
                    | ParseError::NonFinite(ln)
                    | ParseError::BadLine(ln, _),
                ) => {
                    if ln == 0 || ln > text.lines().count() {
                        return Err(check::CaseError::fail(format!(
                            "error cites line {ln} outside the input"
                        )));
                    }
                    Ok(())
                }
                Err(ParseError::InvalidMesh(_) | ParseError::Invalid(_)) => Ok(()),
                Err(other) => Err(check::CaseError::fail(format!(
                    "unexpected error class: {other:?}"
                ))),
            }
        },
    );
}

#[test]
fn mutated_grid3_files_never_panic_the_parser() {
    let golden = write_grid3(&ieee13_unbalanced());
    checker("mutated_grid3_files_never_panic_the_parser").cases(300).run(
        tuple3(u64_any(), usize_in(1..10), usize_in(0..1)),
        |&(seed, muts, _)| -> CaseResult {
            let mangled = mutate(&golden, seed ^ 0xbeef, muts);
            let outcome = catch_unwind(AssertUnwindSafe(|| parse_grid3(&mangled)));
            match outcome {
                Err(_) => Err(check::CaseError::fail(format!(
                    "parse_grid3 panicked on:\n{mangled}"
                ))),
                Ok(Err(_structured)) => Ok(()),
                Ok(Ok(net)) => {
                    if net.num_buses() == 0 {
                        return Err(check::CaseError::fail("accepted an empty network"));
                    }
                    Ok(())
                }
            }
        },
    );
}
