//! Property tests for the power-of-two-bucket histogram: exact merge
//! semantics, quantile bracketing/monotonicity, and Prometheus
//! exposition invariants on arbitrary sample sets.

use check::gen::{f64_in, one_of, tuple2, vec_of, Gen};
use check::{checker, prop_assert, prop_assert_eq, CaseResult};
use telemetry::{prometheus_text, Histogram, Registry};

/// Samples spanning ~18 binary orders of magnitude, plus exact zeros.
fn sample() -> Gen<f64> {
    one_of(vec![
        f64_in(1e-6..1e-3),
        f64_in(1e-3..1.0),
        f64_in(1.0..4096.0),
        f64_in(4096.0..1e9),
        Gen::no_shrink(|_| 0.0),
    ])
}

fn samples() -> Gen<(Vec<f64>, Vec<f64>)> {
    tuple2(vec_of(sample(), 0..60), vec_of(sample(), 0..60))
}

fn observe_all(vs: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vs {
        h.observe(v);
    }
    h
}

#[test]
fn merge_equals_observing_concatenation() {
    checker("merge_equals_observing_concatenation").cases(60).run(
        samples(),
        |(a, b): &(Vec<f64>, Vec<f64>)| -> CaseResult {
            let mut merged = observe_all(a);
            merged.merge(&observe_all(b));

            let mut concat = a.clone();
            concat.extend_from_slice(b);
            let direct = observe_all(&concat);

            prop_assert_eq!(merged.count(), direct.count());
            prop_assert_eq!(merged.min(), direct.min());
            prop_assert_eq!(merged.max(), direct.max());
            // Bucket occupancy is exact (integer adds), which implies every
            // quantile of the merged histogram matches the direct one.
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q).to_bits(), direct.quantile(q).to_bits());
            }
            // Sums differ only by float associativity.
            prop_assert!(
                (merged.sum() - direct.sum()).abs() <= 1e-9 * direct.sum().abs().max(1.0),
                "sum mismatch: {} vs {}",
                merged.sum(),
                direct.sum()
            );
            Ok(())
        },
    );
}

#[test]
fn quantiles_bracket_and_are_monotone() {
    checker("quantiles_bracket_and_are_monotone").cases(60).run(
        vec_of(sample(), 1..80),
        |vs: &Vec<f64>| -> CaseResult {
            let h = observe_all(vs);
            let max = h.max().unwrap();
            // The conservative estimate never under-reports the true max,
            // and never over-reports by more than one bucket (factor 2).
            prop_assert!(h.quantile(1.0) >= max);
            prop_assert!(h.quantile(1.0) <= (2.0 * max).max(f64::MIN_POSITIVE));
            let mut prev = h.quantile(0.0);
            for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let cur = h.quantile(q);
                prop_assert!(cur >= prev, "quantile not monotone at q={}", q);
                prev = cur;
            }
            Ok(())
        },
    );
}

#[test]
fn prometheus_exposition_invariants() {
    checker("prometheus_exposition_invariants").cases(40).run(
        vec_of(sample(), 0..60),
        |vs: &Vec<f64>| -> CaseResult {
            let mut reg = Registry::new();
            for &v in vs {
                reg.observe("solve.iter_us", v);
            }
            reg.counter_add("runs", 1);
            let text = prometheus_text(&reg);

            // Cumulative bucket counts are non-decreasing and end at count.
            let mut last = 0u64;
            let mut saw_inf = false;
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix("solve_iter_us_bucket{le=\"") {
                    let (edge, count) = rest.split_once("\"} ").unwrap();
                    let c: u64 = count.parse().unwrap();
                    prop_assert!(c >= last, "cumulative counts decreased");
                    last = c;
                    if edge == "+Inf" {
                        saw_inf = true;
                        prop_assert_eq!(c, vs.len() as u64);
                    }
                }
            }
            prop_assert!(saw_inf, "missing mandatory +Inf bucket");
            prop_assert!(text.contains(&format!("solve_iter_us_count {}", vs.len())));
            prop_assert!(text.contains("# TYPE solve_iter_us histogram"));
            prop_assert!(text.contains("# TYPE runs counter"));
            Ok(())
        },
    );
}
