//! Deterministic metrics: monotonic counters, gauges, and log-spaced-bucket
//! histograms with exact merge semantics.
//!
//! Histogram buckets are **powers of two**: bucket `k` covers `[2^k, 2^(k+1))`.
//! The bucket index of a sample is read straight off the IEEE-754 exponent
//! bits, so bucketing is exact on every platform, and merging two histograms
//! is a bucket-wise integer add — no rank approximation drift, no
//! re-bucketing. Quantile estimates return the **upper edge** of the bucket
//! containing the requested rank, which makes them conservative (never below
//! the true quantile) and deterministic.

use std::collections::BTreeMap;

/// Sparse fixed-layout histogram over power-of-two buckets.
///
/// All histograms share the same (conceptually infinite) bucket layout, so
/// [`Histogram::merge`] is exact: counts add bucket-wise. Non-positive
/// samples land in a dedicated underflow bucket with upper edge `0`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Sentinel bucket index for samples `<= 0` (and subnormals' floor).
const UNDERFLOW: i32 = i32::MIN;

/// Exact `floor(log2(v))` for positive normal `v`, via the exponent bits.
fn bucket_index(v: f64) -> i32 {
    if v.is_nan() || v <= 0.0 {
        return UNDERFLOW;
    }
    let e = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if e == 0 {
        // Subnormal: below 2^-1022; fold into the lowest normal bucket.
        -1023
    } else if e == 0x7ff {
        // +Inf: clamp to the top bucket.
        1023
    } else {
        e - 1023
    }
}

/// Upper edge of bucket `k`, i.e. `2^(k+1)`; `0` for the underflow bucket.
fn upper_edge(k: i32) -> f64 {
    if k == UNDERFLOW {
        0.0
    } else {
        exp2(k.saturating_add(1))
    }
}

fn exp2(k: i32) -> f64 {
    let k = k.clamp(-1074, 1023);
    (2.0f64).powi(k)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. NaN samples are counted in the underflow bucket
    /// and excluded from `sum`/`min`/`max`.
    pub fn observe(&mut self, v: f64) {
        let slot = self.buckets.entry(bucket_index(v)).or_insert(0);
        *slot = slot.saturating_add(1);
        self.count = self.count.saturating_add(1);
        if !v.is_nan() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all (non-NaN) samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.max)
    }

    /// Fold another histogram into this one. Bucket counts, `count`, and
    /// min/max merge exactly; `sum` is a float add. Counts saturate at
    /// `u64::MAX` instead of wrapping (a wrapped count would silently
    /// corrupt quantiles; a pinned one stays monotone).
    pub fn merge(&mut self, other: &Histogram) {
        for (&k, &c) in &other.buckets {
            let slot = self.buckets.entry(k).or_insert(0);
            *slot = slot.saturating_add(c);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Conservative quantile estimate: the upper edge of the bucket holding
    /// the sample of rank `ceil(q·count)`. Returns `0.0` on an empty
    /// histogram. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&k, &c) in &self.buckets {
            cum = cum.saturating_add(c);
            if cum >= target {
                return upper_edge(k);
            }
        }
        // Unreachable: cum == count >= target after the loop.
        upper_edge(*self.buckets.keys().next_back().unwrap())
    }

    /// Occupied buckets as `(upper_edge, cumulative_count)` in ascending
    /// edge order — the shape Prometheus exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .map(|(&k, &c)| {
                cum = cum.saturating_add(c);
                (upper_edge(k), cum)
            })
            .collect()
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Backed by `BTreeMap`s so iteration (and therefore every exporter) is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter (created at 0,
    /// saturating at `u64::MAX`).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Set the named gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record `v` into the named histogram (created empty).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Read a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another registry into this one: counters add, gauges take the
    /// other's value (last-writer-wins), histograms merge exactly.
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(1.999), 0);
        assert_eq!(bucket_index(2.0), 1);
        assert_eq!(bucket_index(0.5), -1);
        assert_eq!(bucket_index(0.75), -1);
        assert_eq!(bucket_index(3.0e-5), -16);
        assert_eq!(bucket_index(1024.0), 10);
        assert_eq!(bucket_index(0.0), UNDERFLOW);
        assert_eq!(bucket_index(-3.0), UNDERFLOW);
    }

    #[test]
    fn sample_lies_within_its_bucket() {
        for &v in &[1e-9, 3.7e-3, 0.5, 1.0, 1.5, 2.0, 317.0, 1e12] {
            let k = bucket_index(v);
            assert!(exp2(k) <= v && v < upper_edge(k), "v={v} k={k}");
        }
    }

    #[test]
    fn quantile_brackets_samples() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!(h.quantile(1.0) >= 100.0);
        assert!(h.quantile(0.0) >= 1.0);
        assert!(h.quantile(0.5) >= 2.0);
        // Monotone in q.
        assert!(h.quantile(0.25) <= h.quantile(0.75));
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn merge_is_exact_on_buckets() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for (i, v) in [0.1, 5.0, 700.0, 0.0, 2.5, 2.6].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
            all.observe(*v);
        }
        a.merge(&b);
        assert_eq!(a.buckets, all.buckets);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_saturates_at_the_u64_boundary() {
        // Self-merge doubles every count, so 64 doublings of a single
        // sample cross 2^64. Wrapping arithmetic would land the count
        // back on 0 (and panic in debug); saturation pins it at the max
        // and keeps the histogram usable.
        let mut h = Histogram::new();
        h.observe(3.0);
        for _ in 0..64 {
            let snapshot = h.clone();
            h.merge(&snapshot);
        }
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.buckets[&bucket_index(3.0)], u64::MAX);
        // Rank math on a saturated histogram stays monotone and in-bucket.
        assert_eq!(h.quantile(1.0), upper_edge(bucket_index(3.0)));
        assert!(h.quantile(0.0) <= h.quantile(1.0));
        let cum = h.cumulative_buckets();
        assert_eq!(cum, vec![(upper_edge(bucket_index(3.0)), u64::MAX)]);
        // Min/max/sum are float-side and unaffected by count saturation.
        assert_eq!(h.min(), Some(3.0));
        assert_eq!(h.max(), Some(3.0));
    }

    #[test]
    fn observe_saturates_a_full_histogram() {
        let mut h = Histogram::new();
        h.observe(5.0);
        for _ in 0..64 {
            let snapshot = h.clone();
            h.merge(&snapshot);
        }
        // One more direct sample on a saturated histogram must not wrap.
        h.observe(5.0);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.buckets[&bucket_index(5.0)], u64::MAX);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut r = Registry::new();
        r.counter_add("launches", u64::MAX - 1);
        r.counter_add("launches", 5);
        assert_eq!(r.counter("launches"), u64::MAX);
        let mut other = Registry::new();
        other.counter_add("launches", u64::MAX);
        r.merge(&other);
        assert_eq!(r.counter("launches"), u64::MAX);
    }

    #[test]
    fn registry_basics() {
        let mut r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.gauge_set("g", 1.5);
        r.observe("h", 4.0);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(1.5));
        assert_eq!(r.histogram("h").unwrap().count(), 1);

        let mut r2 = Registry::new();
        r2.counter_add("a", 1);
        r2.gauge_set("g", 9.0);
        r2.observe("h", 8.0);
        r.merge(&r2);
        assert_eq!(r.counter("a"), 6);
        assert_eq!(r.gauge("g"), Some(9.0));
        assert_eq!(r.histogram("h").unwrap().count(), 2);
    }
}
