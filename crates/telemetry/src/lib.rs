//! # telemetry — deterministic metrics + modeled-time tracing
//!
//! The observability substrate of the forward-backward-sweep reproduction.
//! Everything here is **deterministic**: timestamps are modeled
//! microseconds from the `simt` analytical clock (never wall time), metric
//! stores iterate in sorted order, and numbers are formatted with the
//! shortest round-trip representation — so exporting the same fixed-seed
//! run twice yields byte-identical files, and golden tests can pin them.
//!
//! * [`Registry`] — monotonic counters, gauges, and power-of-two-bucket
//!   [`Histogram`]s with exact merge semantics.
//! * [`Trace`] / [`Span`] — span tracing on the modeled clock.
//! * [`Recorder`] — the cloneable handle instrumented layers write through.
//! * Exporters: [`chrome_trace_json`] (loadable in `chrome://tracing` /
//!   Perfetto), [`prometheus_text`] (text exposition), and
//!   [`run_summary_json`] (machine-readable digest).
//!
//! ```
//! use telemetry::{Recorder, Trace};
//!
//! let rec = Recorder::new();
//! rec.name_thread(Trace::TID_SOLVER, "solver");
//! rec.span(Trace::TID_SOLVER, "phase", "forward", 0.0, 12.5);
//! rec.observe("solver.iteration_us", 12.5);
//! rec.counter_add("recovery.rollbacks", 1);
//! let (trace, metrics) = rec.snapshot();
//! let chrome = telemetry::chrome_trace_json(&trace);
//! let prom = telemetry::prometheus_text(&metrics);
//! let summary = telemetry::run_summary_json(&metrics, &trace);
//! assert!(chrome.contains("\"ph\":\"X\""));
//! assert!(prom.contains("recovery_rollbacks 1"));
//! assert!(summary.starts_with('{'));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod summary;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use metrics::{Histogram, Registry};
pub use prometheus::{prometheus_text, sanitize_name};
pub use recorder::Recorder;
pub use summary::{run_summary, run_summary_json};
pub use trace::{ArgValue, CounterSample, InstantEvent, Span, Trace};
