//! Span-based tracing stamped with **modeled** microseconds.
//!
//! Timestamps come from the simulator's analytical clock (never from host
//! wall time or `Instant`), so a trace of a fixed-seed run is byte-stable
//! and can be pinned by golden tests. Events are kept in insertion order;
//! producers are single-threaded per track, which keeps ordering
//! deterministic without sorting.

/// A typed span/instant argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument (byte counts, iteration numbers, ...).
    U64(u64),
    /// Float argument (residuals, microseconds, ...).
    F64(f64),
    /// String argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// A complete ("X"-phase) span: something with a start and a duration on
/// the modeled clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Event name (kernel name, phase name, `iter`, ...).
    pub name: String,
    /// Category, used for filtering in trace viewers (`kernel`, `xfer`,
    /// `phase`, `solver`, ...).
    pub cat: String,
    /// Track id; see the `tid` constants on [`Trace`].
    pub tid: u32,
    /// Start, in modeled microseconds from run start.
    pub ts_us: f64,
    /// Duration, in modeled microseconds.
    pub dur_us: f64,
    /// Extra key/value payload.
    pub args: Vec<(String, ArgValue)>,
}

/// A zero-duration ("i"-phase) event: faults, markers, state transitions.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Track id.
    pub tid: u32,
    /// Timestamp, in modeled microseconds from run start.
    pub ts_us: f64,
    /// Extra key/value payload.
    pub args: Vec<(String, ArgValue)>,
}

/// A sample of a time-varying quantity (residual, queue depth); exported
/// as a Chrome "C" (counter) event.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Series name.
    pub name: String,
    /// Timestamp, in modeled microseconds from run start.
    pub ts_us: f64,
    /// Sampled value.
    pub value: f64,
}

/// An in-memory trace: spans, instants, and counter samples plus track
/// naming metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Complete spans, in insertion order.
    pub spans: Vec<Span>,
    /// Instant events, in insertion order.
    pub instants: Vec<InstantEvent>,
    /// Counter samples, in insertion order.
    pub counters: Vec<CounterSample>,
    /// `(tid, display name)` pairs emitted as thread-name metadata.
    pub thread_names: Vec<(u32, String)>,
}

impl Trace {
    /// Track for solver-level per-iteration / per-phase spans.
    pub const TID_SOLVER: u32 = 0;
    /// Track for device timeline events (kernels, transfers, faults).
    pub const TID_DEVICE: u32 = 1;
    /// Track for aggregate per-phase totals.
    pub const TID_PHASES: u32 = 2;
    /// Track for service-layer events (queue, breaker, shed).
    pub const TID_SERVICE: u32 = 3;
    /// Track for fleet-level events (routing, failover, brown-out).
    pub const TID_FLEET: u32 = 4;

    /// Track id for device `ordinal` in a merged multi-device trace.
    /// Device tracks start above the fixed tracks so any fleet size
    /// coexists with the constants above.
    pub fn tid_for_device(ordinal: u32) -> u32 {
        16 + ordinal
    }

    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a track (deduplicated; first name wins).
    pub fn name_thread(&mut self, tid: u32, name: &str) {
        if !self.thread_names.iter().any(|(t, _)| *t == tid) {
            self.thread_names.push((tid, name.to_string()));
        }
    }

    /// Append a complete span.
    pub fn push_span(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Append an instant event.
    pub fn push_instant(&mut self, ev: InstantEvent) {
        self.instants.push(ev);
    }

    /// Append a counter sample.
    pub fn push_counter(&mut self, name: &str, ts_us: f64, value: f64) {
        self.counters.push(CounterSample {
            name: name.to_string(),
            ts_us,
            value,
        });
    }

    /// Total number of events of all kinds.
    pub fn len(&self) -> usize {
        self.spans.len() + self.instants.len() + self.counters.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of span durations in the given category.
    pub fn total_us_in_cat(&self, cat: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.cat == cat)
            .map(|s| s.dur_us)
            .sum()
    }
}
