//! Machine-readable run-summary JSON exporter.
//!
//! A compact, sorted-key JSON object holding every counter and gauge, a
//! digest of every histogram (count/sum/min/max and conservative
//! quantiles), and per-category span totals. Downstream tooling (and the
//! acceptance test that reconciles per-phase modeled time against the
//! `simt::Timeline` phase report) reads this instead of scraping stdout.

use std::collections::BTreeMap;

use crate::json::Value;
use crate::metrics::Registry;
use crate::trace::Trace;

/// Build the run-summary document as a [`Value`] tree.
pub fn run_summary(reg: &Registry, trace: &Trace) -> Value {
    let mut root = BTreeMap::new();

    let counters: BTreeMap<String, Value> = reg
        .counters()
        .map(|(k, v)| (k.to_string(), Value::Num(v as f64)))
        .collect();
    root.insert("counters".to_string(), Value::Obj(counters));

    let gauges: BTreeMap<String, Value> = reg
        .gauges()
        .map(|(k, v)| (k.to_string(), Value::Num(v)))
        .collect();
    root.insert("gauges".to_string(), Value::Obj(gauges));

    let mut hists = BTreeMap::new();
    for (name, h) in reg.histograms() {
        let mut o = BTreeMap::new();
        o.insert("count".to_string(), Value::Num(h.count() as f64));
        o.insert("sum".to_string(), Value::Num(h.sum()));
        o.insert("min".to_string(), h.min().map_or(Value::Null, Value::Num));
        o.insert("max".to_string(), h.max().map_or(Value::Null, Value::Num));
        o.insert("p50".to_string(), Value::Num(h.quantile(0.5)));
        o.insert("p90".to_string(), Value::Num(h.quantile(0.9)));
        o.insert("p99".to_string(), Value::Num(h.quantile(0.99)));
        hists.insert(name.to_string(), Value::Obj(o));
    }
    root.insert("histograms".to_string(), Value::Obj(hists));

    // Span totals per category: count + total modeled microseconds.
    let mut by_cat: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for s in &trace.spans {
        let e = by_cat.entry(s.cat.clone()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += s.dur_us;
    }
    let spans: BTreeMap<String, Value> = by_cat
        .into_iter()
        .map(|(cat, (n, us))| {
            let mut o = BTreeMap::new();
            o.insert("count".to_string(), Value::Num(n as f64));
            o.insert("total_us".to_string(), Value::Num(us));
            (cat, Value::Obj(o))
        })
        .collect();
    root.insert("spans".to_string(), Value::Obj(spans));
    root.insert(
        "instants".to_string(),
        Value::Num(trace.instants.len() as f64),
    );

    Value::Obj(root)
}

/// Serialise the run summary to a JSON string (single line + trailing
/// newline, deterministic key order).
pub fn run_summary_json(reg: &Registry, trace: &Trace) -> String {
    let mut s = run_summary(reg, trace).to_json();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::trace::Span;

    #[test]
    fn summary_roundtrips_and_totals_match() {
        let mut reg = Registry::new();
        reg.counter_add("recovery.rollbacks", 2);
        reg.gauge_set("phase.forward_us", 42.5);
        reg.observe("iter.us", 3.0);
        let mut trace = Trace::new();
        trace.push_span(Span {
            name: "forward".into(),
            cat: "phase".into(),
            tid: 0,
            ts_us: 0.0,
            dur_us: 40.0,
            args: vec![],
        });
        trace.push_span(Span {
            name: "forward".into(),
            cat: "phase".into(),
            tid: 0,
            ts_us: 40.0,
            dur_us: 2.5,
            args: vec![],
        });
        let s = run_summary_json(&reg, &trace);
        let v = json::parse(&s).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("recovery.rollbacks")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("phase.forward_us").unwrap().as_f64(),
            Some(42.5)
        );
        let phase = v.get("spans").unwrap().get("phase").unwrap();
        assert_eq!(phase.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(phase.get("total_us").unwrap().as_f64(), Some(42.5));
        assert!(v.get("histograms").unwrap().get("iter.us").is_some());
    }
}
