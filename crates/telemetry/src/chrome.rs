//! Chrome trace-event JSON exporter.
//!
//! Produces the [Trace Event Format] consumed by `chrome://tracing` and
//! Perfetto: one JSON object per event, `ts`/`dur` in microseconds (which
//! is exactly the unit of our modeled clock, so values pass through
//! unscaled). Output is one event per line in insertion order with
//! deterministic number formatting, so a fixed-seed run exports
//! byte-identical traces.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{fmt_num, write_escaped};
use crate::trace::{ArgValue, Trace};

fn write_args(out: &mut String, args: &[(String, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, k);
        out.push(':');
        match v {
            ArgValue::U64(u) => {
                out.push_str(&u.to_string());
            }
            ArgValue::F64(f) => out.push_str(&fmt_num(*f)),
            ArgValue::Str(s) => write_escaped(out, s),
        }
    }
    out.push('}');
}

fn write_common(out: &mut String, ph: char, name: &str, cat: &str, tid: u32, ts_us: f64) {
    out.push_str("{\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"pid\":0,\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"name\":");
    write_escaped(out, name);
    if !cat.is_empty() {
        out.push_str(",\"cat\":");
        write_escaped(out, cat);
    }
    out.push_str(",\"ts\":");
    out.push_str(&fmt_num(ts_us));
}

/// Serialise a [`Trace`] to Chrome trace-event JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };

    // Metadata: process name, then track names in declaration order.
    sep(&mut out);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"fbs (modeled time)\"}}",
    );
    for (tid, name) in &trace.thread_names {
        sep(&mut out);
        out.push_str("{\"ph\":\"M\",\"pid\":0,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":");
        write_escaped(&mut out, name);
        out.push_str("}}");
    }

    for s in &trace.spans {
        sep(&mut out);
        write_common(&mut out, 'X', &s.name, &s.cat, s.tid, s.ts_us);
        out.push_str(",\"dur\":");
        out.push_str(&fmt_num(s.dur_us));
        if !s.args.is_empty() {
            out.push_str(",\"args\":");
            write_args(&mut out, &s.args);
        }
        out.push('}');
    }

    for ev in &trace.instants {
        sep(&mut out);
        write_common(&mut out, 'i', &ev.name, &ev.cat, ev.tid, ev.ts_us);
        out.push_str(",\"s\":\"t\"");
        if !ev.args.is_empty() {
            out.push_str(",\"args\":");
            write_args(&mut out, &ev.args);
        }
        out.push('}');
    }

    for c in &trace.counters {
        sep(&mut out);
        write_common(&mut out, 'C', &c.name, "", 0, c.ts_us);
        out.push_str(",\"args\":{\"value\":");
        out.push_str(&fmt_num(c.value));
        out.push_str("}}");
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::trace::{InstantEvent, Span};

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.name_thread(Trace::TID_DEVICE, "device");
        t.push_span(Span {
            name: "fwd_sweep".into(),
            cat: "kernel".into(),
            tid: Trace::TID_DEVICE,
            ts_us: 1.5,
            dur_us: 2.25,
            args: vec![("grid".into(), ArgValue::U64(4))],
        });
        t.push_instant(InstantEvent {
            name: "fault".into(),
            cat: "fault".into(),
            tid: Trace::TID_DEVICE,
            ts_us: 2.0,
            args: vec![("desc".into(), ArgValue::Str("bit-flip".into()))],
        });
        t.push_counter("residual", 3.0, 0.125);
        t
    }

    #[test]
    fn output_is_valid_json_with_expected_events() {
        let s = chrome_trace_json(&sample_trace());
        let v = json::parse(&s).expect("chrome trace must parse as JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 1 span + 1 instant + 1 counter.
        assert_eq!(events.len(), 5);
        let span = &events[2];
        assert_eq!(span.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(span.get("ts").unwrap().as_f64().unwrap(), 1.5);
        assert_eq!(span.get("dur").unwrap().as_f64().unwrap(), 2.25);
        assert_eq!(
            span.get("args").unwrap().get("grid").unwrap().as_f64(),
            Some(4.0)
        );
        assert_eq!(events[3].get("ph").unwrap().as_str().unwrap(), "i");
        assert_eq!(events[4].get("ph").unwrap().as_str().unwrap(), "C");
    }

    #[test]
    fn export_is_deterministic() {
        let t = sample_trace();
        assert_eq!(chrome_trace_json(&t), chrome_trace_json(&t));
    }
}
