//! Prometheus text exposition (version 0.0.4) exporter.
//!
//! Counters, gauges, and histograms are written in name order with `# TYPE`
//! headers. Histogram buckets are the occupied power-of-two buckets as
//! cumulative `_bucket{le="..."}` series plus the mandatory `+Inf` bucket,
//! `_sum`, and `_count`. Metric names are sanitised to the Prometheus
//! charset; values use shortest round-trip formatting, so output is
//! deterministic.

use std::fmt::Write as _;

use crate::json::fmt_num;
use crate::metrics::Registry;

/// Rewrite `name` into a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with every invalid char mapped to `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Serialise a [`Registry`] to the Prometheus text exposition format.
pub fn prometheus_text(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in reg.gauges() {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_num(v));
    }
    for (name, h) in reg.histograms() {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (edge, cum) in h.cumulative_buckets() {
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", fmt_num(edge));
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{n}_sum {}", fmt_num(h.sum()));
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize() {
        assert_eq!(sanitize_name("solver.phase.fwd_us"), "solver_phase_fwd_us");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn exposition_shape() {
        let mut reg = Registry::new();
        reg.counter_add("service.shed", 3);
        reg.gauge_set("residual", 1.5e-9);
        reg.observe("iter.us", 1.5);
        reg.observe("iter.us", 6.0);
        let text = prometheus_text(&reg);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"# TYPE service_shed counter"));
        assert!(lines.contains(&"service_shed 3"));
        assert!(lines.contains(&"# TYPE residual gauge"));
        assert!(lines.contains(&"residual 0.0000000015"));
        assert!(lines.contains(&"# TYPE iter_us histogram"));
        // 1.5 → bucket [1,2) edge 2; 6.0 → bucket [4,8) edge 8 cumulative 2.
        assert!(lines.contains(&"iter_us_bucket{le=\"2\"} 1"));
        assert!(lines.contains(&"iter_us_bucket{le=\"8\"} 2"));
        assert!(lines.contains(&"iter_us_bucket{le=\"+Inf\"} 2"));
        assert!(lines.contains(&"iter_us_sum 7.5"));
        assert!(lines.contains(&"iter_us_count 2"));
        // Every non-comment line is "name value".
        for l in &lines {
            if !l.starts_with('#') {
                assert_eq!(l.split(' ').count(), 2, "bad line: {l}");
            }
        }
    }
}
