//! Minimal deterministic JSON: a writer with stable float formatting and a
//! small recursive-descent parser.
//!
//! The exporters in this crate must produce **byte-stable** output under a
//! fixed seed, so every number goes through [`fmt_num`] (Rust's shortest
//! round-trip `Display`, which is platform-independent) and every object is
//! backed by a `BTreeMap` (sorted keys). The parser exists so tests and the
//! bench summary can read the files back without external dependencies; it
//! accepts the JSON subset the writers emit plus ordinary hand-written JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite numbers serialise to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as an `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps serialisation order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric view; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object view; `None` for non-objects.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialise compactly (no whitespace) with deterministic key order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&fmt_num(*n)),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Format a number for JSON output: shortest round-trip representation,
/// with non-finite values mapped to `null` (JSON has no NaN/Inf).
pub fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        let mut s = String::new();
        let _ = write!(s, "{v}");
        s
    } else {
        "null".to_string()
    }
}

/// Append `s` to `out` as a JSON string literal with escapes.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Trailing whitespace is allowed; trailing garbage
/// is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our outputs;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), Value::Num(1.5));
        m.insert("a".to_string(), Value::Str("x\"y".to_string()));
        m.insert(
            "c".to_string(),
            Value::Arr(vec![Value::Null, Value::Bool(true)]),
        );
        let v = Value::Obj(m);
        let s = v.to_json();
        assert_eq!(s, r#"{"a":"x\"y","b":1.5,"c":[null,true]}"#);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn numbers_are_shortest_roundtrip() {
        assert_eq!(fmt_num(1.0), "1");
        assert_eq!(fmt_num(0.1), "0.1");
        assert_eq!(fmt_num(-2.5e-3), "-0.0025");
        assert_eq!(fmt_num(f64::NAN), "null");
        let v = 123.456_789_012;
        assert_eq!(parse(&fmt_num(v)).unwrap().as_f64().unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , \"a\\u0041b\" ] }\n").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "aAb"
        );
    }
}
