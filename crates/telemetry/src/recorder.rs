//! The [`Recorder`] — a cheap, cloneable handle that every instrumented
//! layer writes through.
//!
//! One recorder is created per run (usually by the CLI), cloned into the
//! solver / recovery driver / service, and drained once at the end with
//! [`Recorder::snapshot`]. Internally it is an `Arc<Mutex<..>>` so the
//! service watchdog thread and scoped solver threads can share it; all
//! hot-path producers are single-threaded, so the lock is uncontended and
//! event order stays deterministic.

use std::sync::{Arc, Mutex};

use crate::metrics::Registry;
use crate::trace::{ArgValue, InstantEvent, Span, Trace};

#[derive(Debug, Default)]
struct Inner {
    trace: Trace,
    metrics: Registry,
}

/// Shared handle onto one run's trace + metrics registry.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Arc<Mutex<Inner>>);

impl Recorder {
    /// A fresh recorder with an empty trace and registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a producer panicked mid-record; telemetry
        // is best-effort, so keep whatever was recorded.
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to a monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.lock().metrics.counter_add(name, delta);
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().metrics.gauge_set(name, v);
    }

    /// Record a histogram sample.
    pub fn observe(&self, name: &str, v: f64) {
        self.lock().metrics.observe(name, v);
    }

    /// Append a complete span with no args.
    pub fn span(&self, tid: u32, cat: &str, name: &str, ts_us: f64, dur_us: f64) {
        self.span_with(tid, cat, name, ts_us, dur_us, Vec::new());
    }

    /// Append a complete span with args.
    pub fn span_with(
        &self,
        tid: u32,
        cat: &str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.lock().trace.push_span(Span {
            name: name.to_string(),
            cat: cat.to_string(),
            tid,
            ts_us,
            dur_us,
            args,
        });
    }

    /// Append an instant event with no args.
    pub fn instant(&self, tid: u32, cat: &str, name: &str, ts_us: f64) {
        self.instant_with(tid, cat, name, ts_us, Vec::new());
    }

    /// Append an instant event with args.
    pub fn instant_with(
        &self,
        tid: u32,
        cat: &str,
        name: &str,
        ts_us: f64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.lock().trace.push_instant(InstantEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            tid,
            ts_us,
            args,
        });
    }

    /// Append a counter-series sample (also mirrored as a gauge so the
    /// final value shows up in metrics exports).
    pub fn counter_sample(&self, name: &str, ts_us: f64, value: f64) {
        let mut inner = self.lock();
        inner.trace.push_counter(name, ts_us, value);
        inner.metrics.gauge_set(name, value);
    }

    /// Name a trace track.
    pub fn name_thread(&self, tid: u32, name: &str) {
        self.lock().trace.name_thread(tid, name);
    }

    /// Run `f` with mutable access to the trace (bulk producers such as the
    /// simt timeline bridge use this to avoid per-event locking).
    pub fn with_trace<R>(&self, f: impl FnOnce(&mut Trace) -> R) -> R {
        f(&mut self.lock().trace)
    }

    /// Run `f` with mutable access to the metrics registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        f(&mut self.lock().metrics)
    }

    /// Clone out the accumulated trace and registry.
    pub fn snapshot(&self) -> (Trace, Registry) {
        let inner = self.lock();
        (inner.trace.clone(), inner.metrics.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let rec2 = rec.clone();
        rec.counter_add("c", 1);
        rec2.counter_add("c", 2);
        rec.span(0, "cat", "s", 0.0, 1.0);
        let (trace, metrics) = rec2.snapshot();
        assert_eq!(metrics.counter("c"), 3);
        assert_eq!(trace.spans.len(), 1);
    }

    #[test]
    fn counter_sample_mirrors_gauge() {
        let rec = Recorder::new();
        rec.counter_sample("q", 1.0, 3.0);
        rec.counter_sample("q", 2.0, 5.0);
        let (trace, metrics) = rec.snapshot();
        assert_eq!(trace.counters.len(), 2);
        assert_eq!(metrics.gauge("q"), Some(5.0));
    }
}
