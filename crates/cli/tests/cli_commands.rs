//! Integration tests of the CLI command layer (gen → info → solve →
//! compare pipelines on temporary files).

use std::fs;
use std::path::PathBuf;

use fbs_cli::commands;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fbs-cli-test-{}-{name}", std::process::id()));
    p
}

fn run(args: &[&str]) -> Result<u8, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    commands::run(&argv)
}

#[test]
fn gen_info_solve_compare_pipeline() {
    let path = tmp("pipeline.grid");
    let path_s = path.to_str().unwrap();

    run(&["gen", "--topology", "binary", "--buses", "255", "--seed", "3", "--out", path_s])
        .expect("gen must succeed");
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("# radial distribution network"));
    assert!(text.contains("grid 1"));

    run(&["info", path_s]).expect("info must succeed");
    for solver in ["serial", "multicore", "gpu", "gpu-direct", "gpu-atomic", "gpu-jump"] {
        let code = run(&["solve", path_s, "--solver", solver, "--show-voltages", "3"])
            .unwrap_or_else(|e| panic!("solve with {solver} failed: {e}"));
        assert_eq!(code, 0, "healthy solve with {solver} must exit 0");
    }
    run(&["compare", path_s]).expect("compare must succeed");
    let _ = fs::remove_file(&path);
}

#[test]
fn feeders_are_exportable_and_solvable() {
    for name in ["ieee13", "ieee37", "ieee123"] {
        let path = tmp(&format!("{name}.grid"));
        let path_s = path.to_str().unwrap();
        run(&["feeders", "--name", name, "--out", path_s]).expect("feeders must succeed");
        run(&["solve", path_s, "--solver", "gpu", "--timings", "false"])
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let _ = fs::remove_file(&path);
    }
}

#[test]
fn screen_runs_every_n_minus_1_outage() {
    let path = tmp("screen.grid");
    let path_s = path.to_str().unwrap();
    run(&["feeders", "--name", "ieee37", "--out", path_s]).expect("feeders must succeed");
    // Warm (default), cold, and a voltage floor; the feeder survives
    // every single outage, so all three exit 0.
    assert_eq!(run(&["screen", path_s]).expect("warm screen"), 0);
    assert_eq!(run(&["screen", path_s, "--warm", "false"]).expect("cold screen"), 0);
    assert_eq!(run(&["screen", path_s, "--v-floor", "0.95"]).expect("floored screen"), 0);
    assert!(run(&["screen"]).is_err(), "missing positional");

    // The metrics sink carries the screen-level counters.
    let metrics = tmp("screen-metrics.json");
    let metrics_s = metrics.to_str().unwrap();
    assert_eq!(
        run(&["screen", path_s, "--metrics-out", metrics_s]).expect("screen with metrics"),
        0
    );
    let text = fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("screen.contingencies"), "{text}");
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&metrics);
}

#[test]
fn fleet_replays_a_chaotic_stream_and_exports_fleet_metrics() {
    let path = tmp("fleet.grid");
    let path_s = path.to_str().unwrap();
    run(&["feeders", "--name", "ieee13", "--out", path_s]).expect("feeders must succeed");

    // A healthy run, then a chaos run with one device scripted dead,
    // sharded batches and a tight queue; both must exit 0 (the fleet
    // answers or sheds explicitly, it never errors out).
    assert_eq!(run(&["fleet", path_s, "--devices", "2", "--requests", "12"]).unwrap(), 0);
    let metrics = tmp("fleet-metrics.json");
    let metrics_s = metrics.to_str().unwrap();
    assert_eq!(
        run(&[
            "fleet", path_s, "--devices", "3", "--requests", "18", "--gap", "80",
            "--kill-device", "1", "--batch-every", "6", "--scenarios", "96",
            "--shard-min", "16", "--queue", "4", "--metrics-out", metrics_s,
        ])
        .expect("chaos fleet run"),
        0
    );
    let text = fs::read_to_string(&metrics).unwrap();
    for key in [
        "fleet.stats.submitted",
        "fleet.stats.failovers",
        "fleet.requests_per_sec",
        "fleet.d0.stats.served",
        "fleet.d1.stats.breaker_opens",
    ] {
        assert!(text.contains(key), "run summary must carry {key}: {text}");
    }

    // Bad shapes are reported, not panicked.
    assert!(run(&["fleet", path_s, "--devices", "0"]).is_err(), "zero devices");
    assert!(run(&["fleet", path_s, "--kill-device", "7"]).is_err(), "kill out of range");
    assert!(run(&["fleet"]).is_err(), "missing positional");
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&metrics);
}

#[test]
fn soak_runs_a_storm_with_integrity_guards_and_exits_clean() {
    let path = tmp("soak.grid");
    let path_s = path.to_str().unwrap();
    run(&["feeders", "--name", "ieee37", "--out", path_s]).expect("feeders must succeed");

    // A storm soak with the correlated kill and shadow sampling on
    // every answer: the integrity nets must catch everything, so the
    // verdict is clean and the exit code 0 (code 8 would mean an
    // undetected corruption reached an answer).
    let metrics = tmp("soak-metrics.json");
    let metrics_s = metrics.to_str().unwrap();
    assert_eq!(
        run(&[
            "soak", path_s, "--requests", "16", "--tol", "1e-12", "--sample-every", "1",
            "--metrics-out", metrics_s,
        ])
        .expect("storm soak run"),
        0
    );
    let text = fs::read_to_string(&metrics).unwrap();
    for key in [
        "soak.requests_per_sec",
        "soak.detected_corruptions",
        "soak.shadow_mismatches",
        "integrity.sampled",
        "integrity.mismatches",
    ] {
        assert!(text.contains(key), "run summary must carry {key}: {text}");
    }

    // Bad shapes are reported, not panicked.
    assert!(run(&["soak", path_s, "--devices", "0"]).is_err(), "zero devices");
    assert!(run(&["soak", path_s, "--burst-rate", "1.5"]).is_err(), "rate not a probability");
    assert!(run(&["soak", path_s, "--sample-every", "0"]).is_err(), "zero sampling cadence");
    assert!(run(&["soak"]).is_err(), "missing positional");
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&metrics);
}

#[test]
fn size_suffixes_accepted_in_gen() {
    let path = tmp("suffix.grid");
    let path_s = path.to_str().unwrap();
    run(&["gen", "--topology", "star", "--buses", "1k", "--out", path_s]).unwrap();
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.contains("(1024 buses)"));
    let _ = fs::remove_file(&path);
}

#[test]
fn errors_are_reported_not_panicked() {
    assert!(run(&[]).is_err(), "missing subcommand");
    assert!(run(&["frobnicate"]).is_err(), "unknown subcommand");
    assert!(run(&["gen", "--topology", "klein-bottle"]).is_err(), "unknown topology");
    assert!(run(&["solve", "/nonexistent/file.grid"]).is_err(), "missing file");
    assert!(run(&["solve"]).is_err(), "missing positional");
    assert!(run(&["feeders", "--name", "ieee9000"]).is_err(), "unknown feeder");

    // Malformed grid content surfaces a parse error with the path.
    let path = tmp("bad.grid");
    fs::write(&path, "this is not a grid file").unwrap();
    let err = run(&["solve", path.to_str().unwrap()]).unwrap_err();
    assert!(err.contains("bad.grid"), "{err}");
    let _ = fs::remove_file(&path);
}

#[test]
fn profile_reports_kernels() {
    let path = tmp("profile.grid");
    let path_s = path.to_str().unwrap();
    run(&["gen", "--topology", "binary", "--buses", "511", "--out", path_s]).unwrap();
    for solver in ["gpu", "gpu-jump", "gpu-atomic"] {
        run(&["profile", path_s, "--solver", solver])
            .unwrap_or_else(|e| panic!("profile {solver}: {e}"));
    }
    assert!(run(&["profile", path_s, "--solver", "serial"]).is_err(), "profile needs a device solver");
    let _ = fs::remove_file(&path);
}

#[test]
fn three_phase_pipeline() {
    let p1 = tmp("tp.grid");
    let p3 = tmp("tp.grid3");
    let (s1, s3) = (p1.to_str().unwrap(), p3.to_str().unwrap());

    // Published unbalanced feeder → solve3 with both solvers.
    run(&["feeders3", "--name", "ieee13", "--out", s3]).unwrap();
    run(&["solve3", s3, "--solver", "serial"]).unwrap();
    run(&["solve3", s3, "--solver", "gpu"]).unwrap();

    // Expansion path: single-phase gen → gen3 → solve3.
    run(&["gen", "--topology", "binary", "--buses", "127", "--out", s1]).unwrap();
    run(&["gen3", s1, "--unbalance", "0.4", "--out", s3]).unwrap();
    run(&["solve3", s3, "--solver", "gpu"]).unwrap();

    assert!(run(&["solve3", s3, "--solver", "gpu-jump"]).is_err(), "3φ has serial/gpu only");
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p3);
}

#[test]
fn solve_exit_codes_reflect_status() {
    use numc::{c, Complex};
    use powergrid::gridfile::write_grid;
    use powergrid::NetworkBuilder;

    // Crafted collapse: V₀ = 100 V, Z = 10 Ω, S = 1000 VA drives the
    // load bus to exactly 0 V, so iteration 2 divides by zero.
    let mut b = NetworkBuilder::new(c(100.0, 0.0));
    b.add_bus(Complex::ZERO);
    b.add_bus(c(1000.0, 0.0));
    b.connect(0, 1, c(10.0, 0.0));
    let net = b.build().unwrap();

    let path = tmp("collapse.grid");
    let path_s = path.to_str().unwrap();
    fs::write(&path, write_grid(&net)).unwrap();

    for solver in ["serial", "multicore", "gpu", "gpu-direct", "gpu-atomic", "gpu-jump"] {
        let code = run(&["solve", path_s, "--solver", solver, "--timings", "false"])
            .unwrap_or_else(|e| panic!("solve with {solver} errored instead of exiting: {e}"));
        assert_eq!(code, 4, "{solver}: voltage collapse must exit with the numerical-failure code");
    }

    // An honest non-convergence (tight tolerance, starved iteration
    // budget) is a distinct exit code from divergence and from usage
    // errors.
    let healthy = tmp("starved.grid");
    let healthy_s = healthy.to_str().unwrap();
    run(&["gen", "--topology", "binary", "--buses", "127", "--out", healthy_s]).unwrap();
    let code = run(&["solve", healthy_s, "--tol", "1e-14", "--max-iter", "2"]).unwrap();
    assert_eq!(code, 2, "starved iteration budget must exit with the max-iterations code");

    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&healthy);
}

#[test]
fn help_is_available() {
    run(&["help"]).unwrap();
    run(&["--help"]).unwrap();
}

#[test]
fn solve_honors_tolerance_flag() {
    let path = tmp("tol.grid");
    let path_s = path.to_str().unwrap();
    run(&["gen", "--topology", "binary", "--buses", "127", "--out", path_s]).unwrap();
    run(&["solve", path_s, "--tol", "1e-10"]).unwrap();
    assert!(run(&["solve", path_s, "--tol", "not-a-number"]).is_err());
    let _ = fs::remove_file(&path);
}

#[test]
fn forced_device_loss_without_degradation_exits_5() {
    let path = tmp("lost.grid");
    let path_s = path.to_str().unwrap();
    run(&["gen", "--topology", "binary", "--buses", "255", "--seed", "7", "--out", path_s])
        .unwrap();

    let code = run(&[
        "solve", path_s, "--solver", "gpu", "--fault-lost-at", "40", "--degrade", "false",
    ])
    .expect("device loss is a reported exit code, not a usage error");
    assert_eq!(code, 5, "unrecoverable device loss must exit 5");

    // With degradation enabled the same loss still produces an answer.
    let code = run(&["solve", path_s, "--solver", "gpu", "--fault-lost-at", "40"]).unwrap();
    assert_eq!(code, 0, "degraded solve must still converge");

    // solve3 reports unrecoverable runs the same way: script the loss
    // to re-fire at the start of every attempt so retries cannot win.
    let p3 = tmp("lost.grid3");
    let s3 = p3.to_str().unwrap();
    run(&["feeders3", "--name", "ieee13", "--out", s3]).unwrap();
    let code = run(&[
        "solve3", s3, "--solver", "gpu", "--fault-rate", "1", "--degrade", "false",
    ])
    .expect("exhausted 3φ retries are a reported exit code");
    assert_eq!(code, 5, "3φ budget exhaustion without degradation must exit 5");

    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&p3);
}

#[test]
fn deadline_and_invalid_config_exit_codes() {
    let path = tmp("deadline.grid");
    let path_s = path.to_str().unwrap();
    run(&["gen", "--topology", "binary", "--buses", "1023", "--out", path_s]).unwrap();

    // A microscopic modeled budget cuts the solve after its first
    // iteration: partial state, exit code 6.
    for solver in ["serial", "gpu", "gpu-jump"] {
        let code = run(&[
            "solve", path_s, "--solver", solver, "--deadline-ms", "1e-6", "--timings", "false",
        ])
        .unwrap_or_else(|e| panic!("{solver}: deadline run errored: {e}"));
        assert_eq!(code, 6, "{solver}: deadline-cut solve must exit 6");
    }

    // A generous budget changes nothing.
    let code = run(&["solve", path_s, "--deadline-ms", "1e9", "--timings", "false"]).unwrap();
    assert_eq!(code, 0, "a generous deadline must not fire");

    // --max-iter 0 is a structured config error, never a panic: exit 7.
    let code = run(&["solve", path_s, "--max-iter", "0", "--timings", "false"]).unwrap();
    assert_eq!(code, 7, "max-iter 0 must exit with the invalid-config code");
    let code = run(&["solve", path_s, "--deadline-ms", "-5", "--timings", "false"]).unwrap();
    assert_eq!(code, 7, "negative deadline must exit with the invalid-config code");

    let _ = fs::remove_file(&path);
}

#[test]
fn service_flags_route_through_the_robustness_layer() {
    let path = tmp("svc.grid");
    let path_s = path.to_str().unwrap();
    run(&["gen", "--topology", "binary", "--buses", "255", "--out", path_s]).unwrap();

    // A clean run through the service answers normally.
    let code = run(&[
        "solve", path_s, "--solver", "gpu", "--max-retries", "2", "--timings", "false",
    ])
    .expect("service solve must not be a usage error");
    assert_eq!(code, 0, "clean service solve must exit 0");

    // Under saturating fault pressure the breaker opens and the CPU
    // fallback still produces a converged answer.
    let code = run(&[
        "solve", path_s, "--solver", "gpu", "--breaker-threshold", "1", "--max-retries", "0",
        "--fault-rate", "1", "--timings", "false",
    ])
    .unwrap();
    assert_eq!(code, 0, "service fallback must still converge");

    // solve3 runs device-first under the service; serial is rejected.
    let p3 = tmp("svc.grid3");
    let s3 = p3.to_str().unwrap();
    run(&["feeders3", "--name", "ieee13", "--out", s3]).unwrap();
    let code = run(&["solve3", s3, "--solver", "gpu", "--max-retries", "1"]).unwrap();
    assert_eq!(code, 0, "three-phase service solve must exit 0");
    assert!(
        run(&["solve3", s3, "--solver", "serial", "--max-retries", "1"]).is_err(),
        "service flags require the device solver for solve3"
    );

    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&p3);
}

#[test]
fn seeded_fault_runs_are_byte_identical() {
    use std::process::Command;

    let path = tmp("replay.grid");
    let path_s = path.to_str().unwrap();
    run(&["gen", "--topology", "binary", "--buses", "255", "--seed", "7", "--out", path_s])
        .unwrap();

    let exe = env!("CARGO_BIN_EXE_fbs");
    let solve = |env: Option<(&str, &str)>, args: &[&str]| {
        let mut cmd = Command::new(exe);
        cmd.args(args).env_remove("FBS_FAULT_SEED");
        if let Some((k, v)) = env {
            cmd.env(k, v);
        }
        let out = cmd.output().expect("spawn fbs binary");
        (out.status.code(), String::from_utf8(out.stdout).expect("utf-8 stdout"))
    };

    let args =
        ["solve", path_s, "--solver", "gpu-atomic", "--fault-seed", "99", "--fault-rate", "0.01"];
    let (c1, out1) = solve(None, &args);
    let (c2, out2) = solve(None, &args);
    assert_eq!(out1, out2, "same seed must replay to byte-identical stdout");
    assert_eq!(c1, c2);
    assert!(out1.contains("recovery:    seed 99"), "fault summary missing:\n{out1}");

    // FBS_FAULT_SEED overrides --fault-seed, reproducing the seed-99 run
    // from a command line that says seed 1.
    let (c3, out3) = solve(
        Some(("FBS_FAULT_SEED", "99")),
        &["solve", path_s, "--solver", "gpu-atomic", "--fault-seed", "1", "--fault-rate", "0.01"],
    );
    assert_eq!(out3, out1, "env-overridden seed must replay the --fault-seed run");
    assert_eq!(c3, c1);

    let _ = fs::remove_file(&path);
}

#[test]
fn meshed_dg_feeder_solves_on_every_backend() {
    let path = tmp("ieee123-dg.grid");
    let path_s = path.to_str().unwrap();
    run(&["feeders", "--name", "ieee123-dg", "--out", path_s]).expect("feeders must succeed");
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.contains("\ntie "), "meshed export must carry tie records:\n{text}");
    assert!(text.contains("\ngen "), "meshed export must carry gen records:\n{text}");

    for solver in ["serial", "multicore", "gpu", "gpu-direct", "gpu-atomic"] {
        let code = run(&["solve", path_s, "--solver", solver, "--timings", "false"])
            .unwrap_or_else(|e| panic!("meshed solve with {solver} failed: {e}"));
        assert_eq!(code, 0, "meshed solve with {solver} must exit 0");
    }
    // The jump solver has no mesh outer loop: a clear usage error, not
    // a panic or a silently-radial answer.
    assert!(run(&["solve", path_s, "--solver", "gpu-jump"]).is_err());
    // Service flags don't compose with the outer loop.
    assert!(run(&["solve", path_s, "--max-retries", "2"]).is_err());

    // The resilient path recovers injected faults and still exits 0.
    let code = run(&[
        "solve", path_s, "--solver", "gpu", "--fault-seed", "11", "--fault-rate", "0.005",
        "--timings", "false",
    ])
    .expect("resilient meshed solve");
    assert_eq!(code, 0, "recovered meshed solve must exit 0");

    // Radial commands reject meshed files with a line-numbered error
    // instead of quietly dropping the ties.
    let err = run(&["batch", path_s]).unwrap_err();
    assert!(err.contains("tie"), "{err}");

    let _ = fs::remove_file(&path);
}

/// Three generators behind one high-reactance trunk over-correct
/// collectively (each applies the full shared-trunk correction), so the
/// PV mismatch grows until the outer loop declares divergence: the
/// deterministic exit-9 case.
const PV_FIGHT_GRID: &str = "\
grid 1
source 2400 0
bus 0 0 0
bus 1 10000 3000
bus 2 5000 1000
bus 3 5000 1000
bus 4 5000 1000
branch 0 1 0.1 5.0
branch 1 2 0.01 0.01
branch 1 3 0.01 0.01
branch 1 4 0.01 0.01
gen 2 5000 2395 -1000000000 1000000000
gen 3 5000 2395 -1000000000 1000000000
gen 4 5000 2395 -1000000000 1000000000
";

#[test]
fn outer_divergence_exits_with_code_9() {
    let path = tmp("pv-fight.grid");
    let path_s = path.to_str().unwrap();
    fs::write(&path, PV_FIGHT_GRID).unwrap();

    let code = run(&["solve", path_s, "--timings", "false"]).expect("solve must not error");
    assert_eq!(code, 9, "outer divergence must exit 9");

    // Capping the outer loop before the divergence is detected reports
    // outer-cap exhaustion (exit 2), not divergence.
    let code = run(&["solve", path_s, "--outer-max-iter", "2", "--timings", "false"]).unwrap();
    assert_eq!(code, 2, "outer cap exhaustion must exit 2");

    // Invalid outer knobs surface as InvalidConfig (exit 7), same as
    // the inner solver's config validation.
    let code = run(&["solve", path_s, "--outer-tol", "-1", "--timings", "false"]).unwrap();
    assert_eq!(code, 7, "negative outer tolerance must exit 7");
    let code = run(&["solve", path_s, "--outer-max-iter", "0", "--timings", "false"]).unwrap();
    assert_eq!(code, 7, "zero outer iterations must exit 7");

    let _ = fs::remove_file(&path);
}

#[test]
fn solve3_accepts_dg_grid3_transparently() {
    let path = tmp("dg.grid3");
    let path_s = path.to_str().unwrap();
    run(&["feeders3", "--name", "ieee13", "--out", path_s]).expect("feeders3 must succeed");
    let mut text = fs::read_to_string(&path).unwrap();
    text.push_str("gen 6 20000 2350 -30000 30000\n");
    fs::write(&path, &text).unwrap();

    for solver in ["serial", "gpu"] {
        let code = run(&["solve3", path_s, "--solver", solver])
            .unwrap_or_else(|e| panic!("solve3 DG with {solver} failed: {e}"));
        assert_eq!(code, 0, "DG solve3 with {solver} must exit 0");
    }
    // Fault injection composes with the three-phase PV loop.
    let code = run(&["solve3", path_s, "--solver", "gpu", "--fault-seed", "7", "--fault-rate", "0.005"])
        .expect("resilient DG solve3");
    assert_eq!(code, 0);
    // Service flags don't compose with the PV loop.
    assert!(run(&["solve3", path_s, "--solver", "gpu", "--max-retries", "2"]).is_err());

    // Hostile gen records come back as line-numbered parse errors.
    let mut bad = fs::read_to_string(&path).unwrap();
    bad.push_str("gen 6 1 2350 -1 1\n");
    fs::write(&path, &bad).unwrap();
    let err = run(&["solve3", path_s]).unwrap_err();
    assert!(err.contains("already has a generator") && err.contains("line 30"), "{err}");

    let _ = fs::remove_file(&path);
}
