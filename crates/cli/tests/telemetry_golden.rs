//! Golden-output integration tests for the telemetry exporters: the
//! Chrome trace written for a fixed-seed feeder must be byte-identical
//! across runs (all timestamps are modeled, never wall-clock), the run
//! summary's per-phase gauges must reconcile with the solver's own
//! phase report, and the Prometheus exposition must be well-formed.

use std::fs;
use std::path::PathBuf;

use fbs_cli::commands;
use telemetry::json::{self, Value};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fbs-cli-telemetry-{}-{name}", std::process::id()));
    p
}

fn run(args: &[&str]) -> Result<u8, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    commands::run(&argv)
}

/// Generate the golden fixed-seed 1K binary tree and return its path.
fn golden_grid(name: &str) -> PathBuf {
    let grid = tmp(name);
    run(&[
        "gen",
        "--topology",
        "binary",
        "--buses",
        "1023",
        "--seed",
        "42",
        "--out",
        grid.to_str().unwrap(),
    ])
    .expect("gen must succeed");
    grid
}

fn gauge(summary: &Value, name: &str) -> f64 {
    summary
        .get("gauges")
        .and_then(|g| g.get(name))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("summary must carry gauge {name}"))
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    let grid = golden_grid("golden.grid");
    let grid_s = grid.to_str().unwrap();

    let (t1, t2) = (tmp("golden-1.trace.json"), tmp("golden-2.trace.json"));
    let (m1, m2) = (tmp("golden-1.summary.json"), tmp("golden-2.summary.json"));
    for (t, m) in [(&t1, &m1), (&t2, &m2)] {
        let code = run(&[
            "profile",
            grid_s,
            "--trace-out",
            t.to_str().unwrap(),
            "--metrics-out",
            m.to_str().unwrap(),
        ])
        .expect("profile must succeed");
        assert_eq!(code, 0, "profile exits 0 on the golden tree");
    }

    let trace_a = fs::read(&t1).expect("first trace written");
    let trace_b = fs::read(&t2).expect("second trace written");
    assert!(!trace_a.is_empty(), "trace must not be empty");
    assert_eq!(trace_a, trace_b, "fixed-seed traces must be byte-identical");

    let sum_a = fs::read(&m1).expect("first summary written");
    let sum_b = fs::read(&m2).expect("second summary written");
    assert_eq!(sum_a, sum_b, "fixed-seed run summaries must be byte-identical");

    for p in [&grid, &t1, &t2, &m1, &m2] {
        let _ = fs::remove_file(p);
    }
}

#[test]
fn trace_export_is_valid_chrome_trace_json() {
    let grid = golden_grid("trace-shape.grid");
    let trace_path = tmp("trace-shape.trace.json");
    run(&["profile", grid.to_str().unwrap(), "--trace-out", trace_path.to_str().unwrap()])
        .expect("profile must succeed");

    let text = fs::read_to_string(&trace_path).expect("trace written");
    let doc = json::parse(&text).expect("trace must parse as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("trace must carry a traceEvents array");
    assert!(!events.is_empty(), "trace must carry events");

    let mut spans = 0usize;
    let mut kernel_spans = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("every event has ph");
        assert!(matches!(ph, "X" | "i" | "C" | "M"), "unexpected phase {ph}");
        if ph == "X" {
            spans += 1;
            let dur = ev.get("dur").and_then(Value::as_f64).expect("X events carry dur");
            assert!(dur >= 0.0, "span durations are non-negative");
            if ev.get("cat").and_then(Value::as_str) == Some("kernel") {
                kernel_spans += 1;
            }
        }
    }
    assert!(spans > 0, "trace must carry complete (X) spans");
    assert!(kernel_spans > 0, "device bridge must export kernel spans");

    let _ = fs::remove_file(&grid);
    let _ = fs::remove_file(&trace_path);
}

#[test]
fn run_summary_phases_reconcile_with_timing_report() {
    let grid = golden_grid("reconcile.grid");
    let summary_path = tmp("reconcile.summary.json");
    run(&["profile", grid.to_str().unwrap(), "--metrics-out", summary_path.to_str().unwrap()])
        .expect("profile must succeed");

    let text = fs::read_to_string(&summary_path).expect("summary written");
    let doc = json::parse(&text).expect("summary must parse as JSON");

    // The per-phase gauges must sum to the total the solver reported.
    let parts = ["setup", "injection", "backward", "forward", "convergence", "teardown"]
        .iter()
        .map(|p| gauge(&doc, &format!("phase.{p}_us")))
        .sum::<f64>();
    let total = gauge(&doc, "phase.total_us");
    assert!(total > 0.0, "modeled total must be positive");
    assert!(
        (parts - total).abs() <= 1e-6 * total.max(1.0),
        "phase gauges ({parts}) must reconcile with phase.total_us ({total})"
    );

    // The device-track spans the Timeline bridge exported must account
    // for the same modeled interval: kernels + transfers cover the run.
    let spans = doc.get("spans").and_then(Value::as_obj).expect("summary carries span rollups");
    let cat_total = |cat: &str| {
        spans
            .get(cat)
            .and_then(|c| c.get("total_us"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let device_us = cat_total("kernel") + cat_total("xfer");
    assert!(device_us > 0.0, "device bridge must export kernel/xfer time");
    assert!(
        (device_us - total).abs() <= 0.05 * total,
        "device span time ({device_us}) must track the modeled total ({total})"
    );

    assert_eq!(
        doc.get("counters").and_then(|c| c.get("solve.runs")).and_then(Value::as_f64),
        Some(1.0),
        "one profile run records one solve"
    );

    let _ = fs::remove_file(&grid);
    let _ = fs::remove_file(&summary_path);
}

#[test]
fn prometheus_export_is_well_formed() {
    let grid = golden_grid("prom.grid");
    let prom_path = tmp("prom.metrics.prom");
    run(&["solve", grid.to_str().unwrap(), "--metrics-out", prom_path.to_str().unwrap()])
        .expect("solve must succeed");

    let text = fs::read_to_string(&prom_path).expect("exposition written");
    assert!(text.ends_with('\n'), "exposition ends with a newline");
    assert!(text.contains("# TYPE solve_runs counter"), "counters carry TYPE lines");
    assert!(text.contains("\nsolve_runs 1\n"), "one solve run recorded");
    assert!(text.contains("# TYPE phase_total_us gauge"), "gauges carry TYPE lines");
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.split_once(' ').expect("sample lines are `name value`");
        // Histogram buckets carry a `{le="..."}` label; the bare name
        // before it must still be sanitized.
        let bare = name.split('{').next().unwrap_or(name);
        assert!(
            bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name {bare} must be sanitized"
        );
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "value {value} must be numeric");
    }

    let _ = fs::remove_file(&grid);
    let _ = fs::remove_file(&prom_path);
}

#[test]
fn batch_writes_trace_and_summary() {
    let grid = golden_grid("batch.grid");
    let trace_path = tmp("batch.trace.json");
    let summary_path = tmp("batch.summary.json");
    let code = run(&[
        "batch",
        grid.to_str().unwrap(),
        "--scenarios",
        "4",
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        summary_path.to_str().unwrap(),
    ])
    .expect("batch must succeed");
    assert_eq!(code, 0, "batch of benign scenarios converges");

    let doc = json::parse(&fs::read_to_string(&trace_path).expect("trace written"))
        .expect("batch trace parses");
    assert!(
        doc.get("traceEvents").and_then(Value::as_arr).is_some_and(|e| !e.is_empty()),
        "batch trace carries events"
    );
    let doc = json::parse(&fs::read_to_string(&summary_path).expect("summary written"))
        .expect("batch summary parses");
    assert_eq!(
        doc.get("counters").and_then(|c| c.get("solve.status.converged")).and_then(Value::as_f64),
        Some(1.0),
        "batch records its worst status"
    );

    let _ = fs::remove_file(&grid);
    let _ = fs::remove_file(&trace_path);
    let _ = fs::remove_file(&summary_path);
}

#[test]
fn mesh_solve_records_outer_telemetry() {
    let grid = tmp("mesh-golden.grid");
    let grid_s = grid.to_str().unwrap();
    run(&["feeders", "--name", "ieee123-dg", "--out", grid_s]).expect("feeders must succeed");

    let (t1, t2) = (tmp("mesh-1.trace.json"), tmp("mesh-2.trace.json"));
    let (m1, m2) = (tmp("mesh-1.summary.json"), tmp("mesh-2.summary.json"));
    for (t, m) in [(&t1, &m1), (&t2, &m2)] {
        let code = run(&[
            "solve",
            grid_s,
            "--solver",
            "gpu",
            "--trace-out",
            t.to_str().unwrap(),
            "--metrics-out",
            m.to_str().unwrap(),
        ])
        .expect("meshed solve must succeed");
        assert_eq!(code, 0, "instrumented meshed solve exits 0");
    }
    assert_eq!(
        fs::read(&t1).expect("first trace"),
        fs::read(&t2).expect("second trace"),
        "fixed-topology meshed traces must be byte-identical"
    );
    assert_eq!(
        fs::read(&m1).expect("first summary"),
        fs::read(&m2).expect("second summary"),
        "fixed-topology meshed summaries must be byte-identical"
    );

    let doc = json::parse(&fs::read_to_string(&m1).unwrap()).expect("summary parses");

    // The mesh.* run-summary gauges: topology counts are exact, the
    // outer loop ran, and the final mismatches met the outer tolerance.
    assert_eq!(gauge(&doc, "mesh.loops"), 2.0, "ieee123-dg carries two closed ties");
    assert_eq!(gauge(&doc, "mesh.gens"), 3.0, "ieee123-dg carries three generators");
    assert!(gauge(&doc, "mesh.outer_iterations") >= 2.0, "compensation needs outer iterations");
    assert!(gauge(&doc, "mesh.breakpoint_residual") < 1e-2, "break points must have settled");
    assert!(gauge(&doc, "mesh.pv_error") < 1e-2, "PV set-points must have settled");

    // The outer loop's per-iteration residual track lands in the trace
    // as counter events and the iteration count in the histogram block.
    let trace = fs::read_to_string(&t1).unwrap();
    assert!(trace.contains("mesh.breakpoint_residual"), "trace carries the residual track");
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("solver.outer_iterations"))
        .expect("summary carries the outer-iterations histogram");
    assert!(
        hist.get("count").and_then(Value::as_f64) == Some(1.0),
        "one meshed solve observes one outer-iteration count: {hist:?}"
    );

    assert_eq!(
        doc.get("counters").and_then(|c| c.get("solve.status.converged")).and_then(Value::as_f64),
        Some(1.0),
        "the converged status counter carries the overall mesh status"
    );

    for p in [&grid, &t1, &t2, &m1, &m2] {
        let _ = fs::remove_file(p);
    }
}
