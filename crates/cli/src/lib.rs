//! Library surface of the `fbs` CLI (split from the binary so the
//! command layer is integration-testable).

#![warn(missing_docs)]

pub mod args;
pub mod commands;
