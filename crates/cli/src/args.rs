//! A minimal `--flag value` parser: positional arguments plus string
//! flags, with typed accessors and unknown-flag rejection.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv` (after the subcommand), accepting only the flag
    /// names in `allowed`. Every flag takes exactly one value.
    pub fn parse(argv: &[String], allowed: &[&str]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if !allowed.contains(&name) {
                    return Err(format!("unknown flag --{name}"));
                }
                let val = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                if out.flags.insert(name.to_string(), val.clone()).is_some() {
                    return Err(format!("--{name} given twice"));
                }
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The single expected positional argument.
    pub fn one_positional(&self, what: &str) -> Result<&str, String> {
        match self.positional() {
            [p] => Ok(p),
            [] => Err(format!("missing {what}")),
            _ => Err(format!("expected exactly one {what}")),
        }
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// Optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Optional typed flag; errors mention the flag name.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => {
                v.parse().map(Some).map_err(|_| format!("--{name}: cannot parse `{v}`"))
            }
        }
    }

    /// Typed flag with a default; errors mention the flag name.
    pub fn get_parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    /// Parses sizes like `4096`, `4k`, `256K`, `1m`.
    pub fn get_size_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => parse_size(v).ok_or_else(|| format!("--{name}: cannot parse size `{v}`")),
        }
    }
}

/// Parses a human size suffix (k/K = 1024, m/M = 1024²).
pub fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1024usize),
        'm' | 'M' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<usize>().ok().map(|n| n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&sv(&["net.grid", "--tol", "1e-9", "--solver", "gpu"]), &["tol", "solver"])
            .unwrap();
        assert_eq!(a.one_positional("file").unwrap(), "net.grid");
        assert_eq!(a.get("solver"), Some("gpu"));
        assert_eq!(a.get_parse_or("tol", 1e-6).unwrap(), 1e-9);
        assert_eq!(a.get_parse_or("max-iter", 100u32).unwrap(), 100);
    }

    #[test]
    fn rejects_unknown_and_duplicate_flags() {
        assert!(Args::parse(&sv(&["--nope", "1"]), &["tol"]).is_err());
        assert!(Args::parse(&sv(&["--tol", "1", "--tol", "2"]), &["tol"]).is_err());
        assert!(Args::parse(&sv(&["--tol"]), &["tol"]).is_err());
    }

    #[test]
    fn positional_arity_checked() {
        let a = Args::parse(&sv(&[]), &[]).unwrap();
        assert!(a.one_positional("file").is_err());
        let a = Args::parse(&sv(&["x", "y"]), &[]).unwrap();
        assert!(a.one_positional("file").is_err());
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("4k"), Some(4096));
        assert_eq!(parse_size("256K"), Some(262_144));
        assert_eq!(parse_size("1m"), Some(1_048_576));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size("k"), None);
    }
}
