//! The CLI subcommands: `gen`, `info`, `solve`, `compare`, `feeders`.

use std::fs;

use fbs::fleet::poisson_arrivals;
use fbs::obs::status_key;
use fbs::{
    record_mesh3_run, record_mesh_run, record_run, solve3_dg, solve3_dg_resilient,
    solve_meshed_resilient, Backend, BackwardStrategy, BatchSolver, ContingencyScreener,
    FaultReport, FleetConfig, FleetRequest, FleetService, GpuSolver, IntegrityConfig,
    IntegritySampler, JumpSolver, Mesh3Result, MeshResult, MeshSolver, MulticoreSolver, Outcome,
    OuterConfig, Priority, Request, Resilient3Solver, ResilientSolver, SerialSolver,
    ServiceConfig, SolveResult, SolveService, SolveStatus, SolverConfig, Timing,
};
use powergrid::gen::{
    balanced_binary, balanced_kary, broom, caterpillar, chain, random_tree, star, GenSpec,
};
use powergrid::gridfile::{parse_grid, parse_grid_meshed, write_grid};
use powergrid::{ieee, LevelOrder, MeshedNetwork, RadialNetwork};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{
    export_timeline_spans, Device, DeviceProps, FaultKind, FaultPlan, HostProps, StormSchedule,
};
use telemetry::Recorder;

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  fbs gen --topology <binary|kary|chain|star|caterpillar|broom|random> \\
          [--buses N] [--k K] [--seed S] [--total-kw KW] [--drop FRAC] [--out FILE]
  fbs feeders --name <ieee13|ieee37|ieee123|ieee123-dg> [--out FILE]
  fbs info <FILE.grid>
  fbs solve <FILE.grid> [--solver serial|gpu|gpu-direct|multicore] [--tol T]
            [--max-iter N] [--outer-max-iter N] [--outer-tol T]
            [--show-voltages N] [--timings true|false]
            [--deadline-ms MS] [--max-retries N] [--breaker-threshold K]
            [--fault-seed S] [--fault-rate R] [--fault-lost-at OP] [--degrade true|false]
            [--trace-out FILE] [--metrics-out FILE]
  fbs batch <FILE.grid> [--scenarios N] [--scale-start S] [--scale-step D]
            [--tol T] [--max-iter N] [--deadline-ms MS]
            [--trace-out FILE] [--metrics-out FILE]
  fbs screen <FILE.grid> [--warm true|false] [--v-floor PU] [--tol T] [--max-iter N]
            [--trace-out FILE] [--metrics-out FILE]
  fbs compare <FILE.grid> [--tol T] [--max-iter N]
  fbs profile <FILE.grid> [--solver gpu|gpu-direct|gpu-atomic|gpu-jump] [--tol T]
            [--fault-seed S] [--fault-rate R] [--fault-lost-at OP] [--degrade true|false]
            [--trace-out FILE] [--metrics-out FILE]
  fbs feeders3 [--name ieee13] [--out FILE.grid3]
  fbs gen3 <FILE.grid> [--unbalance U] [--mutual M] [--seed S] [--out FILE.grid3]
  fbs solve3 <FILE.grid3> [--solver serial|gpu] [--tol T] [--max-iter N]
            [--outer-max-iter N] [--outer-tol T]
            [--deadline-ms MS] [--max-retries N] [--breaker-threshold K]
            [--fault-seed S] [--fault-rate R] [--fault-lost-at OP] [--degrade true|false]
            [--trace-out FILE] [--metrics-out FILE]
  fbs fleet <FILE.grid> [--devices N] [--hetero true|false] [--requests N]
            [--gap US] [--queue N] [--tenants N] [--quota N] [--priorities true|false]
            [--hedge-quantile Q] [--shard-min N] [--batch-every K] [--scenarios N]
            [--kill-device D] [--fault-seed S] [--fault-rate R] [--seed S]
            [--tol T] [--max-iter N] [--trace-out FILE] [--metrics-out FILE]
  fbs soak <FILE.grid> [--devices N] [--requests N] [--gap US] [--seed S]
            [--burst-rate R] [--ramp-rate R] [--kill true|false] [--sample-every K]
            [--tol T] [--max-iter N] [--trace-out FILE] [--metrics-out FILE]

meshed & DG: `solve` accepts .grid files with `tie` / `gen` records and
`solve3` accepts .grid3 files with `gen` records transparently — closed
ties and voltage-set-point generators engage the break-point
compensation / PV outer loop (--outer-max-iter, --outer-tol) around the
chosen radial sweep. Outer divergence or a PV↔PQ limit cycle exits with
code 9; plain radial files keep the exact former behavior.

fault injection: --fault-seed arms a seeded, replayable fault plan
(default rate 0.005/op; override with --fault-rate). --fault-lost-at
scripts device loss at the given op. FBS_FAULT_SEED in the environment
overrides --fault-seed for byte-identical replays. Unrecoverable runs
(--degrade false) exit with code 5.

service: --deadline-ms bounds the modeled solve time; a deadline-cut
run reports partial state and exits with code 6. --max-retries or
--breaker-threshold route the solve through the robustness service
(seeded retry backoff, circuit breaker over the device, CPU fallback).

telemetry: --trace-out writes a Chrome trace-event JSON of the run on
the modeled clock (open in Perfetto / chrome://tracing); byte-identical
across runs for a fixed seed. --metrics-out writes Prometheus text
exposition when FILE ends in .prom or .txt, and the machine-readable
run-summary JSON otherwise.

fleet: replays a seeded arrival stream (--requests at mean --gap µs)
across --devices simulated devices with per-device circuit breakers,
failover, hedged stragglers, batch sharding and a brown-out ladder.
--kill-device scripts sticky loss on one device (--fault-seed /
--fault-rate arm a seeded plan instead); --batch-every K makes every
K-th request a sharded --scenarios batch. Deterministic: the same
seeds replay byte-identical routing, telemetry and exports.

soak: replays a seeded request stream through a uniform fleet under a
compound fault storm — a corruption burst, a corruption-under-load
ramp, and (with --kill) a correlated multi-device kill — with the
integrity guards armed: CRC64-checked transfers plus a 1-in-K CPU
shadow re-solve of answered requests. Detected corruptions are retried
transparently; a shadow-verification mismatch (a corruption every net
missed) exits with code 8.";

/// Exit code for an unrecoverable fault-injected run: the device was
/// lost (or the retry budget drained) and degradation was disabled.
const EXIT_UNRECOVERABLE: u8 = 5;

/// Exit code for an integrity failure in a soak run: the shadow
/// verifier found an answered result that disagrees with the CPU
/// oracle — a corruption escaped both the CRC net and the recovery
/// layer's spike/certification checks.
const EXIT_INTEGRITY: u8 = 8;

/// Dispatches a full argv (without the program name).
///
/// Returns the process exit code: `0` for success, and for the solve
/// family the [`fbs::SolveStatus::exit_code`] of the result (`2`
/// max-iterations, `3` diverged, `4` numerical failure, `5`
/// unrecoverable device loss under fault injection, `6` deadline
/// exceeded, `7` invalid solver configuration, `8` soak integrity
/// failure — a shadow-verified answer disagreed with the CPU oracle,
/// `9` mesh/DG outer-loop divergence or limit cycle).
/// Usage and I/O errors come back as `Err` and map to exit code `1`
/// in `main`.
pub fn run(argv: &[String]) -> Result<u8, String> {
    let (cmd, rest) = argv.split_first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "gen" => cmd_gen(rest).map(|()| 0),
        "feeders" => cmd_feeders(rest).map(|()| 0),
        "info" => cmd_info(rest).map(|()| 0),
        "solve" => cmd_solve(rest),
        "batch" => cmd_batch(rest),
        "screen" => cmd_screen(rest),
        "compare" => cmd_compare(rest).map(|()| 0),
        "profile" => cmd_profile(rest),
        "fleet" => cmd_fleet(rest),
        "soak" => cmd_soak(rest),
        "feeders3" => cmd_feeders3(rest).map(|()| 0),
        "gen3" => cmd_gen3(rest).map(|()| 0),
        "solve3" => cmd_solve3(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn cmd_gen(argv: &[String]) -> Result<(), String> {
    let a = Args::parse(argv, &["topology", "buses", "k", "seed", "total-kw", "drop", "out"])?;
    let n = a.get_size_or("buses", 1024)?;
    let k: usize = a.get_parse_or("k", 4)?;
    let seed: u64 = a.get_parse_or("seed", 1)?;
    let mut spec = GenSpec::default();
    spec.total_kw = a.get_parse_or("total-kw", spec.total_kw)?;
    spec.target_drop = a.get_parse_or("drop", spec.target_drop)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let topo = a.get_or("topology", "binary");
    let net = match topo {
        "binary" => balanced_binary(n, &spec, &mut rng),
        "kary" => balanced_kary(n, k, &spec, &mut rng),
        "chain" => chain(n, &spec, &mut rng),
        "star" => star(n, &spec, &mut rng),
        "caterpillar" => caterpillar(n, k.max(1), &spec, &mut rng),
        "broom" => broom(n, (n / 4).max(1), &spec, &mut rng),
        "random" => random_tree(n, 8, &spec, &mut rng),
        other => return Err(format!("unknown topology `{other}`")),
    };
    emit_grid(&net, a.get("out"))
}

fn cmd_feeders(argv: &[String]) -> Result<(), String> {
    let a = Args::parse(argv, &["name", "out"])?;
    let net = match a.get_or("name", "ieee13") {
        "ieee13" => ieee::ieee13(),
        "ieee37" => ieee::ieee37(),
        "ieee123" => ieee::ieee123_style(),
        "ieee123-dg" => {
            let dg = ieee::ieee123_dg();
            let text = powergrid::gridfile::write_grid_meshed(&dg);
            return emit_text(&text, a.get("out"), dg.tree().num_buses());
        }
        other => return Err(format!("unknown feeder `{other}`")),
    };
    emit_grid(&net, a.get("out"))
}

fn emit_grid(net: &RadialNetwork, out: Option<&str>) -> Result<(), String> {
    let text = write_grid(net);
    match out {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} buses to {path}", net.num_buses());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn load(path: &str) -> Result<RadialNetwork, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_grid(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_info(argv: &[String]) -> Result<(), String> {
    let a = Args::parse(argv, &[])?;
    let net = load(a.one_positional("grid file")?)?;
    let levels = LevelOrder::new(&net);
    let s = net.total_load();
    println!("buses:        {}", net.num_buses());
    println!("branches:     {}", net.num_branches());
    println!("levels:       {}", levels.num_levels());
    println!("mean width:   {:.2}", levels.mean_level_width());
    println!("widest level: {}", (0..levels.num_levels()).map(|l| levels.level_width(l)).max().unwrap_or(0));
    println!("source:       {:.1} V", net.source_voltage().abs());
    println!("total load:   {:.1} kW + j{:.1} kvar", s.re / 1e3, s.im / 1e3);
    Ok(())
}

/// Builds the solver config from `--tol`, `--max-iter` and
/// `--deadline-ms` without going through the asserting constructors:
/// out-of-range values (`--max-iter 0`, a negative deadline) must reach
/// the solver's own validation and come back as a structured
/// `SolveStatus::InvalidConfig` (exit 7), never as a CLI panic.
fn solver_config(a: &Args) -> Result<SolverConfig, String> {
    let mut cfg = SolverConfig {
        tol_rel: a.get_parse_or("tol", SolverConfig::DEFAULT_TOL)?,
        max_iter: a.get_parse_or("max-iter", 100u32)?,
        ..SolverConfig::default()
    };
    if let Some(ms) = a.get_parse::<f64>("deadline-ms")? {
        cfg.deadline_us = Some(ms * 1000.0);
    }
    Ok(cfg)
}

/// Builds the mesh/DG outer-loop config from `--outer-max-iter` and
/// `--outer-tol`. As with [`solver_config`], out-of-range values are
/// passed through so the solver reports `SolveStatus::InvalidConfig`
/// (exit 7) instead of the CLI second-guessing the validation.
fn outer_config(a: &Args) -> Result<OuterConfig, String> {
    let mut outer = OuterConfig::default();
    outer.max_outer = a.get_parse_or("outer-max-iter", outer.max_outer)?;
    outer.tol_rel = a.get_parse_or("outer-tol", outer.tol_rel)?;
    Ok(outer)
}

/// Builds the fault plan requested by `--fault-seed` / `--fault-rate` /
/// `--fault-lost-at`, or `None` when no fault flag is present.
///
/// `FBS_FAULT_SEED` in the environment overrides `--fault-seed`, so a
/// logged run can be replayed byte-identically without editing the
/// command line. The rate defaults to 0.005 faults/op once a seed is
/// given, and to 0 when only `--fault-lost-at` is used.
fn fault_plan(a: &Args) -> Result<Option<FaultPlan>, String> {
    let env_seed = match std::env::var("FBS_FAULT_SEED") {
        Ok(v) => {
            Some(v.parse::<u64>().map_err(|e| format!("FBS_FAULT_SEED `{v}`: {e}"))?)
        }
        Err(_) => None,
    };
    let flag_seed: Option<u64> = a.get_parse("fault-seed")?;
    let rate: Option<f64> = a.get_parse("fault-rate")?;
    let lost_at: Option<u64> = a.get_parse("fault-lost-at")?;
    let seed = env_seed.or(flag_seed);
    if seed.is_none() && rate.is_none() && lost_at.is_none() {
        return Ok(None);
    }
    let rate = rate.unwrap_or(if seed.is_some() { 0.005 } else { 0.0 });
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault-rate must be in [0, 1], got {rate}"));
    }
    let mut plan = FaultPlan::seeded(seed.unwrap_or(0), rate);
    if let Some(op) = lost_at {
        plan = plan.with_fault_at(op, FaultKind::DeviceLost { at_op: 0 });
    }
    Ok(Some(plan))
}

/// One deterministic summary line of what the resilient supervisor did.
fn print_fault_report(res: &SolveResult, plan: &FaultPlan) {
    if let Some(rep) = &res.fault_report {
        println!(
            "recovery:    seed {} rate {} | {} faults, {} rollbacks, {} retries, {} checkpoints | backend {}",
            plan.seed(),
            plan.rate(),
            rep.faults_injected,
            rep.rollbacks,
            rep.retries,
            rep.checkpoints,
            rep.backends.join("→"),
        );
    }
}

/// Telemetry sinks requested with `--trace-out` / `--metrics-out`.
///
/// When neither flag is present there is no recorder and every method is
/// a no-op, so un-instrumented runs behave exactly as before. All
/// exported timestamps come from the modeled clock: for a fixed seed the
/// written files are byte-identical across runs.
#[derive(Clone, Debug, Default)]
struct Telemetry {
    rec: Option<Recorder>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl Telemetry {
    fn from_args(a: &Args) -> Telemetry {
        let trace_out = a.get("trace-out").map(str::to_string);
        let metrics_out = a.get("metrics-out").map(str::to_string);
        let rec = (trace_out.is_some() || metrics_out.is_some()).then(Recorder::new);
        Telemetry { rec, trace_out, metrics_out }
    }

    /// The recorder to attach to solvers, when any sink was requested.
    fn recorder(&self) -> Option<&Recorder> {
        self.rec.as_ref()
    }

    /// Appends the device's timeline to the trace's device track
    /// (kernels and transfers as spans, faults/markers as instants).
    fn bridge_device(&self, dev: &Device) {
        if let Some(rec) = &self.rec {
            rec.with_trace(|t| export_timeline_spans(dev.timeline(), t, 0.0));
        }
    }

    /// Records the run-level gauges and counters the run summary is
    /// built from (per-phase modeled time, status, recovery counters).
    fn record(
        &self,
        timing: &Timing,
        iterations: u32,
        residual: f64,
        status: &SolveStatus,
        fault_report: Option<&FaultReport>,
    ) {
        if let Some(rec) = &self.rec {
            record_run(rec, timing, iterations, residual, status, fault_report);
        }
    }

    /// Snapshots the recorder and writes the requested files: Chrome
    /// trace JSON for `--trace-out`; for `--metrics-out`, Prometheus
    /// text when the path ends in `.prom`/`.txt`, run-summary JSON
    /// otherwise. Called on every exit path of an instrumented command
    /// so failed runs still leave their partial telemetry behind.
    fn write(&self) -> Result<(), String> {
        let Some(rec) = &self.rec else { return Ok(()) };
        let (trace, metrics) = rec.snapshot();
        if let Some(path) = &self.trace_out {
            fs::write(path, telemetry::chrome_trace_json(&trace))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &self.metrics_out {
            let text = if path.ends_with(".prom") || path.ends_with(".txt") {
                telemetry::prometheus_text(&metrics)
            } else {
                telemetry::run_summary_json(&metrics, &trace)
            };
            fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        Ok(())
    }
}

/// Whether the request should go through the robustness service
/// ([`SolveService`]) rather than a bare solver: any service flag does.
fn wants_service(a: &Args) -> bool {
    a.get("max-retries").is_some() || a.get("breaker-threshold").is_some()
}

/// Builds a [`SolveService`] from `--max-retries` / `--breaker-threshold`
/// (defaults match [`ServiceConfig::default`]) and an optional fault plan.
fn build_service(
    a: &Args,
    backend: Backend,
    plan: Option<&FaultPlan>,
    tele: &Telemetry,
) -> Result<SolveService, String> {
    let scfg = ServiceConfig {
        backend,
        max_retries: a.get_parse_or("max-retries", 3u32)?,
        breaker_threshold: a.get_parse_or("breaker-threshold", 3u32)?,
        ..ServiceConfig::default()
    };
    let mut svc = SolveService::new(scfg, DeviceProps::paper_rig(), HostProps::paper_rig());
    if let Some(plan) = plan {
        svc = svc.with_fault_plan(plan.clone());
    }
    if let Some(rec) = tele.recorder() {
        svc = svc.with_recorder(rec.clone());
    }
    Ok(svc)
}

/// Submits one request to a fresh service and prints the service
/// summary line. Returns the outcome for the caller to unpack.
fn serve_one(
    a: &Args,
    backend: Backend,
    plan: Option<&FaultPlan>,
    tele: &Telemetry,
    req: Request,
) -> Result<Outcome, String> {
    let mut svc = build_service(a, backend, plan, tele)?;
    svc.submit(req).map_err(|_| "service shed a single request".to_string())?;
    let resp = svc.process_one().ok_or("service lost the queued request")?;
    println!(
        "service:     backend {} | {} retries, {} µs backoff | breaker {}",
        resp.backend,
        resp.retries,
        resp.backoff_us,
        resp.breaker.name()
    );
    Ok(resp.outcome)
}

fn cmd_solve(argv: &[String]) -> Result<u8, String> {
    let a = Args::parse(
        argv,
        &["solver", "tol", "max-iter", "outer-max-iter", "outer-tol", "show-voltages", "timings", "deadline-ms", "max-retries", "breaker-threshold", "fault-seed", "fault-rate", "fault-lost-at", "degrade", "trace-out", "metrics-out"],
    )?;
    let path = a.one_positional("grid file")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mnet = parse_grid_meshed(&text).map_err(|e| format!("{path}: {e}"))?;
    if !mnet.is_plain_radial() {
        // Closed ties or generators: route through the compensation /
        // PV outer loop; radial files keep the exact former path.
        return solve_meshed(&a, &mnet);
    }
    let net = mnet.tree().clone();
    let cfg = solver_config(&a)?;
    let which = a.get_or("solver", "serial");
    let plan = fault_plan(&a)?;
    let tele = Telemetry::from_args(&a);
    let res = if wants_service(&a) {
        let backend =
            Backend::from_name(which).ok_or_else(|| format!("unknown solver `{which}`"))?;
        let req = Request::Solve { net: net.clone(), cfg };
        match serve_one(&a, backend, plan.as_ref(), &tele, req)? {
            Outcome::Solved(r) => r,
            Outcome::Failed(e) => {
                println!("solver:      {which}");
                println!("status:      {e}");
                tele.write()?;
                return Ok(EXIT_UNRECOVERABLE);
            }
            other => return Err(format!("unexpected service outcome: {other:?}")),
        }
    } else {
        match &plan {
            None => run_solver(&net, &cfg, which, &tele)?,
            Some(plan) => {
                let backend =
                    Backend::from_name(which).ok_or_else(|| format!("unknown solver `{which}`"))?;
                let mut solver =
                    ResilientSolver::new(backend, DeviceProps::paper_rig(), HostProps::paper_rig())
                        .with_fault_plan(plan.clone())
                        .with_degradation(a.get_parse_or("degrade", true)?);
                if let Some(rec) = tele.recorder() {
                    solver = solver.with_recorder(rec.clone());
                }
                let solved = solver.solve(&net, &cfg);
                if let Some(dev) = solver.last_device() {
                    tele.bridge_device(dev);
                }
                match solved {
                    Ok(r) => r,
                    Err(e) => {
                        println!("solver:      {which}");
                        println!("status:      {e}");
                        tele.write()?;
                        return Ok(EXIT_UNRECOVERABLE);
                    }
                }
            }
        }
    };
    tele.record(&res.timing, res.iterations, res.residual, &res.status, res.fault_report.as_ref());
    tele.write()?;

    println!("solver:      {which}");
    println!("status:      {} in {} iterations (residual {:.3e} V)", res.status, res.iterations, res.residual);
    if let Some(plan) = &plan {
        print_fault_report(&res, plan);
    }
    if res.converged() {
        let (vmin, bus) = res.min_voltage();
        let pu = vmin / net.source_voltage().abs();
        let losses = res.losses(&net);
        let src = res.source_power(&net);
        println!("min voltage: {:.1} V ({:.4} pu) at bus {bus}", vmin, pu);
        println!("feeder load: {:.1} kW + j{:.1} kvar", src.re / 1e3, src.im / 1e3);
        println!("losses:      {:.2} kW + j{:.2} kvar", losses.re / 1e3, losses.im / 1e3);
    }
    if a.get_parse_or("timings", true)? {
        let t = &res.timing;
        println!("modeled:     total {:.1} µs (transfers {:.1} µs)", t.total_us(), t.transfer_us);
        println!(
            "  setup {:.1} | inject {:.1} | backward {:.1} | forward {:.1} | converge {:.1} | teardown {:.1}",
            t.phases.setup_us,
            t.phases.injection_us,
            t.phases.backward_us,
            t.phases.forward_us,
            t.phases.convergence_us,
            t.phases.teardown_us
        );
    }
    let show: usize = a.get_parse_or("show-voltages", 0usize)?;
    for bus in 0..show.min(net.num_buses()) {
        println!("  V[{bus}] = {:.3} V  ∠{:.3}°", res.v[bus].abs(), res.v[bus].arg().to_degrees());
    }
    Ok(res.status.exit_code())
}

fn run_solver(
    net: &RadialNetwork,
    cfg: &SolverConfig,
    which: &str,
    tele: &Telemetry,
) -> Result<SolveResult, String> {
    let strategy = match which {
        "gpu" => Some(BackwardStrategy::SegScan),
        "gpu-direct" => Some(BackwardStrategy::Direct),
        "gpu-atomic" => Some(BackwardStrategy::AtomicScatter),
        _ => None,
    };
    Ok(match which {
        "serial" => {
            let mut s = SerialSolver::new(HostProps::paper_rig());
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            s.solve(net, cfg)
        }
        "multicore" => {
            let mut s = MulticoreSolver::default();
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            s.solve(net, cfg)
        }
        "gpu" | "gpu-direct" | "gpu-atomic" => {
            let mut s = GpuSolver::with_strategy(
                Device::new(DeviceProps::paper_rig()),
                strategy.expect("strategy set for every gpu variant"),
            );
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            let r = s.solve(net, cfg);
            tele.bridge_device(s.device());
            r
        }
        "gpu-jump" => {
            let mut s = JumpSolver::new(Device::new(DeviceProps::paper_rig()));
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            let r = s.solve(net, cfg);
            tele.bridge_device(s.device());
            r
        }
        other => return Err(format!("unknown solver `{other}`")),
    })
}

/// The meshed/DG arm of `fbs solve`: the same solver/fault/telemetry
/// flags, but the solve runs through the compensation + PV outer loop
/// and the report carries the outer status, loop currents and generator
/// dispatch. Outer divergence or limit-cycling exits with code 9.
fn solve_meshed(a: &Args, net: &MeshedNetwork) -> Result<u8, String> {
    let cfg = solver_config(a)?;
    let outer = outer_config(a)?;
    let which = a.get_or("solver", "serial");
    let plan = fault_plan(a)?;
    let tele = Telemetry::from_args(a);
    if wants_service(a) {
        return Err(
            "meshed/DG grids do not route through the robustness service; \
             drop --max-retries/--breaker-threshold (fault flags still work)"
                .into(),
        );
    }
    let res = match &plan {
        Some(plan) => {
            let backend =
                Backend::from_name(which).ok_or_else(|| format!("unknown solver `{which}`"))?;
            let mut solver =
                ResilientSolver::new(backend, DeviceProps::paper_rig(), HostProps::paper_rig())
                    .with_fault_plan(plan.clone())
                    .with_degradation(a.get_parse_or("degrade", true)?);
            if let Some(rec) = tele.recorder() {
                solver = solver.with_recorder(rec.clone());
            }
            let solved = solve_meshed_resilient(&mut solver, net, &cfg, &outer);
            if let Some(dev) = solver.last_device() {
                tele.bridge_device(dev);
            }
            match solved {
                Ok(r) => r,
                Err(e) => {
                    println!("solver:      {which} (meshed)");
                    println!("status:      {e}");
                    tele.write()?;
                    return Ok(EXIT_UNRECOVERABLE);
                }
            }
        }
        None => match which {
            "serial" => {
                let mut s = MeshSolver::new(SerialSolver::new(HostProps::paper_rig()))
                    .with_outer(outer);
                if let Some(rec) = tele.recorder() {
                    s = s.with_recorder(rec.clone());
                }
                s.solve(net, &cfg)
            }
            "multicore" => {
                let mut s = MeshSolver::new(MulticoreSolver::default()).with_outer(outer);
                if let Some(rec) = tele.recorder() {
                    s = s.with_recorder(rec.clone());
                }
                s.solve(net, &cfg)
            }
            "gpu" | "gpu-direct" | "gpu-atomic" => {
                let strategy = match which {
                    "gpu-direct" => BackwardStrategy::Direct,
                    "gpu-atomic" => BackwardStrategy::AtomicScatter,
                    _ => BackwardStrategy::SegScan,
                };
                let gpu =
                    GpuSolver::with_strategy(Device::new(DeviceProps::paper_rig()), strategy);
                let mut s = MeshSolver::new(gpu).with_outer(outer);
                if let Some(rec) = tele.recorder() {
                    s = s.with_recorder(rec.clone());
                }
                let r = s.solve(net, &cfg);
                tele.bridge_device(s.backend().device());
                r
            }
            other => {
                return Err(format!(
                    "solver `{other}` cannot run meshed/DG grids (use serial, multicore or a gpu sweep variant)"
                ))
            }
        },
    };
    if let Some(rec) = tele.recorder() {
        record_mesh_run(rec, &res);
    }
    tele.write()?;
    print_mesh_report(net, which, &res);
    if let Some(plan) = &plan {
        print_fault_report(&res.inner, plan);
    }
    if a.get_parse_or("timings", true)? {
        let t = &res.inner.timing;
        println!("modeled:     total {:.1} µs (transfers {:.1} µs)", t.total_us(), t.transfer_us);
    }
    let show: usize = a.get_parse_or("show-voltages", 0usize)?;
    for bus in 0..show.min(net.tree().num_buses()) {
        println!(
            "  V[{bus}] = {:.3} V  ∠{:.3}°",
            res.inner.v[bus].abs(),
            res.inner.v[bus].arg().to_degrees()
        );
    }
    Ok(res.status.exit_code())
}

/// The `solve` report block for a meshed/DG run.
fn print_mesh_report(net: &MeshedNetwork, which: &str, res: &MeshResult) {
    println!(
        "solver:      {which} (meshed/DG: {} loops, {} generators)",
        net.num_loops(),
        net.generators().len()
    );
    println!(
        "status:      {} | outer {} | {} inner iterations (residual {:.3e} V)",
        res.status, res.outer_status, res.inner.iterations, res.inner.residual
    );
    println!(
        "outer:       breakpoint residual {:.3e} V | pv error {:.3e} V | {} mode flips",
        res.breakpoint_residual, res.pv_error, res.mode_flips
    );
    if res.converged() {
        let (vmin, bus) = res.inner.min_voltage();
        let pu = vmin / net.tree().source_voltage().abs();
        println!("min voltage: {vmin:.1} V ({pu:.4} pu) at bus {bus}");
        for (bp, j) in net.break_points().iter().zip(&res.loop_currents) {
            println!(
                "loop:        tie {}→{} carries {:.2} A ∠{:.1}°",
                bp.a,
                bp.b,
                j.abs(),
                j.arg().to_degrees()
            );
        }
        for (g, (q, mode)) in
            net.generators().iter().zip(res.q_gen.iter().zip(&res.gen_modes))
        {
            println!(
                "gen:         bus {} | {:.1} kW + j{:.2} kvar | {mode}",
                g.bus,
                g.p_gen / 1e3,
                q / 1e3
            );
        }
    }
}

/// `fbs batch`: a time-series-style batched solve — one topology, N
/// load scenarios scaled `scale-start + k·scale-step`, all swept in one
/// device batch (topology uploads once, kernels cover every scenario).
fn cmd_batch(argv: &[String]) -> Result<u8, String> {
    let a = Args::parse(
        argv,
        &["scenarios", "scale-start", "scale-step", "tol", "max-iter", "deadline-ms", "trace-out", "metrics-out"],
    )?;
    let net = load(a.one_positional("grid file")?)?;
    let cfg = solver_config(&a)?;
    let nb: usize = a.get_parse_or("scenarios", 8usize)?;
    if nb == 0 {
        return Err("--scenarios must be at least 1".into());
    }
    let start: f64 = a.get_parse_or("scale-start", 0.5)?;
    let step: f64 = a.get_parse_or("scale-step", 0.1)?;
    let tele = Telemetry::from_args(&a);
    let scenarios: Vec<Vec<_>> = (0..nb)
        .map(|k| {
            let scale = start + step * k as f64;
            net.buses().iter().map(|b| b.load * scale).collect()
        })
        .collect();

    let mut solver = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
    if let Some(rec) = tele.recorder() {
        solver = solver.with_recorder(rec.clone());
    }
    let res = solver
        .try_solve(&net, &scenarios, &cfg)
        .map_err(|e| format!("batch solve failed: {e}"))?;
    tele.bridge_device(solver.device());

    let worst = res.worst_status();
    let converged = res.statuses.iter().filter(|s| s.is_converged()).count();
    let last_scale = start + step * (nb - 1) as f64;
    println!(
        "batch:       {nb} scenarios × {} buses (load scale {start:.2}..{last_scale:.2})",
        net.num_buses()
    );
    println!(
        "status:      {converged}/{nb} converged (worst: {worst}) in {} iterations (residual {:.3e} V)",
        res.iterations, res.residual
    );
    if converged < nb {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for s in &res.statuses {
            *counts.entry(status_key(s)).or_insert(0) += 1;
        }
        let parts: Vec<String> =
            counts.iter().map(|(k, n)| format!("{k} {n}")).collect();
        println!("breakdown:   {}", parts.join(" | "));
    }
    let t = &res.timing;
    println!(
        "modeled:     total {:.1} µs | {:.1} µs/scenario (transfers {:.1} µs)",
        t.total_us(),
        t.total_us() / nb as f64,
        t.transfer_us
    );
    tele.record(&res.timing, res.iterations, res.residual, &worst, None);
    tele.write()?;
    Ok(worst.exit_code())
}

/// `fbs screen`: N-1 contingency screening — every single-line outage of
/// the feeder encoded as a per-scenario topology patch and solved in one
/// tensor-batched run, warm-started from the base-case profile by
/// default. `--v-floor` (per-unit of the source magnitude) additionally
/// flags contingencies that converge but sag below the floor.
fn cmd_screen(argv: &[String]) -> Result<u8, String> {
    let a = Args::parse(
        argv,
        &["warm", "v-floor", "tol", "max-iter", "deadline-ms", "trace-out", "metrics-out"],
    )?;
    let net = load(a.one_positional("grid file")?)?;
    if net.num_buses() < 2 {
        return Err("screening needs at least one branch".into());
    }
    let mut cfg = solver_config(&a)?;
    if a.get_parse_or("warm", true)? {
        cfg = cfg.with_warm_start();
    }
    let floor_pu: f64 = a.get_parse_or("v-floor", 0.0)?;
    let v0 = net.source_voltage().abs();
    let floor = floor_pu * v0;
    let tele = Telemetry::from_args(&a);

    let mut screener = ContingencyScreener::new(Device::new(DeviceProps::paper_rig()));
    if let Some(rec) = tele.recorder() {
        screener = screener.with_recorder(rec.clone());
    }
    let report = screener.screen(&net, &cfg);
    tele.bridge_device(screener.device());

    let nb = report.outcomes.len();
    println!(
        "screen:      {nb} contingencies × {} buses (warm start: {})",
        net.num_buses(),
        if report.warm { "yes" } else { "no" }
    );
    println!(
        "base case:   {} in {} iterations ({:.1} µs modeled)",
        report.base_status, report.base_iterations, report.base_us
    );
    let converged = report.outcomes.iter().filter(|o| o.status.is_converged()).count();
    let worst =
        report.outcomes.iter().fold(SolveStatus::Converged, |w, o| w.worse(o.status));
    println!("status:      {converged}/{nb} converged (worst: {worst})");
    if converged < nb {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for o in &report.outcomes {
            *counts.entry(status_key(&o.status)).or_insert(0) += 1;
        }
        let parts: Vec<String> = counts.iter().map(|(k, n)| format!("{k} {n}")).collect();
        println!("breakdown:   {}", parts.join(" | "));
    }
    let mut iters: Vec<u32> = report.outcomes.iter().map(|o| o.iterations).collect();
    iters.sort_unstable();
    println!(
        "iterations:  median {} | max {} (base cold solve took {})",
        iters[nb / 2],
        iters[nb - 1],
        report.base_iterations
    );
    if let Some(sag) = report.worst_sag() {
        if sag.min_v.is_finite() {
            println!(
                "worst sag:   |V|min {:.1} V ({:.3} pu) after outage of the branch feeding bus {} \
                 ({} buses de-energized)",
                sag.min_v,
                sag.min_v / v0,
                sag.bus,
                sag.isolated
            );
        }
    }
    if floor > 0.0 {
        let viol = report.violations(floor);
        println!("violations:  {} below {floor_pu:.3} pu", viol.len());
        for o in viol.iter().take(5) {
            println!(
                "             bus {:>6}  {}  |V|min {:.3} pu  ({} isolated)",
                o.bus,
                status_key(&o.status),
                o.min_v / v0,
                o.isolated
            );
        }
        if viol.len() > 5 {
            println!("             … and {} more", viol.len() - 5);
        }
    }
    println!(
        "modeled:     batch {:.1} µs + base {:.1} µs | {:.0} contingencies/s",
        report.timing.total_us(),
        report.base_us,
        report.contingencies_per_sec
    );
    let worst_residual =
        report.outcomes.iter().map(|o| o.residual).fold(0.0f64, f64::max);
    tele.record(&report.timing, iters[nb - 1], worst_residual, &worst, None);
    tele.write()?;
    Ok(worst.exit_code())
}

/// `fbs fleet`: replays a seeded arrival stream across N simulated
/// devices behind a [`FleetService`] — per-device breakers, failover,
/// hedging, batch sharding, brown-out — and reports fleet-level
/// throughput, latency quantiles and per-device health.
fn cmd_fleet(argv: &[String]) -> Result<u8, String> {
    let a = Args::parse(
        argv,
        &[
            "devices", "hetero", "requests", "gap", "queue", "tenants", "quota",
            "priorities", "hedge-quantile", "shard-min", "batch-every", "scenarios",
            "kill-device", "fault-seed", "fault-rate", "seed", "tol", "max-iter",
            "trace-out", "metrics-out",
        ],
    )?;
    let net = load(a.one_positional("grid file")?)?;
    let cfg = solver_config(&a)?;
    let devices: usize = a.get_parse_or("devices", 4usize)?;
    if devices == 0 {
        return Err("--devices must be at least 1".into());
    }
    let hetero: bool = a.get_parse_or("hetero", true)?;
    let requests: usize = a.get_parse_or("requests", 64usize)?;
    let gap: f64 = a.get_parse_or("gap", 200.0)?;
    let tenants: u32 = a.get_parse_or("tenants", 1u32)?;
    let priorities: bool = a.get_parse_or("priorities", false)?;
    let batch_every: usize = a.get_parse_or("batch-every", 0usize)?;
    let scenarios: usize = a.get_parse_or("scenarios", 256usize)?;
    let seed: u64 = a.get_parse_or("seed", 0xf1ee7u64)?;
    let tele = Telemetry::from_args(&a);

    let mut fcfg = if hetero {
        FleetConfig::heterogeneous(devices)
    } else {
        FleetConfig::uniform(devices)
    };
    let queue_capacity: usize = a.get_parse_or("queue", 64usize)?;
    fcfg.queue_capacity = queue_capacity;
    fcfg.tenant_quota = a.get_parse::<usize>("quota")?;
    fcfg.hedge_quantile = a.get_parse_or("hedge-quantile", fcfg.hedge_quantile)?;
    fcfg.shard_min = a.get_parse_or("shard-min", fcfg.shard_min)?;
    fcfg.seed = seed;
    let mut fleet = FleetService::new(fcfg);

    // Chaos: a scripted sticky loss, or a seeded per-op plan, armed on
    // one device (the rest of the fleet absorbs the failovers).
    let kill: Option<u32> = a.get_parse("kill-device")?;
    if let Some(plan) = fault_plan(&a)? {
        let target = kill.unwrap_or(0);
        if target as usize >= devices {
            return Err(format!("--kill-device {target} out of range (fleet has {devices})"));
        }
        fleet = fleet.with_fault_plan_on(target, plan);
    } else if let Some(target) = kill {
        if target as usize >= devices {
            return Err(format!("--kill-device {target} out of range (fleet has {devices})"));
        }
        let plan = FaultPlan::scripted(
            (0..1024).map(|k| (2 + 5 * k, FaultKind::DeviceLost { at_op: 0 })),
        );
        fleet = fleet.with_fault_plan_on(target, plan);
    }
    if let Some(rec) = tele.recorder() {
        fleet = fleet.with_recorder(rec.clone());
    }

    let loads: Vec<_> = net.buses().iter().map(|b| b.load).collect();
    let arrivals = poisson_arrivals(requests, gap, seed ^ 0xa11e, |i| {
        let req = if batch_every > 0 && i % batch_every == batch_every - 1 {
            let scen = (0..scenarios)
                .map(|s| {
                    let scale = 0.5 + 0.002 * (s % 500) as f64;
                    loads.iter().map(|&l| l * scale).collect()
                })
                .collect();
            Request::Batch { net: net.clone(), scenarios: scen, cfg }
        } else {
            Request::Solve { net: net.clone(), cfg }
        };
        let p = match (priorities, i % 3) {
            (false, _) | (true, 1) => Priority::Normal,
            (true, 0) => Priority::Bulk,
            _ => Priority::Critical,
        };
        FleetRequest::new(req).with_priority(p).with_tenant(i as u32 % tenants.max(1))
    });
    let responses = fleet.run_stream(arrivals);

    let s = fleet.stats().clone();
    let answered: Vec<&fbs::FleetResponse> =
        responses.iter().filter(|r| r.answered()).collect();
    let makespan = responses.iter().map(|r| r.finish_us).fold(0.0f64, f64::max);
    let rps = if makespan > 0.0 { answered.len() as f64 / (makespan / 1e6) } else { 0.0 };
    if let Some(rec) = tele.recorder() {
        rec.gauge_set("fleet.requests_per_sec", rps);
        rec.gauge_set("fleet.makespan_us", makespan);
    }
    tele.write()?;

    println!(
        "fleet:       {devices} device(s) ({}) | queue {queue_capacity} | seed {seed:#x}",
        if hetero { "heterogeneous" } else { "uniform" },
    );
    println!(
        "stream:      {requests} requests, mean gap {gap:.1} µs ({} batch, {} solve answered)",
        answered.iter().filter(|r| matches!(r.outcome, Outcome::Batch(_))).count(),
        answered.iter().filter(|r| matches!(r.outcome, Outcome::Solved(_))).count(),
    );
    println!(
        "served:      {}/{} ({} shed: quota {} | evicted {} | queue-full {})",
        s.served, s.submitted, s.shed(), s.shed_quota, s.shed_evicted, s.shed_queue_full
    );
    println!(
        "failover:    {} failovers, {} CPU-served, {} hedges ({} won)",
        s.failovers, s.cpu_served, s.hedges, s.hedge_wins
    );
    if s.sharded_batches > 0 {
        println!(
            "batches:     {} sharded into {} shards ({} reclaimed)",
            s.sharded_batches, s.shards_dispatched, s.reclaimed_shards
        );
    }
    let mut lat: Vec<f64> = answered.iter().map(|r| r.latency_us()).collect();
    lat.sort_by(|x, y| x.partial_cmp(y).expect("latencies are finite"));
    if !lat.is_empty() {
        let pick = |q: f64| lat[(((lat.len() - 1) as f64) * q).ceil() as usize];
        println!(
            "latency:     p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs (modeled)",
            pick(0.50),
            pick(0.95),
            pick(0.99)
        );
    }
    println!("throughput:  {rps:.0} requests/s modeled (makespan {:.1} ms)", makespan / 1e3);
    let health: Vec<String> = fleet
        .health()
        .iter()
        .map(|h| format!("d{} {} {:.2}", h.ordinal, h.breaker.name(), h.score))
        .collect();
    println!("health:      {}", health.join(" | "));
    Ok(0)
}

fn cmd_soak(argv: &[String]) -> Result<u8, String> {
    let a = Args::parse(
        argv,
        &[
            "devices", "requests", "gap", "seed", "burst-rate", "ramp-rate", "kill",
            "sample-every", "tol", "max-iter", "trace-out", "metrics-out",
        ],
    )?;
    let net = load(a.one_positional("grid file")?)?;
    let cfg = solver_config(&a)?;
    let devices: usize = a.get_parse_or("devices", 4usize)?;
    if devices == 0 {
        return Err("--devices must be at least 1".into());
    }
    let requests: usize = a.get_parse_or("requests", 48usize)?;
    let gap: f64 = a.get_parse_or("gap", 400.0)?;
    let seed: u64 = a.get_parse_or("seed", 0x50a_cu64)?;
    let burst_rate: f64 = a.get_parse_or("burst-rate", 0.04)?;
    let ramp_rate: f64 = a.get_parse_or("ramp-rate", 0.06)?;
    let kill: bool = a.get_parse_or("kill", true)?;
    let sample_every: u64 = a.get_parse_or("sample-every", 2u64)?;
    for (flag, rate) in [("--burst-rate", burst_rate), ("--ramp-rate", ramp_rate)] {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(format!("{flag} {rate} is not a probability"));
        }
    }
    if sample_every == 0 {
        return Err("--sample-every must be at least 1".into());
    }
    let tele = Telemetry::from_args(&a);

    // The compound storm: an early corruption burst, a long
    // corruption-under-load ramp, and (by default) a correlated kill of
    // every non-zero ordinal up to two devices. The kill window is
    // narrow in op-space: a dead device consumes one plan op per
    // attempt, so the rejoin probes walk past it quickly.
    let mut storm = StormSchedule::new(seed)
        .with_burst(150, 2_500, burst_rate)
        .with_corruption_ramp(4_000, 5_000, ramp_rate);
    let killed: Vec<u32> = if kill && devices > 1 {
        (1..devices.min(3) as u32).collect()
    } else {
        Vec::new()
    };
    if !killed.is_empty() {
        storm = storm.with_correlated_kill(3_000, 3_012, killed.iter().copied());
    }

    // Aggressive rejoin pacing (probe after one open-served dispatch,
    // rejoin attempt every other dispatch): the soak measures integrity
    // under churn, not the default probe cadence.
    let fcfg = FleetConfig {
        service: ServiceConfig { breaker_probe_after: 1, ..ServiceConfig::default() },
        queue_capacity: requests,
        rejoin_every: 2,
        seed,
        ..FleetConfig::uniform(devices)
    };
    let mut sampler = IntegritySampler::new(
        IntegrityConfig { sample_every, ..IntegrityConfig::default() },
        HostProps::paper_rig(),
    );
    if let Some(rec) = tele.recorder() {
        sampler = sampler.with_recorder(rec.clone());
    }
    let mut fleet = FleetService::new(fcfg).with_storm(storm).with_integrity(sampler);
    if let Some(rec) = tele.recorder() {
        fleet = fleet.with_recorder(rec.clone());
    }

    let arrivals = poisson_arrivals(requests, gap, seed ^ 0xa11e, |_| {
        FleetRequest::new(Request::Solve { net: net.clone(), cfg })
    });
    let responses = fleet.run_stream(arrivals);

    let s = fleet.stats().clone();
    let istats = fleet.integrity_stats();
    let detected: u64 = responses
        .iter()
        .map(|r| match &r.outcome {
            Outcome::Solved(res) => {
                res.fault_report.as_ref().map_or(0, |fr| u64::from(fr.corruptions_detected))
            }
            Outcome::Batch(res) => {
                res.fault_report.as_ref().map_or(0, |fr| u64::from(fr.corruptions_detected))
            }
            _ => 0,
        })
        .sum();
    let answered = responses.iter().filter(|r| r.answered()).count();
    let makespan = responses.iter().map(|r| r.finish_us).fold(0.0f64, f64::max);
    let rps = if makespan > 0.0 { answered as f64 / (makespan / 1e6) } else { 0.0 };
    if let Some(rec) = tele.recorder() {
        fleet.publish_stats();
        rec.gauge_set("soak.requests_per_sec", rps);
        rec.gauge_set("soak.detected_corruptions", detected as f64);
        rec.gauge_set("soak.shadow_mismatches", istats.mismatches as f64);
    }
    tele.write()?;

    println!(
        "soak:        {devices} device(s) uniform | seed {seed:#x} | burst {burst_rate} \
         ramp {ramp_rate}{}",
        if killed.is_empty() {
            String::new()
        } else {
            format!(" | correlated kill of {killed:?}")
        }
    );
    println!(
        "served:      {}/{} ({} shed), {} failovers, {rps:.0} requests/s modeled",
        s.served,
        s.submitted,
        s.shed(),
        s.failovers
    );
    println!(
        "integrity:   {detected} corruption(s) detected and retried, \
         {}/{} answers shadow-verified, {} mismatch(es)",
        istats.verified, istats.sampled, istats.mismatches
    );
    if s.served + s.shed() != s.submitted {
        println!("conservation: VIOLATED ({} + {} != {})", s.served, s.shed(), s.submitted);
        return Ok(EXIT_INTEGRITY);
    }
    if istats.mismatches > 0 {
        println!(
            "verdict:     FAILED — a corruption escaped every net \
             (worst err {:e} V)",
            istats.worst_err_v
        );
        return Ok(EXIT_INTEGRITY);
    }
    println!("verdict:     clean — zero undetected corruptions");
    Ok(0)
}

fn cmd_feeders3(argv: &[String]) -> Result<(), String> {
    let a = Args::parse(argv, &["name", "out"])?;
    let net = match a.get_or("name", "ieee13") {
        "ieee13" => powergrid::three_phase::ieee13_unbalanced(),
        other => return Err(format!("unknown three-phase feeder `{other}`")),
    };
    emit_text(&powergrid::gridfile3::write_grid3(&net), a.get("out"), net.num_buses())
}

fn cmd_gen3(argv: &[String]) -> Result<(), String> {
    let a = Args::parse(argv, &["unbalance", "mutual", "seed", "out"])?;
    let net1 = load(a.one_positional("grid file")?)?;
    let unbalance: f64 = a.get_parse_or("unbalance", 0.35)?;
    let mutual: f64 = a.get_parse_or("mutual", 0.3)?;
    let seed: u64 = a.get_parse_or("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let net3 = powergrid::three_phase::from_single_phase(&net1, unbalance, mutual, &mut rng);
    emit_text(&powergrid::gridfile3::write_grid3(&net3), a.get("out"), net3.num_buses())
}

fn cmd_solve3(argv: &[String]) -> Result<u8, String> {
    let a = Args::parse(
        argv,
        &["solver", "tol", "max-iter", "outer-max-iter", "outer-tol", "deadline-ms", "max-retries", "breaker-threshold", "fault-seed", "fault-rate", "fault-lost-at", "degrade", "trace-out", "metrics-out"],
    )?;
    let path = a.one_positional("grid3 file")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let net = powergrid::gridfile3::parse_grid3(&text).map_err(|e| format!("{path}: {e}"))?;
    let cfg = solver_config(&a)?;
    let which = a.get_or("solver", "serial");
    let plan = fault_plan(&a)?;
    let tele = Telemetry::from_args(&a);
    if !net.generators().is_empty() {
        // Distributed generators: route through the three-phase PV
        // outer loop; generator-free files keep the exact former path.
        if wants_service(&a) {
            return Err(
                "DG .grid3 files do not route through the robustness service; \
                 drop --max-retries/--breaker-threshold (fault flags still work)"
                    .into(),
            );
        }
        let outer = outer_config(&a)?;
        let res = match (which, plan) {
            ("serial", _) => {
                let mut s = fbs::Serial3Solver::new(HostProps::paper_rig());
                if let Some(rec) = tele.recorder() {
                    s = s.with_recorder(rec.clone());
                }
                solve3_dg(&mut s, &net, &cfg, &outer, tele.recorder())
            }
            ("gpu", None) => {
                let mut s = fbs::Gpu3Solver::new(Device::new(DeviceProps::paper_rig()));
                if let Some(rec) = tele.recorder() {
                    s = s.with_recorder(rec.clone());
                }
                let r = solve3_dg(&mut s, &net, &cfg, &outer, tele.recorder());
                tele.bridge_device(s.device());
                r
            }
            ("gpu", Some(plan)) => {
                let mut solver =
                    Resilient3Solver::new(DeviceProps::paper_rig(), HostProps::paper_rig())
                        .with_fault_plan(plan)
                        .with_degradation(a.get_parse_or("degrade", true)?);
                if let Some(rec) = tele.recorder() {
                    solver = solver.with_recorder(rec.clone());
                }
                match solve3_dg_resilient(&mut solver, &net, &cfg, &outer) {
                    Ok(r) => r,
                    Err(e) => {
                        println!("solver:      {which} (three-phase DG)");
                        println!("status:      {e}");
                        tele.write()?;
                        return Ok(EXIT_UNRECOVERABLE);
                    }
                }
            }
            (other, _) => return Err(format!("unknown three-phase solver `{other}`")),
        };
        if let Some(rec) = tele.recorder() {
            record_mesh3_run(rec, &res);
        }
        tele.write()?;
        return report_solve3_dg(&net, which, &res);
    }
    if wants_service(&a) {
        // Three-phase service requests always run device-first (the
        // service's fallback covers the serial path).
        if which != "gpu" {
            return Err(format!("service flags need --solver gpu, got `{which}`"));
        }
        let req = Request::Solve3 { net: net.clone(), cfg };
        let res = match serve_one(&a, Backend::Gpu, plan.as_ref(), &tele, req)? {
            Outcome::Solved3(r) => r,
            Outcome::Failed(e) => {
                println!("solver:      {which} (three-phase)");
                println!("status:      {e}");
                tele.write()?;
                return Ok(EXIT_UNRECOVERABLE);
            }
            other => return Err(format!("unexpected service outcome: {other:?}")),
        };
        tele.record(&res.timing, res.iterations, res.residual, &res.status, None);
        tele.write()?;
        return report_solve3(&net, which, &res);
    }
    let res = match (which, plan) {
        // Fault plans only touch device ops; serial runs are unaffected.
        ("serial", _) => {
            let mut s = fbs::Serial3Solver::new(HostProps::paper_rig());
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            s.solve(&net, &cfg)
        }
        ("gpu", None) => {
            let mut s = fbs::Gpu3Solver::new(Device::new(DeviceProps::paper_rig()));
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            let r = s.solve(&net, &cfg);
            tele.bridge_device(s.device());
            r
        }
        ("gpu", Some(plan)) => {
            let mut solver = Resilient3Solver::new(DeviceProps::paper_rig(), HostProps::paper_rig())
                .with_fault_plan(plan)
                .with_degradation(a.get_parse_or("degrade", true)?);
            if let Some(rec) = tele.recorder() {
                solver = solver.with_recorder(rec.clone());
            }
            match solver.solve(&net, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    println!("solver:      {which} (three-phase)");
                    println!("status:      {e}");
                    tele.write()?;
                    return Ok(EXIT_UNRECOVERABLE);
                }
            }
        }
        (other, _) => return Err(format!("unknown three-phase solver `{other}`")),
    };
    tele.record(&res.timing, res.iterations, res.residual, &res.status, None);
    tele.write()?;
    report_solve3(&net, which, &res)
}

/// Prints the `solve3` result block and returns the status exit code.
fn report_solve3(
    net: &powergrid::three_phase::ThreePhaseNetwork,
    which: &str,
    res: &fbs::Solve3Result,
) -> Result<u8, String> {
    println!("solver:      {which} (three-phase)");
    println!(
        "status:      {} in {} iterations (residual {:.3e} V)",
        res.status, res.iterations, res.residual
    );
    report_solve3_body(net, res, res.converged());
    println!("modeled:     total {:.1} µs", res.timing.total_us());
    Ok(res.status.exit_code())
}

/// Prints the `solve3` result block for a DG run (the PV outer loop's
/// status and generator dispatch on top of the usual three-phase
/// summary) and returns the overall exit code — 9 on outer divergence.
fn report_solve3_dg(
    net: &powergrid::three_phase::ThreePhaseNetwork,
    which: &str,
    res: &Mesh3Result,
) -> Result<u8, String> {
    println!(
        "solver:      {which} (three-phase DG: {} generators)",
        net.generators().len()
    );
    println!(
        "status:      {} | outer {} | {} inner iterations (residual {:.3e} V)",
        res.status, res.outer_status, res.inner.iterations, res.inner.residual
    );
    println!(
        "outer:       pv error {:.3e} V | {} mode flips",
        res.pv_error, res.mode_flips
    );
    if res.converged() {
        for (g, (q, mode)) in
            net.generators().iter().zip(res.q_gen.iter().zip(&res.gen_modes))
        {
            println!(
                "gen:         bus {} | {:.1} kW + j{:.2} kvar | {mode}",
                g.bus,
                g.p_gen / 1e3,
                q / 1e3
            );
        }
    }
    report_solve3_body(net, &res.inner, res.converged());
    println!("modeled:     total {:.1} µs", res.inner.timing.total_us());
    Ok(res.status.exit_code())
}

/// The converged-run detail lines shared by the plain and DG `solve3`
/// reports.
fn report_solve3_body(
    net: &powergrid::three_phase::ThreePhaseNetwork,
    res: &fbs::Solve3Result,
    converged: bool,
) {
    if !converged {
        return;
    }
    let v0 = net.source_voltage().abs_max();
    let (vmin, sag_bus) = res.min_phase_voltage();
    let (unb, unb_bus) = res.max_unbalance();
    println!("worst phase: {:.1} V ({:.4} pu) at bus {sag_bus}", vmin, vmin / v0);
    println!("unbalance:   {:.2}% max at bus {unb_bus}", 100.0 * unb);
    let t = net.total_load();
    println!(
        "load/phase:  a {:.1} kW | b {:.1} kW | c {:.1} kW",
        t.a.re / 1e3,
        t.b.re / 1e3,
        t.c.re / 1e3
    );
}

fn emit_text(text: &str, out: Option<&str>, buses: usize) -> Result<(), String> {
    match out {
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {buses} buses to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_profile(argv: &[String]) -> Result<u8, String> {
    let a = Args::parse(
        argv,
        &["solver", "tol", "max-iter", "fault-seed", "fault-rate", "fault-lost-at", "degrade", "trace-out", "metrics-out"],
    )?;
    let net = load(a.one_positional("grid file")?)?;
    let cfg = solver_config(&a)?;
    let which = a.get_or("solver", "gpu");
    let tele = Telemetry::from_args(&a);
    if let Some(plan) = fault_plan(&a)? {
        return profile_resilient(&net, &cfg, which, plan, a.get_parse_or("degrade", true)?, &tele);
    }
    // Run the chosen device solver while keeping its timeline for the
    // per-kernel report and the notes/trace exports.
    let device = Device::new(DeviceProps::paper_rig());
    let (res, table, notes) = match which {
        "gpu" => {
            let mut s = GpuSolver::new(device);
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            let r = s.solve(&net, &cfg);
            tele.bridge_device(s.device());
            let tl = s.device().timeline();
            (r, tl.kernel_report_table(), tl.notes())
        }
        "gpu-direct" => {
            let mut s = GpuSolver::with_strategy(device, BackwardStrategy::Direct);
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            let r = s.solve(&net, &cfg);
            tele.bridge_device(s.device());
            let tl = s.device().timeline();
            (r, tl.kernel_report_table(), tl.notes())
        }
        "gpu-atomic" => {
            let mut s = GpuSolver::with_strategy(device, BackwardStrategy::AtomicScatter);
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            let r = s.solve(&net, &cfg);
            tele.bridge_device(s.device());
            let tl = s.device().timeline();
            (r, tl.kernel_report_table(), tl.notes())
        }
        "gpu-jump" => {
            let mut s = JumpSolver::new(device);
            if let Some(rec) = tele.recorder() {
                s = s.with_recorder(rec.clone());
            }
            let r = s.solve(&net, &cfg);
            tele.bridge_device(s.device());
            let tl = s.device().timeline();
            (r, tl.kernel_report_table(), tl.notes())
        }
        other => return Err(format!("profile: unknown device solver `{other}`")),
    };
    println!(
        "solver {which}: {} in {} iterations, {:.1} µs modeled\n",
        res.status,
        res.iterations,
        res.timing.total_us()
    );
    print!("{table}");
    print_timeline_notes(&notes);
    tele.record(&res.timing, res.iterations, res.residual, &res.status, None);
    tele.write()?;
    Ok(res.status.exit_code())
}

/// Prints the timeline's fault/marker annotations (supervisor breaker
/// flips, checkpoint/rollback markers, injected faults) after the kernel
/// table, instead of dropping them on the floor.
fn print_timeline_notes(notes: &[String]) {
    if notes.is_empty() {
        return;
    }
    println!("\ntimeline events:");
    for n in notes {
        println!("  {n}");
    }
}

/// `profile` under fault injection: runs the resilient supervisor and
/// reports the kernel table of the last device it drove (the one whose
/// attempt produced the result, unless the solve degraded to the CPU).
fn profile_resilient(
    net: &RadialNetwork,
    cfg: &SolverConfig,
    which: &str,
    plan: FaultPlan,
    degrade: bool,
    tele: &Telemetry,
) -> Result<u8, String> {
    let backend = Backend::from_name(which)
        .filter(|b| b.is_device())
        .ok_or_else(|| format!("profile: unknown device solver `{which}`"))?;
    let mut solver = ResilientSolver::new(backend, DeviceProps::paper_rig(), HostProps::paper_rig())
        .with_fault_plan(plan.clone())
        .with_degradation(degrade);
    if let Some(rec) = tele.recorder() {
        solver = solver.with_recorder(rec.clone());
    }
    let solved = solver.solve(net, cfg);
    if let Some(dev) = solver.last_device() {
        tele.bridge_device(dev);
    }
    let res = match solved {
        Ok(r) => r,
        Err(e) => {
            println!("solver {which}: {e}");
            if let Some(dev) = solver.last_device() {
                print_timeline_notes(&dev.timeline().notes());
            }
            tele.write()?;
            return Ok(EXIT_UNRECOVERABLE);
        }
    };
    println!(
        "solver {which}: {} in {} iterations, {:.1} µs modeled",
        res.status,
        res.iterations,
        res.timing.total_us()
    );
    print_fault_report(&res, &plan);
    println!();
    if let Some(dev) = solver.last_device() {
        print!("{}", dev.timeline().kernel_report_table());
        print_timeline_notes(&dev.timeline().notes());
    }
    tele.record(&res.timing, res.iterations, res.residual, &res.status, res.fault_report.as_ref());
    tele.write()?;
    Ok(res.status.exit_code())
}

fn cmd_compare(argv: &[String]) -> Result<(), String> {
    let a = Args::parse(argv, &["tol", "max-iter"])?;
    let net = load(a.one_positional("grid file")?)?;
    let cfg = solver_config(&a)?;
    println!("{:<10} {:>7} {:>14} {:>14} {:>9}", "solver", "iters", "modeled total", "vs serial", "conv");
    let tele = Telemetry::default();
    let serial = run_solver(&net, &cfg, "serial", &tele)?;
    let base = serial.timing.total_us();
    for which in ["serial", "multicore", "gpu", "gpu-direct", "gpu-atomic", "gpu-jump"] {
        let r =
            if which == "serial" { serial.clone() } else { run_solver(&net, &cfg, which, &tele)? };
        println!(
            "{:<10} {:>7} {:>11.1} µs {:>13.2}x {:>9}",
            which,
            r.iterations,
            r.timing.total_us(),
            base / r.timing.total_us(),
            r.converged()
        );
    }
    Ok(())
}
