//! `fbs` — command-line power-flow tool over the reproduction library.

use std::process::ExitCode;

use fbs_cli::commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        // Solve subcommands surface the convergence status as the exit
        // code (0 converged, 2 max-iterations, 3 diverged, 4 numerical
        // failure); exit code 1 stays reserved for usage and I/O errors.
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
