//! `fbs` — command-line power-flow tool over the reproduction library.

use std::process::ExitCode;

use fbs_cli::commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
