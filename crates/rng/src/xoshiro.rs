//! xoshiro256++ 1.0 — Blackman & Vigna's all-purpose generator.
//!
//! 256 bits of state, period 2^256 − 1, passes BigCrush/PractRand; the
//! `++` scrambler (rotate-add) makes all 64 output bits full quality, so
//! the high-bits-only double construction in [`crate::Rng::gen_f64`]
//! and the widening-multiply bounded sampler both draw on solid bits.

use crate::{Rng, SeedableRng, SplitMix64};

/// The xoshiro256++ generator. Construct via
/// [`SeedableRng::seed_from_u64`]; the all-zero state (which would be
/// absorbing) is unreachable from any seed because the state is filled
/// by SplitMix64.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Builds the generator from raw state words. At least one word
    /// must be non-zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must be non-zero");
        Xoshiro256pp { s }
    }
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        // Vigna's recommended procedure: expand the seed through
        // SplitMix64 so near-equal seeds give uncorrelated states.
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp { s: std::array::from_fn(|_| mix.next_u64()) }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // xoshiro256plusplus.c seeded via splitmix64(42), first four
        // outputs (computed with the published reference sources).
        let mut r = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(r.next_u64(), 0xD076_4D4F_4476_689F);
        assert_eq!(r.next_u64(), 0x519E_4174_576F_3791);
        assert_eq!(r.next_u64(), 0xFBE0_7CFB_0C24_ED8C);
        assert_eq!(r.next_u64(), 0xB37D_9F60_0CD8_35B8);
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = Xoshiro256pp::seed_from_u64(0);
        let mut b = Xoshiro256pp::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = Xoshiro256pp::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        Xoshiro256pp::from_state([0; 4]);
    }
}
