//! Self-contained deterministic pseudo-random numbers.
//!
//! The repo's dependency policy is *zero external crates*, so this crate
//! replaces the small slice of `rand` the workspace actually used:
//! seeding from a `u64`, uniform integers/floats over ranges, and a
//! Box–Muller normal. Two classic generators provide the bits:
//!
//! * [`SplitMix64`] — Steele/Lea/Vigna's 64-bit mixer. Equidistributed,
//!   trivially seedable, used here to expand one `u64` seed into the
//!   larger xoshiro state (the seeding procedure Vigna recommends).
//! * [`Xoshiro256pp`] — Blackman/Vigna's xoshiro256++ 1.0, a fast
//!   all-purpose generator with 256 bits of state and a 2^256 − 1
//!   period. [`rngs::StdRng`] aliases it, mirroring the `rand` module
//!   layout so call sites read the same.
//!
//! Determinism is a feature, not an accident: every generator here is a
//! pure function of its seed, across platforms and releases. Golden
//! regression tests and `.grid` byte-identity tests rely on that, so
//! changing any output stream is a breaking change.
//!
//! ```
//! use rng::rngs::StdRng;
//! use rng::{Rng, SeedableRng};
//!
//! let mut r = StdRng::seed_from_u64(7);
//! let i = r.gen_range(0..10usize);
//! let x = r.gen_range(0.5..=1.5f64);
//! assert!(i < 10 && (0.5..=1.5).contains(&x));
//! ```

mod sample;
mod splitmix;
mod xoshiro;

pub use sample::SampleRange;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// `rand`-style module holding the workspace's default generator.
pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256++).
    pub type StdRng = crate::Xoshiro256pp;
}

/// A source of uniformly distributed 64-bit words, plus the derived
/// sampling surface the workspace uses.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn gen_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value over `range` (integer `lo..hi` or float
    /// `lo..hi` / `lo..=hi`). Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard normal deviate via the Box–Muller transform.
    fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // u1 in (0, 1]: avoids ln(0) without biasing the 53-bit stream.
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform `u64` in `[0, bound)` by rejection (no modulo bias).
    /// Panics when `bound` is zero.
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below needs a positive bound");
        // Widening-multiply trick (Lemire): take the high word of
        // x·bound, rejecting the small biased zone of the low word.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = self.next_u64() as u128 * bound as u128;
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructing a generator deterministically from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single seed word. Equal seeds give
    /// byte-identical streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_below_is_unbiased_enough_and_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.gen_below(7) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 per bucket; 4σ ≈ 380.
            assert!((9_500..10_500).contains(&c), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn gen_below_zero_panics() {
        StdRng::seed_from_u64(3).gen_below(0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "{hits}");
    }

    #[test]
    fn normal_has_right_moments() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gen_normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn trait_object_and_reborrow_compose() {
        // `&mut impl Rng` must itself be an `Rng` (generators pass
        // theirs down by reborrow).
        fn takes(mut r: impl Rng) -> u64 {
            r.next_u64()
        }
        let mut r = StdRng::seed_from_u64(6);
        let a = takes(&mut r);
        let b = takes(&mut r);
        assert_ne!(a, b);
    }
}
