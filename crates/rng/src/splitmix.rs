//! SplitMix64 — Steele, Lea & Vigna's 64-bit state mixer.
//!
//! One addition and three xor-shift-multiply rounds per output; passes
//! BigCrush at 64 bits of state. Its role here is mostly *seeding*: one
//! `u64` fans out into the 256-bit xoshiro state, which cannot otherwise
//! be filled safely from a single word (an all-zero state is absorbing).

use crate::{Rng, SeedableRng};

/// The SplitMix64 generator. Every `u64` (including 0) is a valid state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state word.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        // Reference constants from Vigna's public-domain splitmix64.c.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // First three outputs of splitmix64.c with seed 1234567.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(r.next_u64(), 0x2C73_F084_5854_0FA5);
        assert_eq!(r.next_u64(), 0x883E_BCE5_A3F2_7C77);
    }

    #[test]
    fn zero_state_is_fine() {
        let mut r = SplitMix64::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
