//! Range sampling: the glue that lets `rng.gen_range(0..n)` and
//! `rng.gen_range(0.3..=1.5)` work over the workspace's integer and
//! float types, mirroring the `rand` call-site syntax.

use std::ops::{Range, RangeInclusive};

use crate::Rng;

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics when the range is
    /// empty (or, for floats, not finite).
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.gen_below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + rng.gen_below(span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

fn f64_between<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
    assert!(lo.is_finite() && hi.is_finite(), "float range must be finite");
    // lo + u·(hi − lo) can round up to hi; clamp keeps the half-open
    // contract while staying uniform to rounding.
    let x = lo + rng.gen_f64() * (hi - lo);
    if x < hi { x } else { hi.next_down().max(lo) }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty float range");
        f64_between(self.start, self.end, rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty float range");
        assert!(lo.is_finite() && hi.is_finite(), "float range must be finite");
        lo + rng.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(3..8usize) - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..200 {
            let v = r.gen_range(10..=12u64);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(r.gen_range(5..6usize), 5, "singleton range");
        assert_eq!(r.gen_range(7..=7u32), 7, "singleton inclusive range");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(12);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x), "{x}");
            let y = r.gen_range(0.5..=1.5f64);
            assert!((0.5..=1.5).contains(&y), "{y}");
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(13);
        let mean =
            (0..50_000).map(|_| r.gen_range(0.0..1.0f64)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn empty_int_range_panics() {
        StdRng::seed_from_u64(1).gen_range(5..5usize);
    }

    #[test]
    #[should_panic(expected = "empty float range")]
    fn empty_float_range_panics() {
        StdRng::seed_from_u64(1).gen_range(1.0..1.0f64);
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = StdRng::seed_from_u64(14);
        let _ = r.gen_range(0..=u64::MAX);
    }
}
