//! # simt — a functional SIMT (GPU) execution simulator
//!
//! This crate is the CUDA-substitute substrate of the forward-backward
//! sweep reproduction (see the workspace `DESIGN.md`). It executes
//! CUDA-style kernels *functionally* — every simulated thread really runs,
//! in parallel across host worker threads — while a calibrated analytical
//! model supplies *modeled device time* for every launch and transfer.
//!
//! ## Programming model
//!
//! * [`Device`] owns the clock model and the event [`Timeline`].
//! * [`DeviceBuffer`] is a device allocation; host data crosses through
//!   [`Device::htod`] / [`Device::dtoh`], which are charged PCIe time.
//! * A kernel is a struct of parameter views implementing [`Kernel`];
//!   [`Device::launch`] runs it over a 1-D [`LaunchConfig`] grid.
//! * Inside a kernel, a block is a sequence of barrier-delimited phases
//!   ([`BlockScope::threads`]), with [`Shared`] memory persisting across
//!   phases — the well-synchronised subset of CUDA.
//!
//! ```
//! use simt::{Device, DeviceProps, Kernel, LaunchConfig, BlockScope, GlobalRef, GlobalMut};
//!
//! /// y[i] = a·x[i] + y[i]
//! struct Saxpy<'a> {
//!     a: f64,
//!     x: GlobalRef<'a, f64>,
//!     y: GlobalMut<'a, f64>,
//!     n: usize,
//! }
//!
//! impl Kernel for Saxpy<'_> {
//!     fn name(&self) -> &'static str { "saxpy" }
//!     fn block(&self, blk: &mut BlockScope) {
//!         blk.threads(|t| {
//!             let i = t.global_id();
//!             if i < self.n {
//!                 let v = self.a * t.ld(&self.x, i) + t.ld_mut(&self.y, i);
//!                 t.flops(2);
//!                 t.st(&self.y, i, v);
//!             }
//!         });
//!     }
//! }
//!
//! let mut dev = Device::new(DeviceProps::paper_rig());
//! let x = dev.alloc_from(&vec![1.0_f64; 1024]);
//! let mut y = dev.alloc_from(&vec![2.0_f64; 1024]);
//! dev.launch(LaunchConfig::for_elems(1024), &Saxpy { a: 3.0, x: x.view(), y: y.view_mut(), n: 1024 });
//! assert_eq!(dev.dtoh(&y), vec![5.0; 1024]);
//! assert!(dev.timeline().breakdown().kernels == 1);
//! ```
//!
//! ## Timing model
//!
//! See [`timing`] for the roofline-with-latency-floor formulation and
//! [`DeviceProps`] for the calibrated presets. Host wall-clock of the
//! simulation is recorded for transparency but is **never** used in
//! speedup claims.
//!
//! ## Race checking
//!
//! Build with `--features racecheck` to attach a per-cell access tracker
//! (cuda-memcheck analog) that panics on intra-launch data races. Kernel
//! test suites in this workspace run under it.

#![warn(missing_docs)]

pub mod atomic;
mod buffer;
pub mod crc;
mod device;
mod engine;
pub mod fault;
mod kernel;
mod props;
#[cfg(feature = "racecheck")]
pub mod racecheck;
mod scope;
pub mod span_export;
mod stats;
pub mod timeline;
pub mod timing;

pub use atomic::AtomicAdd;
pub use buffer::{BufId, DeviceBuffer, DeviceCopy, GlobalMut, GlobalRef};
pub use device::Device;
pub use fault::{DeviceError, FaultKind, FaultPlan, FaultRecord, FaultSite, StormSchedule};
pub use kernel::{Kernel, LaunchConfig};
pub use props::{DeviceProps, HostProps};
pub use scope::{BlockScope, Shared, ThreadCtx};
pub use span_export::{export_timeline_spans, export_timeline_spans_to};
pub use stats::{LaunchStats, TRANSACTION_BYTES};
pub use timeline::{Breakdown, Event, EventKind, KernelReport, Timeline};
pub use timing::{Bound, KernelTiming};
