//! The launch engine: schedules blocks over host worker threads.
//!
//! Workers model SMs only in the sense that they drain the grid's blocks;
//! modeled time comes from [`crate::timing`], never from host wall-clock.
//! Small launches run inline on the calling thread — spawning costs more
//! than it saves below a few thousand simulated threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::kernel::{Kernel, LaunchConfig};
use crate::scope::BlockScope;
use crate::stats::LaunchStats;

/// Launches below this many simulated threads run on the calling thread.
const PARALLEL_THRESHOLD_THREADS: u64 = 8192;

/// Blocks handed to a worker per queue pop (amortises the atomic).
fn chunk_size(total_blocks: u64, workers: usize) -> u64 {
    (total_blocks / (workers as u64 * 8)).max(1)
}

fn run_block<K: Kernel + ?Sized>(
    kernel: &K,
    block_idx: u64,
    cfg: &LaunchConfig,
    warp_size: u32,
    shared_limit: u32,
    out: &mut LaunchStats,
) {
    let mut scope =
        BlockScope::new(block_idx, cfg.grid, cfg.grid_y, cfg.block, warp_size, shared_limit);
    kernel.block(&mut scope);
    scope.acc.fold_into(out, cfg.block as u64);
}

/// Executes every block of the grid (in flat row-major order) and returns
/// merged statistics.
pub(crate) fn run_grid<K: Kernel + ?Sized>(
    kernel: &K,
    cfg: &LaunchConfig,
    warp_size: u32,
    shared_limit: u32,
    max_workers: usize,
) -> LaunchStats {
    let total = cfg.total_blocks();
    let workers = (max_workers as u64).min(total).max(1) as usize;
    if workers == 1 || cfg.total_threads() < PARALLEL_THRESHOLD_THREADS {
        let mut stats = LaunchStats::default();
        for b in 0..total {
            run_block(kernel, b, cfg, warp_size, shared_limit, &mut stats);
        }
        return stats;
    }

    let next = AtomicU64::new(0);
    let merged: Mutex<LaunchStats> = Mutex::new(LaunchStats::default());
    let chunk = chunk_size(total, workers);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = LaunchStats::default();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + chunk).min(total);
                    for b in start..end {
                        run_block(kernel, b, cfg, warp_size, shared_limit, &mut local);
                    }
                }
                merged.lock().expect("stats mutex poisoned").merge(&local);
            });
        }
    });

    merged.into_inner().expect("stats mutex poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;
    use crate::scope::BlockScope;

    /// y[i] = a*x[i] + y[i]
    struct Saxpy<'a> {
        a: f64,
        x: crate::buffer::GlobalRef<'a, f64>,
        y: crate::buffer::GlobalMut<'a, f64>,
        n: usize,
    }

    impl Kernel for Saxpy<'_> {
        fn name(&self) -> &'static str {
            "saxpy"
        }
        fn block(&self, blk: &mut BlockScope) {
            blk.threads(|t| {
                let i = t.global_id();
                if i < self.n {
                    let xv = t.ld(&self.x, i);
                    let yv = t.ld_mut(&self.y, i);
                    t.flops(2);
                    t.st(&self.y, i, self.a * xv + yv);
                }
            });
        }
    }

    fn saxpy_case(n: usize, workers: usize) -> (Vec<f64>, LaunchStats) {
        let host_x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let host_y: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        let mut x = DeviceBuffer::<f64>::zeroed(n);
        x.copy_from_host(&host_x);
        let mut y = DeviceBuffer::<f64>::zeroed(n);
        y.copy_from_host(&host_y);
        let cfg = LaunchConfig::for_elems(n);
        let k = Saxpy { a: 3.0, x: x.view(), y: y.view_mut(), n };
        let stats = run_grid(&k, &cfg, 32, 48 * 1024, workers);
        (y.copy_to_host(), stats)
    }

    #[test]
    fn sequential_path_computes_saxpy() {
        let (y, stats) = saxpy_case(1000, 1);
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f64 + 2.0 * i as f64);
        }
        assert_eq!(stats.blocks, 4);
        assert_eq!(stats.threads, 1024);
        assert_eq!(stats.flops, 2000);
        assert_eq!(stats.gmem_loads, 2000);
        assert_eq!(stats.gmem_stores, 1000);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let n = 100_000;
        let (y_seq, s_seq) = saxpy_case(n, 1);
        let (y_par, s_par) = saxpy_case(n, 8);
        assert_eq!(y_seq, y_par);
        // Stats are order-independent sums → identical.
        assert_eq!(s_seq, s_par);
    }

    #[test]
    fn worker_count_never_exceeds_grid() {
        // Must not deadlock or double-run blocks with more workers than blocks.
        let (y, stats) = saxpy_case(64, 64);
        assert_eq!(stats.blocks, 1);
        assert_eq!(y.len(), 64);
    }

    #[test]
    fn chunk_size_is_sane() {
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(chunk_size(64, 8), 1);
        assert_eq!(chunk_size(6400, 8), 100);
    }

    /// out[y*grid + x] = flat block index, from a 2-D launch.
    struct GridStamp<'a> {
        out: crate::buffer::GlobalMut<'a, u32>,
    }

    impl Kernel for GridStamp<'_> {
        fn name(&self) -> &'static str {
            "grid_stamp"
        }
        fn block(&self, blk: &mut BlockScope) {
            let (x, y, gx) = (blk.block_idx_x(), blk.block_idx_y(), blk.grid_dim());
            blk.threads(|t| {
                if t.tid() == 0 {
                    t.st(&self.out, t.block_idx_y() * gx + t.block_idx_x(), (y * gx + x) as u32);
                }
            });
        }
    }

    #[test]
    fn two_dimensional_grid_runs_every_block_once() {
        for workers in [1usize, 4] {
            let (gx, gy) = (7u32, 5u32);
            let mut out = DeviceBuffer::<u32>::zeroed((gx * gy) as usize);
            let k = GridStamp { out: out.view_mut() };
            // Large block size so the parallel path engages at workers=4.
            let cfg = LaunchConfig::grid2d(gx, gy, 256);
            let stats = run_grid(&k, &cfg, 32, 48 * 1024, workers);
            assert_eq!(stats.blocks, (gx * gy) as u64);
            let host = out.copy_to_host();
            for (i, v) in host.iter().enumerate() {
                assert_eq!(*v as usize, i, "block {i} ran with wrong coordinates");
            }
        }
    }
}
