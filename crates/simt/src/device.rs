//! The device handle: allocation, transfers, launches, timeline.

use std::sync::Arc;
use std::time::Instant;

use crate::buffer::{DeviceBuffer, DeviceCopy, MemPool};
use crate::engine;
use crate::fault::{DeviceError, FaultKind, FaultPlan, FaultRecord, FaultSite};
use crate::kernel::{Kernel, LaunchConfig};
use crate::props::DeviceProps;
use crate::timeline::{Event, EventKind, Timeline};
use crate::timing;

/// A simulated CUDA device.
///
/// All operations are synchronous (the paper's pipeline is too: upload,
/// iterate kernels with a host-side convergence loop, download). Modeled
/// time for every operation is appended to the [`Timeline`].
///
/// # Fallible vs. panicking API
///
/// Every operation exists in two forms. The `try_*` methods
/// ([`Device::try_alloc`], [`Device::try_htod`], [`Device::try_dtoh`],
/// [`Device::try_launch`]) return [`DeviceError`] for capacity
/// exhaustion, transfer-size mismatches, launch-geometry violations and
/// injected faults — this is the path recovery-aware callers use. The
/// historical infallible methods are thin wrappers that panic with the
/// error's `Display` text, which reproduces the pre-fallible panic
/// messages exactly. Device faults raised *inside* kernels
/// (out-of-bounds accesses) still panic from the launch engine,
/// mirroring sticky memcheck errors on real hardware.
///
/// # Fault injection
///
/// [`Device::arm_faults`] attaches a [`FaultPlan`]. Each subsequent
/// operation consumes one op index from the plan and may fail loudly
/// (OOM / launch failure / device loss) or corrupt data silently
/// (transfer corruption, resident-buffer bit flips). Injected faults
/// are recorded on the timeline and in [`Device::fault_log`]. A
/// [`FaultKind::DeviceLost`] is sticky: every later op returns
/// [`DeviceError::DeviceLost`].
pub struct Device {
    props: DeviceProps,
    timeline: Timeline,
    workers: usize,
    mem: Arc<MemPool>,
    plan: Option<FaultPlan>,
    fault_log: Vec<FaultRecord>,
    lost_at: Option<u64>,
    ordinal: u32,
}

impl Device {
    /// Creates a device with the given properties, using every host core
    /// for functional execution.
    pub fn new(props: DeviceProps) -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::with_workers(props, workers)
    }

    /// Creates a device with an explicit host worker-thread cap
    /// (functional execution only; modeled time is unaffected).
    pub fn with_workers(props: DeviceProps, workers: usize) -> Self {
        props.validate().expect("invalid DeviceProps");
        Device {
            props,
            timeline: Timeline::default(),
            workers: workers.max(1),
            mem: Arc::new(MemPool::default()),
            plan: None,
            fault_log: Vec::new(),
            lost_at: None,
            ordinal: 0,
        }
    }

    /// Tags the device with a fleet ordinal. The ordinal rides on the
    /// timeline (and from there on every exported telemetry event), so a
    /// merged trace of several devices stays attributable per device.
    pub fn with_ordinal(mut self, ordinal: u32) -> Self {
        self.ordinal = ordinal;
        self.timeline.set_device(ordinal);
        self
    }

    /// The device's fleet ordinal (0 for single-device use).
    pub fn ordinal(&self) -> u32 {
        self.ordinal
    }

    /// The calibrated reproduction device ([`DeviceProps::paper_rig`]).
    pub fn paper_rig() -> Self {
        Self::new(DeviceProps::paper_rig())
    }

    /// Device properties.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// Total bytes currently charged to live device allocations
    /// (decreases when a [`DeviceBuffer`] drops).
    pub fn allocated_bytes(&self) -> u64 {
        self.mem.in_use()
    }

    /// The event log.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Mutable event log (for clearing between experiment phases).
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    /// Arms a fault plan; subsequent operations draw fault decisions
    /// from it. Pass a clone of a shared plan to continue one op stream
    /// across several devices (see [`FaultPlan`]). The device's ordinal
    /// is stamped onto the plan (unless one was bound explicitly) so
    /// storm kill windows correlate on the fleet ordinal.
    pub fn arm_faults(&mut self, mut plan: FaultPlan) {
        plan.bind_ordinal(self.ordinal);
        self.plan = Some(plan);
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Every fault injected on this device so far, oldest first.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    /// True once a [`FaultKind::DeviceLost`] has fired; all operations
    /// fail from then on.
    pub fn is_lost(&self) -> bool {
        self.lost_at.is_some()
    }

    /// Draws the fault decision for the next op. `Err` only for device
    /// loss (sticky); silent faults come back as `Ok(Some(..))` for the
    /// caller to apply.
    fn poll_fault(&mut self, site: FaultSite) -> Result<Option<(u64, FaultKind)>, DeviceError> {
        if let Some(at_op) = self.lost_at {
            return Err(DeviceError::DeviceLost { at_op });
        }
        let Some(plan) = &self.plan else { return Ok(None) };
        let op = plan.next_op();
        let Some(kind) = plan.decide(op, site) else { return Ok(None) };
        self.fault_log.push(FaultRecord { op, site, kind: kind.clone() });
        self.timeline.push(Event {
            kind: EventKind::Fault {
                desc: format!("{} @ {}", kind.label(), site.label()),
                op,
            },
            modeled_us: 0.0,
            wall_us: 0.0,
        });
        if let FaultKind::DeviceLost { at_op } = kind {
            self.lost_at = Some(at_op);
            return Err(DeviceError::DeviceLost { at_op });
        }
        Ok(Some((op, kind)))
    }

    /// Allocates `len` zero-initialised elements on the device, failing
    /// when the allocation would exceed
    /// [`DeviceProps::global_mem_bytes`] or an OOM fault is injected.
    #[must_use = "device operations can fail; handle the Result"]
    pub fn try_alloc<T: DeviceCopy>(&mut self, len: usize) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let injected = self.poll_fault(FaultSite::Alloc)?.is_some();
        let in_use = self.mem.in_use();
        if injected || in_use + bytes > self.props.global_mem_bytes {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                in_use,
                capacity: self.props.global_mem_bytes,
            });
        }
        let buf = DeviceBuffer::zeroed_in(len, &self.mem);
        self.timeline.push(Event {
            kind: EventKind::Alloc { bytes: buf.size_bytes() },
            modeled_us: 0.0,
            wall_us: 0.0,
        });
        Ok(buf)
    }

    /// Allocates and uploads in one step (`cudaMalloc` + `cudaMemcpy`).
    #[must_use = "device operations can fail; handle the Result"]
    pub fn try_alloc_from<T: DeviceCopy>(
        &mut self,
        src: &[T],
    ) -> Result<DeviceBuffer<T>, DeviceError> {
        let mut buf = self.try_alloc(src.len())?;
        self.try_htod(&mut buf, src)?;
        Ok(buf)
    }

    /// Uploads a host slice into a device buffer (lengths must match).
    /// An injected [`FaultKind::TransferCorruption`] flips one
    /// exponent-range bit of the device copy — silently.
    #[must_use = "device operations can fail; handle the Result"]
    pub fn try_htod<T: DeviceCopy>(
        &mut self,
        buf: &mut DeviceBuffer<T>,
        src: &[T],
    ) -> Result<(), DeviceError> {
        let fault = self.poll_fault(FaultSite::Htod)?;
        if src.len() != buf.len() {
            return Err(DeviceError::TransferSize { host: src.len(), device: buf.len() });
        }
        let t0 = Instant::now();
        buf.copy_from_host(src);
        if let Some((op, FaultKind::TransferCorruption)) = fault {
            if let Some((byte, bit)) =
                self.plan.as_ref().and_then(|p| p.flip_target(op, buf.size_bytes()))
            {
                buf.flip_bit(byte as usize, bit);
            }
        }
        let bytes = buf.size_bytes();
        self.timeline.push(Event {
            kind: EventKind::Htod { bytes },
            modeled_us: timing::transfer_time(&self.props, bytes),
            wall_us: t0.elapsed().as_secs_f64() * 1e6,
        });
        Ok(())
    }

    /// Downloads a device buffer into a fresh host vector. Seeded plans
    /// never corrupt this path (read-backs are CRC-protected on real
    /// parts); a *scripted* [`FaultKind::TransferCorruption`] flips one
    /// bit of the returned host copy.
    #[must_use = "device operations can fail; handle the Result"]
    pub fn try_dtoh<T: DeviceCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
    ) -> Result<Vec<T>, DeviceError> {
        let fault = self.poll_fault(FaultSite::Dtoh)?;
        let t0 = Instant::now();
        let mut out = buf.copy_to_host();
        if let Some((op, FaultKind::TransferCorruption)) = fault {
            if let Some((byte, bit)) =
                self.plan.as_ref().and_then(|p| p.flip_target(op, buf.size_bytes()))
            {
                // SAFETY: T is plain-old-data (DeviceCopy) and byte is in
                // bounds by flip_target's contract.
                unsafe {
                    let p = out.as_mut_ptr() as *mut u8;
                    *p.add(byte as usize) ^= 1 << (bit % 8);
                }
            }
        }
        let bytes = buf.size_bytes();
        self.timeline.push(Event {
            kind: EventKind::Dtoh { bytes },
            modeled_us: timing::transfer_time(&self.props, bytes),
            wall_us: t0.elapsed().as_secs_f64() * 1e6,
        });
        Ok(out)
    }

    /// [`Device::try_htod`] with end-to-end integrity: a CRC64 of the
    /// host payload is compared against a CRC64 recomputed over the
    /// device copy after the transfer (the link-CRC model, see
    /// [`crate::crc`]). A mismatch — e.g. an injected
    /// [`FaultKind::TransferCorruption`] — returns
    /// [`DeviceError::TransferCorrupted`] instead of corrupting
    /// silently; the device copy is left as transferred so the caller
    /// can retry the upload. Consumes exactly one fault-plan op, like
    /// the unchecked path.
    #[must_use = "device operations can fail; handle the Result"]
    pub fn try_htod_checked<T: DeviceCopy>(
        &mut self,
        buf: &mut DeviceBuffer<T>,
        src: &[T],
    ) -> Result<(), DeviceError> {
        let expected = crate::crc::crc64_of(src);
        self.try_htod(buf, src)?;
        let actual = crate::crc::crc64_of(&buf.copy_to_host());
        if actual != expected {
            return Err(DeviceError::TransferCorrupted {
                site: FaultSite::Htod,
                expected,
                actual,
            });
        }
        Ok(())
    }

    /// [`Device::try_dtoh`] with end-to-end integrity: the device-side
    /// CRC64 is computed before the read-back and compared with the
    /// CRC64 of the host copy. A scripted dtoh
    /// [`FaultKind::TransferCorruption`] surfaces as
    /// [`DeviceError::TransferCorrupted`] instead of handing the caller
    /// corrupted data. Consumes exactly one fault-plan op.
    #[must_use = "device operations can fail; handle the Result"]
    pub fn try_dtoh_checked<T: DeviceCopy>(
        &mut self,
        buf: &DeviceBuffer<T>,
    ) -> Result<Vec<T>, DeviceError> {
        let expected = crate::crc::crc64_of(&buf.copy_to_host());
        let out = self.try_dtoh(buf)?;
        let actual = crate::crc::crc64_of(&out);
        if actual != expected {
            return Err(DeviceError::TransferCorrupted {
                site: FaultSite::Dtoh,
                expected,
                actual,
            });
        }
        Ok(out)
    }

    /// On-demand canary audit over every live allocation (the free-side
    /// check runs unconditionally when a buffer drops). Returns the
    /// number of live guarded buffers when all frames are intact, or
    /// [`DeviceError::CanarySmashed`] naming the first violated buffer.
    #[must_use = "an audit result reporting corruption must not be dropped"]
    pub fn audit_canaries(&self) -> Result<usize, DeviceError> {
        let (live, smashed) = self.mem.audit();
        match smashed.first() {
            None => Ok(live),
            Some(&buffer) => Err(DeviceError::CanarySmashed { buffer }),
        }
    }

    /// Canary violations caught by the free-side check so far (counted
    /// even when the free happened during a panic unwind).
    pub fn canary_violations(&self) -> u64 {
        self.mem.freed_smashed()
    }

    /// Launches a kernel over the given grid. Injected
    /// [`FaultKind::LaunchFailure`]s fail the launch before it runs;
    /// injected [`FaultKind::BufferBitFlip`]s corrupt one bit of a
    /// resident allocation and then run the kernel normally — silently.
    #[must_use = "device operations can fail; handle the Result"]
    pub fn try_launch<K: Kernel>(
        &mut self,
        cfg: LaunchConfig,
        kernel: &K,
    ) -> Result<(), DeviceError> {
        let fault = self.poll_fault(FaultSite::Launch)?;
        if cfg.grid < 1 || cfg.grid_y < 1 {
            return Err(DeviceError::Launch { reason: "empty grid".into() });
        }
        if cfg.block < 1 || cfg.block > self.props.max_threads_per_block {
            return Err(DeviceError::Launch {
                reason: format!(
                    "block size {} outside 1..={}",
                    cfg.block, self.props.max_threads_per_block
                ),
            });
        }
        match fault {
            Some((op, FaultKind::LaunchFailure)) => {
                return Err(DeviceError::Launch { reason: format!("injected (op {op})") });
            }
            Some((_, FaultKind::BufferBitFlip { buffer, word, bit })) => {
                self.mem.flip_bit(buffer, word, bit);
            }
            _ => {}
        }
        let t0 = Instant::now();
        let stats = engine::run_grid(
            kernel,
            &cfg,
            self.props.warp_size,
            self.props.shared_mem_per_block,
            self.workers,
        );
        let wall_us = t0.elapsed().as_secs_f64() * 1e6;
        let timing = timing::kernel_time(&self.props, &cfg, &stats);
        self.timeline.push(Event {
            kind: EventKind::Kernel {
                name: kernel.name(),
                grid: cfg.total_blocks().min(u32::MAX as u64) as u32,
                block: cfg.block,
                stats,
                timing,
            },
            modeled_us: timing.total_us,
            wall_us,
        });
        Ok(())
    }

    /// Panicking wrapper over [`Device::try_alloc`].
    pub fn alloc<T: DeviceCopy>(&mut self, len: usize) -> DeviceBuffer<T> {
        self.try_alloc(len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking wrapper over [`Device::try_alloc_from`].
    pub fn alloc_from<T: DeviceCopy>(&mut self, src: &[T]) -> DeviceBuffer<T> {
        self.try_alloc_from(src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking wrapper over [`Device::try_htod`].
    pub fn htod<T: DeviceCopy>(&mut self, buf: &mut DeviceBuffer<T>, src: &[T]) {
        self.try_htod(buf, src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking wrapper over [`Device::try_dtoh`].
    pub fn dtoh<T: DeviceCopy>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        self.try_dtoh(buf).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking wrapper over [`Device::try_launch`].
    pub fn launch<K: Kernel>(&mut self, cfg: LaunchConfig, kernel: &K) {
        self.try_launch(cfg, kernel).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{GlobalMut, GlobalRef};
    use crate::scope::BlockScope;

    struct Double<'a> {
        src: GlobalRef<'a, u32>,
        dst: GlobalMut<'a, u32>,
        n: usize,
    }

    impl Kernel for Double<'_> {
        fn name(&self) -> &'static str {
            "double"
        }
        fn block(&self, blk: &mut BlockScope) {
            blk.threads(|t| {
                let i = t.global_id();
                if i < self.n {
                    let v = t.ld(&self.src, i);
                    t.flops(1);
                    t.st(&self.dst, i, v * 2);
                }
            });
        }
    }

    #[test]
    fn end_to_end_launch_records_timeline() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 2);
        let host: Vec<u32> = (0..1000).collect();
        let src = dev.alloc_from(&host);
        let mut dst = dev.alloc::<u32>(1000);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 1000 };
        dev.launch(LaunchConfig::for_elems(1000), &k);
        let out = dev.dtoh(&dst);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u32));

        let b = dev.timeline().breakdown();
        assert_eq!(b.kernels, 1);
        assert_eq!(b.htod_bytes, 4000);
        assert_eq!(b.dtoh_bytes, 4000);
        assert!(b.kernel_us >= dev.props().launch_overhead_us);
        assert!(b.htod_us > dev.props().pcie_latency_us);
        assert_eq!(dev.allocated_bytes(), 8000);
    }

    #[test]
    fn modeled_time_is_deterministic() {
        let run = || {
            let mut dev = Device::with_workers(DeviceProps::paper_rig(), 4);
            let host: Vec<u32> = (0..50_000).collect();
            let src = dev.alloc_from(&host);
            let mut dst = dev.alloc::<u32>(50_000);
            let k = Double { src: src.view(), dst: dst.view_mut(), n: 50_000 };
            dev.launch(LaunchConfig::for_elems(50_000), &k);
            dev.timeline().total_modeled_us()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "launch failure")]
    fn oversized_block_is_rejected() {
        let mut dev = Device::paper_rig();
        let mut dst = dev.alloc::<u32>(1);
        let src = DeviceBuffer::<u32>::zeroed(1);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 1 };
        dev.launch(LaunchConfig::new(1, 2048), &k);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_is_rejected() {
        let mut dev = Device::paper_rig();
        let mut dst = dev.alloc::<u32>(1);
        let src = DeviceBuffer::<u32>::zeroed(1);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 1 };
        dev.launch(LaunchConfig::new(0, 32), &k);
    }

    fn tiny_props(capacity: u64) -> DeviceProps {
        DeviceProps { global_mem_bytes: capacity, ..DeviceProps::paper_rig() }
    }

    #[test]
    fn capacity_is_enforced_and_freed_on_drop() {
        let mut dev = Device::with_workers(tiny_props(1000), 1);
        let a = dev.try_alloc::<f64>(100).expect("800 B fits in 1000 B");
        assert_eq!(dev.allocated_bytes(), 800);
        let err = dev.try_alloc::<f64>(100).expect_err("second 800 B must not fit");
        assert_eq!(
            err,
            DeviceError::OutOfMemory { requested: 800, in_use: 800, capacity: 1000 }
        );
        drop(a);
        assert_eq!(dev.allocated_bytes(), 0, "drop must release the bytes");
        dev.try_alloc::<f64>(100).expect("freed capacity is reusable");
    }

    #[test]
    #[should_panic(expected = "device out of memory: requested 1600 B with 0 B of 1000 B in use")]
    fn infallible_alloc_panics_on_oom() {
        let mut dev = Device::with_workers(tiny_props(1000), 1);
        let _ = dev.alloc::<f64>(200);
    }

    #[test]
    fn try_htod_reports_length_mismatch() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        let mut buf = dev.try_alloc::<u32>(2).unwrap();
        let err = dev.try_htod(&mut buf, &[1, 2, 3]).unwrap_err();
        assert_eq!(err.to_string(), "htod length mismatch: host 3 vs device 2");
    }

    #[test]
    fn try_launch_reports_geometry_errors() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        let mut dst = dev.alloc::<u32>(1);
        let src = dev.alloc_from(&[1u32]);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 1 };
        let err = dev.try_launch(LaunchConfig::new(0, 32), &k).unwrap_err();
        assert_eq!(err.to_string(), "launch failure: empty grid");
        let err = dev.try_launch(LaunchConfig::new(1, 4096), &k).unwrap_err();
        assert_eq!(err.to_string(), "launch failure: block size 4096 outside 1..=1024");
    }

    #[test]
    fn scripted_launch_failure_is_transient_and_logged() {
        let host: Vec<u32> = (0..8).collect();
        // Ops: 0 = src alloc, 1 = src htod, 2 = dst alloc, 3 = launch.
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        dev.arm_faults(FaultPlan::scripted([(3, FaultKind::LaunchFailure)]));
        let src = dev.alloc_from(&host);
        let mut dst = dev.alloc::<u32>(8);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 8 };
        let err = dev.try_launch(LaunchConfig::for_elems(8), &k).unwrap_err();
        assert!(matches!(err, DeviceError::Launch { .. }), "{err}");
        assert_eq!(dev.fault_log().len(), 1);
        // The very next launch (op 4) succeeds: the failure was transient.
        dev.try_launch(LaunchConfig::for_elems(8), &k).expect("transient");
        assert_eq!(dev.dtoh(&dst), (0..8).map(|v| 2 * v).collect::<Vec<u32>>());
        let b = dev.timeline().breakdown();
        assert_eq!(b.faults, 1, "fault must appear on the timeline");
    }

    #[test]
    fn launch_fault_sites_fire_only_on_launch_ops() {
        // A LaunchFailure scripted onto an alloc op is site-incompatible
        // and must not fire.
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        dev.arm_faults(FaultPlan::scripted([(0, FaultKind::LaunchFailure)]));
        dev.try_alloc::<u32>(4).expect("alloc op ignores launch-only fault");
        assert!(dev.fault_log().is_empty());
    }

    #[test]
    fn device_lost_is_sticky() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        dev.arm_faults(FaultPlan::scripted([(1, FaultKind::DeviceLost { at_op: 0 })]));
        let _a = dev.try_alloc::<u32>(4).expect("op 0 clean");
        let err = dev.try_alloc::<u32>(4).unwrap_err();
        assert_eq!(err, DeviceError::DeviceLost { at_op: 1 });
        assert!(dev.is_lost());
        // Every later op fails identically without consuming plan ops.
        let err = dev.try_alloc::<u32>(4).unwrap_err();
        assert_eq!(err, DeviceError::DeviceLost { at_op: 1 });
        assert_eq!(dev.fault_plan().unwrap().ops_started(), 2);
    }

    #[test]
    fn scripted_htod_corruption_flips_exactly_one_bit() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        dev.arm_faults(FaultPlan::scripted([(1, FaultKind::TransferCorruption)]));
        let host = vec![1.0f64; 64];
        let mut buf = dev.try_alloc::<f64>(64).unwrap(); // op 0
        dev.try_htod(&mut buf, &host).unwrap(); // op 1 — corrupted
        let back = dev.try_dtoh(&buf).unwrap(); // op 2 — clean
        let diffs: Vec<usize> =
            back.iter().zip(&host).enumerate().filter(|(_, (a, b))| a != b).map(|(i, _)| i).collect();
        assert_eq!(diffs.len(), 1, "exactly one word corrupted, got {diffs:?}");
        let bad = back[diffs[0]];
        // Exponent-range flip: the corruption is catastrophic, not subtle.
        assert!(bad == 0.0 || !(0.5..=2.0).contains(&bad.abs()), "flip too subtle: {bad}");
    }

    #[test]
    fn checked_htod_detects_injected_corruption_and_clean_retry_succeeds() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        dev.arm_faults(FaultPlan::scripted([(1, FaultKind::TransferCorruption)]));
        let host = vec![1.0f64; 64];
        let mut buf = dev.try_alloc::<f64>(64).unwrap(); // op 0
        let err = dev.try_htod_checked(&mut buf, &host).unwrap_err(); // op 1 — corrupted
        let DeviceError::TransferCorrupted { site, expected, actual } = err else {
            panic!("expected TransferCorrupted, got {err}");
        };
        assert_eq!(site, FaultSite::Htod);
        assert_ne!(expected, actual);
        // The retry (op 2) is clean and round-trips exactly.
        dev.try_htod_checked(&mut buf, &host).expect("clean retry");
        assert_eq!(dev.try_dtoh_checked(&buf).unwrap(), host);
    }

    #[test]
    fn checked_dtoh_detects_scripted_readback_corruption() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        dev.arm_faults(FaultPlan::scripted([(2, FaultKind::TransferCorruption)]));
        let host = vec![2.0f64; 32];
        let mut buf = dev.try_alloc::<f64>(32).unwrap(); // op 0
        dev.try_htod_checked(&mut buf, &host).unwrap(); // op 1
        let err = dev.try_dtoh_checked(&buf).unwrap_err(); // op 2 — corrupted
        assert!(
            matches!(
                err,
                DeviceError::TransferCorrupted { site: FaultSite::Dtoh, .. }
            ),
            "{err}"
        );
        // Device memory itself is untouched; the retry reads it back clean.
        assert_eq!(dev.try_dtoh_checked(&buf).unwrap(), host);
    }

    #[test]
    fn checked_transfers_consume_the_same_op_budget_as_unchecked() {
        let run = |checked: bool| {
            let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
            dev.arm_faults(FaultPlan::seeded(3, 0.0));
            let host = vec![1.0f64; 8];
            let mut buf = dev.try_alloc::<f64>(8).unwrap();
            if checked {
                dev.try_htod_checked(&mut buf, &host).unwrap();
                dev.try_dtoh_checked(&buf).unwrap();
            } else {
                dev.try_htod(&mut buf, &host).unwrap();
                dev.try_dtoh(&buf).unwrap();
            }
            dev.fault_plan().unwrap().ops_started()
        };
        assert_eq!(run(true), run(false), "checked paths must not skew op indices");
    }

    #[test]
    fn audit_canaries_reports_live_buffers_and_violations() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
        let _a = dev.try_alloc::<f64>(16).unwrap();
        let mut b = dev.try_alloc::<u32>(4).unwrap();
        assert_eq!(dev.audit_canaries(), Ok(2));
        b.smash_rear_canary_for_test();
        let err = dev.audit_canaries().unwrap_err();
        assert_eq!(err, DeviceError::CanarySmashed { buffer: b.id().0 });
        assert_eq!(dev.canary_violations(), 0, "free-side counter untouched by audits");
        std::mem::forget(b); // skip the intended free-side panic
    }

    #[test]
    fn seeded_device_runs_replay_identically() {
        let run = |seed: u64| {
            let mut dev = Device::with_workers(DeviceProps::paper_rig(), 1);
            dev.arm_faults(FaultPlan::seeded(seed, 0.2));
            let host: Vec<u32> = (0..64).collect();
            let mut log = Vec::new();
            for _ in 0..40 {
                match dev.try_alloc_from(&host) {
                    Ok(buf) => match dev.try_dtoh(&buf) {
                        Ok(v) => log.push(format!("ok {}", v.iter().sum::<u32>())),
                        Err(e) => log.push(format!("dtoh err {e}")),
                    },
                    Err(e) => log.push(format!("alloc err {e}")),
                }
            }
            (log, dev.fault_log().to_vec())
        };
        assert_eq!(run(7), run(7), "same seed must replay byte-identically");
        assert_ne!(run(7).1, run(8).1, "different seeds must differ");
    }
}
