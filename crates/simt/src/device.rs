//! The device handle: allocation, transfers, launches, timeline.

use std::time::Instant;

use crate::buffer::{DeviceBuffer, DeviceCopy};
use crate::engine;
use crate::kernel::{Kernel, LaunchConfig};
use crate::props::DeviceProps;
use crate::timeline::{Event, EventKind, Timeline};
use crate::timing;

/// A simulated CUDA device.
///
/// All operations are synchronous (the paper's pipeline is too: upload,
/// iterate kernels with a host-side convergence loop, download). Modeled
/// time for every operation is appended to the [`Timeline`].
///
/// # Panics
///
/// Launch-geometry violations (zero-sized or over-limit blocks) and
/// device faults (out-of-bounds kernel accesses) panic, mirroring the
/// fatal launch/memcheck errors they correspond to on real hardware.
pub struct Device {
    props: DeviceProps,
    timeline: Timeline,
    workers: usize,
    allocated_bytes: u64,
}

impl Device {
    /// Creates a device with the given properties, using every host core
    /// for functional execution.
    pub fn new(props: DeviceProps) -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::with_workers(props, workers)
    }

    /// Creates a device with an explicit host worker-thread cap
    /// (functional execution only; modeled time is unaffected).
    pub fn with_workers(props: DeviceProps, workers: usize) -> Self {
        props.validate().expect("invalid DeviceProps");
        Device { props, timeline: Timeline::default(), workers: workers.max(1), allocated_bytes: 0 }
    }

    /// The calibrated reproduction device ([`DeviceProps::paper_rig`]).
    pub fn paper_rig() -> Self {
        Self::new(DeviceProps::paper_rig())
    }

    /// Device properties.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// Total bytes currently charged to device allocations.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// The event log.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Mutable event log (for clearing between experiment phases).
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    /// Allocates `len` zero-initialised elements on the device.
    pub fn alloc<T: DeviceCopy>(&mut self, len: usize) -> DeviceBuffer<T> {
        let buf = DeviceBuffer::zeroed(len);
        self.allocated_bytes += buf.size_bytes();
        self.timeline.push(Event {
            kind: EventKind::Alloc { bytes: buf.size_bytes() },
            modeled_us: 0.0,
            wall_us: 0.0,
        });
        buf
    }

    /// Allocates and uploads in one step (`cudaMalloc` + `cudaMemcpy`).
    pub fn alloc_from<T: DeviceCopy>(&mut self, src: &[T]) -> DeviceBuffer<T> {
        let mut buf = self.alloc(src.len());
        self.htod(&mut buf, src);
        buf
    }

    /// Uploads a host slice into a device buffer (lengths must match).
    pub fn htod<T: DeviceCopy>(&mut self, buf: &mut DeviceBuffer<T>, src: &[T]) {
        let t0 = Instant::now();
        buf.copy_from_host(src);
        let bytes = buf.size_bytes();
        self.timeline.push(Event {
            kind: EventKind::Htod { bytes },
            modeled_us: timing::transfer_time(&self.props, bytes),
            wall_us: t0.elapsed().as_secs_f64() * 1e6,
        });
    }

    /// Downloads a device buffer into a fresh host vector.
    pub fn dtoh<T: DeviceCopy>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let t0 = Instant::now();
        let out = buf.copy_to_host();
        let bytes = buf.size_bytes();
        self.timeline.push(Event {
            kind: EventKind::Dtoh { bytes },
            modeled_us: timing::transfer_time(&self.props, bytes),
            wall_us: t0.elapsed().as_secs_f64() * 1e6,
        });
        out
    }

    /// Launches a kernel over the given grid.
    pub fn launch<K: Kernel>(&mut self, cfg: LaunchConfig, kernel: &K) {
        assert!(cfg.grid >= 1, "launch failure: empty grid");
        assert!(
            cfg.block >= 1 && cfg.block <= self.props.max_threads_per_block,
            "launch failure: block size {} outside 1..={}",
            cfg.block,
            self.props.max_threads_per_block
        );
        let t0 = Instant::now();
        let stats = engine::run_grid(
            kernel,
            &cfg,
            self.props.warp_size,
            self.props.shared_mem_per_block,
            self.workers,
        );
        let wall_us = t0.elapsed().as_secs_f64() * 1e6;
        let timing = timing::kernel_time(&self.props, &cfg, &stats);
        self.timeline.push(Event {
            kind: EventKind::Kernel {
                name: kernel.name(),
                grid: cfg.grid,
                block: cfg.block,
                stats,
                timing,
            },
            modeled_us: timing.total_us,
            wall_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{GlobalMut, GlobalRef};
    use crate::scope::BlockScope;

    struct Double<'a> {
        src: GlobalRef<'a, u32>,
        dst: GlobalMut<'a, u32>,
        n: usize,
    }

    impl Kernel for Double<'_> {
        fn name(&self) -> &'static str {
            "double"
        }
        fn block(&self, blk: &mut BlockScope) {
            blk.threads(|t| {
                let i = t.global_id();
                if i < self.n {
                    let v = t.ld(&self.src, i);
                    t.flops(1);
                    t.st(&self.dst, i, v * 2);
                }
            });
        }
    }

    #[test]
    fn end_to_end_launch_records_timeline() {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 2);
        let host: Vec<u32> = (0..1000).collect();
        let src = dev.alloc_from(&host);
        let mut dst = dev.alloc::<u32>(1000);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 1000 };
        dev.launch(LaunchConfig::for_elems(1000), &k);
        let out = dev.dtoh(&dst);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u32));

        let b = dev.timeline().breakdown();
        assert_eq!(b.kernels, 1);
        assert_eq!(b.htod_bytes, 4000);
        assert_eq!(b.dtoh_bytes, 4000);
        assert!(b.kernel_us >= dev.props().launch_overhead_us);
        assert!(b.htod_us > dev.props().pcie_latency_us);
        assert_eq!(dev.allocated_bytes(), 8000);
    }

    #[test]
    fn modeled_time_is_deterministic() {
        let run = || {
            let mut dev = Device::with_workers(DeviceProps::paper_rig(), 4);
            let host: Vec<u32> = (0..50_000).collect();
            let src = dev.alloc_from(&host);
            let mut dst = dev.alloc::<u32>(50_000);
            let k = Double { src: src.view(), dst: dst.view_mut(), n: 50_000 };
            dev.launch(LaunchConfig::for_elems(50_000), &k);
            dev.timeline().total_modeled_us()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "launch failure")]
    fn oversized_block_is_rejected() {
        let mut dev = Device::paper_rig();
        let mut dst = dev.alloc::<u32>(1);
        let src = DeviceBuffer::<u32>::zeroed(1);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 1 };
        dev.launch(LaunchConfig::new(1, 2048), &k);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_is_rejected() {
        let mut dev = Device::paper_rig();
        let mut dst = dev.alloc::<u32>(1);
        let src = DeviceBuffer::<u32>::zeroed(1);
        let k = Double { src: src.view(), dst: dst.view_mut(), n: 1 };
        dev.launch(LaunchConfig::new(0, 32), &k);
    }
}
