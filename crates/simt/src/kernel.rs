//! The kernel trait and launch configuration.

use crate::scope::BlockScope;

/// A device kernel: the `__global__` function analog.
///
/// Implementors are plain structs whose fields are the kernel parameters
/// (global-memory views, scalars). The engine calls [`Kernel::block`] once
/// per block, potentially from many host threads concurrently, hence the
/// `Sync` bound.
pub trait Kernel: Sync {
    /// Name recorded on the timeline (shows up in breakdown reports).
    fn name(&self) -> &'static str;

    /// Executes one block. See [`BlockScope`] for the execution model.
    fn block(&self, blk: &mut BlockScope);
}

/// 1-D launch geometry (`<<<grid, block>>>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid. Must be ≥ 1.
    pub grid: u32,
    /// Threads per block. Must be ≥ 1 and ≤ the device limit.
    pub block: u32,
}

impl LaunchConfig {
    /// Default block size used by the element-wise helpers; matches the
    /// 256-thread blocks typical of paper-era CUDA codes.
    pub const DEFAULT_BLOCK: u32 = 256;

    /// Explicit geometry.
    pub const fn new(grid: u32, block: u32) -> Self {
        LaunchConfig { grid, block }
    }

    /// Geometry covering `n` elements with one thread each, using
    /// `block`-sized blocks (`grid = ceil(n / block)`). `n = 0` launches a
    /// single block so degenerate calls stay well-formed (guards in the
    /// kernel body skip all work).
    pub fn for_elems_with_block(n: usize, block: u32) -> Self {
        assert!(block >= 1, "block size must be >= 1");
        let grid = n.div_ceil(block as usize).max(1);
        assert!(grid <= u32::MAX as usize, "grid too large for {n} elements");
        LaunchConfig { grid: grid as u32, block }
    }

    /// [`Self::for_elems_with_block`] with the default 256-thread block.
    pub fn for_elems(n: usize) -> Self {
        Self::for_elems_with_block(n, Self::DEFAULT_BLOCK)
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid as u64 * self.block as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_elems_rounds_up() {
        assert_eq!(LaunchConfig::for_elems(1), LaunchConfig::new(1, 256));
        assert_eq!(LaunchConfig::for_elems(256), LaunchConfig::new(1, 256));
        assert_eq!(LaunchConfig::for_elems(257), LaunchConfig::new(2, 256));
        assert_eq!(LaunchConfig::for_elems_with_block(100, 32), LaunchConfig::new(4, 32));
    }

    #[test]
    fn zero_elems_still_launches_one_block() {
        let c = LaunchConfig::for_elems(0);
        assert_eq!(c.grid, 1);
    }

    #[test]
    fn total_threads() {
        assert_eq!(LaunchConfig::new(4, 128).total_threads(), 512);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        LaunchConfig::for_elems_with_block(10, 0);
    }
}
