//! The kernel trait and launch configuration.

use crate::scope::BlockScope;

/// A device kernel: the `__global__` function analog.
///
/// Implementors are plain structs whose fields are the kernel parameters
/// (global-memory views, scalars). The engine calls [`Kernel::block`] once
/// per block, potentially from many host threads concurrently, hence the
/// `Sync` bound.
pub trait Kernel: Sync {
    /// Name recorded on the timeline (shows up in breakdown reports).
    fn name(&self) -> &'static str;

    /// Executes one block. See [`BlockScope`] for the execution model.
    fn block(&self, blk: &mut BlockScope);
}

/// Launch geometry (`<<<grid, block>>>`), 1-D by default with an optional
/// second grid dimension (`<<<dim3(grid, grid_y), block>>>`).
///
/// The y dimension exists for batched kernels: `grid_y` typically indexes
/// the *segment* (a scenario, a reduction lane), `grid` the blocks within
/// it. Blocks execute in flat row-major order `y * grid + x`; timing only
/// sees the total block count, so a `(g, 1)` and a `(1, g)` launch with the
/// same per-block work cost the same modeled time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks along x. Must be ≥ 1.
    pub grid: u32,
    /// Blocks along y. Must be ≥ 1 (1 for ordinary 1-D launches).
    pub grid_y: u32,
    /// Threads per block. Must be ≥ 1 and ≤ the device limit.
    pub block: u32,
}

impl LaunchConfig {
    /// Default block size used by the element-wise helpers; matches the
    /// 256-thread blocks typical of paper-era CUDA codes.
    pub const DEFAULT_BLOCK: u32 = 256;

    /// Explicit 1-D geometry.
    pub const fn new(grid: u32, block: u32) -> Self {
        LaunchConfig { grid, grid_y: 1, block }
    }

    /// Explicit 2-D geometry: `grid × grid_y` blocks of `block` threads.
    pub const fn grid2d(grid: u32, grid_y: u32, block: u32) -> Self {
        LaunchConfig { grid, grid_y, block }
    }

    /// Geometry covering `n` elements with one thread each, using
    /// `block`-sized blocks (`grid = ceil(n / block)`). `n = 0` launches a
    /// single block so degenerate calls stay well-formed (guards in the
    /// kernel body skip all work).
    pub fn for_elems_with_block(n: usize, block: u32) -> Self {
        assert!(block >= 1, "block size must be >= 1");
        let grid = n.div_ceil(block as usize).max(1);
        assert!(grid <= u32::MAX as usize, "grid too large for {n} elements");
        LaunchConfig { grid: grid as u32, grid_y: 1, block }
    }

    /// [`Self::for_elems_with_block`] with the default 256-thread block.
    pub fn for_elems(n: usize) -> Self {
        Self::for_elems_with_block(n, Self::DEFAULT_BLOCK)
    }

    /// Total blocks in the launch (`grid × grid_y`).
    pub fn total_blocks(&self) -> u64 {
        self.grid as u64 * self.grid_y as u64
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.total_blocks() * self.block as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_elems_rounds_up() {
        assert_eq!(LaunchConfig::for_elems(1), LaunchConfig::new(1, 256));
        assert_eq!(LaunchConfig::for_elems(256), LaunchConfig::new(1, 256));
        assert_eq!(LaunchConfig::for_elems(257), LaunchConfig::new(2, 256));
        assert_eq!(LaunchConfig::for_elems_with_block(100, 32), LaunchConfig::new(4, 32));
    }

    #[test]
    fn zero_elems_still_launches_one_block() {
        let c = LaunchConfig::for_elems(0);
        assert_eq!(c.grid, 1);
    }

    #[test]
    fn total_threads() {
        assert_eq!(LaunchConfig::new(4, 128).total_threads(), 512);
    }

    #[test]
    fn grid2d_counts_both_dimensions() {
        let c = LaunchConfig::grid2d(3, 5, 64);
        assert_eq!(c.total_blocks(), 15);
        assert_eq!(c.total_threads(), 15 * 64);
        assert_eq!(LaunchConfig::new(3, 64).grid_y, 1);
        assert_eq!(LaunchConfig::for_elems(1000).grid_y, 1);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        LaunchConfig::for_elems_with_block(10, 0);
    }
}
