//! Bridge from the device [`Timeline`] to a [`telemetry::Trace`].
//!
//! Walks the event log with a cumulative modeled-time clock: each event's
//! span starts where the previous one ended, so the exported device track
//! is a gap-free reconstruction of the modeled schedule. Kernels and
//! transfers become complete ("X") spans; allocations, faults, and
//! supervisor markers — all zero-cost on the modeled clock — become
//! instant ("i") events at their position in the stream. Host wall time is
//! deliberately **not** exported: it would break byte-stability and is
//! never part of a performance claim.

use telemetry::trace::{ArgValue, InstantEvent, Span, Trace};

use crate::timeline::{EventKind, Timeline};

/// Append the timeline's events to `trace` on [`Trace::TID_DEVICE`],
/// starting the modeled clock at `base_us`. Returns the clock value after
/// the last event (i.e. `base_us` + total modeled µs of the timeline).
///
/// A timeline tagged with a device ordinal ([`Timeline::set_device`])
/// names the track after the device and stamps every exported event with
/// a `device` argument — see [`export_timeline_spans_to`] for routing
/// several devices onto distinct tracks.
pub fn export_timeline_spans(tl: &Timeline, trace: &mut Trace, base_us: f64) -> f64 {
    export_timeline_spans_to(tl, trace, base_us, Trace::TID_DEVICE)
}

/// [`export_timeline_spans`] onto an explicit track id, for merged
/// multi-device traces where each device owns its own track.
pub fn export_timeline_spans_to(
    tl: &Timeline,
    trace: &mut Trace,
    base_us: f64,
    tid: u32,
) -> f64 {
    let device = tl.device();
    match device {
        Some(d) => trace.name_thread(tid, &format!("device {d} (modeled)")),
        None => trace.name_thread(tid, "device (modeled)"),
    }
    let tag = |mut args: Vec<(String, ArgValue)>| {
        if let Some(d) = device {
            args.push(("device".to_string(), ArgValue::U64(u64::from(d))));
        }
        args
    };
    let mut clock = base_us;
    for ev in tl.events() {
        match &ev.kind {
            EventKind::Kernel { name, grid, block, stats, .. } => {
                trace.push_span(Span {
                    name: (*name).to_string(),
                    cat: "kernel".to_string(),
                    tid,
                    ts_us: clock,
                    dur_us: ev.modeled_us,
                    args: tag(vec![
                        ("grid".to_string(), ArgValue::U64(u64::from(*grid))),
                        ("block".to_string(), ArgValue::U64(u64::from(*block))),
                        ("threads".to_string(), ArgValue::U64(stats.threads)),
                        ("gmem_bytes".to_string(), ArgValue::U64(stats.gmem_bytes)),
                    ]),
                });
            }
            EventKind::Htod { bytes } => {
                trace.push_span(Span {
                    name: "htod".to_string(),
                    cat: "xfer".to_string(),
                    tid,
                    ts_us: clock,
                    dur_us: ev.modeled_us,
                    args: tag(vec![("bytes".to_string(), ArgValue::U64(*bytes))]),
                });
            }
            EventKind::Dtoh { bytes } => {
                trace.push_span(Span {
                    name: "dtoh".to_string(),
                    cat: "xfer".to_string(),
                    tid,
                    ts_us: clock,
                    dur_us: ev.modeled_us,
                    args: tag(vec![("bytes".to_string(), ArgValue::U64(*bytes))]),
                });
            }
            EventKind::Alloc { bytes } => {
                trace.push_instant(InstantEvent {
                    name: "alloc".to_string(),
                    cat: "mem".to_string(),
                    tid,
                    ts_us: clock,
                    args: tag(vec![("bytes".to_string(), ArgValue::U64(*bytes))]),
                });
            }
            EventKind::Fault { desc, op } => {
                trace.push_instant(InstantEvent {
                    name: "fault".to_string(),
                    cat: "fault".to_string(),
                    tid,
                    ts_us: clock,
                    args: tag(vec![
                        ("desc".to_string(), ArgValue::Str(desc.clone())),
                        ("op".to_string(), ArgValue::U64(*op)),
                    ]),
                });
            }
            EventKind::Marker { desc } => {
                trace.push_instant(InstantEvent {
                    name: "marker".to_string(),
                    cat: "marker".to_string(),
                    tid,
                    ts_us: clock,
                    args: tag(vec![("desc".to_string(), ArgValue::Str(desc.clone()))]),
                });
            }
        }
        clock += ev.modeled_us;
    }
    clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LaunchStats;
    use crate::timeline::Event;
    use crate::timing::KernelTiming;

    fn timeline_with_mixed_events() -> Timeline {
        let mut tl = Timeline::default();
        tl.push(Event {
            kind: EventKind::Alloc { bytes: 4096 },
            modeled_us: 0.0,
            wall_us: 1.0,
        });
        tl.push(Event {
            kind: EventKind::Htod { bytes: 1024 },
            modeled_us: 5.0,
            wall_us: 2.0,
        });
        tl.push(Event {
            kind: EventKind::Kernel {
                name: "fwd_sweep",
                grid: 2,
                block: 128,
                stats: LaunchStats::default(),
                timing: KernelTiming::default(),
            },
            modeled_us: 10.0,
            wall_us: 99.0,
        });
        tl.note("breaker closed→open");
        tl.push(Event {
            kind: EventKind::Dtoh { bytes: 8 },
            modeled_us: 1.5,
            wall_us: 0.5,
        });
        tl
    }

    #[test]
    fn spans_are_gap_free_on_the_modeled_clock() {
        let tl = timeline_with_mixed_events();
        let mut trace = Trace::new();
        let end = export_timeline_spans(&tl, &mut trace, 100.0);
        assert!((end - 116.5).abs() < 1e-12);
        // Two transfers + one kernel become spans; alloc + marker instants.
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.instants.len(), 2);
        assert_eq!(trace.spans[0].ts_us, 100.0); // htod after zero-cost alloc
        assert_eq!(trace.spans[1].ts_us, 105.0);
        assert_eq!(trace.spans[1].name, "fwd_sweep");
        assert_eq!(trace.spans[2].ts_us, 115.0); // marker is zero-width
        // Wall time must never leak into the trace.
        let total: f64 = trace.spans.iter().map(|s| s.dur_us).sum();
        assert!((total - tl.total_modeled_us()).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_exports_nothing_but_names_the_track() {
        let tl = Timeline::default();
        let mut trace = Trace::new();
        let end = export_timeline_spans(&tl, &mut trace, 42.5);
        // No events → no spans, no instants, and the clock is returned
        // unchanged so callers can keep chaining exports.
        assert_eq!(end, 42.5);
        assert!(trace.spans.is_empty());
        assert!(trace.instants.is_empty());
        // The device track is still named, so an empty export yields a
        // loadable (if blank) Chrome trace rather than an anonymous tid.
        assert!(trace
            .thread_names
            .iter()
            .any(|(t, n)| *t == Trace::TID_DEVICE && n == "device (modeled)"));
    }

    #[test]
    fn device_tagged_timeline_labels_track_and_events() {
        let mut tl = timeline_with_mixed_events();
        tl.set_device(2);
        let mut trace = Trace::new();
        export_timeline_spans_to(&tl, &mut trace, 0.0, 7);
        assert!(trace
            .thread_names
            .iter()
            .any(|(t, n)| *t == 7 && n == "device 2 (modeled)"));
        // Every exported span and instant carries the device ordinal.
        let tagged = |args: &[(String, ArgValue)]| {
            args.iter()
                .any(|(k, v)| k == "device" && matches!(v, ArgValue::U64(2)))
        };
        assert!(trace.spans.iter().all(|s| s.tid == 7 && tagged(&s.args)));
        assert!(trace.instants.iter().all(|i| i.tid == 7 && tagged(&i.args)));
    }

    #[test]
    fn export_matches_breakdown_totals() {
        let tl = timeline_with_mixed_events();
        let mut trace = Trace::new();
        export_timeline_spans(&tl, &mut trace, 0.0);
        let b = tl.breakdown();
        assert!((trace.total_us_in_cat("kernel") - b.kernel_us).abs() < 1e-12);
        assert!(
            (trace.total_us_in_cat("xfer") - (b.htod_us + b.dtoh_us)).abs() < 1e-12
        );
    }
}
