//! Deterministic fault injection for the simulated device.
//!
//! Real GPU deployments see allocation failures, transient launch
//! errors, in-flight transfer corruption, resident-memory bit flips
//! (ECC-less parts) and outright device loss. This module gives the
//! simulator the same failure surface, but *replayable*: a [`FaultPlan`]
//! is a pure function of `(seed, operation index)` driven by the
//! in-repo [`rng`] crate, so a faulty run can be reproduced bit-for-bit
//! from its seed.
//!
//! ## Model
//!
//! Every device operation (`try_alloc`, `try_htod`, `try_dtoh`,
//! `try_launch`) consumes one *op index* from the armed plan and asks it
//! for a fault decision at that index. The op counter lives behind an
//! `Arc` shared by every clone of the plan, so a supervisor that
//! retries an attempt on a fresh [`crate::Device`] continues the op
//! stream instead of replaying the identical fault forever.
//!
//! Injected faults are either *loud* (the op returns a
//! [`DeviceError`]: [`FaultKind::AllocOom`], [`FaultKind::LaunchFailure`],
//! [`FaultKind::DeviceLost`]) or *silent* data corruption the caller
//! must detect itself ([`FaultKind::TransferCorruption`],
//! [`FaultKind::BufferBitFlip`]). Silent flips are biased into the
//! exponent bits (52..=62) of each 8-byte word so corruption is
//! catastrophic rather than subtle — the regime a residual-spike
//! detector can reliably catch, mirroring the high-order-bit upsets
//! that dominate real soft-error studies.
//!
//! Seeded plans never corrupt device→host read-backs: the read path on
//! real parts is protected end-to-end (link CRC + ECC reads), whereas
//! writes can land corrupted in unprotected DRAM. Scripted plans may
//! still place [`FaultKind::TransferCorruption`] on a dtoh op
//! explicitly.
//!
//! ## Compound faults (storms)
//!
//! Single seeded pinpricks under-model production incidents. A
//! [`StormSchedule`] layers *correlated* compound faults over a base
//! plan: burst windows of elevated fault rate, corruption-under-load
//! ramps, and cross-device kill windows keyed off
//! [`crate::Device::ordinal`] — the same schedule cloned onto every
//! fleet device loses the listed ordinals in the same op window, then
//! lets them recover. Storm decisions stay pure functions of
//! `(storm seed, ordinal, op, site)`, so storm runs replay
//! byte-identically too.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rng::{Rng, SplitMix64};

/// Which device entry point a fault decision is being made for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// `try_alloc` / the allocation half of `try_alloc_from`.
    Alloc,
    /// Host→device transfer.
    Htod,
    /// Device→host transfer.
    Dtoh,
    /// Kernel launch.
    Launch,
}

impl FaultSite {
    /// Short site label used in timeline events and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Alloc => "alloc",
            FaultSite::Htod => "htod",
            FaultSite::Dtoh => "dtoh",
            FaultSite::Launch => "launch",
        }
    }
}

/// An injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The allocation reports out-of-memory (transient: a later retry
    /// draws a new op index and normally succeeds).
    AllocOom,
    /// The launch fails before the kernel runs (transient).
    LaunchFailure,
    /// One exponent-range bit of the transferred data is flipped in
    /// flight. Silent: the transfer itself "succeeds".
    TransferCorruption,
    /// One bit of a resident device buffer is flipped at launch time.
    /// Silent. The raw `buffer`/`word` values are reduced modulo the
    /// live-allocation registry by the device when applied.
    BufferBitFlip {
        /// Selects which live allocation is hit (modulo live count).
        buffer: u64,
        /// Selects the 8-byte word within it (modulo word count).
        word: u64,
        /// Bit within the word; seeded plans draw from 52..=62.
        bit: u32,
    },
    /// The device falls off the bus. Sticky: every subsequent op fails
    /// with [`DeviceError::DeviceLost`].
    DeviceLost {
        /// Op index at which the device was lost.
        at_op: u64,
    },
}

impl FaultKind {
    /// Short kind label used in timeline events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::AllocOom => "alloc-oom",
            FaultKind::LaunchFailure => "launch-failure",
            FaultKind::TransferCorruption => "transfer-corruption",
            FaultKind::BufferBitFlip { .. } => "bit-flip",
            FaultKind::DeviceLost { .. } => "device-lost",
        }
    }

    /// Whether this fault kind can fire at the given site.
    fn applies_at(&self, site: FaultSite) -> bool {
        match self {
            FaultKind::AllocOom => site == FaultSite::Alloc,
            FaultKind::LaunchFailure | FaultKind::BufferBitFlip { .. } => {
                site == FaultSite::Launch
            }
            FaultKind::TransferCorruption => {
                matches!(site, FaultSite::Htod | FaultSite::Dtoh)
            }
            FaultKind::DeviceLost { .. } => true,
        }
    }
}

/// One injected fault, as recorded by the device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Device op index at which the fault fired.
    pub op: u64,
    /// The entry point it fired in.
    pub site: FaultSite,
    /// What was injected.
    pub kind: FaultKind,
}

/// Error returned by the fallible device API (`try_alloc` / `try_htod`
/// / `try_dtoh` / `try_launch`).
///
/// The `Display` strings of [`DeviceError::TransferSize`] and
/// [`DeviceError::Launch`] reproduce the historical panic messages, so
/// the infallible wrappers (which panic with `{err}`) keep their
/// long-standing `#[should_panic]` contracts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The allocation would exceed device memory (or an
    /// [`FaultKind::AllocOom`] was injected).
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently allocated.
        in_use: u64,
        /// Device capacity ([`crate::DeviceProps::global_mem_bytes`]).
        capacity: u64,
    },
    /// Host/device length mismatch on a transfer.
    TransferSize {
        /// Host slice length, elements.
        host: usize,
        /// Device buffer length, elements.
        device: usize,
    },
    /// Launch-geometry violation or injected launch failure.
    Launch {
        /// Human-readable reason, e.g. `empty grid`.
        reason: String,
    },
    /// The device was lost; every subsequent op fails the same way.
    DeviceLost {
        /// Op index at which the device was lost.
        at_op: u64,
    },
    /// A checked transfer's CRC64s disagreed: the payload was corrupted
    /// in flight ([`crate::Device::try_htod_checked`] /
    /// [`crate::Device::try_dtoh_checked`]). Retryable — the recovery
    /// layer re-issues the transfer before escalating.
    TransferCorrupted {
        /// Which transfer direction was corrupted.
        site: FaultSite,
        /// CRC64 of the payload on the sending side.
        expected: u64,
        /// CRC64 observed on the receiving side.
        actual: u64,
    },
    /// A guarded allocation's canary words were overwritten
    /// ([`crate::Device::audit_canaries`]).
    CanarySmashed {
        /// Id of the buffer whose guard frame was hit.
        buffer: u32,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, in_use, capacity } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use} B of {capacity} B in use"
            ),
            DeviceError::TransferSize { host, device } => {
                write!(f, "htod length mismatch: host {host} vs device {device}")
            }
            DeviceError::Launch { reason } => write!(f, "launch failure: {reason}"),
            DeviceError::DeviceLost { at_op } => write!(f, "device lost (op {at_op})"),
            DeviceError::TransferCorrupted { site, expected, actual } => write!(
                f,
                "transfer corrupted ({}): crc {expected:#018x} != {actual:#018x}",
                site.label()
            ),
            DeviceError::CanarySmashed { buffer } => {
                write!(f, "canary smashed: buffer {buffer} guard words overwritten")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// A deterministic compound-fault schedule layered on top of a
/// [`FaultPlan`]'s base rate — the *storm* model.
///
/// Production failure modes are correlated, not single pinpricks: a rack
/// power event kills several devices in the same instant, and corruption
/// rates climb with link load. A `StormSchedule` expresses those as pure
/// functions of `(storm seed, device ordinal, op index, site)`:
///
/// * **Burst windows** — a flat elevated fault rate over an op range.
/// * **Corruption ramps** — the rate climbs linearly from zero to a peak
///   across the window (corruption-under-load).
/// * **Correlated kills** — every device whose
///   [`crate::Device::ordinal`] is listed is lost for the op window,
///   then recovers (a fresh device instance past the window serves
///   again) — the rack-event analog the fleet's rejoin probes must
///   survive.
///
/// One schedule is cloned onto every device's plan; kills correlate
/// exactly (same windows), while burst/ramp decisions decorrelate per
/// ordinal so devices don't corrupt in lockstep. Like the base plan,
/// Dtoh read-backs are never corrupted by seeded storm decisions.
#[derive(Clone, Debug, Default)]
pub struct StormSchedule {
    seed: u64,
    bursts: Vec<Burst>,
    ramps: Vec<Burst>,
    kills: Vec<KillWindow>,
}

#[derive(Clone, Copy, Debug)]
struct Burst {
    from_op: u64,
    len_ops: u64,
    rate: f64,
}

#[derive(Clone, Debug)]
struct KillWindow {
    from_op: u64,
    until_op: u64,
    ordinals: Vec<u32>,
}

impl StormSchedule {
    /// An empty schedule drawing its burst/ramp decisions from `seed`.
    pub fn new(seed: u64) -> Self {
        StormSchedule { seed, ..StormSchedule::default() }
    }

    /// Adds a burst window: ops in `[from_op, from_op + len_ops)` fault
    /// at `rate` (a probability) regardless of the base plan's rate.
    pub fn with_burst(mut self, from_op: u64, len_ops: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate) && rate.is_finite(), "burst rate {rate} not a probability");
        self.bursts.push(Burst { from_op, len_ops, rate });
        self
    }

    /// Adds a corruption-under-load ramp: across the window the fault
    /// rate climbs linearly from 0 to `peak_rate`.
    pub fn with_corruption_ramp(mut self, from_op: u64, len_ops: u64, peak_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&peak_rate) && peak_rate.is_finite(),
            "ramp peak {peak_rate} not a probability"
        );
        self.ramps.push(Burst { from_op, len_ops, rate: peak_rate });
        self
    }

    /// Adds a correlated kill: every listed ordinal is device-lost for
    /// ops in `[from_op, until_op)` and recovers after the window.
    pub fn with_correlated_kill(
        mut self,
        from_op: u64,
        until_op: u64,
        ordinals: impl IntoIterator<Item = u32>,
    ) -> Self {
        assert!(from_op < until_op, "kill window must be non-empty");
        self.kills.push(KillWindow { from_op, until_op, ordinals: ordinals.into_iter().collect() });
        self
    }

    /// The seed of the storm's burst/ramp decision stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The storm's elevated fault rate at `op` (0 outside all windows).
    pub fn rate_at(&self, op: u64) -> f64 {
        let burst = self
            .bursts
            .iter()
            .filter(|b| b.active(op))
            .map(|b| b.rate)
            .fold(0.0f64, f64::max);
        let ramp = self
            .ramps
            .iter()
            .filter(|r| r.active(op))
            .map(|r| r.rate * ((op - r.from_op) + 1) as f64 / r.len_ops as f64)
            .fold(0.0f64, f64::max);
        burst.max(ramp)
    }

    /// True when `ordinal` is inside an active kill window at `op`.
    pub fn kills_at(&self, ordinal: u32, op: u64) -> bool {
        self.kills
            .iter()
            .any(|k| op >= k.from_op && op < k.until_op && k.ordinals.contains(&ordinal))
    }

    /// The storm's fault decision (pure in `(seed, ordinal, op, site)`).
    /// Kills take precedence; burst/ramp decisions follow the base
    /// plan's site model and never corrupt Dtoh.
    pub fn decide(&self, ordinal: u32, op: u64, site: FaultSite) -> Option<FaultKind> {
        if self.kills_at(ordinal, op) {
            return Some(FaultKind::DeviceLost { at_op: op });
        }
        let rate = self.rate_at(op);
        if rate <= 0.0 {
            return None;
        }
        let mut g = FaultPlan::stream(
            self.seed ^ (u64::from(ordinal) + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93),
            op,
        );
        if g.gen_f64() >= rate {
            return None;
        }
        match site {
            FaultSite::Alloc => Some(FaultKind::AllocOom),
            FaultSite::Htod => Some(FaultKind::TransferCorruption),
            FaultSite::Dtoh => None,
            FaultSite::Launch => Some(if g.gen_bool(0.25) {
                FaultKind::LaunchFailure
            } else {
                FaultKind::BufferBitFlip {
                    buffer: g.next_u64(),
                    word: g.next_u64(),
                    bit: 52 + (g.next_u64() % 11) as u32,
                }
            }),
        }
    }
}

impl Burst {
    fn active(&self, op: u64) -> bool {
        op >= self.from_op && op - self.from_op < self.len_ops
    }
}

/// A seeded, replayable schedule of injected faults.
///
/// Clones share one op counter (see the module docs), so a plan handed
/// to successive device instances continues — never restarts — its op
/// stream. Two plans built from the same seed produce byte-identical
/// fault sequences for identical op sequences.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    scripted: BTreeMap<u64, FaultKind>,
    storm: Option<StormSchedule>,
    ordinal: Option<u32>,
    ops: Arc<AtomicU64>,
}

impl FaultPlan {
    /// A plan that injects random recoverable faults at the given
    /// per-op probability. Seeded plans never inject
    /// [`FaultKind::DeviceLost`]; script one with
    /// [`FaultPlan::with_fault_at`] when loss is wanted.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate) && rate.is_finite(),
            "fault rate must be a probability, got {rate}"
        );
        FaultPlan {
            seed,
            rate,
            scripted: BTreeMap::new(),
            storm: None,
            ordinal: None,
            ops: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A purely scripted plan: faults fire at exactly the given op
    /// indices (when site-compatible) and nowhere else.
    pub fn scripted(entries: impl IntoIterator<Item = (u64, FaultKind)>) -> Self {
        let mut plan = FaultPlan::seeded(0, 0.0);
        plan.scripted = entries.into_iter().collect();
        plan
    }

    /// Adds a scripted fault at the given op index on top of the
    /// existing schedule.
    pub fn with_fault_at(mut self, op: u64, kind: FaultKind) -> Self {
        self.scripted.insert(op, kind);
        self
    }

    /// Layers a [`StormSchedule`] over the base rate: inside a storm
    /// window the storm's decision wins (after scripted faults).
    pub fn with_storm(mut self, storm: StormSchedule) -> Self {
        self.storm = Some(storm);
        self
    }

    /// Binds the plan to a device ordinal explicitly — the key storm
    /// kill windows correlate on. Without an explicit binding,
    /// [`crate::Device::arm_faults`] stamps the device's own ordinal.
    pub fn with_ordinal(mut self, ordinal: u32) -> Self {
        self.ordinal = Some(ordinal);
        self
    }

    /// Stamps the ordinal only if none was bound explicitly.
    pub(crate) fn bind_ordinal(&mut self, ordinal: u32) {
        self.ordinal.get_or_insert(ordinal);
    }

    /// The ordinal storm decisions key off (0 when unbound).
    pub fn ordinal(&self) -> u32 {
        self.ordinal.unwrap_or(0)
    }

    /// The layered storm schedule, if any.
    pub fn storm(&self) -> Option<&StormSchedule> {
        self.storm.as_ref()
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-op fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Ops consumed so far across every device this plan (or a clone of
    /// it) has been armed on.
    pub fn ops_started(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Claims the next op index from the shared counter.
    pub(crate) fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::Relaxed)
    }

    /// The fault (if any) scheduled for op `op` at `site`. Pure: equal
    /// `(seed, op, site)` always decide identically.
    pub fn decide(&self, op: u64, site: FaultSite) -> Option<FaultKind> {
        if let Some(kind) = self.scripted.get(&op) {
            if kind.applies_at(site) {
                return Some(match kind {
                    FaultKind::DeviceLost { .. } => FaultKind::DeviceLost { at_op: op },
                    other => other.clone(),
                });
            }
        }
        if let Some(kind) = self.storm.as_ref().and_then(|s| s.decide(self.ordinal(), op, site)) {
            return Some(kind);
        }
        if self.rate <= 0.0 {
            return None;
        }
        let mut g = Self::stream(self.seed, op);
        if g.gen_f64() >= self.rate {
            return None;
        }
        match site {
            FaultSite::Alloc => Some(FaultKind::AllocOom),
            FaultSite::Htod => Some(FaultKind::TransferCorruption),
            // Read-backs are CRC/ECC-protected end-to-end (module docs).
            FaultSite::Dtoh => None,
            FaultSite::Launch => Some(if g.gen_bool(0.25) {
                FaultKind::LaunchFailure
            } else {
                FaultKind::BufferBitFlip {
                    buffer: g.next_u64(),
                    word: g.next_u64(),
                    bit: 52 + (g.next_u64() % 11) as u32,
                }
            }),
        }
    }

    /// Byte/bit target for a [`FaultKind::TransferCorruption`] on a
    /// buffer of `bytes` bytes: `(byte offset, bit within byte)`,
    /// exponent-biased per the module docs. `None` for empty buffers.
    pub(crate) fn flip_target(&self, op: u64, bytes: u64) -> Option<(u64, u32)> {
        if bytes == 0 {
            return None;
        }
        let mut g = Self::stream(self.seed ^ 0xC0DE_F11Bu64, op);
        Some(word_flip_target(g.next_u64(), 52 + (g.next_u64() % 11) as u32, bytes))
    }

    fn stream(seed: u64, op: u64) -> SplitMix64 {
        SplitMix64::new(seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Reduces a raw `(word, bit)` draw to a concrete `(byte offset, bit in
/// byte)` inside a `bytes`-sized allocation, keeping the exponent bias
/// for allocations of at least one 8-byte word.
pub(crate) fn word_flip_target(word: u64, bit: u32, bytes: u64) -> (u64, u32) {
    if bytes >= 8 {
        let w = word % (bytes / 8);
        let b = bit % 64;
        (w * 8 + u64::from(b / 8), b % 8)
    } else {
        (word % bytes, bit % 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_byte_identically() {
        let sites =
            [FaultSite::Alloc, FaultSite::Htod, FaultSite::Launch, FaultSite::Dtoh];
        let a = FaultPlan::seeded(42, 0.05);
        let b = FaultPlan::seeded(42, 0.05);
        for op in 0..5000u64 {
            let site = sites[(op % 4) as usize];
            assert_eq!(a.decide(op, site), b.decide(op, site), "op {op}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 0.05);
        let b = FaultPlan::seeded(2, 0.05);
        let differs = (0..5000u64)
            .any(|op| a.decide(op, FaultSite::Launch) != b.decide(op, FaultSite::Launch));
        assert!(differs, "independent seeds must give different schedules");
    }

    #[test]
    fn rate_controls_frequency_and_zero_is_silent() {
        let silent = FaultPlan::seeded(7, 0.0);
        assert!((0..1000u64).all(|op| silent.decide(op, FaultSite::Launch).is_none()));

        let noisy = FaultPlan::seeded(7, 0.1);
        let hits =
            (0..10_000u64).filter(|&op| noisy.decide(op, FaultSite::Launch).is_some()).count();
        assert!((700..1300).contains(&hits), "≈10% of ops should fault, got {hits}");
    }

    #[test]
    fn seeded_plans_never_lose_the_device_and_never_corrupt_dtoh() {
        let plan = FaultPlan::seeded(9, 0.5);
        for op in 0..20_000u64 {
            for site in [FaultSite::Alloc, FaultSite::Htod, FaultSite::Dtoh, FaultSite::Launch] {
                match plan.decide(op, site) {
                    Some(FaultKind::DeviceLost { .. }) => panic!("seeded loss at op {op}"),
                    Some(_) if site == FaultSite::Dtoh => panic!("dtoh fault at op {op}"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn seeded_bit_flips_stay_in_the_exponent_range() {
        let plan = FaultPlan::seeded(3, 0.9);
        let mut seen = 0;
        for op in 0..2000u64 {
            if let Some(FaultKind::BufferBitFlip { bit, .. }) = plan.decide(op, FaultSite::Launch)
            {
                assert!((52..=62).contains(&bit), "bit {bit} outside exponent range");
                seen += 1;
            }
        }
        assert!(seen > 100, "expected many flips at rate 0.9, saw {seen}");
    }

    #[test]
    fn scripted_faults_fire_only_at_their_op_and_site() {
        let plan = FaultPlan::scripted([
            (3, FaultKind::LaunchFailure),
            (5, FaultKind::DeviceLost { at_op: 0 }),
        ]);
        assert_eq!(plan.decide(3, FaultSite::Launch), Some(FaultKind::LaunchFailure));
        assert_eq!(plan.decide(3, FaultSite::Alloc), None, "site-incompatible");
        assert_eq!(plan.decide(4, FaultSite::Launch), None);
        // DeviceLost applies anywhere and reports its own op index.
        assert_eq!(plan.decide(5, FaultSite::Htod), Some(FaultKind::DeviceLost { at_op: 5 }));
    }

    #[test]
    fn clones_share_the_op_counter() {
        let plan = FaultPlan::seeded(1, 0.0);
        let clone = plan.clone();
        plan.next_op();
        clone.next_op();
        assert_eq!(plan.ops_started(), 2);
        // A fresh plan with the same seed starts over.
        assert_eq!(FaultPlan::seeded(1, 0.0).ops_started(), 0);
    }

    #[test]
    fn a_mid_stream_clone_continues_not_restarts_the_fault_stream() {
        // Regression pin: a supervisor that hands plan.clone() to a
        // fresh device mid-run must continue the op stream. If cloning
        // re-anchored the op origin, the scripted fault at op 3 would
        // fire at the clone's *first* op instead of its fourth.
        let plan = FaultPlan::scripted([(3, FaultKind::AllocOom)]);
        let mut first = crate::Device::with_workers(crate::DeviceProps::paper_rig(), 1);
        first.arm_faults(plan.clone());
        let _a = first.try_alloc::<u32>(1).expect("op 0 clean");
        let _b = first.try_alloc::<u32>(1).expect("op 1 clean");
        let _c = first.try_alloc::<u32>(1).expect("op 2 clean");

        let mut second = crate::Device::with_workers(crate::DeviceProps::paper_rig(), 1);
        second.arm_faults(plan.clone());
        let err = second.try_alloc::<u32>(1).expect_err("op 3 must continue the stream");
        assert!(matches!(err, DeviceError::OutOfMemory { .. }), "{err}");
        second.try_alloc::<u32>(1).expect("op 4 clean");
        assert_eq!(plan.ops_started(), 5, "both devices drew from one shared stream");
    }

    #[test]
    fn storm_bursts_elevate_only_their_window() {
        let storm = StormSchedule::new(5).with_burst(100, 50, 1.0);
        let plan = FaultPlan::seeded(0, 0.0).with_storm(storm);
        assert!((0..100u64).all(|op| plan.decide(op, FaultSite::Htod).is_none()));
        assert!((150..300u64).all(|op| plan.decide(op, FaultSite::Htod).is_none()));
        let hits =
            (100..150u64).filter(|&op| plan.decide(op, FaultSite::Htod).is_some()).count();
        assert_eq!(hits, 50, "rate-1.0 burst must corrupt every htod in its window");
        // Read-backs stay protected even at rate 1.0.
        assert!((100..150u64).all(|op| plan.decide(op, FaultSite::Dtoh).is_none()));
    }

    #[test]
    fn corruption_ramps_climb_toward_the_peak() {
        let storm = StormSchedule::new(9).with_corruption_ramp(0, 1000, 0.8);
        let early: f64 = storm.rate_at(10);
        let late: f64 = storm.rate_at(990);
        assert!(early < 0.02, "early ramp rate should be near zero, got {early}");
        assert!((0.75..=0.8).contains(&late), "late ramp rate should near the peak, got {late}");
        assert_eq!(storm.rate_at(1000), 0.0, "ramp ends with its window");
        let plan = FaultPlan::seeded(0, 0.0).with_storm(storm);
        let first_half =
            (0..500u64).filter(|&op| plan.decide(op, FaultSite::Htod).is_some()).count();
        let second_half =
            (500..1000u64).filter(|&op| plan.decide(op, FaultSite::Htod).is_some()).count();
        assert!(
            second_half > 2 * first_half,
            "corruption under load must intensify: {first_half} then {second_half}"
        );
    }

    #[test]
    fn correlated_kills_hit_exactly_the_listed_ordinals_and_lift() {
        let storm = StormSchedule::new(1).with_correlated_kill(10, 20, [1, 3]);
        for ordinal in [1u32, 3] {
            let plan =
                FaultPlan::seeded(0, 0.0).with_storm(storm.clone()).with_ordinal(ordinal);
            assert_eq!(plan.decide(9, FaultSite::Launch), None);
            assert_eq!(
                plan.decide(10, FaultSite::Launch),
                Some(FaultKind::DeviceLost { at_op: 10 })
            );
            assert_eq!(
                plan.decide(19, FaultSite::Alloc),
                Some(FaultKind::DeviceLost { at_op: 19 }),
                "kills apply at every site"
            );
            assert_eq!(plan.decide(20, FaultSite::Launch), None, "the window lifts");
        }
        let bystander = FaultPlan::seeded(0, 0.0).with_storm(storm).with_ordinal(2);
        assert!((0..40u64).all(|op| bystander.decide(op, FaultSite::Launch).is_none()));
    }

    #[test]
    fn storm_decisions_decorrelate_across_ordinals_but_replay_identically() {
        let storm = StormSchedule::new(77).with_burst(0, 2000, 0.3);
        let decisions = |ordinal: u32| -> Vec<bool> {
            let plan =
                FaultPlan::seeded(0, 0.0).with_storm(storm.clone()).with_ordinal(ordinal);
            (0..2000u64).map(|op| plan.decide(op, FaultSite::Htod).is_some()).collect()
        };
        assert_eq!(decisions(0), decisions(0), "same ordinal replays identically");
        assert_ne!(decisions(0), decisions(1), "distinct ordinals decorrelate");
    }

    #[test]
    fn flip_targets_are_in_bounds() {
        let plan = FaultPlan::seeded(11, 1.0);
        for op in 0..500u64 {
            for bytes in [1u64, 4, 8, 16, 8000] {
                let (byte, bit) = plan.flip_target(op, bytes).unwrap();
                assert!(byte < bytes, "byte {byte} out of {bytes}");
                assert!(bit < 8);
            }
        }
        assert_eq!(plan.flip_target(0, 0), None);
    }

    #[test]
    fn device_error_display_preserves_legacy_panic_messages() {
        let e = DeviceError::TransferSize { host: 3, device: 2 };
        assert_eq!(e.to_string(), "htod length mismatch: host 3 vs device 2");
        let e = DeviceError::Launch { reason: "empty grid".into() };
        assert_eq!(e.to_string(), "launch failure: empty grid");
        let e = DeviceError::DeviceLost { at_op: 17 };
        assert_eq!(e.to_string(), "device lost (op 17)");
        let e = DeviceError::TransferCorrupted { site: FaultSite::Htod, expected: 1, actual: 2 };
        assert_eq!(
            e.to_string(),
            "transfer corrupted (htod): crc 0x0000000000000001 != 0x0000000000000002"
        );
        let e = DeviceError::CanarySmashed { buffer: 12 };
        assert_eq!(e.to_string(), "canary smashed: buffer 12 guard words overwritten");
    }
}
