//! Device and host hardware descriptions used by the timing model.
//!
//! The simulator executes kernels *functionally* on host threads; the
//! structs here only parameterise the *clock* — how many microseconds a
//! launch, transfer or sweep is modeled to take. All presets are plain
//! constants so experiments are reproducible bit-for-bit.

/// Properties of the simulated CUDA-class device.
///
/// Defaults and presets are loosely modeled on publicly documented specs
/// of 2016–2020 NVIDIA parts (the paper's era). The `paper_rig` preset is
/// the calibrated configuration used by the reproduction experiments; see
/// `EXPERIMENTS.md` for the calibration procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProps {
    /// Marketing-style name recorded in reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every NVIDIA part to date).
    pub warp_size: u32,
    /// Hard per-block thread limit (1024 on paper-era parts).
    pub max_threads_per_block: u32,
    /// Resident-block limit per SM.
    pub max_blocks_per_sm: u32,
    /// Resident-thread limit per SM.
    pub max_threads_per_sm: u32,
    /// Shared-memory limit per block, bytes.
    pub shared_mem_per_block: u32,
    /// Shared-memory capacity per SM, bytes (bounds occupancy).
    pub shared_mem_per_sm: u32,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Floating-point lanes per SM that the kernels' tallied flops are
    /// issued over (flops per cycle per SM).
    pub fp_lanes_per_sm: u32,
    /// Device-memory bandwidth, GB/s (10⁹ bytes).
    pub mem_bandwidth_gbps: f64,
    /// Device-memory round-trip latency, core cycles.
    pub mem_latency_cycles: f64,
    /// Fixed host-side cost of one kernel launch, µs.
    pub launch_overhead_us: f64,
    /// Effective host↔device interconnect bandwidth, GB/s.
    pub pcie_bandwidth_gbps: f64,
    /// Fixed per-transfer interconnect latency, µs.
    pub pcie_latency_us: f64,
    /// Modeled cost of one `__syncthreads()`-style phase boundary, cycles.
    pub barrier_cycles: f64,
    /// Device-memory capacity, bytes. Allocations are accounted against
    /// this and fail with `DeviceError::OutOfMemory` once exceeded.
    pub global_mem_bytes: u64,
}

impl DeviceProps {
    /// Mid-range Pascal-era GeForce: GTX 1060-class.
    pub fn gtx_1060() -> Self {
        DeviceProps {
            name: "sim-gtx1060",
            num_sms: 10,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 96 * 1024,
            clock_ghz: 1.70,
            fp_lanes_per_sm: 128,
            mem_bandwidth_gbps: 192.0,
            mem_latency_cycles: 400.0,
            launch_overhead_us: 5.0,
            pcie_bandwidth_gbps: 11.0,
            pcie_latency_us: 10.0,
            barrier_cycles: 40.0,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
        }
    }

    /// High-end Pascal GeForce: GTX 1080 Ti-class.
    pub fn gtx_1080_ti() -> Self {
        DeviceProps {
            name: "sim-gtx1080ti",
            num_sms: 28,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 96 * 1024,
            clock_ghz: 1.58,
            fp_lanes_per_sm: 128,
            mem_bandwidth_gbps: 484.0,
            mem_latency_cycles: 400.0,
            launch_overhead_us: 5.0,
            pcie_bandwidth_gbps: 12.0,
            pcie_latency_us: 8.0,
            barrier_cycles: 40.0,
            global_mem_bytes: 11 * 1024 * 1024 * 1024,
        }
    }

    /// Embedded Jetson TX2-class part (small SM count, shared DRAM).
    pub fn jetson_tx2() -> Self {
        DeviceProps {
            name: "sim-jetson-tx2",
            num_sms: 2,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 64 * 1024,
            clock_ghz: 1.30,
            fp_lanes_per_sm: 128,
            mem_bandwidth_gbps: 58.0,
            mem_latency_cycles: 400.0,
            launch_overhead_us: 12.0,
            pcie_bandwidth_gbps: 8.0,
            pcie_latency_us: 12.0,
            barrier_cycles: 40.0,
            global_mem_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// The calibrated reproduction rig (see EXPERIMENTS.md §Calibration).
    ///
    /// Chosen so the E1 total-speedup curve over balanced binary trees
    /// matches the abstract's shape: transfer/launch-bound below ~8K
    /// nodes, rising to ≈4× total speedup at 256K nodes.
    pub fn paper_rig() -> Self {
        DeviceProps {
            name: "sim-paper-rig",
            num_sms: 20,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 96 * 1024,
            clock_ghz: 1.60,
            fp_lanes_per_sm: 128,
            mem_bandwidth_gbps: 320.0,
            mem_latency_cycles: 420.0,
            launch_overhead_us: 5.0,
            pcie_bandwidth_gbps: 12.0,
            pcie_latency_us: 8.0,
            barrier_cycles: 40.0,
            global_mem_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Core cycles per microsecond.
    #[inline]
    pub fn cycles_per_us(&self) -> f64 {
        self.clock_ghz * 1e3
    }

    /// Device-memory bandwidth in bytes per microsecond.
    #[inline]
    pub fn mem_bytes_per_us(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e3
    }

    /// Interconnect bandwidth in bytes per microsecond.
    #[inline]
    pub fn pcie_bytes_per_us(&self) -> f64 {
        self.pcie_bandwidth_gbps * 1e3
    }

    /// Peak modeled flop throughput, flops per microsecond.
    #[inline]
    pub fn flops_per_us(&self) -> f64 {
        self.num_sms as f64 * self.fp_lanes_per_sm as f64 * self.cycles_per_us()
    }

    /// Resident blocks per SM for a given per-block thread count and
    /// shared-memory footprint (the occupancy bound used by the timing
    /// model).
    pub fn resident_blocks_per_sm(&self, threads_per_block: u32, shared_bytes: u32) -> u32 {
        let by_blocks = self.max_blocks_per_sm;
        let by_threads = self
            .max_threads_per_sm
            .checked_div(threads_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        let by_shared = self
            .shared_mem_per_sm
            .checked_div(shared_bytes)
            .unwrap_or(self.max_blocks_per_sm);
        by_blocks.min(by_threads).min(by_shared).max(1)
    }

    /// Validates internal consistency; returns a human-readable complaint
    /// for nonsensical configurations (used by tests and the CLI when the
    /// user supplies a custom rig).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("num_sms must be nonzero".into());
        }
        if self.warp_size == 0 || !self.warp_size.is_power_of_two() {
            return Err("warp_size must be a nonzero power of two".into());
        }
        if self.max_threads_per_block == 0 || self.max_threads_per_sm < self.max_threads_per_block {
            return Err("thread limits are inconsistent".into());
        }
        if self.shared_mem_per_sm < self.shared_mem_per_block {
            return Err("shared_mem_per_sm must be >= shared_mem_per_block".into());
        }
        for (v, name) in [
            (self.clock_ghz, "clock_ghz"),
            (self.mem_bandwidth_gbps, "mem_bandwidth_gbps"),
            (self.pcie_bandwidth_gbps, "pcie_bandwidth_gbps"),
        ] {
            if v <= 0.0 || v.is_nan() {
                return Err(format!("{name} must be positive"));
            }
        }
        if self.global_mem_bytes == 0 {
            return Err("global_mem_bytes must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for DeviceProps {
    fn default() -> Self {
        DeviceProps::paper_rig()
    }
}

/// Properties of the modeled host CPU, used to turn the serial solver's
/// tallied operation counts into a deterministic modeled runtime
/// comparable with the device model.
#[derive(Clone, Debug, PartialEq)]
pub struct HostProps {
    /// Name recorded in reports.
    pub name: &'static str,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Sustained scalar floating-point operations per cycle (accounts for
    /// superscalar issue minus dependency stalls; ~1–2 for pointer-chasing
    /// sweep code).
    pub flops_per_cycle: f64,
    /// Sustained memory bandwidth for the working set, GB/s. For working
    /// sets that spill out of LLC this is DRAM bandwidth achievable from
    /// one core (~10–15 GB/s on desktop parts of the era).
    pub mem_bandwidth_gbps: f64,
    /// Last-level-cache size, bytes; working sets below this use
    /// `cache_bandwidth_gbps` instead.
    pub llc_bytes: u64,
    /// Bandwidth when the working set fits in LLC, GB/s.
    pub cache_bandwidth_gbps: f64,
}

impl HostProps {
    /// Desktop CPU contemporary with the paper (Coffee Lake-class core).
    pub fn desktop_2019() -> Self {
        HostProps {
            name: "sim-desktop-2019",
            clock_ghz: 3.6,
            flops_per_cycle: 2.0,
            mem_bandwidth_gbps: 12.0,
            llc_bytes: 12 * 1024 * 1024,
            cache_bandwidth_gbps: 60.0,
        }
    }

    /// The calibrated reproduction host (pairs with
    /// [`DeviceProps::paper_rig`]).
    pub fn paper_rig() -> Self {
        HostProps {
            name: "sim-paper-host",
            clock_ghz: 3.5,
            flops_per_cycle: 2.0,
            mem_bandwidth_gbps: 13.0,
            llc_bytes: 8 * 1024 * 1024,
            cache_bandwidth_gbps: 55.0,
        }
    }

    /// Models the time, in µs, of a serial code region that performs
    /// `flops` floating-point operations over a working set of
    /// `bytes_touched` bytes (each byte counted once per pass).
    ///
    /// Roofline-style: the region takes the *max* of its compute time and
    /// its memory time. Effective bandwidth transitions smoothly from
    /// cache to DRAM speed as the working set grows past the LLC (between
    /// 1× and 4× the LLC the hit rate — and thus bandwidth — is
    /// interpolated on a log scale, avoiding an unphysical cliff).
    pub fn region_time_us(&self, flops: u64, bytes_touched: u64) -> f64 {
        self.region_time_us_ws(flops, bytes_touched, bytes_touched)
    }

    /// [`HostProps::region_time_us`] with an explicit *resident working
    /// set* governing the bandwidth choice. Iterative solvers that cycle
    /// over several arrays should pass the total state size here: once it
    /// spills the LLC, every pass streams from DRAM even though each pass
    /// touches only a subset.
    pub fn region_time_us_ws(&self, flops: u64, bytes_touched: u64, working_set: u64) -> f64 {
        let t_compute = flops as f64 / (self.clock_ghz * 1e3 * self.flops_per_cycle);
        let bw = self.effective_bandwidth_gbps(working_set);
        let t_mem = bytes_touched as f64 / (bw * 1e3);
        t_compute.max(t_mem)
    }

    /// Effective sequential bandwidth for a given working set, GB/s.
    pub fn effective_bandwidth_gbps(&self, working_set: u64) -> f64 {
        let llc = self.llc_bytes as f64;
        let ws = working_set as f64;
        if ws <= llc {
            self.cache_bandwidth_gbps
        } else if ws >= 4.0 * llc {
            self.mem_bandwidth_gbps
        } else {
            // Log-linear interpolation over the 1×..4× LLC transition.
            let t = (ws / llc).log2() / 2.0; // 0 at 1×, 1 at 4×
            self.cache_bandwidth_gbps * (self.mem_bandwidth_gbps / self.cache_bandwidth_gbps).powf(t)
        }
    }
}

impl Default for HostProps {
    fn default() -> Self {
        HostProps::paper_rig()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            DeviceProps::gtx_1060(),
            DeviceProps::gtx_1080_ti(),
            DeviceProps::jetson_tx2(),
            DeviceProps::paper_rig(),
            DeviceProps::default(),
        ] {
            p.validate().expect("preset should validate");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut p = DeviceProps::paper_rig();
        p.num_sms = 0;
        assert!(p.validate().is_err());

        let mut p = DeviceProps::paper_rig();
        p.warp_size = 31;
        assert!(p.validate().is_err());

        let mut p = DeviceProps::paper_rig();
        p.clock_ghz = 0.0;
        assert!(p.validate().is_err());

        let mut p = DeviceProps::paper_rig();
        p.shared_mem_per_sm = 1024;
        p.shared_mem_per_block = 48 * 1024;
        assert!(p.validate().is_err());

        let mut p = DeviceProps::paper_rig();
        p.global_mem_bytes = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn occupancy_bounds() {
        let p = DeviceProps::paper_rig();
        // Thread-limited: 1024-thread blocks → 2048/1024 = 2 resident.
        assert_eq!(p.resident_blocks_per_sm(1024, 0), 2);
        // Block-limited: tiny blocks hit the 32-block cap.
        assert_eq!(p.resident_blocks_per_sm(32, 0), 32);
        // Shared-memory-limited: 48 KiB blocks → 96/48 = 2 resident.
        assert_eq!(p.resident_blocks_per_sm(64, 48 * 1024), 2);
        // Never returns zero even for absurd footprints.
        assert_eq!(p.resident_blocks_per_sm(4096, 10 * 1024 * 1024), 1);
    }

    #[test]
    fn unit_conversions() {
        let p = DeviceProps::paper_rig();
        assert!((p.cycles_per_us() - 1600.0).abs() < 1e-9);
        assert!((p.mem_bytes_per_us() - 320_000.0).abs() < 1e-9);
        assert!((p.flops_per_us() - 20.0 * 128.0 * 1600.0).abs() < 1e-6);
    }

    #[test]
    fn host_region_time_roofline() {
        let h = HostProps::paper_rig();
        // Pure compute: 7000 flops at 7 flops/ns → 1 µs.
        let t = h.region_time_us(7_000, 0);
        assert!((t - 1.0).abs() < 1e-9);
        // Memory-bound far-out-of-cache region (≥ 4×LLC): 65 MB at
        // 13 GB/s → 5000 µs.
        let t = h.region_time_us(0, 65_000_000);
        assert!((t - 5000.0).abs() < 1e-6);
        // The LLC transition interpolates between the two bandwidths.
        let mid_bw = h.effective_bandwidth_gbps(2 * h.llc_bytes);
        assert!(mid_bw < h.cache_bandwidth_gbps && mid_bw > h.mem_bandwidth_gbps);
        // In-cache region uses the faster bandwidth.
        let small = h.region_time_us(0, 55_000);
        assert!((small - 1.0).abs() < 1e-6);
    }
}
