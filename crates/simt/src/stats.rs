//! Execution statistics gathered while kernels run.
//!
//! Every global/shared memory access and every tallied flop flows into a
//! [`LaunchStats`]; the timing model in [`crate::timing`] converts the
//! totals into modeled microseconds. Stats are gathered per block (no
//! cross-thread sharing while the kernel runs) and merged once at the end
//! of the launch, so collection adds no synchronization to the hot path.

use crate::buffer::BufId;

/// Size in bytes of one modeled global-memory transaction (the 128-byte
/// cache-line-sized segment the CUDA coalescer issues).
pub const TRANSACTION_BYTES: u64 = 128;

/// Aggregated statistics for one kernel launch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Blocks executed.
    pub blocks: u64,
    /// Threads executed (sum of block sizes; includes early-exit threads).
    pub threads: u64,
    /// Tallied floating-point operations.
    pub flops: u64,
    /// Global-memory load instructions (per thread, per access).
    pub gmem_loads: u64,
    /// Global-memory store instructions.
    pub gmem_stores: u64,
    /// Bytes requested by global loads+stores.
    pub gmem_bytes: u64,
    /// Modeled 128-byte transactions after per-warp coalescing.
    pub gmem_transactions: u64,
    /// Global-memory atomic operations (component ops; a complex
    /// atomic-add counts 2).
    pub gmem_atomics: u64,
    /// Sum over blocks of the per-phase max same-address atomic conflict
    /// count (the intra-block serialisation chain of the atomic unit).
    pub atomic_chain: u64,
    /// Shared-memory accesses (loads + stores).
    pub smem_accesses: u64,
    /// Barrier-delimited phases executed, summed over blocks.
    pub phases: u64,
    /// Sum over blocks of the per-block dependent-memory-access chain
    /// (Σ over phases of the max per-thread access count in that phase).
    /// Drives the latency term of the timing model.
    pub mem_chain: u64,
    /// Largest shared-memory footprint of any block, bytes.
    pub max_shared_bytes: u64,
    /// Largest block-dim seen (uniform in practice; kept for reporting).
    pub max_block_threads: u64,
}

impl LaunchStats {
    /// Merges another stats record into this one (per-worker fold).
    pub fn merge(&mut self, o: &LaunchStats) {
        self.blocks += o.blocks;
        self.threads += o.threads;
        self.flops += o.flops;
        self.gmem_loads += o.gmem_loads;
        self.gmem_stores += o.gmem_stores;
        self.gmem_bytes += o.gmem_bytes;
        self.gmem_transactions += o.gmem_transactions;
        self.gmem_atomics += o.gmem_atomics;
        self.atomic_chain += o.atomic_chain;
        self.smem_accesses += o.smem_accesses;
        self.phases += o.phases;
        self.mem_chain += o.mem_chain;
        self.max_shared_bytes = self.max_shared_bytes.max(o.max_shared_bytes);
        self.max_block_threads = self.max_block_threads.max(o.max_block_threads);
    }

    /// Average coalescing efficiency: ideal transactions over issued
    /// transactions (1.0 = perfectly coalesced, →0 = scattered). Returns
    /// `None` when no global traffic occurred.
    pub fn coalescing_efficiency(&self) -> Option<f64> {
        if self.gmem_transactions == 0 {
            return None;
        }
        let ideal = self.gmem_bytes.div_ceil(TRANSACTION_BYTES);
        Some(ideal as f64 / self.gmem_transactions as f64)
    }
}

/// Per-block accounting that [`crate::scope::BlockScope`] writes into as
/// threads execute. Converted into a [`LaunchStats`] contribution when the
/// block finishes.
#[derive(Debug, Default)]
pub(crate) struct BlockAccounting {
    pub flops: u64,
    pub gmem_loads: u64,
    pub gmem_stores: u64,
    pub gmem_bytes: u64,
    pub gmem_transactions: u64,
    pub gmem_atomics: u64,
    pub atomic_chain: u64,
    /// Same-address atomic conflict counts for the current phase.
    pub atomic_conflicts: std::collections::HashMap<(BufId, usize), u32>,
    /// Max conflict count seen this phase.
    pub phase_atomic_max: u32,
    pub smem_accesses: u64,
    pub phases: u64,
    pub mem_chain: u64,
    pub shared_bytes: u64,
    /// Coalescing state per access slot (per-thread access sequence number
    /// within the current phase). Epoch-tagged so warp changes invalidate
    /// lazily instead of clearing the vector.
    pub slots: Vec<SlotState>,
    pub warp_epoch: u64,
    /// Max per-thread memory-access count in the current phase.
    pub phase_chain_max: u64,
}

/// Coalescing state for one warp-instruction slot.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SlotState {
    pub epoch: u64,
    pub buf: BufId,
    pub segment: u64,
}

impl BlockAccounting {
    /// Records a global access by thread `tid` at element byte offset
    /// `byte_off` of buffer `buf`; `seq` is the thread's access ordinal
    /// within the current phase (0-based).
    #[inline]
    pub fn note_gmem(
        &mut self,
        buf: BufId,
        byte_off: u64,
        bytes: u64,
        seq: u32,
        is_store: bool,
    ) {
        if is_store {
            self.gmem_stores += 1;
        } else {
            self.gmem_loads += 1;
        }
        self.gmem_bytes += bytes;

        // Per-warp coalescing: one new transaction whenever this slot's
        // 128-byte segment differs from the segment touched by the
        // previous thread of the same warp at the same slot. An access
        // spanning multiple segments issues one transaction per segment.
        let first_seg = byte_off / TRANSACTION_BYTES;
        let last_seg = (byte_off + bytes - 1) / TRANSACTION_BYTES;
        let slot = seq as usize;
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, SlotState::default());
        }
        let s = &mut self.slots[slot];
        if s.epoch != self.warp_epoch || s.buf != buf || s.segment != first_seg {
            self.gmem_transactions += 1;
        }
        self.gmem_transactions += last_seg - first_seg; // straddles
        *s = SlotState { epoch: self.warp_epoch, buf, segment: last_seg };
    }

    /// Records an atomic RMW by the current thread on element `i` of
    /// buffer `buf` (`component_ops` component operations of `bytes`
    /// each). Atomics bypass the coalescer: every component op is its
    /// own transaction. Same-address conflicts within the phase feed the
    /// serialisation chain.
    pub fn note_atomic(&mut self, buf: BufId, i: usize, bytes: u64, component_ops: u64) {
        self.gmem_atomics += component_ops;
        self.gmem_bytes += bytes;
        self.gmem_transactions += component_ops;
        let e = self.atomic_conflicts.entry((buf, i)).or_insert(0);
        *e += 1;
        if *e > self.phase_atomic_max {
            self.phase_atomic_max = *e;
        }
    }

    /// Folds this block's accounting into a launch-level stats record.
    pub fn fold_into(&self, out: &mut LaunchStats, block_threads: u64) {
        out.blocks += 1;
        out.threads += block_threads;
        out.flops += self.flops;
        out.gmem_loads += self.gmem_loads;
        out.gmem_stores += self.gmem_stores;
        out.gmem_bytes += self.gmem_bytes;
        out.gmem_transactions += self.gmem_transactions;
        out.gmem_atomics += self.gmem_atomics;
        out.atomic_chain += self.atomic_chain;
        out.smem_accesses += self.smem_accesses;
        out.phases += self.phases;
        out.mem_chain += self.mem_chain;
        out.max_shared_bytes = out.max_shared_bytes.max(self.shared_bytes);
        out.max_block_threads = out.max_block_threads.max(block_threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_maxes() {
        let mut a = LaunchStats { blocks: 1, flops: 10, max_shared_bytes: 64, ..Default::default() };
        let b = LaunchStats { blocks: 2, flops: 5, max_shared_bytes: 128, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.flops, 15);
        assert_eq!(a.max_shared_bytes, 128);
    }

    fn acc_with_epoch(epoch: u64) -> BlockAccounting {
        BlockAccounting { warp_epoch: epoch, ..Default::default() }
    }

    #[test]
    fn coalesced_sequential_warp_is_one_transaction_per_segment() {
        let mut acc = acc_with_epoch(1);
        // 32 threads each load 4 bytes at consecutive addresses: 128 bytes
        // = exactly one transaction.
        for t in 0..32u64 {
            acc.note_gmem(BufId(1), t * 4, 4, 0, false);
        }
        assert_eq!(acc.gmem_transactions, 1);
        assert_eq!(acc.gmem_loads, 32);
        assert_eq!(acc.gmem_bytes, 128);
    }

    #[test]
    fn coalesced_f64_warp_is_two_transactions() {
        let mut acc = acc_with_epoch(1);
        // 32 × 8 bytes = 256 bytes = two 128-byte segments.
        for t in 0..32u64 {
            acc.note_gmem(BufId(1), t * 8, 8, 0, false);
        }
        assert_eq!(acc.gmem_transactions, 2);
    }

    #[test]
    fn scattered_warp_is_one_transaction_per_thread() {
        let mut acc = acc_with_epoch(1);
        for t in 0..32u64 {
            acc.note_gmem(BufId(1), t * 4096, 4, 0, false);
        }
        assert_eq!(acc.gmem_transactions, 32);
    }

    #[test]
    fn new_warp_epoch_restarts_coalescing() {
        let mut acc = acc_with_epoch(1);
        acc.note_gmem(BufId(1), 0, 4, 0, false);
        // Same address, same slot, but a new warp → a fresh transaction.
        acc.warp_epoch = 2;
        acc.note_gmem(BufId(1), 0, 4, 0, false);
        assert_eq!(acc.gmem_transactions, 2);
    }

    #[test]
    fn distinct_buffers_do_not_coalesce_together() {
        let mut acc = acc_with_epoch(1);
        acc.note_gmem(BufId(1), 0, 4, 0, false);
        acc.note_gmem(BufId(2), 4, 4, 0, false);
        assert_eq!(acc.gmem_transactions, 2);
    }

    #[test]
    fn straddling_access_counts_both_segments() {
        let mut acc = acc_with_epoch(1);
        // 16-byte access starting 8 bytes before a segment boundary.
        acc.note_gmem(BufId(1), 120, 16, 0, false);
        assert_eq!(acc.gmem_transactions, 2);
    }

    #[test]
    fn different_slots_track_independently() {
        let mut acc = acc_with_epoch(1);
        // Two threads, two access slots each, both slots coalesced.
        for t in 0..2u64 {
            acc.note_gmem(BufId(1), t * 8, 8, 0, false);
            acc.note_gmem(BufId(2), t * 8, 8, 1, false);
        }
        assert_eq!(acc.gmem_transactions, 2); // one per slot
    }

    #[test]
    fn coalescing_efficiency_reporting() {
        let s = LaunchStats {
            gmem_bytes: 256,
            gmem_transactions: 4,
            ..Default::default()
        };
        // Ideal = 2 transactions for 256 bytes; issued 4 → 0.5.
        assert_eq!(s.coalescing_efficiency(), Some(0.5));
        assert_eq!(LaunchStats::default().coalescing_efficiency(), None);
    }

    #[test]
    fn fold_into_tracks_maxima() {
        let acc = BlockAccounting { flops: 7, shared_bytes: 256, ..Default::default() };
        let mut out = LaunchStats::default();
        acc.fold_into(&mut out, 128);
        assert_eq!(out.blocks, 1);
        assert_eq!(out.threads, 128);
        assert_eq!(out.flops, 7);
        assert_eq!(out.max_shared_bytes, 256);
        assert_eq!(out.max_block_threads, 128);
    }
}
