//! Optional data-race detector for kernel launches (`racecheck` feature).
//!
//! CUDA's memory model gives no ordering between threads of *different*
//! blocks within one launch, and orders threads of the *same* block only
//! across `__syncthreads()` barriers. The tracker enforces exactly that:
//!
//! * write → write to one cell from different threads: race, unless the
//!   writes are in the same block and different phases;
//! * write → read from a different thread: race, unless same block and
//!   the read happens in a *later* phase than the write.
//!
//! Each cell stores the last writer as a packed word. The table is
//! rebuilt per [`crate::DeviceBuffer::view_mut`] call (views are created
//! per launch by convention), so stale launches never alias.
//!
//! This is a debugging tool: it is only compiled under the `racecheck`
//! feature and is used by kernel test suites, not production runs.

#![cfg(feature = "racecheck")]

use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of an executing simulated thread for race attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadId {
    /// Flat block index.
    pub block: u32,
    /// Thread index within the block.
    pub tid: u32,
    /// Barrier phase ordinal within the block (saturates at u16::MAX).
    pub phase: u16,
}

/// Packed cell encoding:
/// [1 bit valid][1 bit atomic][30 bits block][16 bits tid][16 bits phase].
fn pack(t: ThreadId, atomic: bool) -> u64 {
    (1u64 << 63)
        | ((atomic as u64) << 62)
        | ((t.block as u64 & 0x3FFF_FFFF) << 32)
        | ((t.tid as u64 & 0xFFFF) << 16)
        | t.phase as u64
}

fn unpack(w: u64) -> Option<(ThreadId, bool)> {
    if w >> 63 == 0 {
        return None;
    }
    let id = ThreadId {
        block: ((w >> 32) & 0x3FFF_FFFF) as u32,
        tid: ((w >> 16) & 0xFFFF) as u32,
        phase: (w & 0xFFFF) as u16,
    };
    Some((id, (w >> 62) & 1 == 1))
}

/// Per-buffer, per-launch last-writer table.
#[derive(Debug)]
pub struct RaceTable {
    cells: Box<[AtomicU64]>,
}

impl RaceTable {
    /// Creates a table for a buffer of `len` elements.
    pub fn new(len: usize) -> Self {
        RaceTable { cells: (0..len).map(|_| AtomicU64::new(0)).collect() }
    }

    /// True when `a` (earlier writer) is ordered-before `b` (current
    /// accessor) under the launch memory model.
    fn ordered(a: ThreadId, b: ThreadId) -> bool {
        if a.block == b.block && a.tid == b.tid {
            return true; // program order within one thread
        }
        // Same block: barrier between phases orders the accesses.
        a.block == b.block && a.phase < b.phase
    }

    /// Records a write by `who` to element `i`; panics on a detected race.
    pub fn on_write(&self, i: usize, who: ThreadId) {
        let new = pack(who, false);
        let prev = self.cells[i].swap(new, Ordering::Relaxed);
        if let Some((w, _atomic)) = unpack(prev) {
            // A plain write conflicts with any unordered prior access,
            // atomic or not.
            if !Self::ordered(w, who) {
                panic!(
                    "racecheck: write-write race on element {i}: \
                     block {}/thread {}/phase {} vs block {}/thread {}/phase {}",
                    w.block, w.tid, w.phase, who.block, who.tid, who.phase
                );
            }
        }
    }

    /// Records a read by `who` of element `i`; panics when it races with
    /// an earlier write from an unordered thread.
    pub fn on_read(&self, i: usize, who: ThreadId) {
        let prev = self.cells[i].load(Ordering::Relaxed);
        if let Some((w, _atomic)) = unpack(prev) {
            if !Self::ordered(w, who) {
                panic!(
                    "racecheck: read-after-write race on element {i}: \
                     written by block {}/thread {}/phase {}, read by block {}/thread {}/phase {}",
                    w.block, w.tid, w.phase, who.block, who.tid, who.phase
                );
            }
        }
    }

    /// Records an atomic RMW by `who` on element `i`. Concurrent atomics
    /// never race with each other; an atomic racing an unordered *plain*
    /// access panics.
    pub fn on_atomic(&self, i: usize, who: ThreadId) {
        let new = pack(who, true);
        let prev = self.cells[i].swap(new, Ordering::Relaxed);
        if let Some((w, atomic)) = unpack(prev) {
            if !atomic && !Self::ordered(w, who) {
                panic!(
                    "racecheck: atomic-vs-plain race on element {i}: \
                     plain access by block {}/thread {}/phase {}, atomic by block {}/thread {}/phase {}",
                    w.block, w.tid, w.phase, who.block, who.tid, who.phase
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(block: u32, tid: u32, phase: u16) -> ThreadId {
        ThreadId { block, tid, phase }
    }

    #[test]
    fn pack_roundtrip() {
        let id = t(12345, 678, 9);
        assert_eq!(unpack(pack(id, false)), Some((id, false)));
        assert_eq!(unpack(pack(id, true)), Some((id, true)));
        assert_eq!(unpack(0), None);
    }

    #[test]
    fn concurrent_atomics_do_not_race() {
        let tab = RaceTable::new(1);
        tab.on_atomic(0, t(0, 0, 0));
        tab.on_atomic(0, t(5, 3, 0));
        tab.on_atomic(0, t(2, 9, 7));
    }

    #[test]
    #[should_panic(expected = "atomic-vs-plain race")]
    fn atomic_after_unordered_plain_write_races() {
        let tab = RaceTable::new(1);
        tab.on_write(0, t(0, 0, 0));
        tab.on_atomic(0, t(1, 0, 0));
    }

    #[test]
    #[should_panic(expected = "read-after-write race")]
    fn plain_read_after_unordered_atomic_races() {
        let tab = RaceTable::new(1);
        tab.on_atomic(0, t(0, 0, 0));
        tab.on_read(0, t(1, 0, 0));
    }

    #[test]
    fn same_thread_rewrites_are_fine() {
        let tab = RaceTable::new(1);
        tab.on_write(0, t(0, 3, 0));
        tab.on_write(0, t(0, 3, 0));
        tab.on_read(0, t(0, 3, 0));
    }

    #[test]
    fn barrier_orders_same_block() {
        let tab = RaceTable::new(1);
        tab.on_write(0, t(0, 3, 0));
        tab.on_read(0, t(0, 7, 1)); // later phase: ordered
        tab.on_write(0, t(0, 7, 1));
    }

    #[test]
    #[should_panic(expected = "write-write race")]
    fn same_phase_write_write_races() {
        let tab = RaceTable::new(1);
        tab.on_write(0, t(0, 3, 0));
        tab.on_write(0, t(0, 4, 0));
    }

    #[test]
    #[should_panic(expected = "read-after-write race")]
    fn cross_block_read_races() {
        let tab = RaceTable::new(1);
        tab.on_write(0, t(0, 0, 0));
        tab.on_read(0, t(1, 0, 5)); // different block: never ordered
    }

    #[test]
    #[should_panic(expected = "write-write race")]
    fn cross_block_write_races() {
        let tab = RaceTable::new(1);
        tab.on_write(0, t(0, 0, 3));
        tab.on_write(0, t(2, 0, 3));
    }
}
