//! Device atomic operations (`atomicAdd` analog).
//!
//! Functional semantics use real host atomics (CAS loops over the bit
//! pattern), so concurrent simulated threads update device memory exactly
//! as hardware atomic units would — any interleaving yields the same sum
//! for commutative-associative-up-to-rounding addition.
//!
//! Timing model: each atomic is charged one global transaction (atomics
//! bypass coalescing) plus a *contention* term — within a block, the
//! maximum number of atomics hitting one address in one phase serialises
//! at the memory-latency cadence, mirroring how same-address atomics
//! serialise in an SM's atomic unit. Cross-block contention is folded
//! into bandwidth (each op is its own transaction); this underestimates
//! pathological global hotspots, which is documented in the timing-model
//! notes and visible in the ablation experiments.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::buffer::DeviceCopy;

/// Types supporting device `atomic_add`.
///
/// # Safety
///
/// `atomic_add_at` must perform a genuinely atomic read-modify-write of
/// the value at `ptr` (or a sequence of component-wise atomic RMWs for
/// compound types, matching CUDA's treatment of `double2`).
pub unsafe trait AtomicAdd: DeviceCopy {
    /// Number of component atomic operations one `atomic_add` issues
    /// (1 for scalars, 2 for complex) — used by the stats layer.
    const COMPONENT_OPS: u64;

    /// Atomically adds `v` to the value at `ptr`.
    ///
    /// # Safety
    /// `ptr` must be valid for reads and writes and properly aligned; the
    /// pointee must only be accessed atomically for the duration of the
    /// launch (the kernel-level contract the race checker enforces).
    unsafe fn atomic_add_at(ptr: *mut Self, v: Self);
}

// SAFETY: CAS loop over the IEEE-754 bit pattern — the standard lock-free
// f64 atomic-add construction (also what CUDA did pre-sm_60).
unsafe impl AtomicAdd for f64 {
    const COMPONENT_OPS: u64 = 1;

    unsafe fn atomic_add_at(ptr: *mut f64, v: f64) {
        // SAFETY: caller guarantees validity/alignment; AtomicU64 has the
        // same size and alignment as u64/f64.
        let a = unsafe { AtomicU64::from_ptr(ptr as *mut u64) };
        let mut cur = a.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match a.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

// SAFETY: native fetch_add.
unsafe impl AtomicAdd for u32 {
    const COMPONENT_OPS: u64 = 1;

    unsafe fn atomic_add_at(ptr: *mut u32, v: u32) {
        // SAFETY: caller guarantees validity/alignment.
        let a = unsafe { AtomicU32::from_ptr(ptr) };
        a.fetch_add(v, Ordering::Relaxed);
    }
}

// SAFETY: component-wise f64 atomic adds. The pair is NOT atomic as a
// unit — exactly like updating a CUDA double2 with two atomicAdds — but
// summation results are unaffected because addition is component-wise.
unsafe impl AtomicAdd for numc::Complex {
    const COMPONENT_OPS: u64 = 2;

    unsafe fn atomic_add_at(ptr: *mut numc::Complex, v: numc::Complex) {
        // SAFETY: Complex is #[repr(C)] { re: f64, im: f64 }.
        unsafe {
            let re_ptr = ptr as *mut f64;
            f64::atomic_add_at(re_ptr, v.re);
            f64::atomic_add_at(re_ptr.add(1), v.im);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;

    #[test]
    fn f64_atomic_add_accumulates_across_threads() {
        let mut cell = 0.0f64;
        let p: *mut f64 = &mut cell;
        let addr = p as usize;
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for _ in 0..1000 {
                        // SAFETY: all access in this test is atomic.
                        unsafe { f64::atomic_add_at(addr as *mut f64, 1.0) };
                    }
                });
            }
        });
        assert_eq!(cell, 8000.0);
    }

    #[test]
    fn u32_atomic_add_accumulates() {
        let mut cell = 0u32;
        let p: *mut u32 = &mut cell;
        let addr = p as usize;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..512 {
                        // SAFETY: atomic-only access.
                        unsafe { u32::atomic_add_at(addr as *mut u32, 2) };
                    }
                });
            }
        });
        assert_eq!(cell, 4096);
    }

    #[test]
    fn complex_atomic_add_sums_components() {
        let mut cell = numc::Complex::ZERO;
        let p: *mut numc::Complex = &mut cell;
        let addr = p as usize;
        std::thread::scope(|s| {
            for k in 0..4 {
                s.spawn(move || {
                    for _ in 0..100 {
                        // SAFETY: atomic-only access.
                        unsafe {
                            numc::Complex::atomic_add_at(
                                addr as *mut numc::Complex,
                                c(1.0, k as f64),
                            )
                        };
                    }
                });
            }
        });
        assert_eq!(cell, c(400.0, 600.0));
    }
}
