//! CRC64 (ECMA-182) — the transfer-integrity checksum.
//!
//! Real GPU links protect payloads end-to-end with a link-layer CRC;
//! the simulator's checked transfer paths
//! ([`crate::Device::try_htod_checked`] /
//! [`crate::Device::try_dtoh_checked`]) model that net by computing this
//! checksum independently on both sides of every guarded copy. The
//! implementation is the bit-reflected ECMA-182 polynomial (the `xz`
//! CRC-64 variant) over a compile-time 256-entry table — no external
//! crates, deterministic everywhere.

/// Bit-reflected ECMA-182 generator polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC64/XZ of a byte slice (init and final XOR are all-ones).
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = TABLE[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// CRC64 of a plain-old-data slice, viewed as raw bytes. The element
/// type carries no padding by the [`crate::DeviceCopy`] contract
/// (device buffers hold scalars and scalar pairs), so the byte view is
/// fully initialised.
pub fn crc64_of<T: crate::DeviceCopy>(data: &[T]) -> u64 {
    // SAFETY: T is Copy + 'static plain-old-data; reading its bytes is
    // valid for the slice's full length.
    let bytes = unsafe {
        std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
    };
    crc64(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_value() {
        // The canonical CRC-64/XZ check: "123456789" -> 0x995DC9BBDF1939FA.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input_and_identity_properties() {
        assert_eq!(crc64(b""), 0);
        assert_eq!(crc64(b"a"), crc64(b"a"));
        assert_ne!(crc64(b"a"), crc64(b"b"));
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let base: Vec<u8> = (0..64u8).collect();
        let want = crc64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut tampered = base.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc64(&tampered), want, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn typed_view_agrees_with_byte_view() {
        let v = [1.0f64, -2.5, 3.25];
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        assert_eq!(crc64_of(&v), crc64(&bytes));
        assert_eq!(crc64_of::<f64>(&[]), 0);
    }
}
