//! The analytical timing model.
//!
//! Kernels execute functionally on host threads; this module converts the
//! statistics they tally into *modeled device microseconds*. The model is
//! a roofline with a latency floor:
//!
//! ```text
//! t_kernel = launch_overhead
//!          + max( t_compute,   // flop roofline over all SMs
//!                 t_mem,       // coalesced-transaction bandwidth roofline
//!                 t_latency )  // dependent-access chain × waves
//! ```
//!
//! * `t_compute = flops / (num_sms · fp_lanes · clock)` — the tallied
//!   floating-point work spread over every lane of every SM.
//! * `t_mem = transactions · 128 B / bandwidth` — global traffic after
//!   per-warp coalescing (scattered access patterns pay up to 32× here,
//!   which is what makes the paper's level-order data layout matter).
//! * `t_latency`: small launches cannot hide memory latency. With
//!   `waves = ceil(blocks / resident_blocks_total)` occupancy-limited
//!   waves and an average per-block dependent-access chain of
//!   `mem_chain / blocks`, the floor is
//!   `waves · (chain · mem_latency + phases_per_block · barrier)` cycles.
//!   For the paper's per-level kernels over narrow tree levels this is the
//!   dominant term — exactly the effect the abstract reports ("larger
//!   speedups as the size of the distribution tree increases").
//!
//! Transfers are modeled as `latency + bytes / pcie_bandwidth`.
//!
//! All outputs are deterministic functions of ([`LaunchStats`],
//! [`LaunchConfig`], [`DeviceProps`]) so experiment tables reproduce
//! bit-for-bit across machines.

use crate::kernel::LaunchConfig;
use crate::props::DeviceProps;
use crate::stats::{LaunchStats, TRANSACTION_BYTES};

/// Per-launch modeled-time decomposition, µs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelTiming {
    /// Fixed launch overhead.
    pub launch_us: f64,
    /// Compute-roofline term.
    pub compute_us: f64,
    /// Memory-bandwidth term.
    pub mem_us: f64,
    /// Latency-floor term.
    pub latency_us: f64,
    /// Total modeled time (launch + max of the three).
    pub total_us: f64,
}

impl KernelTiming {
    /// Which term bound the kernel (for reports).
    pub fn bound(&self) -> Bound {
        if self.compute_us >= self.mem_us && self.compute_us >= self.latency_us {
            Bound::Compute
        } else if self.mem_us >= self.latency_us {
            Bound::Memory
        } else {
            Bound::Latency
        }
    }
}

/// The binding resource of a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Flop-throughput-bound.
    Compute,
    /// Bandwidth-bound.
    Memory,
    /// Latency/occupancy-bound (small or launch-overhead-dominated).
    Latency,
}

/// Models one kernel launch.
pub fn kernel_time(props: &DeviceProps, cfg: &LaunchConfig, stats: &LaunchStats) -> KernelTiming {
    let cycles_per_us = props.cycles_per_us();

    let compute_us = stats.flops as f64 / props.flops_per_us();

    let mem_us =
        (stats.gmem_transactions * TRANSACTION_BYTES) as f64 / props.mem_bytes_per_us();

    // Occupancy-limited wave count.
    let resident =
        props.resident_blocks_per_sm(cfg.block, stats.max_shared_bytes.min(u32::MAX as u64) as u32);
    let resident_total = (resident as u64 * props.num_sms as u64).max(1);
    let waves = stats.blocks.div_ceil(resident_total).max(1);

    let blocks = stats.blocks.max(1);
    let chain_per_block = (stats.mem_chain + stats.atomic_chain) as f64 / blocks as f64;
    let phases_per_block = stats.phases as f64 / blocks as f64;
    let latency_cycles = waves as f64
        * (chain_per_block * props.mem_latency_cycles + phases_per_block * props.barrier_cycles);
    let latency_us = latency_cycles / cycles_per_us;

    let launch_us = props.launch_overhead_us;
    let total_us = launch_us + compute_us.max(mem_us).max(latency_us);
    KernelTiming { launch_us, compute_us, mem_us, latency_us, total_us }
}

/// Models one host↔device transfer of `bytes`.
pub fn transfer_time(props: &DeviceProps, bytes: u64) -> f64 {
    props.pcie_latency_us + bytes as f64 / props.pcie_bytes_per_us()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props() -> DeviceProps {
        DeviceProps::paper_rig()
    }

    fn stats_for(blocks: u64, per_block: impl Fn(&mut LaunchStats)) -> LaunchStats {
        let mut s = LaunchStats { blocks, ..Default::default() };
        per_block(&mut s);
        s
    }

    #[test]
    fn empty_launch_costs_launch_overhead() {
        let p = props();
        let cfg = LaunchConfig::new(1, 32);
        let t = kernel_time(&p, &cfg, &stats_for(1, |_| {}));
        assert_eq!(t.total_us, p.launch_overhead_us);
        assert_eq!(t.bound(), Bound::Compute); // degenerate all-zero tie
    }

    #[test]
    fn compute_bound_kernel() {
        let p = props();
        let cfg = LaunchConfig::new(1024, 256);
        // Enormous flop count, negligible memory.
        let s = stats_for(1024, |s| {
            s.flops = 4_096_000_000;
            s.gmem_transactions = 10;
        });
        let t = kernel_time(&p, &cfg, &s);
        assert_eq!(t.bound(), Bound::Compute);
        let expect = 4_096_000_000.0 / p.flops_per_us();
        assert!((t.compute_us - expect).abs() / expect < 1e-12);
        assert!(t.total_us > t.compute_us); // includes launch overhead
    }

    #[test]
    fn memory_bound_kernel() {
        let p = props();
        let cfg = LaunchConfig::new(1024, 256);
        let s = stats_for(1024, |s| {
            s.gmem_transactions = 10_000_000; // 1.28 GB of traffic
            s.flops = 1000;
        });
        let t = kernel_time(&p, &cfg, &s);
        assert_eq!(t.bound(), Bound::Memory);
        let expect = 10_000_000.0 * 128.0 / p.mem_bytes_per_us();
        assert!((t.mem_us - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn tiny_launch_is_latency_bound() {
        let p = props();
        let cfg = LaunchConfig::new(1, 32);
        // One small block with a 4-access dependent chain.
        let s = stats_for(1, |s| {
            s.mem_chain = 4;
            s.phases = 1;
            s.gmem_transactions = 4;
            s.flops = 100;
        });
        let t = kernel_time(&p, &cfg, &s);
        assert_eq!(t.bound(), Bound::Latency);
        // 1 wave × (4×420 + 40) cycles at 1600 cycles/µs ≈ 1.075 µs.
        assert!((t.latency_us - (4.0 * 420.0 + 40.0) / 1600.0).abs() < 1e-9);
    }

    #[test]
    fn waves_scale_latency_term() {
        let p = props();
        let cfg = LaunchConfig::new(10_000, 256);
        let s = stats_for(10_000, |s| {
            s.mem_chain = 10_000 * 2;
            s.phases = 10_000;
        });
        let t1 = kernel_time(&p, &cfg, &s);
        // resident = min(32, 2048/256=8) = 8 per SM × 20 SMs = 160;
        // waves = ceil(10000/160) = 63.
        let resident = p.resident_blocks_per_sm(256, 0) as u64 * p.num_sms as u64;
        assert_eq!(resident, 160);
        let waves = 10_000u64.div_ceil(160);
        let expect = waves as f64 * (2.0 * p.mem_latency_cycles + p.barrier_cycles)
            / p.cycles_per_us();
        assert!((t1.latency_us - expect).abs() < 1e-9);
    }

    #[test]
    fn shared_memory_pressure_reduces_occupancy_and_slows_latency_bound() {
        let p = props();
        let cfg = LaunchConfig::new(1000, 128);
        let lean = stats_for(1000, |s| {
            s.mem_chain = 3000;
            s.phases = 1000;
        });
        let mut fat = lean.clone();
        fat.max_shared_bytes = 48 * 1024; // 2 resident blocks/SM only
        let t_lean = kernel_time(&p, &cfg, &lean);
        let t_fat = kernel_time(&p, &cfg, &fat);
        assert!(t_fat.latency_us > t_lean.latency_us);
    }

    #[test]
    fn transfer_model_latency_plus_bandwidth() {
        let p = props();
        assert_eq!(transfer_time(&p, 0), p.pcie_latency_us);
        let t = transfer_time(&p, 12_000_000); // 12 MB at 12 GB/s = 1000 µs
        assert!((t - (p.pcie_latency_us + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_traffic() {
        let p = props();
        let cfg = LaunchConfig::new(64, 256);
        let mut prev = 0.0;
        for k in 1..6u64 {
            let s = stats_for(64, |s| {
                s.gmem_transactions = k * 100_000;
            });
            let t = kernel_time(&p, &cfg, &s).total_us;
            assert!(t >= prev);
            prev = t;
        }
    }
}
