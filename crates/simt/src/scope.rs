//! Block- and thread-level execution scopes — the kernel-facing API.
//!
//! # Execution model
//!
//! A kernel's [`crate::Kernel::block`] runs once per block and expresses
//! the block as a sequence of *phases*:
//!
//! ```ignore
//! fn block(&self, blk: &mut BlockScope) {
//!     let tile = blk.shared::<f64>(256);
//!     blk.threads(|t| { /* phase 1: every thread runs this */ });
//!     // implicit __syncthreads() here
//!     blk.threads(|t| { /* phase 2 */ });
//! }
//! ```
//!
//! Each [`BlockScope::threads`] call executes its closure once per thread
//! of the block with an implicit barrier afterwards — the
//! barrier-synchronous subset of CUDA that well-synchronised kernels use.
//! Within a phase, threads must not communicate (the race checker enforces
//! this); across phases, shared and global memory written by the block are
//! visible to all its threads, exactly as after `__syncthreads()`.
//!
//! Threads of one block execute sequentially on one host worker, so
//! shared memory needs no host-side synchronisation; different blocks run
//! in parallel across workers.

use std::cell::UnsafeCell;
use std::rc::Rc;

use crate::buffer::{DeviceCopy, GlobalMut, GlobalRef};
use crate::stats::BlockAccounting;

/// Per-block execution scope handed to [`crate::Kernel::block`].
pub struct BlockScope {
    /// Flat block index in row-major order (`y * gridDim.x + x`).
    pub(crate) block_idx: u64,
    pub(crate) grid_dim: u32,
    pub(crate) grid_dim_y: u32,
    pub(crate) block_dim: u32,
    pub(crate) warp_size: u32,
    pub(crate) shared_limit: u32,
    pub(crate) acc: BlockAccounting,
    pub(crate) phase: u32,
}

impl BlockScope {
    pub(crate) fn new(
        block_idx: u64,
        grid_dim: u32,
        grid_dim_y: u32,
        block_dim: u32,
        warp_size: u32,
        shared_limit: u32,
    ) -> Self {
        BlockScope {
            block_idx,
            grid_dim,
            grid_dim_y,
            block_dim,
            warp_size,
            shared_limit,
            acc: BlockAccounting::default(),
            phase: 0,
        }
    }

    /// Flat index of this block within the launch grid
    /// (`blockIdx.y * gridDim.x + blockIdx.x`; equals `blockIdx.x` for
    /// 1-D launches).
    #[inline]
    pub fn block_idx(&self) -> usize {
        self.block_idx as usize
    }

    /// Block index along x (`blockIdx.x`).
    #[inline]
    pub fn block_idx_x(&self) -> usize {
        (self.block_idx % self.grid_dim as u64) as usize
    }

    /// Block index along y (`blockIdx.y`; 0 for 1-D launches).
    #[inline]
    pub fn block_idx_y(&self) -> usize {
        (self.block_idx / self.grid_dim as u64) as usize
    }

    /// Blocks along x (`gridDim.x`).
    #[inline]
    pub fn grid_dim(&self) -> usize {
        self.grid_dim as usize
    }

    /// Blocks along y (`gridDim.y`; 1 for 1-D launches).
    #[inline]
    pub fn grid_dim_y(&self) -> usize {
        self.grid_dim_y as usize
    }

    /// Threads per block.
    #[inline]
    pub fn block_dim(&self) -> usize {
        self.block_dim as usize
    }

    /// Allocates `len` zero-initialised elements of block-shared memory
    /// (the `__shared__` analog). Panics — modeling a launch failure —
    /// when the block's cumulative footprint exceeds the device limit.
    pub fn shared<T: DeviceCopy>(&mut self, len: usize) -> Shared<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.acc.shared_bytes += bytes;
        if self.acc.shared_bytes > self.shared_limit as u64 {
            panic!(
                "launch failure: block requested {} bytes of shared memory \
                 (limit {} bytes)",
                self.acc.shared_bytes, self.shared_limit
            );
        }
        Shared {
            inner: Rc::new(SharedInner {
                cells: UnsafeCell::new(vec![T::default(); len].into_boxed_slice()),
            }),
        }
    }

    /// Runs one barrier-delimited phase: the closure executes once per
    /// thread (tid 0 .. block_dim), followed by an implicit barrier.
    pub fn threads<F: FnMut(&mut ThreadCtx<'_>)>(&mut self, mut f: F) {
        self.acc.phase_chain_max = 0;
        self.acc.phase_atomic_max = 0;
        self.acc.atomic_conflicts.clear();
        let phase = self.phase.min(u16::MAX as u32) as u16;
        for tid in 0..self.block_dim {
            if tid % self.warp_size == 0 {
                self.acc.warp_epoch += 1;
            }
            let mut ctx = ThreadCtx {
                tid,
                block_idx: self.block_idx,
                block_dim: self.block_dim,
                grid_dim: self.grid_dim,
                grid_dim_y: self.grid_dim_y,
                phase,
                seq: 0,
                acc: &mut self.acc,
            };
            f(&mut ctx);
            let seq = ctx.seq as u64;
            if seq > self.acc.phase_chain_max {
                self.acc.phase_chain_max = seq;
            }
        }
        self.acc.phases += 1;
        self.acc.mem_chain += self.acc.phase_chain_max;
        self.acc.atomic_chain += self.acc.phase_atomic_max as u64;
        self.phase += 1;
    }
}

struct SharedInner<T> {
    cells: UnsafeCell<Box<[T]>>,
}

/// Handle to a block-shared memory array.
///
/// `Shared` is `!Send` (it is `Rc`-backed), pinning it to the worker
/// thread executing its block — shared memory can never leak across
/// blocks, matching hardware scoping.
#[derive(Clone)]
pub struct Shared<T> {
    inner: Rc<SharedInner<T>>,
}

impl<T: DeviceCopy> Shared<T> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        // SAFETY: single-threaded within the block; no outstanding &mut.
        unsafe { (&*self.inner.cells.get()).len() }
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn raw_load(&self, i: usize) -> T {
        // SAFETY: block threads run sequentially on one host thread, so
        // no concurrent access exists; bounds are checked by indexing.
        unsafe { (&*self.inner.cells.get())[i] }
    }

    #[inline]
    fn raw_store(&self, i: usize, v: T) {
        // SAFETY: as raw_load.
        unsafe { (&mut *self.inner.cells.get())[i] = v }
    }
}

/// Per-thread execution context for one phase.
pub struct ThreadCtx<'b> {
    tid: u32,
    /// Flat block index (`blockIdx.y * gridDim.x + blockIdx.x`).
    block_idx: u64,
    block_dim: u32,
    grid_dim: u32,
    grid_dim_y: u32,
    #[cfg_attr(not(feature = "racecheck"), allow(dead_code))]
    phase: u16,
    /// Memory accesses issued by this thread in this phase (the
    /// coalescing slot counter).
    seq: u32,
    acc: &'b mut BlockAccounting,
}

impl ThreadCtx<'_> {
    /// Thread index within the block (`threadIdx.x`).
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid as usize
    }

    /// Flat block index (`blockIdx.y * gridDim.x + blockIdx.x`; equals
    /// `blockIdx.x` for 1-D launches).
    #[inline]
    pub fn block_idx(&self) -> usize {
        self.block_idx as usize
    }

    /// Block index along x (`blockIdx.x`).
    #[inline]
    pub fn block_idx_x(&self) -> usize {
        (self.block_idx % self.grid_dim as u64) as usize
    }

    /// Block index along y (`blockIdx.y`; 0 for 1-D launches).
    #[inline]
    pub fn block_idx_y(&self) -> usize {
        (self.block_idx / self.grid_dim as u64) as usize
    }

    /// Threads per block (`blockDim.x`).
    #[inline]
    pub fn block_dim(&self) -> usize {
        self.block_dim as usize
    }

    /// Blocks per grid along x (`gridDim.x`).
    #[inline]
    pub fn grid_dim(&self) -> usize {
        self.grid_dim as usize
    }

    /// Blocks per grid along y (`gridDim.y`; 1 for 1-D launches).
    #[inline]
    pub fn grid_dim_y(&self) -> usize {
        self.grid_dim_y as usize
    }

    /// Flat global thread id
    /// (`block_idx() * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block_idx as usize * self.block_dim as usize + self.tid as usize
    }

    /// Total threads in the launch (`gridDim.x * gridDim.y * blockDim.x`).
    #[inline]
    pub fn launch_threads(&self) -> usize {
        self.grid_dim as usize * self.grid_dim_y as usize * self.block_dim as usize
    }

    /// Tallies `n` floating-point operations against the timing model.
    ///
    /// By convention kernels charge [`numc` complex-op costs][costs] —
    /// e.g. 6 for a complex multiply — so modeled compute time is
    /// consistent across the workspace.
    ///
    /// [costs]: https://docs.rs/numc (Complex::MUL_FLOPS etc.)
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.acc.flops += n;
    }

    /// Loads element `i` from a read-only global view.
    #[inline]
    pub fn ld<T: DeviceCopy>(&mut self, g: &GlobalRef<'_, T>, i: usize) -> T {
        self.note_gmem(g.id, i, std::mem::size_of::<T>(), false, g.data.len());
        g.raw_load(i)
    }

    /// Loads element `i` from a read-write global view.
    #[inline]
    pub fn ld_mut<T: DeviceCopy>(&mut self, g: &GlobalMut<'_, T>, i: usize) -> T {
        self.note_gmem(g.id, i, std::mem::size_of::<T>(), false, g.data.len());
        #[cfg(feature = "racecheck")]
        g.race.on_read(i, self.race_id());
        g.raw_load(i)
    }

    /// Stores `v` to element `i` of a read-write global view.
    #[inline]
    pub fn st<T: DeviceCopy>(&mut self, g: &GlobalMut<'_, T>, i: usize, v: T) {
        self.note_gmem(g.id, i, std::mem::size_of::<T>(), true, g.data.len());
        #[cfg(feature = "racecheck")]
        g.race.on_write(i, self.race_id());
        g.raw_store(i, v);
    }

    /// Atomically adds `v` to element `i` of a read-write global view
    /// (the `atomicAdd` analog). Concurrent atomic updates from any
    /// thread of the launch are well-defined; mixing them with plain
    /// loads/stores of the same element within one launch is a race
    /// (flagged under `racecheck`).
    #[inline]
    pub fn atomic_add<T: crate::atomic::AtomicAdd>(
        &mut self,
        g: &GlobalMut<'_, T>,
        i: usize,
        v: T,
    ) {
        if i >= g.data.len() {
            panic!(
                "device fault: atomic on element {i} out of bounds (len {}) by block {} thread {}",
                g.data.len(),
                self.block_idx,
                self.tid
            );
        }
        self.acc.note_atomic(g.id, i, std::mem::size_of::<T>() as u64, T::COMPONENT_OPS);
        self.seq += 1;
        #[cfg(feature = "racecheck")]
        g.race.on_atomic(i, self.race_id());
        // SAFETY: bounds checked above; access is atomic per AtomicAdd.
        unsafe { T::atomic_add_at(g.data[i].get(), v) }
    }

    /// Loads element `i` of a shared-memory array.
    #[inline]
    pub fn lds<T: DeviceCopy>(&mut self, s: &Shared<T>, i: usize) -> T {
        self.acc.smem_accesses += 1;
        s.raw_load(i)
    }

    /// Stores `v` to element `i` of a shared-memory array.
    #[inline]
    pub fn sts<T: DeviceCopy>(&mut self, s: &Shared<T>, i: usize, v: T) {
        self.acc.smem_accesses += 1;
        s.raw_store(i, v)
    }

    #[cfg(feature = "racecheck")]
    fn race_id(&self) -> crate::racecheck::ThreadId {
        crate::racecheck::ThreadId {
            block: self.block_idx as u32,
            tid: self.tid,
            phase: self.phase,
        }
    }

    #[inline]
    fn note_gmem(&mut self, buf: crate::buffer::BufId, i: usize, elem: usize, store: bool, len: usize) {
        if i >= len {
            panic!(
                "device fault: {} of element {i} out of bounds (len {len}) \
                 by block {} thread {}",
                if store { "store" } else { "load" },
                self.block_idx,
                self.tid
            );
        }
        self.acc.note_gmem(buf, (i * elem) as u64, elem as u64, self.seq, store);
        self.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;

    fn scope(block_idx: u64, grid: u32, block: u32) -> BlockScope {
        BlockScope::new(block_idx, grid, 1, block, 32, 48 * 1024)
    }

    #[test]
    fn indices_and_dims() {
        let mut s = scope(3, 8, 64);
        assert_eq!(s.block_idx(), 3);
        assert_eq!(s.grid_dim(), 8);
        assert_eq!(s.block_dim(), 64);
        let mut seen = Vec::new();
        s.threads(|t| {
            seen.push((t.tid(), t.global_id()));
            assert_eq!(t.block_idx(), 3);
            assert_eq!(t.block_dim(), 64);
            assert_eq!(t.grid_dim(), 8);
            assert_eq!(t.launch_threads(), 512);
        });
        assert_eq!(seen.len(), 64);
        assert_eq!(seen[0], (0, 192));
        assert_eq!(seen[63], (63, 255));
    }

    #[test]
    fn two_dimensional_indices_decompose_row_major() {
        // grid = (4, 3): flat block 9 sits at (x=1, y=2).
        let mut s = BlockScope::new(9, 4, 3, 16, 32, 48 * 1024);
        assert_eq!(s.block_idx(), 9);
        assert_eq!(s.block_idx_x(), 1);
        assert_eq!(s.block_idx_y(), 2);
        assert_eq!(s.grid_dim(), 4);
        assert_eq!(s.grid_dim_y(), 3);
        s.threads(|t| {
            assert_eq!(t.block_idx(), 9);
            assert_eq!(t.block_idx_x(), 1);
            assert_eq!(t.block_idx_y(), 2);
            assert_eq!(t.grid_dim_y(), 3);
            assert_eq!(t.launch_threads(), 4 * 3 * 16);
            assert_eq!(t.global_id(), 9 * 16 + t.tid());
        });
    }

    #[test]
    fn phases_and_chain_accounting() {
        let mut b = DeviceBuffer::<f64>::zeroed(128);
        let g = b.view_mut();
        let mut s = scope(0, 1, 64);
        s.threads(|t| {
            let i = t.tid();
            t.st(&g, i, i as f64);
        });
        s.threads(|t| {
            let i = t.tid();
            let v = t.ld_mut(&g, i);
            t.st(&g, i, v + 1.0);
        });
        assert_eq!(s.acc.phases, 2);
        // Phase 1: 1 access per thread; phase 2: 2 → chain = 3.
        assert_eq!(s.acc.mem_chain, 3);
        assert_eq!(s.acc.gmem_stores, 128);
        assert_eq!(s.acc.gmem_loads, 64);
        let _ = g;
        let host = b.copy_to_host();
        assert_eq!(host[5], 6.0);
    }

    #[test]
    fn shared_memory_roundtrip_across_phases() {
        let mut s = scope(0, 1, 32);
        let sh = s.shared::<u32>(32);
        assert_eq!(sh.len(), 32);
        s.threads(|t| {
            let i = t.tid();
            t.sts(&sh, i, (i * 10) as u32);
        });
        let mut total = 0u32;
        s.threads(|t| {
            if t.tid() == 0 {
                for i in 0..32 {
                    total += t.lds(&sh, i);
                }
            }
        });
        assert_eq!(total, (0..32).map(|i| i * 10).sum::<u32>());
        assert_eq!(s.acc.smem_accesses, 32 + 32);
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn shared_over_limit_is_launch_failure() {
        let mut s = scope(0, 1, 32);
        let _ = s.shared::<f64>(48 * 1024); // 384 KiB > 48 KiB limit
    }

    #[test]
    #[should_panic(expected = "device fault")]
    fn out_of_bounds_store_is_device_fault() {
        let mut b = DeviceBuffer::<u32>::zeroed(4);
        let g = b.view_mut();
        let mut s = scope(0, 1, 8);
        s.threads(|t| {
            let i = t.tid();
            t.st(&g, i, 1); // threads 4..8 fault
        });
    }

    #[test]
    fn coalesced_warp_counts_minimal_transactions() {
        let b = DeviceBuffer::<f64>::zeroed(64);
        let g = b.view();
        let mut s = scope(0, 1, 64);
        s.threads(|t| {
            let i = t.global_id();
            let _ = t.ld(&g, i);
        });
        // 64 threads × 8B, coalesced: 2 warps × 2 segments = 4 transactions.
        assert_eq!(s.acc.gmem_transactions, 4);
        assert_eq!(s.acc.gmem_bytes, 512);
    }

    #[test]
    fn strided_warp_counts_many_transactions() {
        let b = DeviceBuffer::<f64>::zeroed(64 * 32);
        let g = b.view();
        let mut s = scope(0, 1, 32);
        s.threads(|t| {
            let _ = t.ld(&g, t.tid() * 32); // 256-byte stride
        });
        assert_eq!(s.acc.gmem_transactions, 32);
    }

    #[cfg(feature = "racecheck")]
    #[test]
    #[should_panic(expected = "race")]
    fn racecheck_catches_same_phase_conflict() {
        let mut b = DeviceBuffer::<u32>::zeroed(1);
        let g = b.view_mut();
        let mut s = scope(0, 1, 2);
        s.threads(|t| {
            t.st(&g, 0, t.tid() as u32); // both threads write cell 0
        });
    }

    #[cfg(feature = "racecheck")]
    #[test]
    fn racecheck_allows_barrier_separated_reuse() {
        let mut b = DeviceBuffer::<u32>::zeroed(2);
        let g = b.view_mut();
        let mut s = scope(0, 1, 2);
        s.threads(|t| t.st(&g, t.tid(), 1));
        s.threads(|t| {
            // Read the *other* thread's cell — legal after the barrier.
            let other = 1 - t.tid();
            assert_eq!(t.ld_mut(&g, other), 1);
        });
    }
}
