//! The device timeline: an event log of every launch and transfer.
//!
//! Experiments read the timeline to produce the paper's per-phase
//! breakdowns (H2D / kernels-by-name / D2H) and its "GPU-only" timings
//! (kernel events excluding transfers).

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::LaunchStats;
use crate::timing::KernelTiming;

/// What happened.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// Device allocation (no modeled cost; recorded for memory accounting).
    Alloc {
        /// Allocation size in bytes.
        bytes: u64,
    },
    /// Host→device copy.
    Htod {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Device→host copy.
    Dtoh {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Kernel launch.
    Kernel {
        /// Kernel name (from [`crate::Kernel::name`]).
        name: &'static str,
        /// Blocks launched.
        grid: u32,
        /// Threads per block.
        block: u32,
        /// Merged execution statistics.
        stats: LaunchStats,
        /// Timing-model decomposition.
        timing: KernelTiming,
    },
    /// An injected fault (no modeled cost; recorded so profiler and
    /// breakdown reports show what a faulty run actually experienced).
    Fault {
        /// Human-readable description, e.g. `bit-flip @ launch`.
        desc: String,
        /// Device op index at which the fault fired.
        op: u64,
    },
    /// A supervisor annotation (no modeled cost): service-layer state
    /// changes — circuit-breaker transitions, shed requests — recorded
    /// in-band so a replayed run shows *when* policy decisions happened
    /// relative to device work.
    Marker {
        /// Human-readable description, e.g. `breaker closed→open`.
        desc: String,
    },
}

/// One timeline entry.
#[derive(Clone, Debug)]
pub struct Event {
    /// Classification + payload.
    pub kind: EventKind,
    /// Modeled device time, µs (0 for allocations).
    pub modeled_us: f64,
    /// Host wall-clock spent simulating, µs (diagnostic only — NOT a
    /// performance claim).
    pub wall_us: f64,
}

impl Event {
    /// The kernel name, or a fixed label for transfers/allocs.
    pub fn label(&self) -> &'static str {
        match &self.kind {
            EventKind::Alloc { .. } => "<alloc>",
            EventKind::Htod { .. } => "<htod>",
            EventKind::Dtoh { .. } => "<dtoh>",
            EventKind::Kernel { name, .. } => name,
            EventKind::Fault { .. } => "<fault>",
            EventKind::Marker { .. } => "<marker>",
        }
    }
}

/// Aggregate view over a span of events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Modeled µs in host→device copies.
    pub htod_us: f64,
    /// Modeled µs in device→host copies.
    pub dtoh_us: f64,
    /// Modeled µs in kernels.
    pub kernel_us: f64,
    /// Kernel launches.
    pub kernels: u64,
    /// Bytes moved host→device.
    pub htod_bytes: u64,
    /// Bytes moved device→host.
    pub dtoh_bytes: u64,
    /// Modeled µs per kernel name.
    pub per_kernel_us: BTreeMap<&'static str, f64>,
    /// Injected faults observed in the span.
    pub faults: u64,
}

impl Breakdown {
    /// Total modeled device time.
    pub fn total_us(&self) -> f64 {
        self.htod_us + self.dtoh_us + self.kernel_us
    }

    /// Transfer share of total modeled time (0..1); `None` when idle.
    pub fn transfer_fraction(&self) -> Option<f64> {
        let t = self.total_us();
        (t > 0.0).then(|| (self.htod_us + self.dtoh_us) / t)
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total {:.1} µs = htod {:.1} + kernels {:.1} ({}) + dtoh {:.1}",
            self.total_us(),
            self.htod_us,
            self.kernel_us,
            self.kernels,
            self.dtoh_us
        )?;
        for (name, us) in &self.per_kernel_us {
            writeln!(f, "  {name:<28} {us:>12.1} µs")?;
        }
        if self.faults > 0 {
            writeln!(f, "  faults injected: {}", self.faults)?;
        }
        Ok(())
    }
}

/// One row of the per-kernel profiler report.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub name: &'static str,
    /// Launch count.
    pub launches: u64,
    /// Total modeled µs.
    pub modeled_us: f64,
    /// Total threads launched.
    pub threads: u64,
    /// Total tallied flops.
    pub flops: u64,
    /// Global bytes requested.
    pub gmem_bytes: u64,
    /// Coalescing efficiency over all launches (None without traffic).
    pub coalescing: Option<f64>,
    /// Launches whose binding resource was compute / memory / latency.
    pub bound_counts: (u64, u64, u64),
}

impl KernelReport {
    /// The dominant binding resource across launches.
    pub fn dominant_bound(&self) -> crate::timing::Bound {
        let (c, m, l) = self.bound_counts;
        if c >= m && c >= l {
            crate::timing::Bound::Compute
        } else if m >= l {
            crate::timing::Bound::Memory
        } else {
            crate::timing::Bound::Latency
        }
    }
}

/// The event log. Owned by [`crate::Device`]; reset between experiment
/// phases with [`Timeline::clear`] or bracketed with [`Timeline::mark`] /
/// [`Timeline::breakdown_since`].
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<Event>,
    device: Option<u32>,
}

impl Timeline {
    /// All recorded events, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Tags this timeline with the ordinal of the device that owns it.
    /// Exports ([`crate::export_timeline_spans`]) and fleet telemetry
    /// label every event with it, so merged multi-device traces stay
    /// attributable.
    pub fn set_device(&mut self, ordinal: u32) {
        self.device = Some(ordinal);
    }

    /// The owning device's ordinal, when one was set.
    pub fn device(&self) -> Option<u32> {
        self.device
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Records a supervisor annotation ([`EventKind::Marker`]) at the
    /// current point in the log. Markers carry no modeled or wall time;
    /// they exist so out-of-band policy (circuit breakers, shedding)
    /// leaves an in-band trace.
    pub fn note(&mut self, desc: impl Into<String>) {
        self.events.push(Event {
            kind: EventKind::Marker { desc: desc.into() },
            modeled_us: 0.0,
            wall_us: 0.0,
        });
    }

    /// Forgets all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// A cursor for [`Timeline::breakdown_since`].
    pub fn mark(&self) -> usize {
        self.events.len()
    }

    /// Aggregates every event.
    pub fn breakdown(&self) -> Breakdown {
        self.breakdown_since(0)
    }

    /// Aggregates events recorded after the given [`Timeline::mark`].
    pub fn breakdown_since(&self, mark: usize) -> Breakdown {
        let mut b = Breakdown::default();
        for ev in &self.events[mark.min(self.events.len())..] {
            match &ev.kind {
                EventKind::Alloc { .. } => {}
                EventKind::Htod { bytes } => {
                    b.htod_us += ev.modeled_us;
                    b.htod_bytes += bytes;
                }
                EventKind::Dtoh { bytes } => {
                    b.dtoh_us += ev.modeled_us;
                    b.dtoh_bytes += bytes;
                }
                EventKind::Kernel { name, .. } => {
                    b.kernel_us += ev.modeled_us;
                    b.kernels += 1;
                    *b.per_kernel_us.entry(name).or_insert(0.0) += ev.modeled_us;
                }
                EventKind::Fault { .. } => b.faults += 1,
                EventKind::Marker { .. } => {}
            }
        }
        b
    }

    /// Per-kernel profiler rows, sorted by descending modeled time — the
    /// `nvprof`-style summary the CLI's `profile` command prints.
    pub fn kernel_report(&self) -> Vec<KernelReport> {
        let mut by_name: BTreeMap<&'static str, KernelReport> = BTreeMap::new();
        let mut ideal_tx: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut issued_tx: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &self.events {
            if let EventKind::Kernel { name, stats, timing, .. } = &ev.kind {
                let row = by_name.entry(name).or_insert_with(|| KernelReport {
                    name,
                    launches: 0,
                    modeled_us: 0.0,
                    threads: 0,
                    flops: 0,
                    gmem_bytes: 0,
                    coalescing: None,
                    bound_counts: (0, 0, 0),
                });
                row.launches += 1;
                row.modeled_us += ev.modeled_us;
                row.threads += stats.threads;
                row.flops += stats.flops;
                row.gmem_bytes += stats.gmem_bytes;
                match timing.bound() {
                    crate::timing::Bound::Compute => row.bound_counts.0 += 1,
                    crate::timing::Bound::Memory => row.bound_counts.1 += 1,
                    crate::timing::Bound::Latency => row.bound_counts.2 += 1,
                }
                *ideal_tx.entry(name).or_insert(0) +=
                    stats.gmem_bytes.div_ceil(crate::stats::TRANSACTION_BYTES);
                *issued_tx.entry(name).or_insert(0) += stats.gmem_transactions;
            }
        }
        let mut rows: Vec<KernelReport> = by_name
            .into_values()
            .map(|mut r| {
                let issued = issued_tx[r.name];
                if issued > 0 {
                    r.coalescing = Some(ideal_tx[r.name] as f64 / issued as f64);
                }
                r
            })
            .collect();
        rows.sort_by(|a, b| b.modeled_us.total_cmp(&a.modeled_us));
        rows
    }

    /// Renders [`Timeline::kernel_report`] as an aligned text table.
    pub fn kernel_report_table(&self) -> String {
        let rows = self.kernel_report();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>12} {:>10} {:>8}
",
            "kernel", "launches", "modeled µs", "threads", "coalesce", "bound"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:<24} {:>8} {:>12.1} {:>12} {:>10} {:>8}
",
                r.name,
                r.launches,
                r.modeled_us,
                r.threads,
                r.coalescing.map_or("-".to_string(), |c| format!("{:.0}%", 100.0 * c.min(1.0))),
                match r.dominant_bound() {
                    crate::timing::Bound::Compute => "compute",
                    crate::timing::Bound::Memory => "memory",
                    crate::timing::Bound::Latency => "latency",
                }
            ));
        }
        out
    }

    /// Human-readable annotation lines for every zero-cost fault/marker
    /// event, in log order, each prefixed with the modeled timestamp (µs)
    /// at which it fired. These events carry no modeled time and are
    /// skipped by [`Timeline::breakdown`]; this is how supervisors
    /// (profilers, the CLI) surface them instead of dropping them.
    pub fn notes(&self) -> Vec<String> {
        let mut clock = 0.0_f64;
        let mut out = Vec::new();
        for ev in &self.events {
            match &ev.kind {
                EventKind::Fault { desc, op } => {
                    out.push(format!("[{clock:>12.1} µs] fault @op {op}: {desc}"));
                }
                EventKind::Marker { desc } => {
                    out.push(format!("[{clock:>12.1} µs] marker: {desc}"));
                }
                _ => {}
            }
            clock += ev.modeled_us;
        }
        out
    }

    /// Total modeled µs over all events.
    pub fn total_modeled_us(&self) -> f64 {
        self.events.iter().map(|e| e.modeled_us).sum()
    }

    /// Total host wall µs spent simulating (diagnostic).
    pub fn total_wall_us(&self) -> f64 {
        self.events.iter().map(|e| e.wall_us).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_event(name: &'static str, us: f64) -> Event {
        Event {
            kind: EventKind::Kernel {
                name,
                grid: 1,
                block: 32,
                stats: LaunchStats::default(),
                timing: KernelTiming::default(),
            },
            modeled_us: us,
            wall_us: 0.0,
        }
    }

    fn htod(bytes: u64, us: f64) -> Event {
        Event { kind: EventKind::Htod { bytes }, modeled_us: us, wall_us: 0.0 }
    }

    #[test]
    fn breakdown_aggregates_by_category_and_name() {
        let mut tl = Timeline::default();
        tl.push(htod(1000, 5.0));
        tl.push(kernel_event("sweep", 10.0));
        tl.push(kernel_event("sweep", 10.0));
        tl.push(kernel_event("reduce", 2.0));
        tl.push(Event { kind: EventKind::Dtoh { bytes: 8 }, modeled_us: 1.0, wall_us: 0.0 });
        let b = tl.breakdown();
        assert_eq!(b.kernels, 3);
        assert_eq!(b.htod_bytes, 1000);
        assert_eq!(b.dtoh_bytes, 8);
        assert!((b.kernel_us - 22.0).abs() < 1e-12);
        assert!((b.total_us() - 28.0).abs() < 1e-12);
        assert_eq!(b.per_kernel_us["sweep"], 20.0);
        assert_eq!(b.per_kernel_us["reduce"], 2.0);
        assert!((b.transfer_fraction().unwrap() - 6.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn marks_scope_aggregation() {
        let mut tl = Timeline::default();
        tl.push(kernel_event("warmup", 100.0));
        let m = tl.mark();
        tl.push(kernel_event("sweep", 7.0));
        let b = tl.breakdown_since(m);
        assert_eq!(b.kernels, 1);
        assert!((b.kernel_us - 7.0).abs() < 1e-12);
        // Full breakdown still sees both.
        assert_eq!(tl.breakdown().kernels, 2);
    }

    #[test]
    fn clear_and_empty() {
        let mut tl = Timeline::default();
        assert!(tl.is_empty());
        assert_eq!(tl.breakdown().transfer_fraction(), None);
        tl.push(kernel_event("k", 1.0));
        assert_eq!(tl.len(), 1);
        tl.clear();
        assert!(tl.is_empty());
    }

    #[test]
    fn allocs_do_not_contribute_time() {
        let mut tl = Timeline::default();
        tl.push(Event { kind: EventKind::Alloc { bytes: 1 << 20 }, modeled_us: 0.0, wall_us: 3.0 });
        assert_eq!(tl.breakdown().total_us(), 0.0);
        assert_eq!(tl.total_wall_us(), 3.0);
        assert_eq!(tl.events()[0].label(), "<alloc>");
    }

    #[test]
    fn fault_events_are_counted_and_labeled() {
        let mut tl = Timeline::default();
        tl.push(Event {
            kind: EventKind::Fault { desc: "bit-flip @ launch".into(), op: 7 },
            modeled_us: 0.0,
            wall_us: 0.0,
        });
        assert_eq!(tl.events()[0].label(), "<fault>");
        let b = tl.breakdown();
        assert_eq!(b.faults, 1);
        assert_eq!(b.total_us(), 0.0, "faults carry no modeled time");
        assert!(b.to_string().contains("faults injected: 1"));
    }

    #[test]
    fn markers_are_labeled_and_timeless() {
        let mut tl = Timeline::default();
        tl.push(kernel_event("sweep", 5.0));
        tl.note("breaker closed→open");
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.events()[1].label(), "<marker>");
        let b = tl.breakdown();
        assert_eq!(b.kernels, 1, "markers are not kernels");
        assert_eq!(b.faults, 0, "markers are not faults");
        assert!((b.total_us() - 5.0).abs() < 1e-12, "markers carry no modeled time");
        match &tl.events()[1].kind {
            EventKind::Marker { desc } => assert_eq!(desc, "breaker closed→open"),
            other => panic!("expected marker, got {other:?}"),
        }
    }

    #[test]
    fn display_contains_kernel_rows() {
        let mut tl = Timeline::default();
        tl.push(kernel_event("inject", 4.0));
        let s = tl.breakdown().to_string();
        assert!(s.contains("inject"));
        assert!(s.contains("kernels 4.0 (1)"));
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    fn kernel_with(name: &'static str, us: f64, bytes: u64, tx: u64) -> Event {
        let stats = LaunchStats {
            blocks: 1,
            threads: 32,
            gmem_bytes: bytes,
            gmem_transactions: tx,
            ..Default::default()
        };
        let timing = KernelTiming { mem_us: us, total_us: us, ..Default::default() };
        Event {
            kind: EventKind::Kernel { name, grid: 1, block: 32, stats, timing },
            modeled_us: us,
            wall_us: 0.0,
        }
    }

    #[test]
    fn kernel_report_aggregates_and_sorts() {
        let mut tl = Timeline::default();
        tl.push(kernel_with("small", 1.0, 128, 1));
        tl.push(kernel_with("big", 5.0, 1280, 20));
        tl.push(kernel_with("big", 5.0, 1280, 20));
        let rows = tl.kernel_report();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "big");
        assert_eq!(rows[0].launches, 2);
        assert!((rows[0].modeled_us - 10.0).abs() < 1e-12);
        // big: ideal = 2×10 tx, issued 40 → 50% coalesced.
        assert_eq!(rows[0].coalescing, Some(0.5));
        assert_eq!(rows[1].name, "small");
        assert_eq!(rows[1].coalescing, Some(1.0));
    }

    #[test]
    fn report_table_renders() {
        let mut tl = Timeline::default();
        tl.push(kernel_with("sweep", 3.0, 256, 2));
        let table = tl.kernel_report_table();
        assert!(table.contains("sweep"));
        assert!(table.contains("memory"));
        assert!(table.contains("100%"));
    }

    #[test]
    fn empty_timeline_empty_report() {
        assert!(Timeline::default().kernel_report().is_empty());
    }
}
