//! Device memory: buffers and the global-memory views kernels access.
//!
//! A [`DeviceBuffer`] models a `cudaMalloc`'d allocation. Host code cannot
//! index it directly — data moves through [`crate::Device::htod`] /
//! [`crate::Device::dtoh`] (which the timing model charges for) and
//! kernels access it through [`GlobalRef`] (read-only) or [`GlobalMut`]
//! (read-write) views.
//!
//! # Safety model
//!
//! `GlobalMut` hands every simulated thread interior-mutable access to the
//! same slice, exactly like CUDA global memory. A racy kernel is a bug in
//! the *kernel* (as it would be on silicon); the simulator does not make
//! it UB-free. Enable the `racecheck` cargo feature to attach a per-cell
//! access tracker that panics with a diagnostic when two threads of one
//! launch touch the same element without an ordering barrier — the
//! cuda-memcheck analog used by this workspace's test suites.

use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64;

/// Marker for types that may live in device memory: plain-old-data that is
/// freely copyable and thread-safe. `Default` supplies the zero pattern
/// for fresh allocations (`cudaMemset(0)` analog).
pub trait DeviceCopy: Copy + Default + Send + Sync + 'static {}
impl<T: Copy + Default + Send + Sync + 'static> DeviceCopy for T {}

/// Identifier distinguishing allocations in coalescing bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct BufId(pub u32);

static NEXT_BUF_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_buf_id() -> BufId {
    let v = NEXT_BUF_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    BufId(v as u32)
}

/// A device-resident typed allocation.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Box<[UnsafeCell<T>]>,
    id: BufId,
}

// SAFETY: the UnsafeCells are only mutated through GlobalMut views inside
// kernel launches; the launch engine is responsible for the discipline
// (documented in the module docs). The buffer itself is just storage.
unsafe impl<T: Send> Send for DeviceBuffer<T> {}
unsafe impl<T: Send + Sync> Sync for DeviceBuffer<T> {}

impl<T: DeviceCopy> DeviceBuffer<T> {
    /// Allocates `len` zero-initialised elements. Prefer going through
    /// [`crate::Device::alloc`] so the allocation is recorded on the
    /// timeline.
    pub(crate) fn zeroed(len: usize) -> Self {
        let data: Box<[UnsafeCell<T>]> =
            (0..len).map(|_| UnsafeCell::new(T::default())).collect();
        DeviceBuffer { data, id: fresh_buf_id() }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the allocation in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64
    }

    /// The allocation id (used in coalescing stats).
    #[inline]
    pub fn id(&self) -> BufId {
        self.id
    }

    /// Overwrites device contents from a host slice (engine-internal; the
    /// public, time-charged path is [`crate::Device::htod`]).
    pub(crate) fn copy_from_host(&mut self, src: &[T]) {
        assert_eq!(
            src.len(),
            self.len(),
            "htod length mismatch: host {} vs device {}",
            src.len(),
            self.len()
        );
        for (cell, v) in self.data.iter_mut().zip(src) {
            *cell.get_mut() = *v;
        }
    }

    /// Reads device contents into a fresh host vector (engine-internal;
    /// the time-charged path is [`crate::Device::dtoh`]).
    pub(crate) fn copy_to_host(&self) -> Vec<T> {
        // SAFETY: &self guarantees no kernel holds a GlobalMut on another
        // thread (launches are synchronous and take the views by borrow).
        self.data.iter().map(|c| unsafe { *c.get() }).collect()
    }

    /// A read-only global-memory view for a kernel parameter.
    pub fn view(&self) -> GlobalRef<'_, T> {
        GlobalRef { data: &self.data, id: self.id }
    }

    /// A read-write global-memory view for a kernel parameter.
    ///
    /// Takes `&mut self` so host-side Rust code cannot also hold a
    /// read view of a buffer a kernel is mutating — the one aliasing
    /// mistake CUDA lets you make that we can rule out statically.
    pub fn view_mut(&mut self) -> GlobalMut<'_, T> {
        GlobalMut {
            data: &self.data,
            id: self.id,
            #[cfg(feature = "racecheck")]
            race: std::sync::Arc::new(crate::racecheck::RaceTable::new(self.data.len())),
        }
    }
}

/// Read-only kernel view of a [`DeviceBuffer`].
#[derive(Clone, Copy, Debug)]
pub struct GlobalRef<'a, T> {
    pub(crate) data: &'a [UnsafeCell<T>],
    pub(crate) id: BufId,
}

// SAFETY: GlobalRef never writes; concurrent reads of the UnsafeCells are
// fine as long as no GlobalMut to the same buffer exists, which the
// &self / &mut self split on DeviceBuffer enforces.
unsafe impl<T: Sync> Sync for GlobalRef<'_, T> {}
unsafe impl<T: Send> Send for GlobalRef<'_, T> {}

impl<T: DeviceCopy> GlobalRef<'_, T> {
    /// Number of elements visible through the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub(crate) fn raw_load(&self, i: usize) -> T {
        // SAFETY: no writer can exist (see Sync impl note).
        unsafe { *self.data[i].get() }
    }
}

/// Read-write kernel view of a [`DeviceBuffer`].
#[derive(Clone)]
pub struct GlobalMut<'a, T> {
    pub(crate) data: &'a [UnsafeCell<T>],
    pub(crate) id: BufId,
    #[cfg(feature = "racecheck")]
    pub(crate) race: std::sync::Arc<crate::racecheck::RaceTable>,
}

// SAFETY: this is the CUDA global-memory contract — many threads may hold
// the view; *well-synchronised kernels* write disjoint cells or order
// accesses by block-local barriers. Racy kernels are bugs; the racecheck
// feature exists to find them.
unsafe impl<T: Send + Sync> Sync for GlobalMut<'_, T> {}
unsafe impl<T: Send> Send for GlobalMut<'_, T> {}

impl<T: DeviceCopy> GlobalMut<'_, T> {
    /// Number of elements visible through the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub(crate) fn raw_load(&self, i: usize) -> T {
        // SAFETY: see type-level contract.
        unsafe { *self.data[i].get() }
    }

    #[inline]
    pub(crate) fn raw_store(&self, i: usize, v: T) {
        // SAFETY: see type-level contract.
        unsafe { *self.data[i].get() = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_alloc_and_roundtrip() {
        let mut b = DeviceBuffer::<f64>::zeroed(4);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.size_bytes(), 32);
        assert_eq!(b.copy_to_host(), vec![0.0; 4]);
        b.copy_from_host(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.copy_to_host(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_buffer() {
        let b = DeviceBuffer::<u32>::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.copy_to_host(), Vec::<u32>::new());
        assert!(b.view().is_empty());
    }

    #[test]
    #[should_panic(expected = "htod length mismatch")]
    fn htod_length_mismatch_panics() {
        let mut b = DeviceBuffer::<u32>::zeroed(2);
        b.copy_from_host(&[1, 2, 3]);
    }

    #[test]
    fn buffer_ids_are_unique() {
        let a = DeviceBuffer::<u8>::zeroed(1);
        let b = DeviceBuffer::<u8>::zeroed(1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn views_expose_contents() {
        let mut b = DeviceBuffer::<u32>::zeroed(3);
        b.copy_from_host(&[7, 8, 9]);
        let v = b.view();
        assert_eq!(v.len(), 3);
        assert_eq!(v.raw_load(1), 8);
        let m = b.view_mut();
        m.raw_store(2, 42);
        assert_eq!(m.raw_load(2), 42);
        let _ = m;
        assert_eq!(b.copy_to_host(), vec![7, 8, 42]);
    }
}
