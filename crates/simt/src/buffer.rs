//! Device memory: buffers and the global-memory views kernels access.
//!
//! A [`DeviceBuffer`] models a `cudaMalloc`'d allocation. Host code cannot
//! index it directly — data moves through [`crate::Device::htod`] /
//! [`crate::Device::dtoh`] (which the timing model charges for) and
//! kernels access it through [`GlobalRef`] (read-only) or [`GlobalMut`]
//! (read-write) views.
//!
//! # Safety model
//!
//! `GlobalMut` hands every simulated thread interior-mutable access to the
//! same slice, exactly like CUDA global memory. A racy kernel is a bug in
//! the *kernel* (as it would be on silicon); the simulator does not make
//! it UB-free. Enable the `racecheck` cargo feature to attach a per-cell
//! access tracker that panics with a diagnostic when two threads of one
//! launch touch the same element without an ordering barrier — the
//! cuda-memcheck analog used by this workspace's test suites.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Marker for types that may live in device memory: plain-old-data that is
/// freely copyable and thread-safe. `Default` supplies the zero pattern
/// for fresh allocations (`cudaMemset(0)` analog).
pub trait DeviceCopy: Copy + Default + Send + Sync + 'static {}
impl<T: Copy + Default + Send + Sync + 'static> DeviceCopy for T {}

/// Identifier distinguishing allocations in coalescing bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct BufId(pub u32);

/// The guard word framing every allocation. Chosen so a single bit flip,
/// a zero-fill or a poison-fill all fail the check.
pub(crate) const CANARY: u64 = 0xC0FF_EE00_DEAD_BEA7;

/// Guard words on each side of an allocation.
pub(crate) const CANARY_WORDS: usize = 2;

/// Byte written over a freed allocation so use-after-free reads are
/// loudly wrong (0xA5A5… is a signalling-NaN-free but obviously-bogus
/// pattern for every element type we store).
pub(crate) const POISON_BYTE: u8 = 0xA5;

static NEXT_BUF_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_buf_id() -> BufId {
    let v = NEXT_BUF_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    BufId(v as u32)
}

/// Tracks the live allocations of one device: total bytes in use
/// (checked against [`crate::DeviceProps::global_mem_bytes`]) and a
/// registry of live regions so injected bit flips can target resident
/// memory. Shared `Arc`-style between the device and its buffers;
/// [`DeviceBuffer`]s deregister themselves on drop.
#[derive(Debug, Default)]
pub(crate) struct MemPool {
    in_use: AtomicU64,
    registry: Mutex<BTreeMap<u32, Region>>,
    /// Canary violations caught at free time (the drop-side check).
    freed_smashed: AtomicU64,
}

#[derive(Clone, Copy, Debug)]
struct Region {
    addr: usize,
    bytes: u64,
    /// Address of the allocation's leading guard words.
    front: usize,
    /// Address of the allocation's trailing guard words.
    rear: usize,
}

impl MemPool {
    /// Bytes currently allocated from this pool.
    pub(crate) fn in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    fn register(&self, id: BufId, addr: usize, bytes: u64, front: usize, rear: usize) {
        self.in_use.fetch_add(bytes, Ordering::Relaxed);
        self.registry.lock().unwrap().insert(id.0, Region { addr, bytes, front, rear });
    }

    fn release(&self, id: BufId) {
        if let Some(r) = self.registry.lock().unwrap().remove(&id.0) {
            self.in_use.fetch_sub(r.bytes, Ordering::Relaxed);
        }
    }

    fn note_freed_smashed(&self) {
        self.freed_smashed.fetch_add(1, Ordering::Relaxed);
    }

    /// Canary violations caught at free time so far.
    pub(crate) fn freed_smashed(&self) -> u64 {
        self.freed_smashed.load(Ordering::Relaxed)
    }

    /// On-demand canary audit over every live allocation: returns the
    /// live count and the ids whose guard words no longer hold
    /// [`CANARY`]. Safe to call between synchronous device ops — the
    /// guard boxes are owned by live `DeviceBuffer`s and deregistered
    /// before they drop.
    pub(crate) fn audit(&self) -> (usize, Vec<u32>) {
        let reg = self.registry.lock().unwrap();
        let mut smashed = Vec::new();
        for (&id, r) in reg.iter() {
            let ok = [r.front, r.rear].iter().all(|&addr| {
                (0..CANARY_WORDS).all(|w| {
                    // SAFETY: the region is registered, so both guard
                    // boxes are alive; reads are within their bounds.
                    unsafe { *((addr + w * 8) as *const u64) == CANARY }
                })
            });
            if !ok {
                smashed.push(id);
            }
        }
        (reg.len(), smashed)
    }

    /// Applies an injected [`crate::FaultKind::BufferBitFlip`]: picks the
    /// `nth`-modulo-live allocation (registry order is deterministic)
    /// and flips one bit of the word `word` selects. Returns the hit
    /// buffer, or `None` when nothing is resident. Only called between
    /// synchronous device ops while no kernel is running, so the raw
    /// write cannot race a launch.
    pub(crate) fn flip_bit(&self, nth: u64, word: u64, bit: u32) -> Option<BufId> {
        let reg = self.registry.lock().unwrap();
        let live: Vec<(&u32, &Region)> = reg.iter().filter(|(_, r)| r.bytes > 0).collect();
        if live.is_empty() {
            return None;
        }
        let (&id, r) = live[(nth % live.len() as u64) as usize];
        let (byte, bit_in_byte) = crate::fault::word_flip_target(word, bit, r.bytes);
        // SAFETY: the region was registered by a live DeviceBuffer and is
        // removed in its Drop, so addr+byte is inside a live allocation;
        // flips happen only between synchronous ops (see doc above).
        unsafe {
            let p = (r.addr + byte as usize) as *mut u8;
            *p ^= 1 << bit_in_byte;
        }
        Some(BufId(id))
    }
}

/// A device-resident typed allocation, framed by guard (canary) words.
///
/// The guards are checked when the buffer is freed and on demand via
/// [`crate::Device::audit_canaries`]; a wild write that lands on one is
/// caught instead of silently corrupting a neighbour. Freeing also
/// poisons the payload with [`POISON_BYTE`] so any raw-pointer
/// use-after-free reads garbage rather than stale plausible data.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    front: Box<[UnsafeCell<u64>]>,
    data: Box<[UnsafeCell<T>]>,
    rear: Box<[UnsafeCell<u64>]>,
    id: BufId,
    pool: Option<Arc<MemPool>>,
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        let intact = self.canaries_intact();
        self.poison_payload();
        if let Some(pool) = &self.pool {
            if !intact {
                pool.note_freed_smashed();
            }
            pool.release(self.id);
        }
        // The free-side check. Never double-panic: if the thread is
        // already unwinding (e.g. a kernel fault), the violation is
        // still counted on the pool above.
        if !intact && !std::thread::panicking() {
            panic!("canary smashed: buffer {} guard words overwritten", self.id.0);
        }
    }
}

// SAFETY: the UnsafeCells are only mutated through GlobalMut views inside
// kernel launches; the launch engine is responsible for the discipline
// (documented in the module docs). The buffer itself is just storage.
unsafe impl<T: Send> Send for DeviceBuffer<T> {}
unsafe impl<T: Send + Sync> Sync for DeviceBuffer<T> {}

impl<T: DeviceCopy> DeviceBuffer<T> {
    /// Allocates `len` zero-initialised elements. Prefer going through
    /// [`crate::Device::alloc`] so the allocation is recorded on the
    /// timeline.
    pub(crate) fn zeroed(len: usize) -> Self {
        let canaries = || -> Box<[UnsafeCell<u64>]> {
            (0..CANARY_WORDS).map(|_| UnsafeCell::new(CANARY)).collect()
        };
        let data: Box<[UnsafeCell<T>]> =
            (0..len).map(|_| UnsafeCell::new(T::default())).collect();
        DeviceBuffer { front: canaries(), data, rear: canaries(), id: fresh_buf_id(), pool: None }
    }

    /// Allocates like [`DeviceBuffer::zeroed`] but accounted against (and
    /// registered with) a device's [`MemPool`]; the registration is
    /// undone when the buffer drops. The boxed-slice storage never
    /// moves, so the registered address stays valid even if the
    /// `DeviceBuffer` handle itself is moved.
    pub(crate) fn zeroed_in(len: usize, pool: &Arc<MemPool>) -> Self {
        let mut buf = Self::zeroed(len);
        pool.register(
            buf.id,
            buf.data.as_ptr() as usize,
            buf.size_bytes(),
            buf.front.as_ptr() as usize,
            buf.rear.as_ptr() as usize,
        );
        buf.pool = Some(Arc::clone(pool));
        buf
    }

    /// Flips one bit of the raw allocation (injected transfer
    /// corruption). `byte` must be in bounds.
    pub(crate) fn flip_bit(&mut self, byte: usize, bit_in_byte: u32) {
        assert!((byte as u64) < self.size_bytes(), "flip_bit out of bounds");
        // SAFETY: &mut self — no views or kernels alive; byte checked.
        unsafe {
            let p = self.data.as_ptr() as *mut u8;
            *p.add(byte) ^= 1 << (bit_in_byte % 8);
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the allocation in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64
    }

    /// The allocation id (used in coalescing stats).
    #[inline]
    pub fn id(&self) -> BufId {
        self.id
    }

    /// Overwrites device contents from a host slice (engine-internal; the
    /// public, time-charged path is [`crate::Device::htod`]).
    pub(crate) fn copy_from_host(&mut self, src: &[T]) {
        assert_eq!(
            src.len(),
            self.len(),
            "htod length mismatch: host {} vs device {}",
            src.len(),
            self.len()
        );
        for (cell, v) in self.data.iter_mut().zip(src) {
            *cell.get_mut() = *v;
        }
    }

    /// Reads device contents into a fresh host vector (engine-internal;
    /// the time-charged path is [`crate::Device::dtoh`]).
    pub(crate) fn copy_to_host(&self) -> Vec<T> {
        // SAFETY: &self guarantees no kernel holds a GlobalMut on another
        // thread (launches are synchronous and take the views by borrow).
        self.data.iter().map(|c| unsafe { *c.get() }).collect()
    }

    /// A read-only global-memory view for a kernel parameter.
    pub fn view(&self) -> GlobalRef<'_, T> {
        GlobalRef { data: &self.data, id: self.id }
    }

    /// A read-write global-memory view for a kernel parameter.
    ///
    /// Takes `&mut self` so host-side Rust code cannot also hold a
    /// read view of a buffer a kernel is mutating — the one aliasing
    /// mistake CUDA lets you make that we can rule out statically.
    pub fn view_mut(&mut self) -> GlobalMut<'_, T> {
        GlobalMut {
            data: &self.data,
            id: self.id,
            #[cfg(feature = "racecheck")]
            race: std::sync::Arc::new(crate::racecheck::RaceTable::new(self.data.len())),
        }
    }
}

impl<T> DeviceBuffer<T> {
    /// Overwrites the payload with [`POISON_BYTE`] — called on free so a
    /// stale raw pointer into the allocation reads 0xA5 garbage, loudly,
    /// instead of stale plausible data.
    fn poison_payload(&mut self) {
        for cell in self.data.iter_mut() {
            // SAFETY: &mut self — no views or kernels alive.
            unsafe {
                std::ptr::write_bytes(cell.get() as *mut u8, POISON_BYTE, std::mem::size_of::<T>());
            }
        }
    }

    /// True while both guard frames still hold [`CANARY`].
    pub(crate) fn canaries_intact(&self) -> bool {
        self.front
            .iter()
            .chain(self.rear.iter())
            // SAFETY: canary cells are never handed to kernels; between
            // synchronous ops nothing else writes them.
            .all(|c| unsafe { *c.get() } == CANARY)
    }

    /// Deliberately overwrites one trailing guard word — the test hook
    /// for the canary detection net (there is no legitimate way to
    /// reach the guards through the public API).
    #[doc(hidden)]
    pub fn smash_rear_canary_for_test(&mut self) {
        *self.rear[0].get_mut() = 0;
    }
}

/// Read-only kernel view of a [`DeviceBuffer`].
#[derive(Clone, Copy, Debug)]
pub struct GlobalRef<'a, T> {
    pub(crate) data: &'a [UnsafeCell<T>],
    pub(crate) id: BufId,
}

// SAFETY: GlobalRef never writes; concurrent reads of the UnsafeCells are
// fine as long as no GlobalMut to the same buffer exists, which the
// &self / &mut self split on DeviceBuffer enforces.
unsafe impl<T: Sync> Sync for GlobalRef<'_, T> {}
unsafe impl<T: Send> Send for GlobalRef<'_, T> {}

impl<T: DeviceCopy> GlobalRef<'_, T> {
    /// Number of elements visible through the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub(crate) fn raw_load(&self, i: usize) -> T {
        // SAFETY: no writer can exist (see Sync impl note).
        unsafe { *self.data[i].get() }
    }
}

/// Read-write kernel view of a [`DeviceBuffer`].
#[derive(Clone)]
pub struct GlobalMut<'a, T> {
    pub(crate) data: &'a [UnsafeCell<T>],
    pub(crate) id: BufId,
    #[cfg(feature = "racecheck")]
    pub(crate) race: std::sync::Arc<crate::racecheck::RaceTable>,
}

// SAFETY: this is the CUDA global-memory contract — many threads may hold
// the view; *well-synchronised kernels* write disjoint cells or order
// accesses by block-local barriers. Racy kernels are bugs; the racecheck
// feature exists to find them.
unsafe impl<T: Send + Sync> Sync for GlobalMut<'_, T> {}
unsafe impl<T: Send> Send for GlobalMut<'_, T> {}

impl<T: DeviceCopy> GlobalMut<'_, T> {
    /// Number of elements visible through the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub(crate) fn raw_load(&self, i: usize) -> T {
        // SAFETY: see type-level contract.
        unsafe { *self.data[i].get() }
    }

    #[inline]
    pub(crate) fn raw_store(&self, i: usize, v: T) {
        // SAFETY: see type-level contract.
        unsafe { *self.data[i].get() = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_alloc_and_roundtrip() {
        let mut b = DeviceBuffer::<f64>::zeroed(4);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.size_bytes(), 32);
        assert_eq!(b.copy_to_host(), vec![0.0; 4]);
        b.copy_from_host(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.copy_to_host(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_buffer() {
        let b = DeviceBuffer::<u32>::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.copy_to_host(), Vec::<u32>::new());
        assert!(b.view().is_empty());
    }

    #[test]
    #[should_panic(expected = "htod length mismatch")]
    fn htod_length_mismatch_panics() {
        let mut b = DeviceBuffer::<u32>::zeroed(2);
        b.copy_from_host(&[1, 2, 3]);
    }

    #[test]
    fn buffer_ids_are_unique() {
        let a = DeviceBuffer::<u8>::zeroed(1);
        let b = DeviceBuffer::<u8>::zeroed(1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn pool_accounting_registers_and_releases_on_drop() {
        let pool = Arc::new(MemPool::default());
        let a = DeviceBuffer::<f64>::zeroed_in(100, &pool);
        let b = DeviceBuffer::<u32>::zeroed_in(10, &pool);
        assert_eq!(pool.in_use(), 840);
        drop(a);
        assert_eq!(pool.in_use(), 40, "freeing a buffer must release its bytes");
        drop(b);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn pool_flip_bit_corrupts_exactly_one_word_of_a_live_buffer() {
        let pool = Arc::new(MemPool::default());
        let mut buf = DeviceBuffer::<f64>::zeroed_in(8, &pool);
        buf.copy_from_host(&[1.0; 8]);
        let hit = pool.flip_bit(0, 3, 55).expect("one live buffer to hit");
        assert_eq!(hit, buf.id());
        let changed = buf.copy_to_host().iter().filter(|&&v| v != 1.0).count();
        assert_eq!(changed, 1, "exactly one word must be corrupted");
        // Same draw flips the same bit back.
        pool.flip_bit(0, 3, 55).unwrap();
        assert_eq!(buf.copy_to_host(), vec![1.0; 8]);
    }

    #[test]
    fn pool_flip_bit_on_empty_pool_is_none() {
        let pool = Arc::new(MemPool::default());
        assert_eq!(pool.flip_bit(1, 2, 3), None);
        let _empty = DeviceBuffer::<u8>::zeroed_in(0, &pool);
        assert_eq!(pool.flip_bit(1, 2, 3), None, "zero-byte regions are skipped");
    }

    #[test]
    fn canaries_start_intact_and_audit_sees_live_buffers() {
        let pool = Arc::new(MemPool::default());
        let a = DeviceBuffer::<f64>::zeroed_in(16, &pool);
        let b = DeviceBuffer::<u32>::zeroed_in(4, &pool);
        assert!(a.canaries_intact() && b.canaries_intact());
        assert_eq!(pool.audit(), (2, vec![]));
        drop(a);
        drop(b);
        assert_eq!(pool.audit(), (0, vec![]));
        assert_eq!(pool.freed_smashed(), 0);
    }

    #[test]
    fn audit_flags_a_smashed_canary_by_id() {
        let pool = Arc::new(MemPool::default());
        let _clean = DeviceBuffer::<f64>::zeroed_in(8, &pool);
        let mut victim = DeviceBuffer::<f64>::zeroed_in(8, &pool);
        victim.smash_rear_canary_for_test();
        let (live, smashed) = pool.audit();
        assert_eq!(live, 2);
        assert_eq!(smashed, vec![victim.id().0]);
        std::mem::forget(victim); // avoid the (intended) free-side panic
    }

    #[test]
    #[should_panic(expected = "canary smashed")]
    fn free_side_check_is_loud() {
        let pool = Arc::new(MemPool::default());
        let mut buf = DeviceBuffer::<u32>::zeroed_in(4, &pool);
        buf.smash_rear_canary_for_test();
        drop(buf);
    }

    #[test]
    fn free_poisons_the_payload() {
        let mut buf = DeviceBuffer::<u64>::zeroed(4);
        buf.copy_from_host(&[7, 7, 7, 7]);
        buf.poison_payload();
        let poisoned = u64::from_le_bytes([POISON_BYTE; 8]);
        assert_eq!(
            buf.copy_to_host(),
            vec![poisoned; 4],
            "drop-path poisoning must overwrite every payload byte"
        );
    }

    #[test]
    fn views_expose_contents() {
        let mut b = DeviceBuffer::<u32>::zeroed(3);
        b.copy_from_host(&[7, 8, 9]);
        let v = b.view();
        assert_eq!(v.len(), 3);
        assert_eq!(v.raw_load(1), 8);
        let m = b.view_mut();
        m.raw_store(2, 42);
        assert_eq!(m.raw_load(2), 42);
        let _ = m;
        assert_eq!(b.copy_to_host(), vec![7, 8, 42]);
    }
}
