//! Integration tests of simulator behaviour that spans modules: fault
//! propagation from parallel workers, worker-count independence, and
//! timeline determinism under concurrency.

use simt::{BlockScope, Device, DeviceProps, GlobalMut, Kernel, LaunchConfig};

struct WriteAll<'a> {
    out: GlobalMut<'a, u32>,
    n: usize,
    /// When set, thread (fault_gid) indexes out of bounds.
    fault_gid: Option<usize>,
}

impl Kernel for WriteAll<'_> {
    fn name(&self) -> &'static str {
        "write_all"
    }
    fn block(&self, blk: &mut BlockScope) {
        blk.threads(|t| {
            let i = t.global_id();
            if Some(i) == self.fault_gid {
                t.st(&self.out, self.n + 10, 1); // fault
            } else if i < self.n {
                t.st(&self.out, i, i as u32);
            }
        });
    }
}

#[test]
fn device_fault_in_parallel_worker_propagates_to_launcher() {
    let result = std::panic::catch_unwind(|| {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), 4);
        let n = 100_000; // large enough to take the threaded path
        let mut out = dev.alloc::<u32>(n);
        let k = WriteAll { out: out.view_mut(), n, fault_gid: Some(n / 2) };
        dev.launch(LaunchConfig::for_elems(n), &k);
    });
    assert!(result.is_err(), "an out-of-bounds store must abort the launch");
}

#[test]
fn results_do_not_depend_on_worker_count() {
    let run = |workers: usize| {
        let mut dev = Device::with_workers(DeviceProps::paper_rig(), workers);
        let n = 50_000;
        let mut out = dev.alloc::<u32>(n);
        let k = WriteAll { out: out.view_mut(), n, fault_gid: None };
        dev.launch(LaunchConfig::for_elems(n), &k);
        (dev.dtoh(&out), dev.timeline().total_modeled_us())
    };
    let (d1, t1) = run(1);
    let (d8, t8) = run(8);
    assert_eq!(d1, d8, "functional results are scheduling-independent");
    assert_eq!(t1, t8, "modeled time is scheduling-independent");
}

#[test]
fn grid_of_many_small_blocks_completes() {
    // Stress the block scheduler: 20k blocks of one warp each.
    let mut dev = Device::with_workers(DeviceProps::paper_rig(), 8);
    let n = 20_000 * 32;
    let mut out = dev.alloc::<u32>(n);
    let k = WriteAll { out: out.view_mut(), n, fault_gid: None };
    dev.launch(LaunchConfig::for_elems_with_block(n, 32), &k);
    let host = dev.dtoh(&out);
    assert!(host.iter().enumerate().all(|(i, &v)| v == i as u32));
    match &dev.timeline().events().last().unwrap().kind {
        simt::EventKind::Dtoh { bytes } => assert_eq!(*bytes, 4 * n as u64),
        other => panic!("expected dtoh event, got {other:?}"),
    }
}
