//! Schema coverage for `results/BENCH_summary.json`.
//!
//! The summary is the cross-PR perf trajectory: every experiment binary
//! folds its medians into it, so a bin missing from the committed file
//! means its numbers silently fell out of the record. This test pins the
//! schema — every bin present, every entry carrying its medians — so a
//! renamed experiment or a dropped `emit` fails loudly.

use std::fs;

use fbs_bench::results_dir;
use telemetry::json::{self, Value};

/// Every experiment bin's summary key (E5 and E7 emit two tables each),
/// plus the micro-bench group.
const EXPERIMENTS: &[&str] = &[
    "e1_total_speedup",
    "e2_kernel_speedup",
    "e3_breakdown",
    "e4_topology",
    "e5a_loading",
    "e5b_tolerance",
    "e6_primitives",
    "e7a_backward_strategy",
    "e7b_multicore",
    "e8_deep_trees",
    "e9_batch",
    "e10_devices",
    "e11_three_phase",
    "e12_faults",
    "e13_service",
    "e14_contingency",
    "e15_fleet",
    "e16_soak",
    "e17_mesh",
    "bench_generators",
];

/// Groups with no modeled clock (host-side generator benches): their
/// entries carry wall medians instead.
const WALL_ONLY: &[&str] = &["bench_generators"];

#[test]
fn summary_covers_every_experiment_bin() {
    let path = results_dir().join("BENCH_summary.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("summary missing at {}: {e}", path.display()));
    let doc = json::parse(&text).expect("summary must be valid JSON");
    let exps = doc
        .get("experiments")
        .expect("summary must have an `experiments` map");

    let mut missing = Vec::new();
    for &name in EXPERIMENTS {
        let Some(entry) = exps.get(name) else {
            missing.push(name);
            continue;
        };
        // Each entry carries its headline median and a sample count;
        // wall medians are host-dependent and optional elsewhere.
        let median_key =
            if WALL_ONLY.contains(&name) { "median_wall_us" } else { "median_modeled_us" };
        assert!(
            entry.get(median_key).and_then(Value::as_f64).is_some(),
            "{name}: {median_key} missing or non-numeric"
        );
        assert!(
            entry.get("samples").and_then(Value::as_f64).is_some_and(|s| s >= 1.0),
            "{name}: samples missing or < 1"
        );
    }
    assert!(
        missing.is_empty(),
        "experiments missing from BENCH_summary.json (re-run their bins): {missing:?}"
    );

    // E9's headline throughput metric rides in the same entry.
    let sps = exps
        .get("e9_batch")
        .and_then(|e| e.get("scenarios_per_sec"))
        .and_then(Value::as_f64);
    assert!(
        sps.is_some_and(|v| v > 0.0),
        "e9_batch must record a positive scenarios_per_sec, got {sps:?}"
    );

    // E14's headline metrics: screening throughput plus the warm/cold
    // iteration medians of the paired contingency sample.
    let e14 = exps.get("e14_contingency").expect("checked above");
    for key in ["contingencies_per_sec", "warm_median_iters", "cold_median_iters"] {
        let v = e14.get(key).and_then(Value::as_f64);
        assert!(v.is_some_and(|v| v > 0.0), "e14_contingency: {key} missing, got {v:?}");
    }
    let (warm, cold) = (
        e14.get("warm_median_iters").and_then(Value::as_f64).unwrap(),
        e14.get("cold_median_iters").and_then(Value::as_f64).unwrap(),
    );
    assert!(
        warm <= cold,
        "warm median iterations ({warm}) must not exceed cold ({cold})"
    );

    // E15's headline metrics: fleet throughput and the scaling factor
    // behind the near-linear-scaling claim.
    let e15 = exps.get("e15_fleet").expect("checked above");
    let rps = e15.get("fleet.requests_per_sec").and_then(Value::as_f64);
    assert!(
        rps.is_some_and(|v| v > 0.0),
        "e15_fleet must record a positive fleet.requests_per_sec, got {rps:?}"
    );
    let scaling = e15.get("scaling_4v1").and_then(Value::as_f64);
    assert!(
        scaling.is_some_and(|v| v >= 3.0),
        "e15_fleet: 4-device scaling must be ≥3x, got {scaling:?}"
    );

    // E16's headline metrics: storm-phase throughput and the CRC net's
    // detection count (every one of which was caught, none silent).
    let e16 = exps.get("e16_soak").expect("checked above");
    let soak_rps = e16.get("soak.requests_per_sec").and_then(Value::as_f64);
    assert!(
        soak_rps.is_some_and(|v| v > 0.0),
        "e16_soak must record a positive soak.requests_per_sec, got {soak_rps:?}"
    );
    let det = e16.get("soak.detected_corruptions").and_then(Value::as_f64);
    assert!(
        det.is_some_and(|v| v >= 0.0),
        "e16_soak must record soak.detected_corruptions, got {det:?}"
    );

    // E17's headline metrics: the batched-DG-sweep acceptance factor
    // (≥10× serial outer-loop re-solves), its throughput, and the flat
    // outer-iteration count behind the meshed/DG cost claim.
    let e17 = exps.get("e17_mesh").expect("checked above");
    let dg_speedup = e17.get("dg_batch_speedup").and_then(Value::as_f64);
    assert!(
        dg_speedup.is_some_and(|v| v >= 10.0),
        "e17_mesh: batched DG sweep must record ≥10x over serial, got {dg_speedup:?}"
    );
    let dg_sps = e17.get("dg_scenarios_per_sec").and_then(Value::as_f64);
    assert!(
        dg_sps.is_some_and(|v| v > 0.0),
        "e17_mesh must record a positive dg_scenarios_per_sec, got {dg_sps:?}"
    );
    let outer = e17.get("outer_iters_headline").and_then(Value::as_f64);
    assert!(
        outer.is_some_and(|v| v >= 1.0 && v <= 40.0),
        "e17_mesh: outer_iters_headline must be a sane outer count, got {outer:?}"
    );
}
