//! Shared infrastructure for the experiment binaries (`exp_e1` … `exp_e7`).
//!
//! Each binary regenerates one table/figure of the reconstructed
//! evaluation (see `DESIGN.md`, per-experiment index): it prints a
//! markdown table to stdout and writes the same rows as CSV under
//! `results/`. All experiments run on the calibrated `paper_rig`
//! device/host models with fixed seeds, so output is reproducible
//! bit-for-bit.

pub mod micro;

use std::fmt::Display;
use std::fs;
use std::path::{Path, PathBuf};

use fbs::{SolveResult, SolverConfig};
use powergrid::RadialNetwork;
use rng::rngs::StdRng;
use rng::SeedableRng;

/// The tree sizes of the paper's evaluation: 1K–256K buses, powers of two.
pub const PAPER_SIZES: [usize; 9] =
    [1024, 2048, 4096, 8192, 16_384, 32_768, 65_536, 131_072, 262_144];

/// The seed every experiment derives its workloads from.
pub const SEED: u64 = 20200817; // the paper's publication date

/// Deterministic RNG for experiment `tag`.
pub fn rng_for(tag: u64) -> StdRng {
    StdRng::seed_from_u64(SEED ^ tag)
}

/// The solver configuration used throughout the evaluation.
pub fn eval_config() -> SolverConfig {
    SolverConfig::default()
}

/// A simple column-aligned markdown table accumulated row by row and
/// mirrored to CSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as column-aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("\n## {}\n\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let inner: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>width$}", width = w))
                .collect();
            format!("| {} |\n", inner.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders the rows as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the markdown table and writes `results/<name>.csv`
    /// (relative to the workspace root when run via cargo).
    pub fn emit(&self, name: &str) {
        print!("{}", self.to_markdown());
        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match fs::write(&path, self.to_csv()) {
            Ok(()) => println!("\n[written {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// `results/` next to the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .map(|ws| ws.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats µs with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 100_000.0 {
        format!("{:.1} ms", v / 1000.0)
    } else {
        format!("{v:.1} µs")
    }
}

/// Formats a speedup factor.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Validates a converged result against its network before its timing is
/// allowed into a table (no numbers from broken solves).
pub fn validate_or_die(net: &RadialNetwork, res: &SolveResult, who: &str) {
    assert!(res.converged(), "{who}: solve did not converge");
    fbs::validate::assert_physical(net, res, 1e-4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = Table::new("Demo", &["n", "time"]);
        t.row(&[&1024, &"5.0 µs"]);
        t.row(&[&2048, &"9.1 µs"]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 1024 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("n,time\n"));
        assert!(csv.contains("2048,9.1 µs\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("Demo", &["x"]);
        t.row(&[&"a,b"]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(12.34), "12.3 µs");
        assert_eq!(us(250_000.0), "250.0 ms");
        assert_eq!(speedup(3.912), "3.91x");
    }
}
