//! Shared infrastructure for the experiment binaries (`exp_e1` … `exp_e13`).
//!
//! Each binary regenerates one table/figure of the reconstructed
//! evaluation (see `DESIGN.md`, per-experiment index): it prints a
//! markdown table to stdout and writes the same rows as CSV under
//! `results/` (see [`table`]), plus its headline medians into
//! `results/BENCH_summary.json` (see [`summary`]). All experiments run
//! on the calibrated `paper_rig` device/host models with fixed seeds,
//! so modeled output is reproducible bit-for-bit.

pub mod micro;
pub mod summary;
pub mod table;

pub use table::{results_dir, speedup, us, Table};

use fbs::{SolveResult, SolverConfig};
use powergrid::RadialNetwork;
use rng::rngs::StdRng;
use rng::SeedableRng;

/// The tree sizes of the paper's evaluation: 1K–256K buses, powers of two.
pub const PAPER_SIZES: [usize; 9] =
    [1024, 2048, 4096, 8192, 16_384, 32_768, 65_536, 131_072, 262_144];

/// The seed every experiment derives its workloads from.
pub const SEED: u64 = 20200817; // the paper's publication date

/// Deterministic RNG for experiment `tag`.
pub fn rng_for(tag: u64) -> StdRng {
    StdRng::seed_from_u64(SEED ^ tag)
}

/// The solver configuration used throughout the evaluation.
pub fn eval_config() -> SolverConfig {
    SolverConfig::default()
}

/// Validates a converged result against its network before its timing is
/// allowed into a table (no numbers from broken solves).
pub fn validate_or_die(net: &RadialNetwork, res: &SolveResult, who: &str) {
    assert!(res.converged(), "{who}: solve did not converge");
    fbs::validate::assert_physical(net, res, 1e-4);
}
