//! Micro-benchmark runner (in-repo Criterion replacement).
//!
//! Wall-clock measurement with the statistics a noisy CI box can
//! defend: each benchmark runs `warmup` untimed iterations, then
//! `iters` timed ones, and reports the **median** with the **MAD**
//! (median absolute deviation) as the spread — both robust to the
//! one-off scheduler hiccups that wreck means. Results accumulate into
//! a [`MicroReport`] that prints the same column-aligned markdown and
//! writes the same `results/*.csv` files as the experiment binaries
//! (via [`crate::Table`]), so bench output and experiment output read
//! alike.
//!
//! ```no_run
//! use fbs_bench::micro::{MicroBench, MicroReport};
//!
//! let mut report = MicroReport::new("my_group");
//! let mut xs = vec![0u64; 1 << 16];
//! MicroBench::new(3, 25).run(&mut report, "sum", xs.len(), || {
//!     xs.iter_mut().for_each(|x| *x += 1);
//! });
//! report.emit();
//! ```

use std::time::Instant;

use crate::Table;

/// Warmup/measurement schedule for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct MicroBench {
    warmup: u32,
    iters: u32,
}

impl MicroBench {
    /// `warmup` untimed iterations followed by `iters` timed ones.
    pub fn new(warmup: u32, iters: u32) -> Self {
        assert!(iters >= 1, "need at least one timed iteration");
        MicroBench { warmup, iters }
    }

    /// Times `f`, records a row named `name` into `report`, and returns
    /// the stats. `elements` scales the derived throughput column.
    pub fn run(
        &self,
        report: &mut MicroReport,
        name: &str,
        elements: usize,
        mut f: impl FnMut(),
    ) -> Stats {
        for _ in 0..self.warmup {
            f();
        }
        let mut samples_ns: Vec<f64> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_nanos() as f64
            })
            .collect();
        let stats = Stats::from_samples(&mut samples_ns, elements);
        report.push(name, &stats);
        stats
    }
}

/// Robust summary of one benchmark's timed samples.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median wall-clock time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the samples, nanoseconds.
    pub mad_ns: f64,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds.
    pub max_ns: f64,
    /// Number of timed iterations.
    pub iters: u32,
    /// Elements processed per iteration (0 = no throughput).
    pub elements: usize,
}

impl Stats {
    /// Summarises raw samples (sorts `samples_ns` in place).
    pub fn from_samples(samples_ns: &mut [f64], elements: usize) -> Self {
        assert!(!samples_ns.is_empty(), "no samples");
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let med = sorted_median(samples_ns);
        let mut devs: Vec<f64> = samples_ns.iter().map(|&s| (s - med).abs()).collect();
        devs.sort_by(|a, b| a.total_cmp(b));
        Stats {
            median_ns: med,
            mad_ns: sorted_median(&devs),
            min_ns: samples_ns[0],
            max_ns: samples_ns[samples_ns.len() - 1],
            iters: samples_ns.len() as u32,
            elements,
        }
    }

    /// Median elements per second (0 when elements is 0).
    pub fn throughput(&self) -> f64 {
        if self.elements == 0 || self.median_ns == 0.0 {
            0.0
        } else {
            self.elements as f64 / (self.median_ns * 1e-9)
        }
    }
}

/// Median of an ascending slice.
fn sorted_median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Accumulates benchmark rows; prints markdown and writes
/// `results/bench_<name>.csv` on [`MicroReport::emit`].
pub struct MicroReport {
    name: String,
    table: Table,
    medians_ns: Vec<f64>,
}

impl MicroReport {
    /// Starts an empty report for the named bench group.
    pub fn new(name: &str) -> Self {
        MicroReport {
            name: name.to_string(),
            table: Table::new(
                &format!("micro-bench: {name} (wall-clock, median of N)"),
                &["bench", "median", "mad", "min", "max", "iters", "Melem/s"],
            ),
            medians_ns: Vec::new(),
        }
    }

    /// Appends one measured row.
    pub fn push(&mut self, bench: &str, s: &Stats) {
        let melems = s.throughput() / 1e6;
        self.table.row(&[
            &bench,
            &fmt_ns(s.median_ns),
            &fmt_ns(s.mad_ns),
            &fmt_ns(s.min_ns),
            &fmt_ns(s.max_ns),
            &s.iters,
            &format!("{melems:.1}"),
        ]);
        self.medians_ns.push(s.median_ns);
    }

    /// Prints the markdown table, writes the CSV mirror, and folds the
    /// group's median wall time into `results/BENCH_summary.json`.
    pub fn emit(&self) {
        let name = format!("bench_{}", self.name);
        self.table.emit(&name);
        let wall_us: Vec<f64> = self.medians_ns.iter().map(|ns| ns / 1e3).collect();
        crate::summary::record(&name, &[], &wall_us);
    }
}

/// Human-readable nanoseconds (ns/µs/ms autoscale).
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e7 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e4 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_of_odd_set() {
        let mut s = vec![5.0, 1.0, 9.0];
        let st = Stats::from_samples(&mut s, 0);
        assert_eq!(st.median_ns, 5.0);
        assert_eq!(st.mad_ns, 4.0); // deviations {4, 0, 4}
        assert_eq!(st.min_ns, 1.0);
        assert_eq!(st.max_ns, 9.0);
    }

    #[test]
    fn median_of_even_set_interpolates() {
        let mut s = vec![4.0, 2.0, 8.0, 6.0];
        let st = Stats::from_samples(&mut s, 0);
        assert_eq!(st.median_ns, 5.0);
        assert_eq!(st.mad_ns, 2.0); // deviations {3, 1, 1, 3} → median 2
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut s = vec![10.0, 11.0, 10.5, 1e9, 10.2];
        let st = Stats::from_samples(&mut s, 0);
        assert!(st.median_ns < 12.0, "{}", st.median_ns);
    }

    #[test]
    fn throughput_uses_median() {
        let mut s = vec![1e3; 5]; // 1 µs per iter
        let st = Stats::from_samples(&mut s, 1000);
        assert!((st.throughput() - 1e9).abs() < 1.0, "{}", st.throughput());
        let mut s0 = vec![1e3; 5];
        assert_eq!(Stats::from_samples(&mut s0, 0).throughput(), 0.0);
    }

    #[test]
    fn runner_counts_iterations() {
        let mut report = MicroReport::new("unit");
        let mut count = 0u32;
        let st = MicroBench::new(2, 7).run(&mut report, "count", 0, || count += 1);
        assert_eq!(count, 9, "2 warmup + 7 timed");
        assert_eq!(st.iters, 7);
    }

    #[test]
    fn fmt_ns_autoscales() {
        assert_eq!(fmt_ns(532.0), "532 ns");
        assert_eq!(fmt_ns(15_300.0), "15.3 µs");
        assert_eq!(fmt_ns(22_000_000.0), "22.00 ms");
    }
}
