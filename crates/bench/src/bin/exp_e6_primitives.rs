//! E6 — throughput of the parallel primitives the method is built from:
//! reduction, scan, and segmented scan, versus input size.
//!
//! Supports the paper's method-section choice of "segmented scan and
//! reduction": modeled device throughput grows with input size until the
//! bandwidth roofline, while small inputs are launch-latency-bound — the
//! same effect that shapes the solver's E2 curve.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e6_primitives`

use fbs_bench::{rng_for, us, Table};
use numc::Complex;
use primitives::ops::{AddComplex, AddF64, MaxF64};
use primitives::{reduce, scan_inclusive, segscan_inclusive};
use rng::Rng;
use simt::{Device, DeviceProps};

const SIZES: [usize; 7] = [1024, 8192, 65_536, 262_144, 524_288, 1_048_576, 4_194_304];

fn modeled_since(dev: &Device, mark: usize) -> f64 {
    dev.timeline().breakdown_since(mark).total_us()
}

fn main() {
    let mut table = Table::new(
        "E6: Primitive modeled time and throughput vs input size",
        &[
            "elements",
            "reduce(max,f64)",
            "scan(add,f64)",
            "segscan(add,c64)",
            "segscan GB/s",
        ],
    );
    let mut rng = rng_for(60);
    let mut segscan_us = Vec::new();

    for &n in &SIZES {
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cs: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 64 == 0)).collect();

        let mut dev = Device::new(DeviceProps::paper_rig());
        let x_buf = dev.alloc_from(&xs);
        let c_buf = dev.alloc_from(&cs);
        let f_buf = dev.alloc_from(&flags);
        let mut out_f = dev.alloc::<f64>(n);
        let mut out_c = dev.alloc::<Complex>(n);

        let m = dev.timeline().mark();
        let _ = reduce::<f64, MaxF64>(&mut dev, &x_buf);
        let t_reduce = modeled_since(&dev, m);

        let m = dev.timeline().mark();
        scan_inclusive::<f64, AddF64>(&mut dev, &x_buf, &mut out_f);
        let t_scan = modeled_since(&dev, m);

        let m = dev.timeline().mark();
        segscan_inclusive::<Complex, AddComplex>(&mut dev, &c_buf, &f_buf, &mut out_c);
        let t_segscan = modeled_since(&dev, m);

        segscan_us.push(t_segscan);
        // Effective segscan throughput: value+flag read and value write.
        let bytes = (n * (16 + 4 + 16)) as f64;
        let gbps = bytes / t_segscan / 1e3;
        table.row(&[
            &n,
            &us(t_reduce),
            &us(t_scan),
            &us(t_segscan),
            &format!("{gbps:.1}"),
        ]);
    }

    table.emit("e6_primitives");
    fbs_bench::summary::record("e6_primitives", &segscan_us, &[]);
    println!("\nsmall inputs are launch-latency bound; large inputs approach the bandwidth roofline.");
}
