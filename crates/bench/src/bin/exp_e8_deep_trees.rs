//! E8 (extension) — fixing the paper's deep-tree pathology.
//!
//! The paper's topology discussion observes that deep trees defeat the
//! level-synchronous method (launch overhead × depth). This experiment
//! quantifies the fix built in `fbs::JumpSolver`: a fused prefix-scan
//! backward sweep over preorder plus pointer-jumping forward sweep —
//! O(log depth) launches per iteration instead of O(depth).
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e8_deep_trees`

use fbs::{GpuSolver, JumpSolver, SerialSolver};
use fbs_bench::{eval_config, rng_for, speedup, us, validate_or_die, Table};
use powergrid::gen::{balanced_binary, caterpillar, chain, GenSpec};
use powergrid::{LevelOrder, RadialNetwork};
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();

    let cases: Vec<(&str, RadialNetwork)> = vec![
        ("chain 4K", chain(4096, &spec, &mut rng_for(80))),
        ("chain 16K", chain(16_384, &spec, &mut rng_for(81))),
        ("chain 64K", chain(65_536, &spec, &mut rng_for(82))),
        ("caterpillar 64K", caterpillar(65_536, 3, &spec, &mut rng_for(83))),
        ("binary 64K", balanced_binary(65_536, &spec, &mut rng_for(84))),
        ("binary 256K", balanced_binary(262_144, &spec, &mut rng_for(85))),
    ];

    let mut table = Table::new(
        "E8: Level-synchronous vs depth-insensitive (jump) GPU solver",
        &["topology", "depth", "serial", "level gpu", "jump gpu", "jump vs level", "jump vs serial"],
    );

    for (name, net) in &cases {
        let depth = LevelOrder::new(net).num_levels() - 1;
        let serial = SerialSolver::new(HostProps::paper_rig()).solve(net, &cfg);
        validate_or_die(net, &serial, name);

        let mut level = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let lv = level.solve(net, &cfg);
        validate_or_die(net, &lv, name);

        let mut jump = JumpSolver::new(Device::new(DeviceProps::paper_rig()));
        let jp = jump.solve(net, &cfg);
        validate_or_die(net, &jp, name);

        table.sample(&jp.timing);
        table.row(&[
            name,
            &depth,
            &us(serial.timing.total_us()),
            &us(lv.timing.total_us()),
            &us(jp.timing.total_us()),
            &speedup(lv.timing.total_us() / jp.timing.total_us()),
            &speedup(serial.timing.total_us() / jp.timing.total_us()),
        ]);
    }

    table.emit("e8_deep_trees");
    println!("\nthe jump solver is topology-insensitive: chains now cost the same order as balanced trees.");
}
