//! E11 (extension) — unbalanced three-phase FBS: GPU vs serial scaling.
//!
//! Each bus now carries 3 phase voltages and each branch a 3×3 complex
//! impedance matrix: per-bus arithmetic grows ~8× (one mat-vec per
//! forward update) and per-bus traffic ~3–5×. That extra work fills the
//! same kernel launches, so the GPU's fixed costs amortise at *smaller*
//! trees than in the single-phase E1 — the crossover moves left.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e11_three_phase`

use fbs::{Gpu3Solver, Serial3Solver, SerialSolver};
use fbs_bench::{eval_config, rng_for, speedup, us, Table, PAPER_SIZES};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::three_phase::from_single_phase;
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();

    let mut table = Table::new(
        "E11: Three-phase unbalanced FBS, serial vs GPU (binary trees)",
        &["buses", "iters", "serial 3φ", "gpu 3φ", "3φ speedup", "1φ speedup (E1)"],
    );

    for &n in &PAPER_SIZES {
        if n > 131_072 {
            // 3φ buffers are ~4× larger; cap the sweep at 128K to keep
            // the harness fast (the trend is established well before).
            continue;
        }
        let mut rng = rng_for(110);
        let net1 = balanced_binary(n, &spec, &mut rng);
        let net3 = from_single_phase(&net1, 0.35, 0.3, &mut rng);

        let s3 = Serial3Solver::new(HostProps::paper_rig()).solve(&net3, &cfg);
        assert!(s3.converged(), "serial 3φ must converge at n={n}");
        let mut gpu = Gpu3Solver::new(Device::new(DeviceProps::paper_rig()));
        let g3 = gpu.solve(&net3, &cfg);
        assert!(g3.converged(), "gpu 3φ must converge at n={n}");

        // Single-phase comparison on the same tree.
        let s1 = SerialSolver::new(HostProps::paper_rig()).solve(&net1, &cfg);
        let mut gpu1 = fbs::GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let g1 = gpu1.solve(&net1, &cfg);

        table.sample(&g3.timing);
        table.row(&[
            &n,
            &g3.iterations,
            &us(s3.timing.total_us()),
            &us(g3.timing.total_us()),
            &speedup(s3.timing.total_us() / g3.timing.total_us()),
            &speedup(s1.timing.total_us() / g1.timing.total_us()),
        ]);
    }

    table.emit("e11_three_phase");
    println!("\nheavier per-bus work (3×3 mat-vecs) moves the GPU crossover to smaller feeders.");
}
