//! E13 (extension) — the robustness service under load and under fault
//! pressure: backpressure, load shedding, and circuit-breaker behavior.
//!
//! Two sweeps over the same feeder:
//!
//! * **Overload** — a modeled-time arrival stream is pushed through the
//!   single-server admission queue at multiples of the service rate.
//!   Below saturation nothing is shed; past it the bounded queue sheds
//!   with `Rejected{queue_depth}` and throughput plateaus at the
//!   service rate instead of collapsing.
//! * **Fault pressure** — a seeded per-op fault plan runs underneath a
//!   sequential request stream. Low rates are absorbed by in-solve
//!   recovery and service retries; saturating rates trip the circuit
//!   breaker, which routes requests to the CPU fallback and re-admits
//!   the device through half-open probes.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e13_service`
//! (`E13_SMOKE=1` restricts the sweep for CI.)

use fbs::{Backend, Outcome, Request, ServiceConfig, SolveService, SolverConfig};
use fbs_bench::{rng_for, Table};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::RadialNetwork;
use simt::{DeviceProps, FaultPlan, HostProps};

/// Overload factors: arrival rate as a multiple of the service rate.
const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];
/// Per-op fault rates for the breaker sweep.
const FAULT_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1.0];

fn service(backend: Backend, plan: Option<FaultPlan>) -> SolveService {
    let cfg = ServiceConfig {
        backend,
        queue_capacity: 8,
        max_retries: 1,
        breaker_threshold: 2,
        breaker_probe_after: 3,
        ..ServiceConfig::default()
    };
    let mut svc = SolveService::new(cfg, DeviceProps::paper_rig(), HostProps::paper_rig());
    if let Some(plan) = plan {
        svc = svc.with_fault_plan(plan);
    }
    svc
}

#[allow(clippy::too_many_arguments)]
fn record(
    table: &mut Table,
    phase: &str,
    n: usize,
    load: &str,
    rate: &str,
    reqs: usize,
    svc: &SolveService,
) {
    let s = svc.stats();
    table.row(&[
        &phase,
        &n,
        &load,
        &rate,
        &reqs,
        &s.served,
        &s.shed,
        &format!("{:.0}%", 100.0 * s.shed as f64 / reqs as f64),
        &s.peak_queue_depth,
        &s.device_successes,
        &s.fallback_served,
        &s.retries,
        &s.breaker_opens,
        &s.breaker_closes,
    ]);
}

/// Runs the overload sweep and returns the calibrated per-request
/// modeled service time (the experiment's headline number).
fn overload_sweep(table: &mut Table, net: &RadialNetwork, n: usize, reqs: usize) -> f64 {
    let cfg = SolverConfig::default();
    // Calibrate the modeled service time with one clean solve.
    let mut probe = service(Backend::Gpu, None);
    probe.submit(Request::Solve { net: net.clone(), cfg }).expect("empty queue admits");
    let service_us = probe.process_one().expect("queued").service_us();

    for &load in &LOADS {
        let spacing = service_us / load;
        let arrivals: Vec<(f64, Request)> = (0..reqs)
            .map(|k| (k as f64 * spacing, Request::Solve { net: net.clone(), cfg }))
            .collect();
        let mut svc = service(Backend::Gpu, None);
        let responses = svc.run_stream(arrivals);
        assert_eq!(responses.len(), reqs, "every request gets a response");
        let shed = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected { .. }))
            .count() as u64;
        assert_eq!(shed, svc.stats().shed, "responses and stats must agree");
        if load <= 1.0 {
            assert_eq!(shed, 0, "no shedding below saturation (load {load})");
        }
        record(table, "overload", n, &format!("{load:.1}x"), "0", reqs, &svc);
    }
    service_us
}

fn fault_sweep(table: &mut Table, net: &RadialNetwork, n: usize, reqs: usize) {
    let cfg = SolverConfig::default();
    for &rate in &FAULT_RATES {
        let plan = FaultPlan::seeded(fbs_bench::SEED, rate);
        let mut svc = service(Backend::Gpu, Some(plan));
        for _ in 0..reqs {
            svc.submit(Request::Solve { net: net.clone(), cfg }).expect("sequential submits fit");
            let resp = svc.process_one().expect("queued request is served");
            let status = resp.status().expect("solve requests carry a status");
            assert!(!status.is_failure(), "rate {rate}: request failed with {status}");
        }
        record(table, "faults", n, "seq", &format!("{rate:.0e}"), reqs, &svc);
    }
}

fn main() {
    let spec = GenSpec::default();
    let smoke = std::env::var("E13_SMOKE").is_ok();
    let (n, reqs) = if smoke { (255, 12) } else { (1023, 48) };

    let mut rng = rng_for(130 + n as u64);
    let net = balanced_binary(n, &spec, &mut rng);

    let mut table = Table::new(
        "E13: robustness service under overload and fault pressure (queue 8, retries 1, breaker threshold 2)",
        &[
            "phase", "buses", "load", "rate/op", "reqs", "served", "shed", "shed%", "peak q",
            "device", "fallback", "retries", "brk open", "brk close",
        ],
    );

    let service_us = overload_sweep(&mut table, &net, n, reqs);
    fault_sweep(&mut table, &net, n, reqs);

    table.emit("e13_service");
    fbs_bench::summary::record("e13_service", &[service_us], &[]);
    println!("\nbelow saturation the queue absorbs bursts and nothing is shed;");
    println!("past it the service sheds at admission instead of growing the queue.");
    println!("saturating fault rates open the breaker: requests keep being answered");
    println!("by the CPU fallback while half-open probes test the device.");
}
