//! E4 — how tree topology affects the GPU speedup (the abstract's
//! "discussion on how the topology of the tree would affect the
//! results"), quantified.
//!
//! Fixed bus count (64K), sweeping topology from the deepest (chain)
//! to the shallowest (star). The governing quantity is the *mean level
//! width* `n / depth`: each level costs at least one kernel launch, so
//! narrow-deep trees are launch-overhead-bound while wide-shallow trees
//! amortise launches over big grids.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e4_topology`

use fbs::{GpuSolver, SerialSolver};
use fbs_bench::{eval_config, rng_for, speedup, us, validate_or_die, Table};
use powergrid::gen::{
    balanced_binary, balanced_kary, broom, caterpillar, chain, random_tree, star, GenSpec,
};
use powergrid::{LevelOrder, RadialNetwork};
use simt::{Device, DeviceProps, HostProps};

const N: usize = 65_536;

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();

    let topologies: Vec<(&str, RadialNetwork)> = vec![
        ("chain", chain(N, &spec, &mut rng_for(40))),
        ("caterpillar(x4)", caterpillar(N, 3, &spec, &mut rng_for(41))),
        ("random(w=8)", random_tree(N, 8, &spec, &mut rng_for(42))),
        ("binary", balanced_binary(N, &spec, &mut rng_for(43))),
        ("4-ary", balanced_kary(N, 4, &spec, &mut rng_for(44))),
        ("16-ary", balanced_kary(N, 16, &spec, &mut rng_for(45))),
        ("broom(1Kx64)", broom(N, 1024, &spec, &mut rng_for(46))),
        ("star", star(N, &spec, &mut rng_for(47))),
    ];

    let mut table = Table::new(
        "E4: Topology sensitivity at 64K buses",
        &["topology", "levels", "mean width", "iters", "serial", "gpu", "speedup"],
    );

    for (name, net) in &topologies {
        let levels = LevelOrder::new(net);
        let serial = SerialSolver::new(HostProps::paper_rig()).solve(net, &cfg);
        validate_or_die(net, &serial, name);
        let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let par = gpu.solve(net, &cfg);
        validate_or_die(net, &par, name);

        table.sample(&par.timing);
        let x = serial.timing.total_us() / par.timing.total_us();
        table.row(&[
            name,
            &levels.num_levels(),
            &format!("{:.1}", levels.mean_level_width()),
            &par.iterations,
            &us(serial.timing.total_us()),
            &us(par.timing.total_us()),
            &speedup(x),
        ]);
    }

    table.emit("e4_topology");
    println!("\nwider mean levels → better GPU speedup; a 64K chain is pure launch overhead.");
}
