//! E9 (extension) — tensor-batched time-series load flow: modeled cost
//! per scenario versus batch size, legacy batcher versus tensor engine.
//!
//! The operational workload behind the paper's motivation (distribution
//! system analysis) is time-series: thousands of load scenarios on one
//! topology. The legacy `BatchSolver` widened each level kernel across
//! scenarios but still launched per level; the tensor engine fuses all
//! levels of all scenarios into two launches per iteration and keeps the
//! loads on device (`solve_scaled`), so the per-scenario cost keeps
//! falling to batch sizes the legacy path could never amortise. This
//! experiment pins the headline: at B = 100K the per-scenario modeled
//! cost must be at most 0.2x the legacy B = 128 baseline.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e9_batch`
//! Smoke (CI): `E9_SMOKE=1 cargo run -p fbs-bench --release --bin exp_e9_batch`

use fbs::{BatchSolver, SerialSolver, SolverArrays, TensorBatchSolver};
use fbs_bench::{eval_config, rng_for, speedup, summary, us, Table};
use numc::Complex;
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, HostProps};

const N: usize = 4095; // a mid-size feeder where a single GPU solve loses

/// Daily-curve-like load scale for scenario `k` of `nb`.
fn scale_for(k: usize, nb: usize) -> f64 {
    0.55 + 0.5 * ((k as f64 / nb.max(2) as f64) * std::f64::consts::PI).sin()
}

fn main() {
    let smoke = std::env::var("E9_SMOKE").is_ok();
    let cfg = eval_config();
    let spec = GenSpec::default();
    let mut rng = rng_for(90);
    let net = balanced_binary(N, &spec, &mut rng);
    let arrays = SolverArrays::new(&net);

    // The serial baseline cost per scenario (topology arrays reused).
    let serial = SerialSolver::new(HostProps::paper_rig());
    let serial_us = serial.solve_arrays(&arrays, &cfg).timing.total_us();

    // The legacy batcher's best case is the reference the tensor engine
    // is measured against: B = 128 (B = 8 under E9_SMOKE).
    let legacy_b: usize = if smoke { 8 } else { 128 };
    let legacy_loads: Vec<Vec<Complex>> = (0..legacy_b)
        .map(|k| {
            let s = scale_for(k, legacy_b);
            net.buses().iter().map(|b| b.load * s).collect()
        })
        .collect();
    let mut legacy = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
    let legacy_res = legacy.solve_arrays(&arrays, &legacy_loads, &cfg);
    assert!(legacy_res.converged(), "legacy batch of {legacy_b} must converge");
    let legacy_per = legacy_res.timing.total_us() / legacy_b as f64;

    let mut table = Table::new(
        "E9: Tensor-batched GPU load flow, 4K-bus binary feeder",
        &[
            "batch",
            "engine",
            "iters",
            "total",
            "per scenario",
            "scenarios/s",
            "vs serial",
            "vs legacy@128",
        ],
    );
    table.row(&[
        &legacy_b,
        &"legacy",
        &legacy_res.iterations,
        &us(legacy_res.timing.total_us()),
        &us(legacy_per),
        &format!("{:.0}", 1e6 / legacy_per),
        &speedup(serial_us / legacy_per),
        &speedup(1.0),
    ]);

    let batches: &[usize] = if smoke { &[8, 32, 128] } else { &[128, 1024, 8192, 100_000] };
    let mut headline_sps = 0.0;
    let mut largest_per = f64::INFINITY;
    for &nb in batches {
        let scales: Vec<f64> = (0..nb).map(|k| scale_for(k, nb)).collect();
        // stats_only: a 100K-scenario state download is pure teardown
        // cost nobody reads in a throughput sweep.
        let mut solver =
            TensorBatchSolver::new(Device::new(DeviceProps::paper_rig())).stats_only();
        let res = solver.solve_scaled_arrays(&arrays, &scales, &cfg);
        assert!(res.converged(), "tensor batch of {nb} must converge");

        table.sample(&res.timing);
        let per = res.timing.total_us() / nb as f64;
        headline_sps = res.scenarios_per_sec;
        largest_per = per;
        table.row(&[
            &nb,
            &"tensor",
            &res.iterations,
            &us(res.timing.total_us()),
            &us(per),
            &format!("{:.0}", res.scenarios_per_sec),
            &speedup(serial_us / per),
            &speedup(legacy_per / per),
        ]);
    }

    table.emit("e9_batch");
    summary::record_metric("e9_batch", "scenarios_per_sec", headline_sps);

    let ratio = largest_per / legacy_per;
    println!(
        "\ntensor engine at B={}: {} per scenario = {:.3}x the legacy B={legacy_b} cost \
         ({} scenarios per modeled second).",
        batches[batches.len() - 1],
        us(largest_per),
        ratio,
        format_args!("{headline_sps:.0}"),
    );
    if !smoke {
        assert!(
            ratio <= 0.2,
            "acceptance: per-scenario cost at B=100K must be <= 0.2x the legacy \
             B=128 baseline (got {ratio:.3}x)"
        );
    }
}
