//! E9 (extension) — batched time-series load flow: modeled cost per
//! scenario versus batch size.
//!
//! The operational workload behind the paper's motivation (distribution
//! system analysis) is time-series: thousands of load scenarios on one
//! topology. Batching levels across scenarios turns the launch-bound
//! small-tree regime of E1/E3 into a bandwidth-bound one; this experiment
//! measures how far the per-scenario cost falls as the batch grows, and
//! where it crosses below the serial CPU cost.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e9_batch`

use fbs::{BatchSolver, SerialSolver, SolverArrays};
use fbs_bench::{eval_config, rng_for, speedup, us, Table};
use numc::Complex;
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, HostProps};

const N: usize = 4095; // a mid-size feeder where a single GPU solve loses

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();
    let mut rng = rng_for(90);
    let net = balanced_binary(N, &spec, &mut rng);
    let arrays = SolverArrays::new(&net);

    // The serial baseline cost per scenario (topology arrays reused).
    let serial = SerialSolver::new(HostProps::paper_rig());
    let serial_us = serial.solve_arrays(&arrays, &cfg).timing.total_us();

    let mut table = Table::new(
        "E9: Batched GPU load flow, 4K-bus binary feeder",
        &["batch", "iters", "gpu total", "gpu per scenario", "serial per scenario", "speedup/scenario"],
    );

    for nb in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        // Scenario loads: a daily-curve-like scaling sweep.
        let scenarios: Vec<Vec<Complex>> = (0..nb)
            .map(|k| {
                let scale = 0.55 + 0.5 * ((k as f64 / nb.max(2) as f64) * std::f64::consts::PI).sin();
                net.buses().iter().map(|b| b.load * scale).collect()
            })
            .collect();

        let mut solver = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
        let res = solver.solve_arrays(&arrays, &scenarios, &cfg);
        assert!(res.converged(), "batch of {nb} must converge");

        table.sample(&res.timing);
        let per = res.timing.total_us() / nb as f64;
        table.row(&[
            &nb,
            &res.iterations,
            &us(res.timing.total_us()),
            &us(per),
            &us(serial_us),
            &speedup(serial_us / per),
        ]);
    }

    table.emit("e9_batch");
    println!("\na feeder where one GPU solve loses 8x becomes a win once scenarios are batched.");
}
