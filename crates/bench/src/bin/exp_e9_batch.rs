//! E9 (extension) — tensor-batched time-series load flow: modeled cost
//! per scenario versus batch size.
//!
//! The operational workload behind the paper's motivation (distribution
//! system analysis) is time-series: thousands of load scenarios on one
//! topology. The tensor engine fuses all levels of all scenarios into
//! two launches per iteration and keeps the loads on device
//! (`solve_scaled`), so the per-scenario cost keeps falling with batch
//! size until the sweep itself — not launch overhead or transfers — is
//! the bill. The legacy level-batched engine has been retired;
//! `BatchSolver` is now a compatibility shim over the tensor engine, so
//! the reference points here are the *serial* per-scenario cost and the
//! shim at a modest batch (which pays the full per-bus state download
//! the stats-only sweep skips).
//!
//! Acceptance (full run): at B = 100K the per-scenario modeled cost must
//! be at most 0.1x the serial baseline, and no higher than the B = 128
//! stats-only cost — the fused engine saturates early (B = 128 is
//! already within ~15% of the asymptote) and the curve must never turn
//! upward as the batch grows.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e9_batch`
//! Smoke (CI): `E9_SMOKE=1 cargo run -p fbs-bench --release --bin exp_e9_batch`

use fbs::{BatchSolver, SerialSolver, SolverArrays, TensorBatchSolver};
use fbs_bench::{eval_config, rng_for, speedup, summary, us, Table};
use numc::Complex;
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, HostProps};

const N: usize = 4095; // a mid-size feeder where a single GPU solve loses

/// Daily-curve-like load scale for scenario `k` of `nb`.
fn scale_for(k: usize, nb: usize) -> f64 {
    0.55 + 0.5 * ((k as f64 / nb.max(2) as f64) * std::f64::consts::PI).sin()
}

fn main() {
    let smoke = std::env::var("E9_SMOKE").is_ok();
    let cfg = eval_config();
    let spec = GenSpec::default();
    let mut rng = rng_for(90);
    let net = balanced_binary(N, &spec, &mut rng);
    let arrays = SolverArrays::new(&net);

    // The serial baseline cost per scenario (topology arrays reused).
    let serial = SerialSolver::new(HostProps::paper_rig());
    let serial_us = serial.solve_arrays(&arrays, &cfg).timing.total_us();

    // The compatibility shim (`BatchSolver`) at a modest batch: the
    // full-result path, per-bus voltages downloaded and unbatched.
    let compat_b: usize = if smoke { 8 } else { 128 };
    let compat_loads: Vec<Vec<Complex>> = (0..compat_b)
        .map(|k| {
            let s = scale_for(k, compat_b);
            net.buses().iter().map(|b| b.load * s).collect()
        })
        .collect();
    let mut compat = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
    let compat_res = compat.solve_arrays(&arrays, &compat_loads, &cfg);
    assert!(compat_res.converged(), "compat batch of {compat_b} must converge");
    let compat_per = compat_res.timing.total_us() / compat_b as f64;

    let mut table = Table::new(
        "E9: Tensor-batched GPU load flow, 4K-bus binary feeder",
        &[
            "batch",
            "engine",
            "iters",
            "total",
            "per scenario",
            "scenarios/s",
            "vs serial",
            &format!("vs compat@{compat_b}"),
        ],
    );
    table.row(&[
        &compat_b,
        &"compat",
        &compat_res.iterations,
        &us(compat_res.timing.total_us()),
        &us(compat_per),
        &format!("{:.0}", 1e6 / compat_per),
        &speedup(serial_us / compat_per),
        &speedup(1.0),
    ]);

    let batches: &[usize] = if smoke { &[8, 32, 128] } else { &[128, 1024, 8192, 100_000] };
    let mut headline_sps = 0.0;
    let mut first_per = f64::INFINITY;
    let mut largest_per = f64::INFINITY;
    for &nb in batches {
        let scales: Vec<f64> = (0..nb).map(|k| scale_for(k, nb)).collect();
        // stats_only: a 100K-scenario state download is pure teardown
        // cost nobody reads in a throughput sweep.
        let mut solver =
            TensorBatchSolver::new(Device::new(DeviceProps::paper_rig())).stats_only();
        let res = solver.solve_scaled_arrays(&arrays, &scales, &cfg);
        assert!(res.converged(), "tensor batch of {nb} must converge");

        table.sample(&res.timing);
        let per = res.timing.total_us() / nb as f64;
        headline_sps = res.scenarios_per_sec;
        if first_per.is_infinite() {
            first_per = per;
        }
        largest_per = per;
        table.row(&[
            &nb,
            &"tensor",
            &res.iterations,
            &us(res.timing.total_us()),
            &us(per),
            &format!("{:.0}", res.scenarios_per_sec),
            &speedup(serial_us / per),
            &speedup(compat_per / per),
        ]);
    }

    table.emit("e9_batch");
    summary::record_metric("e9_batch", "scenarios_per_sec", headline_sps);

    let vs_serial = largest_per / serial_us;
    let vs_first = largest_per / first_per;
    println!(
        "\ntensor engine at B={}: {} per scenario = {:.3}x serial, {:.3}x the \
         B={} tensor cost ({} scenarios per modeled second).",
        batches[batches.len() - 1],
        us(largest_per),
        vs_serial,
        vs_first,
        batches[0],
        format_args!("{headline_sps:.0}"),
    );
    if !smoke {
        assert!(
            vs_serial <= 0.1,
            "acceptance: per-scenario cost at B=100K must be <= 0.1x the serial \
             baseline (got {vs_serial:.3}x)"
        );
        assert!(
            vs_first <= 1.0,
            "acceptance: per-scenario cost must not grow with batch size \
             (B=100K at {vs_first:.3}x the B=128 cost)"
        );
    }
}
