//! E5 — convergence behaviour of forward-backward sweep: iterations vs
//! loading level and vs tolerance.
//!
//! Validates the solver-correctness envelope the timing experiments
//! stand on: FBS converges geometrically while the feeder is far from
//! voltage collapse and degrades (then fails) as loading approaches it —
//! the behaviour every FBS reference (Kersting; Shirmohammadi et al.)
//! reports. Serial and GPU solvers must take identical iteration counts.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e5_convergence`

use fbs::{GpuSolver, SerialSolver, SolverConfig};
use fbs_bench::{rng_for, Table};
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let spec = GenSpec::default();
    let mut rng = rng_for(50);
    let base = balanced_binary(16_384, &spec, &mut rng);

    // --- Part 1: iterations vs loading multiplier ---
    let mut t1 = Table::new(
        "E5a: Iterations vs loading (binary 16K, tol 1e-6)",
        &["load scale", "iterations", "status", "min |V| (pu)", "gpu matches"],
    );
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0] {
        let mut net = base.clone();
        net.scale_loads(scale);
        let cfg = SolverConfig::new(1e-6, 200);
        let s = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let g = gpu.solve(&net, &cfg);
        t1.sample(&g.timing);
        let min_pu = s.min_voltage().0 / net.source_voltage().abs();
        t1.row(&[
            &format!("{scale:.2}x"),
            &s.iterations,
            &s.status,
            &format!("{min_pu:.4}"),
            &(s.iterations == g.iterations && s.status == g.status),
        ]);
    }
    t1.emit("e5a_loading");

    // --- Part 2: iterations vs tolerance ---
    let mut t2 = Table::new(
        "E5b: Iterations vs tolerance (binary 16K, nominal loading)",
        &["tolerance", "iterations", "final residual (V)"],
    );
    for exp in [3, 4, 5, 6, 7, 8, 9, 10, 12] {
        let tol = 10f64.powi(-exp);
        let cfg = SolverConfig::new(tol, 500);
        let s = SerialSolver::new(HostProps::paper_rig()).solve(&base, &cfg);
        assert!(s.converged(), "tol 1e-{exp} must converge at nominal loading");
        t2.sample(&s.timing);
        t2.row(&[&format!("1e-{exp}"), &s.iterations, &format!("{:.3e}", s.residual)]);
    }
    t2.emit("e5b_tolerance");
    println!("\niterations grow ~linearly in -log tol (geometric convergence), and with loading.");
}
