//! E10 (extension) — device-sensitivity sweep: how the E1 headline
//! depends on which GPU class runs the kernels.
//!
//! The paper reports one unnamed GPU. Because our substrate is a
//! parameterised model, we can re-run the 256K-bus headline on several
//! documented device classes and show how the total speedup moves with
//! SM count, bandwidth and interconnect — the sensitivity analysis a
//! reader needs to transfer the paper's 3.9× to their own hardware.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e10_devices`

use fbs::{GpuSolver, SerialSolver};
use fbs_bench::{eval_config, rng_for, speedup, us, validate_or_die, Table};
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();
    let mut rng = rng_for(100);
    let net = balanced_binary(262_144, &spec, &mut rng);

    let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
    validate_or_die(&net, &serial, "serial");
    let s_us = serial.timing.total_us();

    let devices = [
        DeviceProps::jetson_tx2(),
        DeviceProps::gtx_1060(),
        DeviceProps::paper_rig(),
        DeviceProps::gtx_1080_ti(),
    ];

    let mut table = Table::new(
        "E10: Device sensitivity at 256K buses (vs one fixed CPU model)",
        &["device", "SMs", "GB/s", "launch µs", "gpu total", "total speedup", "kernel speedup"],
    );
    for props in devices {
        let name = props.name;
        let (sms, bw, launch) = (props.num_sms, props.mem_bandwidth_gbps, props.launch_overhead_us);
        let mut gpu = GpuSolver::new(Device::new(props));
        let res = gpu.solve(&net, &cfg);
        validate_or_die(&net, &res, name);
        table.sample(&res.timing);
        table.row(&[
            &name,
            &sms,
            &bw,
            &launch,
            &us(res.timing.total_us()),
            &speedup(s_us / res.timing.total_us()),
            &speedup(serial.timing.phases.sweep_us() / res.timing.sweep_kernel_us()),
        ]);
    }

    table.emit("e10_devices");
    println!("\nthe headline factor is a property of the CPU/GPU pairing, not of the algorithm.");
}
