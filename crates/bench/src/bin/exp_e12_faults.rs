//! E12 (extension) — resilience under injected device faults: what
//! checkpointing costs when nothing goes wrong, and what recovery costs
//! when it does.
//!
//! The paper's evaluation assumes a healthy device. This experiment
//! arms the seeded fault plan at increasing per-op rates and measures
//! the modeled cost of the resilient GPU solve against the plain one:
//! rate 0 isolates the pure checkpoint/verify overhead, higher rates
//! add rollback-and-replay traffic, and the table records how much of
//! the fault budget each run consumed and which backend finished it.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e12_faults`
//! (`E12_SMOKE=1` restricts to the smallest feeder for CI.)

use fbs::{Backend, GpuSolver, ResilientSolver, SolverConfig};
use fbs_bench::{rng_for, us, Table};
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, FaultPlan, HostProps};

const SIZES: [usize; 3] = [1023, 16_383, 131_071];
const RATES: [f64; 3] = [0.0, 1e-4, 1e-3];

fn main() {
    let cfg = SolverConfig::default();
    let spec = GenSpec::default();
    let smoke = std::env::var("E12_SMOKE").is_ok();
    let sizes: &[usize] = if smoke { &SIZES[..1] } else { &SIZES };

    let mut table = Table::new(
        "E12: GPU solve under injected faults (seeded plan, checkpoint every 4 iterations)",
        &["buses", "rate/op", "status", "faults", "rollbacks", "checkpoints", "ckpt cost", "backend", "modeled", "vs plain"],
    );

    for &n in sizes {
        let mut rng = rng_for(120 + n as u64);
        let net = balanced_binary(n, &spec, &mut rng);

        // The undefended baseline: plain GPU solve, no plan, no checkpoints.
        let plain = GpuSolver::new(Device::new(DeviceProps::paper_rig())).solve(&net, &cfg);
        assert!(plain.converged(), "{n}: baseline must converge");
        let plain_us = plain.timing.total_us();

        for &rate in &RATES {
            let mut solver = ResilientSolver::new(
                Backend::Gpu,
                DeviceProps::paper_rig(),
                HostProps::paper_rig(),
            )
            .with_fault_plan(FaultPlan::seeded(fbs_bench::SEED, rate));
            let res = match solver.solve(&net, &cfg) {
                Ok(res) => res,
                Err(e) => panic!("{n} @ rate {rate}: {e}"),
            };
            assert!(res.converged(), "{n} @ rate {rate}: ended {:?}", res.status);
            let rep = res.fault_report.expect("resilient solves carry a report");
            table.sample(&res.timing);
            let total = res.timing.total_us();
            table.row(&[
                &n,
                &format!("{rate:.0e}"),
                &res.status,
                &rep.faults_injected,
                &rep.rollbacks,
                &rep.checkpoints,
                &us(rep.checkpoint_us),
                &rep.final_backend().to_string(),
                &us(total),
                &format!("{:.2}x", total / plain_us),
            ]);
        }
    }

    table.emit("e12_faults");
    println!("\nrate 0 is the insurance premium (checkpoint + verify traffic);");
    println!("each injected fault adds a bounded rollback-and-replay cost on top.");
}
