//! E15 (extension) — fleet-level resilience: modeled throughput scaling
//! across devices, and answer-exact failover under mid-run device loss.
//!
//! Three phases over one feeder:
//!
//! * **Scaling** — a saturating burst is replayed against uniform fleets
//!   of 1..N devices. Requests are independent, so modeled throughput
//!   scales near-linearly; the run asserts ≥3× at 4 devices vs 1.
//! * **Chaos** — a heterogeneous 4-device fleet serves a busy stream
//!   while device 1 is scripted to die three attempts in a row (tripping
//!   its breaker) and then recover (the fleet's rejoin dispatches probe
//!   it back in). Every completed response must match the serial
//!   reference to 1e-9 V, zero requests may be lost, and the p99
//!   latency stays bounded relative to the healthy run.
//! * **Replay** — the chaos run is replayed with the same seeds and
//!   must reproduce byte-identical routing decisions and answers.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e15_fleet`
//! (`E15_SMOKE=1` restricts the sweep for CI.)

use fbs::fleet::poisson_arrivals;
use fbs::{
    FleetConfig, FleetRequest, FleetResponse, FleetService, Outcome, Request, SerialSolver,
    SolverConfig,
};
use fbs_bench::{rng_for, Table};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::RadialNetwork;
use simt::{FaultKind, FaultPlan, HostProps};

/// Nearest-rank quantile of an unsorted latency sample.
fn quantile(samples: &[f64], q: f64) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    if s.is_empty() {
        return 0.0;
    }
    s[(((s.len() - 1) as f64) * q).ceil() as usize]
}

/// Latencies of the answered responses.
fn latencies(responses: &[FleetResponse]) -> Vec<f64> {
    responses.iter().filter(|r| r.answered()).map(|r| r.latency_us()).collect()
}

fn record_row(table: &mut Table, phase: &str, devices: usize, responses: &[FleetResponse], fleet: &FleetService) {
    let s = fleet.stats();
    let lat = latencies(responses);
    let makespan = responses.iter().map(|r| r.finish_us).fold(0.0f64, f64::max);
    let rps = if makespan > 0.0 { lat.len() as f64 / (makespan / 1e6) } else { 0.0 };
    table.row(&[
        &phase,
        &devices,
        &s.submitted,
        &s.served,
        &s.shed(),
        &s.failovers,
        &s.cpu_served,
        &s.hedges,
        &format!("{:.1}", quantile(&lat, 0.5)),
        &format!("{:.1}", quantile(&lat, 0.99)),
        &format!("{rps:.0}"),
    ]);
}

/// Saturating burst: everything arrives at t=0, the fleet drains it.
fn burst(net: &RadialNetwork, cfg: SolverConfig, reqs: usize) -> Vec<(f64, FleetRequest)> {
    (0..reqs)
        .map(|_| (0.0, FleetRequest::new(Request::Solve { net: net.clone(), cfg })))
        .collect()
}

/// Modeled requests/sec a `devices`-wide uniform fleet clears the burst at.
fn scaling_run(
    table: &mut Table,
    net: &RadialNetwork,
    cfg: SolverConfig,
    devices: usize,
    reqs: usize,
) -> f64 {
    let fcfg = FleetConfig { queue_capacity: reqs, ..FleetConfig::uniform(devices) };
    let mut fleet = FleetService::new(fcfg);
    let responses = fleet.run_stream(burst(net, cfg, reqs));
    assert_eq!(responses.len(), reqs, "{devices} devices: one response per request");
    assert!(responses.iter().all(|r| r.answered()), "{devices} devices: nothing sheds");
    let makespan = responses.iter().map(|r| r.finish_us).fold(0.0f64, f64::max);
    record_row(table, "scaling", devices, &responses, &fleet);
    reqs as f64 / (makespan / 1e6)
}

/// The scripted outage: device 1 dies at the start of its first three
/// attempts (enough to trip the default breaker threshold), then the
/// plan is exhausted and the device recovers — the fleet's rejoin
/// dispatches probe it back to a closed breaker.
fn outage() -> FaultPlan {
    FaultPlan::scripted((0..3).map(|k| (2 + 5 * k, FaultKind::DeviceLost { at_op: 0 })))
}

/// One chaos (or healthy) stream on a heterogeneous 4-device fleet.
fn hetero_run(
    net: &RadialNetwork,
    cfg: SolverConfig,
    reqs: usize,
    gap_us: f64,
    with_outage: bool,
) -> (Vec<FleetResponse>, FleetService) {
    let fcfg = FleetConfig { queue_capacity: reqs, ..FleetConfig::heterogeneous(4) };
    let mut fleet = FleetService::new(fcfg);
    if with_outage {
        fleet = fleet.with_fault_plan_on(1, outage());
    }
    let arrivals = poisson_arrivals(reqs, gap_us, fbs_bench::SEED, |_| {
        FleetRequest::new(Request::Solve { net: net.clone(), cfg })
    });
    let responses = fleet.run_stream(arrivals);
    (responses, fleet)
}

/// Canonical projection of a stream: every scheduler decision plus the
/// numerical answer, excluding only host wall-clock (recorded for
/// transparency, legitimately nondeterministic).
fn decisions(responses: &[FleetResponse]) -> String {
    responses
        .iter()
        .map(|r| {
            let v = match &r.outcome {
                Outcome::Solved(res) => format!("{:?}", res.v),
                other => format!("{other:?}"),
            };
            format!(
                "{} {:?} {} {} {} {} {} {:?} {v}",
                r.id, r.device, r.backend, r.start_us, r.finish_us, r.failovers, r.hedged, r.shed,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let spec = GenSpec::default();
    let smoke = std::env::var("E15_SMOKE").is_ok();
    let (n, scale_reqs, chaos_reqs) = if smoke { (255, 16, 24) } else { (1023, 48, 96) };

    let mut rng = rng_for(150 + n as u64);
    let net = balanced_binary(n, &spec, &mut rng);
    let cfg = SolverConfig::default();
    let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);

    let mut table = Table::new(
        "E15: fleet scaling and chaos (uniform scaling burst; heterogeneous 4-device chaos with device 1 killed and rejoining)",
        &[
            "phase", "devices", "reqs", "served", "shed", "failover", "cpu", "hedges",
            "p50 µs", "p99 µs", "req/s",
        ],
    );

    // Phase 1: near-linear scaling on a saturating burst.
    let device_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut rps_at = std::collections::BTreeMap::new();
    for &d in device_counts {
        rps_at.insert(d, scaling_run(&mut table, &net, cfg, d, scale_reqs));
    }
    let speedup4 = rps_at[&4] / rps_at[&1];
    assert!(
        speedup4 >= 3.0,
        "4 devices must clear a saturating burst ≥3x faster than 1, got {speedup4:.2}x"
    );

    // Phase 2: healthy baseline, then the same stream under an outage.
    // Gap ≈ per-request service time of the 4-device fleet keeps it busy
    // without unbounded queueing.
    let gap_us = 1e6 / rps_at[&4];
    let (healthy, fleet_h) = hetero_run(&net, cfg, chaos_reqs, gap_us, false);
    record_row(&mut table, "healthy", 4, &healthy, &fleet_h);
    let (chaos, fleet_c) = hetero_run(&net, cfg, chaos_reqs, gap_us, true);
    record_row(&mut table, "chaos", 4, &chaos, &fleet_c);

    assert_eq!(chaos.len(), chaos_reqs, "zero lost requests under chaos");
    for r in &chaos {
        assert!(r.answered(), "request {} was shed despite a deep queue", r.id);
        let Outcome::Solved(res) = &r.outcome else {
            panic!("request {} ended {:?}", r.id, r.outcome)
        };
        assert!(res.converged(), "request {} did not converge", r.id);
        for (bus, (a, b)) in res.v.iter().zip(&serial.v).enumerate() {
            assert!(
                (a.abs() - b.abs()).abs() < 1e-9,
                "request {}, bus {bus}: |V| drifted {:e} from serial",
                r.id,
                (a.abs() - b.abs()).abs()
            );
        }
    }
    let d1 = fleet_c.device_stats(1);
    assert!(d1.breaker_opens >= 1, "the outage must trip device 1's breaker");
    assert!(
        d1.device_successes >= 1,
        "device 1 must rejoin and serve again after the outage script ends"
    );
    let p99_healthy = quantile(&latencies(&healthy), 0.99);
    let p99_chaos = quantile(&latencies(&chaos), 0.99);
    assert!(
        p99_chaos <= 5.0 * p99_healthy,
        "chaos p99 ({p99_chaos:.1} µs) must stay within 5x of healthy ({p99_healthy:.1} µs)"
    );

    // Phase 3: byte-identical replay of the chaos run.
    let (chaos2, _) = hetero_run(&net, cfg, chaos_reqs, gap_us, true);
    assert_eq!(
        decisions(&chaos), decisions(&chaos2),
        "same seeds and fault plan must replay byte-identically"
    );

    table.emit("e15_fleet");
    let lat: Vec<f64> = latencies(&chaos);
    fbs_bench::summary::record("e15_fleet", &lat, &[]);
    fbs_bench::summary::record_metric("e15_fleet", "fleet.requests_per_sec", rps_at[&4]);
    fbs_bench::summary::record_metric("e15_fleet", "scaling_4v1", speedup4);
    fbs_bench::summary::record_metric("e15_fleet", "chaos_p99_us", p99_chaos);

    println!("\nscaling: 4 devices clear the burst {speedup4:.2}x faster than 1");
    println!(
        "chaos: device 1 tripped its breaker ({} opens) and rejoined ({} device successes);",
        d1.breaker_opens, d1.device_successes
    );
    println!(
        "all {chaos_reqs} responses match serial to 1e-9 V with zero lost, p99 {p99_chaos:.1} µs \
         vs healthy {p99_healthy:.1} µs"
    );
}
