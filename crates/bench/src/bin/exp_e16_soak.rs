//! E16 (extension) — compound-fault chaos soak: a storm schedule drives
//! corruption bursts, a load-correlated corruption ramp, and a
//! cross-device correlated kill against a 4-device fleet while the
//! integrity layer (checked transfers + shadow sampler) must catch
//! every induced corruption.
//!
//! Three phases over one feeder:
//!
//! * **Calm** — the request stream runs with no storm to fix a
//!   throughput and latency baseline.
//! * **Storm** — the same stream re-runs under a [`StormSchedule`]:
//!   a corruption burst, a rising corruption-under-load ramp, and a
//!   correlated kill of devices 1 and 2 (a rack-event analog). The run
//!   asserts the four soak invariants:
//!   1. *Conservation* — every submitted request is answered or shed,
//!      exactly once (`answered + shed == submitted`).
//!   2. *Parity* — every answered single solve matches the serial
//!      oracle to 1e-9 V; the shadow sampler independently re-verifies
//!      a deterministic 1-in-K sample (batches included) and must see
//!      zero mismatches — i.e. **zero undetected corruptions**.
//!   3. *Detection* — the CRC net actually fires: at least one
//!      storm-induced transfer corruption is detected (and retried)
//!      rather than crashing or silently landing.
//!   4. *Recovery* — both killed devices rejoin and serve again after
//!      the kill window.
//! * **Replay** — the storm run re-runs with identical seeds and must
//!   reproduce byte-identical scheduler decisions and answers.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e16_soak`
//! (`E16_SMOKE=1` restricts the soak for CI.)

use fbs::fleet::poisson_arrivals;
use fbs::{
    FleetConfig, FleetRequest, FleetResponse, FleetService, IntegrityConfig, IntegritySampler,
    Outcome, Request, SerialSolver, ServiceConfig, SolverConfig,
};
use fbs_bench::{rng_for, Table};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::RadialNetwork;
use simt::{HostProps, StormSchedule};

/// Nearest-rank quantile of an unsorted latency sample.
fn quantile(samples: &[f64], q: f64) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    if s.is_empty() {
        return 0.0;
    }
    s[(((s.len() - 1) as f64) * q).ceil() as usize]
}

/// Latencies of the answered responses.
fn latencies(responses: &[FleetResponse]) -> Vec<f64> {
    responses.iter().filter(|r| r.answered()).map(|r| r.latency_us()).collect()
}

/// Corruptions caught by checked transfers across every answered
/// response (solve and batch alike). Every count here was *detected* —
/// an undetected corruption never reaches a fault report; it can only
/// surface as a shadow-sampler mismatch.
fn detected_corruptions(responses: &[FleetResponse]) -> u64 {
    responses
        .iter()
        .map(|r| match &r.outcome {
            Outcome::Solved(res) => {
                res.fault_report.as_ref().map_or(0, |fr| u64::from(fr.corruptions_detected))
            }
            Outcome::Batch(res) => {
                res.fault_report.as_ref().map_or(0, |fr| u64::from(fr.corruptions_detected))
            }
            _ => 0,
        })
        .sum()
}

/// The compound storm: an early corruption burst, a long
/// corruption-under-load ramp, and a correlated kill of devices 1 and 2
/// between them. The kill window is narrow in op-space because a dead
/// device consumes exactly one plan op per attempt — wide enough to
/// trip both breakers, short enough that the rejoin probes land past it.
fn storm() -> StormSchedule {
    StormSchedule::new(fbs_bench::SEED ^ 0xE16)
        .with_burst(150, 2_500, 0.04)
        .with_corruption_ramp(4_000, 5_000, 0.06)
        .with_correlated_kill(3_000, 3_012, [1, 2])
}

/// The mixed request stream: mostly single solves with a batch every
/// sixth request (batches exercise the checked mask upload and the
/// chunk-retry corruption accounting).
fn arrivals(
    net: &RadialNetwork,
    cfg: SolverConfig,
    reqs: usize,
    gap_us: f64,
) -> Vec<(f64, FleetRequest)> {
    let scenarios: Vec<Vec<numc::Complex>> = (0..4)
        .map(|k| net.buses().iter().map(|b| b.load * (0.85 + 0.05 * k as f64)).collect())
        .collect();
    poisson_arrivals(reqs, gap_us, fbs_bench::SEED, |i| {
        if i % 6 == 5 {
            FleetRequest::new(Request::Batch {
                net: net.clone(),
                scenarios: scenarios.clone(),
                cfg,
            })
        } else {
            FleetRequest::new(Request::Solve { net: net.clone(), cfg })
        }
    })
}

/// One soak (or calm) stream on a uniform 4-device fleet.
fn soak_run(
    net: &RadialNetwork,
    cfg: SolverConfig,
    reqs: usize,
    gap_us: f64,
    with_storm: bool,
) -> (Vec<FleetResponse>, FleetService) {
    // Aggressive rejoin pacing: a benched device goes half-open after a
    // single open-served dispatch and every other dispatch is a rejoin
    // probe — the soak measures integrity under churn, not the default
    // probe cadence, and the stream must be long enough for two killed
    // devices to rejoin before it drains.
    let fcfg = FleetConfig {
        service: ServiceConfig { breaker_probe_after: 1, ..ServiceConfig::default() },
        queue_capacity: reqs,
        rejoin_every: 2,
        ..FleetConfig::uniform(4)
    };
    let mut fleet = FleetService::new(fcfg).with_integrity(IntegritySampler::new(
        IntegrityConfig { sample_every: 2, ..IntegrityConfig::default() },
        HostProps::paper_rig(),
    ));
    if with_storm {
        fleet = fleet.with_storm(storm());
    }
    let responses = fleet.run_stream(arrivals(net, cfg, reqs, gap_us));
    (responses, fleet)
}

/// Canonical projection of a stream: every scheduler decision plus the
/// numerical answer, excluding only host wall-clock (recorded for
/// transparency, legitimately nondeterministic).
fn decisions(responses: &[FleetResponse]) -> String {
    responses
        .iter()
        .map(|r| {
            let v = match &r.outcome {
                Outcome::Solved(res) => format!("{:?}", res.v),
                Outcome::Batch(res) => format!("{:?} {:?}", res.statuses, res.v),
                other => format!("{other:?}"),
            };
            format!(
                "{} {:?} {} {} {} {} {} {:?} {v}",
                r.id, r.device, r.backend, r.start_us, r.finish_us, r.failovers, r.hedged, r.shed,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn record_row(
    table: &mut Table,
    phase: &str,
    responses: &[FleetResponse],
    fleet: &FleetService,
) -> f64 {
    let s = fleet.stats();
    let istats = fleet.integrity_stats();
    let lat = latencies(responses);
    let makespan = responses.iter().map(|r| r.finish_us).fold(0.0f64, f64::max);
    let rps = if makespan > 0.0 { lat.len() as f64 / (makespan / 1e6) } else { 0.0 };
    table.row(&[
        &phase,
        &s.submitted,
        &s.served,
        &s.shed(),
        &s.failovers,
        &detected_corruptions(responses),
        &istats.sampled,
        &istats.mismatches,
        &format!("{:.1}", quantile(&lat, 0.5)),
        &format!("{:.1}", quantile(&lat, 0.99)),
        &format!("{rps:.0}"),
    ]);
    rps
}

fn main() {
    let spec = GenSpec::default();
    let smoke = std::env::var("E16_SMOKE").is_ok();
    let (n, reqs) = if smoke { (127, 36) } else { (255, 120) };

    let mut rng = rng_for(160 + n as u64);
    let net = balanced_binary(n, &spec, &mut rng);
    // Soak requests run at 1e-12 so the 1e-9 V parity bar has headroom.
    let cfg = SolverConfig::new(1e-12, 300);
    let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);

    let mut table = Table::new(
        "E16: chaos soak (uniform 4-device fleet under a corruption burst, a corruption-under-load ramp, and a correlated kill of devices 1-2)",
        &[
            "phase", "reqs", "served", "shed", "failover", "corr_det", "sampled", "mismatch",
            "p50 µs", "p99 µs", "req/s",
        ],
    );

    // Phase 1: calm baseline fixing throughput and latency.
    let gap_us = 400.0;
    let (calm, fleet_calm) = soak_run(&net, cfg, reqs, gap_us, false);
    let calm_rps = record_row(&mut table, "calm", &calm, &fleet_calm);
    assert!(calm.iter().all(|r| r.answered()), "calm soak must answer everything");
    assert_eq!(fleet_calm.integrity_stats().mismatches, 0, "calm answers must shadow-verify");

    // Phase 2: the same stream under the storm.
    let (stormy, fleet_storm) = soak_run(&net, cfg, reqs, gap_us, true);
    let storm_rps = record_row(&mut table, "storm", &stormy, &fleet_storm);

    // Invariant 1 — conservation: nothing lost, nothing double-counted.
    let s = fleet_storm.stats();
    assert_eq!(stormy.len(), reqs, "one response per request under the storm");
    assert_eq!(s.submitted, reqs as u64, "every arrival was submitted");
    assert_eq!(
        s.served + s.shed(),
        s.submitted,
        "answered + shed must equal submitted (conservation)"
    );

    // Invariant 2 — parity: answered solves match the serial oracle,
    // and the shadow sampler saw zero mismatches (no corruption
    // escaped the nets undetected).
    for r in &stormy {
        let Outcome::Solved(res) = &r.outcome else { continue };
        assert!(res.converged(), "request {} did not converge under the storm", r.id);
        for (bus, (a, b)) in res.v.iter().zip(&serial.v).enumerate() {
            assert!(
                (a.abs() - b.abs()).abs() < 1e-9,
                "request {}, bus {bus}: |V| drifted {:e} from serial under the storm",
                r.id,
                (a.abs() - b.abs()).abs()
            );
        }
    }
    let istats = fleet_storm.integrity_stats();
    assert!(istats.sampled > 0, "the shadow sampler must draw from the storm run");
    assert_eq!(
        istats.mismatches, 0,
        "an answered corruption escaped every net (worst err {:e} V)",
        istats.worst_err_v
    );

    // Invariant 3 — detection: the CRC net fired at least once.
    let detected = detected_corruptions(&stormy);
    assert!(
        detected > 0,
        "the storm must land at least one corruption on a checked transfer"
    );

    // Invariant 4 — recovery: the correlated kill tripped both
    // breakers, and both devices rejoined and served.
    for ordinal in [1u32, 2] {
        let d = fleet_storm.device_stats(ordinal);
        assert!(
            d.breaker_opens >= 1,
            "the correlated kill must trip device {ordinal}'s breaker"
        );
        assert!(
            d.device_successes >= 1,
            "device {ordinal} must serve again after the correlated kill window"
        );
    }

    // Phase 3: byte-identical replay of the storm run.
    let (stormy2, _) = soak_run(&net, cfg, reqs, gap_us, true);
    assert_eq!(
        decisions(&stormy),
        decisions(&stormy2),
        "same seeds and storm must replay byte-identically"
    );

    table.emit("e16_soak");
    let lat = latencies(&stormy);
    fbs_bench::summary::record("e16_soak", &lat, &[]);
    fbs_bench::summary::record_metric("e16_soak", "soak.requests_per_sec", storm_rps);
    fbs_bench::summary::record_metric("e16_soak", "soak.detected_corruptions", detected as f64);
    fbs_bench::summary::record_metric("e16_soak", "soak.shadow_sampled", istats.sampled as f64);
    fbs_bench::summary::record_metric("e16_soak", "soak.shed", s.shed() as f64);

    println!(
        "\nsoak: {} requests served, {} shed, {} corruptions detected (zero undetected), \
         {} shadow-verified",
        s.served,
        s.shed(),
        detected,
        istats.verified
    );
    println!(
        "throughput: calm {calm_rps:.0} req/s, storm {storm_rps:.0} req/s; \
         replay byte-identical"
    );
}
