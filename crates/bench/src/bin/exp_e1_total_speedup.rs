//! E1 — the paper's headline table: total runtime, serial CPU vs GPU,
//! on balanced binary distribution trees of 1K–256K buses.
//!
//! Reproduces the abstract's claims: "We perform our tests on binary
//! power distribution trees that have number of nodes between 1K to
//! 256K. Our results show that the parallel implementation brings up to
//! 3.9x total speedup over the serial implementation."
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e1_total_speedup`

use fbs::{GpuSolver, SerialSolver};
use fbs_bench::{eval_config, rng_for, speedup, us, validate_or_die, Table, PAPER_SIZES};
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();
    let mut table = Table::new(
        "E1: Total runtime, serial CPU vs GPU (balanced binary trees)",
        &["buses", "iters", "serial total", "gpu total", "total speedup"],
    );
    let mut peak = 0.0f64;

    for &n in &PAPER_SIZES {
        let mut rng = rng_for(1);
        let net = balanced_binary(n, &spec, &mut rng);

        let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        validate_or_die(&net, &serial, "serial");

        let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let par = gpu.solve(&net, &cfg);
        validate_or_die(&net, &par, "gpu");
        assert_eq!(serial.iterations, par.iterations, "solvers must agree on iterates");

        table.sample(&par.timing);
        let s_us = serial.timing.total_us();
        let g_us = par.timing.total_us();
        let x = s_us / g_us;
        peak = peak.max(x);
        table.row(&[&n, &par.iterations, &us(s_us), &us(g_us), &speedup(x)]);
    }

    table.emit("e1_total_speedup");
    println!("\npeak total speedup: {} (paper reports up to 3.9x)", speedup(peak));
}
