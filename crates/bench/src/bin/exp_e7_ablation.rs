//! E7 — design-choice ablations the paper's discussion motivates:
//!
//! 1. **Backward-sweep strategy**: segmented scan (the paper's pattern)
//!    vs a direct per-parent child loop, on low- and high-fan-out trees.
//! 2. **Multicore CPU**: how much of the GPU win plain host parallelism
//!    would have delivered (level-parallel, 8 modeled cores).
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e7_ablation`

use fbs::{BackwardStrategy, GpuSolver, MulticoreSolver, SerialSolver};
use fbs_bench::{eval_config, rng_for, speedup, us, validate_or_die, Table};
use powergrid::gen::{balanced_binary, balanced_kary, star, GenSpec};
use powergrid::RadialNetwork;
use simt::{Device, DeviceProps, HostProps};

fn gpu_with(strategy: BackwardStrategy) -> GpuSolver {
    GpuSolver::with_strategy(Device::new(DeviceProps::paper_rig()), strategy)
}

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();

    // --- Part 1: backward-sweep strategy vs fan-out ---
    let nets: Vec<(&str, RadialNetwork)> = vec![
        ("binary 64K", balanced_binary(65_536, &spec, &mut rng_for(70))),
        ("16-ary 64K", balanced_kary(65_536, 16, &spec, &mut rng_for(71))),
        ("256-ary 64K", balanced_kary(65_536, 256, &spec, &mut rng_for(72))),
        ("star 64K", star(65_536, &spec, &mut rng_for(73))),
    ];
    let mut t1 = Table::new(
        "E7a: Backward-sweep strategy ablation (backward-phase modeled time)",
        &["topology", "segscan", "direct", "atomic scatter", "segscan vs direct", "segscan vs atomic"],
    );
    for (name, net) in &nets {
        let seg = gpu_with(BackwardStrategy::SegScan).solve(net, &cfg);
        let dir = gpu_with(BackwardStrategy::Direct).solve(net, &cfg);
        let at = gpu_with(BackwardStrategy::AtomicScatter).solve(net, &cfg);
        validate_or_die(net, &seg, name);
        validate_or_die(net, &dir, name);
        validate_or_die(net, &at, name);
        t1.sample(&seg.timing);
        let a = seg.timing.phases.backward_us;
        let b = dir.timing.phases.backward_us;
        let c = at.timing.phases.backward_us;
        t1.row(&[name, &us(a), &us(b), &us(c), &speedup(b / a), &speedup(c / a)]);
    }
    t1.emit("e7a_backward_strategy");

    // --- Part 2: multicore CPU vs GPU across sizes ---
    let mut t2 = Table::new(
        "E7b: Serial vs 8-core CPU vs GPU (balanced binary trees)",
        &["buses", "serial", "8-core cpu", "gpu", "cpu8 speedup", "gpu speedup"],
    );
    for &n in &[4096usize, 32_768, 262_144] {
        let mut rng = rng_for(74);
        let net = balanced_binary(n, &spec, &mut rng);
        let s = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let m = MulticoreSolver::new(HostProps::paper_rig(), 8).solve(&net, &cfg);
        let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let g = gpu.solve(&net, &cfg);
        validate_or_die(&net, &m, "multicore");
        validate_or_die(&net, &g, "gpu");
        t2.sample(&g.timing);
        let st = s.timing.total_us();
        t2.row(&[
            &n,
            &us(st),
            &us(m.timing.total_us()),
            &us(g.timing.total_us()),
            &speedup(st / m.timing.total_us()),
            &speedup(st / g.timing.total_us()),
        ]);
    }
    t2.emit("e7b_multicore");
    println!("\nsegscan's advantage grows with fan-out; multicore closes part of the gap at mid sizes.");
}
