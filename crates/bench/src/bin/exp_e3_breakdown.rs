//! E3 — per-phase breakdown of the GPU solve versus tree size.
//!
//! The figure behind E1/E2: where the GPU time goes (upload, injection,
//! backward sweep, forward sweep, convergence, download) as the tree
//! grows. Shows transfers and launch overhead dominating small trees and
//! amortising at scale — the mechanism of the abstract's scaling claim.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e3_breakdown`

use fbs::GpuSolver;
use fbs_bench::{eval_config, rng_for, us, validate_or_die, Table, PAPER_SIZES};
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps};

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();
    let mut table = Table::new(
        "E3: GPU time breakdown per phase (balanced binary trees)",
        &[
            "buses",
            "upload",
            "inject",
            "backward",
            "forward",
            "converge",
            "download",
            "total",
            "transfer %",
        ],
    );

    for &n in &PAPER_SIZES {
        let mut rng = rng_for(3);
        let net = balanced_binary(n, &spec, &mut rng);
        let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let res = gpu.solve(&net, &cfg);
        validate_or_die(&net, &res, "gpu");

        table.sample(&res.timing);
        let p = res.timing.phases;
        let pct = 100.0 * res.timing.transfer_us / res.timing.total_us();
        table.row(&[
            &n,
            &us(p.setup_us),
            &us(p.injection_us),
            &us(p.backward_us),
            &us(p.forward_us),
            &us(p.convergence_us),
            &us(p.teardown_us),
            &us(p.total_us()),
            &format!("{pct:.1}%"),
        ]);
    }

    table.emit("e3_breakdown");
}
