//! E14 (extension) — N-1 contingency screening on the tensor engine:
//! screening throughput vs feeder size, warm-start vs cold iteration
//! counts, and parity against per-outage serial re-solves.
//!
//! Every single-line outage of a feeder is encoded as a per-scenario
//! topology patch (a DFS cut range plus one skipped child — a few words
//! per scenario) over the *shared* base tree, so all contingencies of a
//! 64K-bus feeder screen in **one** `TensorBatchSolver` run instead of
//! 64K rebuild-and-re-solve round trips. Warm-starting every
//! contingency from the base-case voltage profile (the screener solves
//! the base case once, serially) cuts the per-contingency iteration
//! count — the post-outage fixed point is near the base one everywhere
//! except under the lost subtree.
//!
//! Acceptance (full run, 64K-bus feeder):
//! * the full N-1 screen (65 535 outages) completes in one batched run
//!   and every contingency converges;
//! * a sampled set of outages matches per-outage serial re-solves
//!   (`TopologyDelta` apply → solve → revert) to 1e-9 V on energized
//!   buses, with de-energized buses reported at exactly 0;
//! * warm-started re-solves use strictly fewer iterations than cold on
//!   ≥ 90% of a paired 2 048-contingency sample, and the warm/cold
//!   iteration medians are folded into `BENCH_summary.json`.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e14_contingency`
//! Smoke (CI): `E14_SMOKE=1 cargo run -p fbs-bench --release --bin exp_e14_contingency`

use fbs::{
    ContingencyOutcome, ContingencyScreener, ScreeningReport, ScenarioPatch, SerialSolver,
    SolverConfig, TensorBatchSolver,
};
use fbs_bench::{eval_config, rng_for, summary, us, Table};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::{RadialNetwork, TopologyDelta};
use simt::{Device, DeviceProps, HostProps};

/// Deterministic evenly-strided sample of `count` non-root buses.
fn sample_buses(net: &RadialNetwork, count: usize) -> Vec<usize> {
    let root = net.root();
    let all: Vec<usize> = (0..net.num_buses()).filter(|&b| b != root).collect();
    if count >= all.len() {
        return all;
    }
    (0..count).map(|k| all[k * all.len() / count]).collect()
}

fn median(mut xs: Vec<u32>) -> u32 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn screener() -> ContingencyScreener {
    ContingencyScreener::new(Device::new(DeviceProps::paper_rig()))
}

/// One table row for a finished screen.
fn row(table: &mut Table, n: usize, mode: &str, report: &ScreeningReport) {
    let iters: Vec<u32> = report.outcomes.iter().map(|o| o.iterations).collect();
    let max = iters.iter().copied().max().unwrap_or(0);
    table.sample(&report.timing);
    table.row(&[
        &n,
        &report.outcomes.len(),
        &mode,
        &report.base_iterations,
        &median(iters),
        &max,
        &us(report.timing.total_us()),
        &format!("{:.0}", report.contingencies_per_sec),
    ]);
}

/// Sampled parity check: the batched patched solve (cold, state kept)
/// must match classical per-outage re-solves — `TopologyDelta::outage`
/// applied, solved serially, reverted — to `tol_v` volts on energized
/// buses, with de-energized buses reported at exactly 0.
fn assert_serial_parity(net: &RadialNetwork, cfg: &SolverConfig, buses: &[usize], tol_v: f64) {
    let patches: Vec<ScenarioPatch> = buses.iter().map(|&b| ScenarioPatch::outage(b)).collect();
    let mut tensor = TensorBatchSolver::new(Device::new(DeviceProps::paper_rig()));
    let batched = tensor.solve_patched(net, &patches, cfg, None);

    let serial = SerialSolver::new(HostProps::paper_rig());
    let mut work = net.clone();
    let mut worst = 0.0f64;
    for (s, &bus) in buses.iter().enumerate() {
        let mut delta = TopologyDelta::outage(&work, bus).expect("valid outage");
        delta.apply(&mut work).expect("delta applies");
        let reference = serial.solve(&work, cfg);
        assert_eq!(
            batched.statuses[s], reference.status,
            "outage of bus {bus}: batched vs serial status"
        );
        assert_eq!(
            batched.per_scenario_iterations[s], reference.iterations,
            "outage of bus {bus}: batched vs serial iteration count"
        );
        let mut dead = vec![false; net.num_buses()];
        for &b in delta.isolated() {
            dead[b] = true;
        }
        for b in 0..net.num_buses() {
            let v = batched.v[s][b];
            if dead[b] {
                assert!(
                    v.abs() == 0.0,
                    "outage of bus {bus}: de-energized bus {b} reported |V| {}",
                    v.abs()
                );
            } else {
                let dv = (v - reference.v[b]).abs();
                worst = worst.max(dv);
                assert!(
                    dv < tol_v,
                    "outage of bus {bus}: bus {b} differs from the serial re-solve by {dv:.3e} V"
                );
            }
        }
        delta.revert(&mut work).expect("delta reverts");
    }
    println!(
        "parity: {} sampled outages match per-outage serial re-solves \
         (worst energized |dV| {worst:.3e} V, de-energized pinned at 0)",
        buses.len()
    );
}

fn main() {
    let smoke = std::env::var("E14_SMOKE").is_ok();
    let cfg_cold = eval_config();
    let cfg_warm = eval_config().with_warm_start();
    let spec = GenSpec::default();

    let sizes: &[usize] = if smoke { &[255] } else { &[4095, 16383, 65535] };
    let sweep_sample = 1024; // outages per size in the throughput sweep
    let paired_sample = if smoke { usize::MAX } else { 2048 };
    let parity_sample = if smoke { 4 } else { 24 };

    let mut table = Table::new(
        "E14: N-1 contingency screening, tensor-batched topology patches",
        &[
            "buses",
            "outages",
            "mode",
            "base iters",
            "med iters",
            "max iters",
            "batch total",
            "conting/s",
        ],
    );

    let mut headline = None;
    for (i, &n) in sizes.iter().enumerate() {
        let mut rng = rng_for(140 + i as u64);
        let net = balanced_binary(n, &spec, &mut rng);
        let full = i + 1 == sizes.len();

        // Throughput: warm screen — full N-1 at the headline size, an
        // evenly-strided sample at the smaller sweep sizes.
        let warm_report = if full {
            screener().screen(&net, &cfg_warm)
        } else {
            screener().screen_buses(&net, &sample_buses(&net, sweep_sample), &cfg_warm)
        };
        assert!(
            warm_report.all_converged(),
            "{n} buses: every warm-screened contingency must converge"
        );
        row(&mut table, n, if full { "warm-full" } else { "warm" }, &warm_report);

        if !full {
            continue;
        }

        // ---- Headline size: paired warm/cold comparison ----
        let sample = sample_buses(&net, paired_sample);
        let cold_report = screener().screen_buses(&net, &sample, &cfg_cold);
        assert!(cold_report.all_converged());
        row(&mut table, n, "cold-sample", &cold_report);

        let mut by_bus: Vec<Option<ContingencyOutcome>> = vec![None; net.num_buses()];
        for o in &warm_report.outcomes {
            by_bus[o.bus] = Some(*o);
        }
        let mut strictly_fewer = 0usize;
        let mut warm_iters = Vec::with_capacity(sample.len());
        let mut cold_iters = Vec::with_capacity(sample.len());
        for cold in &cold_report.outcomes {
            let warm = by_bus[cold.bus].expect("full screen covers the sample");
            warm_iters.push(warm.iterations);
            cold_iters.push(cold.iterations);
            if warm.iterations < cold.iterations {
                strictly_fewer += 1;
            }
        }
        let warm_med = median(warm_iters);
        let cold_med = median(cold_iters);
        println!(
            "warm vs cold on {} paired contingencies: strictly fewer iterations on {} \
             ({:.1}%), medians {warm_med} vs {cold_med}",
            sample.len(),
            strictly_fewer,
            100.0 * strictly_fewer as f64 / sample.len() as f64,
        );
        if smoke {
            assert!(
                warm_med <= cold_med,
                "warm median {warm_med} must not exceed cold median {cold_med}"
            );
        } else {
            assert!(
                strictly_fewer * 10 >= sample.len() * 9,
                "acceptance: warm must use strictly fewer iterations than cold on >=90% \
                 of contingencies ({strictly_fewer}/{})",
                sample.len()
            );
        }
        headline = Some((
            warm_report.outcomes.len(),
            warm_report.contingencies_per_sec,
            warm_med,
            cold_med,
        ));

        // ---- Parity against classical per-outage re-solves ----
        assert_serial_parity(&net, &cfg_cold, &sample_buses(&net, parity_sample), 1e-9);
    }

    // `emit` rewrites the experiment's summary entry, so headline metrics
    // must merge in afterwards or the rewrite drops them.
    table.emit("e14_contingency");
    if let Some((outages, cps, warm_med, cold_med)) = headline {
        summary::record_metric("e14_contingency", "warm_median_iters", f64::from(warm_med));
        summary::record_metric("e14_contingency", "cold_median_iters", f64::from(cold_med));
        summary::record_metric("e14_contingency", "contingencies_per_sec", cps);
        println!(
            "\nfull N-1 screen: {outages} contingencies in one batched run, \
             {cps:.0} contingencies per modeled second."
        );
    }
}
