//! E17 (extension) — weakly-meshed grids and distributed generation:
//! break-point compensation + PV-bus outer-loop cost over radial
//! baselines, and the tensor-batched DG-penetration sweep against
//! serial outer-loop re-solves.
//!
//! Each feeder is a random radial tree re-closed with a few normally-
//! open ties (making it weakly meshed) and seeded with PV-mode
//! distributed generators holding voltage set-points under Q limits.
//! The outer loop pays one extra inner solve per compensation/PV
//! update, so the interesting numbers are (a) the outer-iteration
//! count (flat in feeder size), (b) the meshed-over-radial cost factor
//! per backend, and (c) how far one tensor-batched outer loop — a
//! single batched inner solve per round shared by the *whole* DG
//! scenario family — beats re-running the serial outer loop per
//! scenario.
//!
//! Acceptance (full run, headline size):
//! * every meshed/DG solve converges on serial and GPU with identical
//!   outer-iteration counts, and voltages agree to 1e-9·|V0|;
//! * sampled batched scenarios match standalone serial outer-loop
//!   re-solves to 1e-5·|V0|;
//! * the batched DG sweep sustains ≥ 10× the per-scenario throughput
//!   of serial outer-loop re-solves, and the headline metrics land in
//!   `BENCH_summary.json`.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e17_mesh`
//! Smoke (CI): `E17_SMOKE=1 cargo run -p fbs-bench --release --bin exp_e17_mesh`

use fbs::{
    solve_dg_batch, GpuSolver, MeshSolver, OuterConfig, SerialSolver, SolveResult, SolverConfig,
    TensorBatchSolver,
};
use fbs_bench::{eval_config, rng_for, summary, us, Table};
use numc::{c, Complex};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::{ieee, MeshedNetwork, MeshedNetworkBuilder, PvBus, RadialNetwork};
use rng::rngs::StdRng;
use rng::Rng;
use simt::{Device, HostProps};

/// Re-closes a random radial tree into a weakly-meshed DG feeder:
/// `loops` closed ties between distinct non-adjacent buses, and `gens`
/// PV generators spread over the feeder, each holding 99.5% of the
/// source magnitude with Q limits sized off the total feeder load.
fn dg_feeder(net: &RadialNetwork, loops: usize, gens: usize, rng: &mut StdRng) -> MeshedNetwork {
    let n = net.num_buses();
    let total_load: f64 = net.buses().iter().map(|b| b.load.re).sum();
    let v0 = net.source_voltage();

    let mut b = MeshedNetworkBuilder::new(v0);
    for bus in net.buses() {
        b.add_bus(bus.load);
    }
    for br in net.branches() {
        b.connect(br.from, br.to, br.z);
    }

    let mut used: std::collections::HashSet<(usize, usize)> = net
        .branches()
        .iter()
        .map(|br| (br.from.min(br.to), br.from.max(br.to)))
        .collect();
    let mut placed = 0;
    while placed < loops {
        let a = rng.gen_range(1usize..n);
        let bb = rng.gen_range(1usize..n);
        if a == bb || !used.insert((a.min(bb), a.max(bb))) {
            continue;
        }
        b.tie(a, bb, c(rng.gen_range(0.1..0.5), rng.gen_range(0.1..0.5)), true);
        placed += 1;
    }

    let q_cap = 0.05 * total_load;
    let mut gen_buses = std::collections::HashSet::new();
    while gen_buses.len() < gens {
        let bus = rng.gen_range(1usize..n);
        if gen_buses.insert(bus) {
            b.generator(PvBus {
                bus,
                p_gen: 0.02 * total_load,
                v_set: 0.995 * v0.abs(),
                q_min: -q_cap,
                q_max: q_cap,
            });
        }
    }
    b.build().expect("generated DG feeder must validate")
}

/// Rebuilds one DG-penetration scenario of `net` as a standalone meshed
/// network with every generator's active output scaled by `dg`.
fn scenario(net: &MeshedNetwork, dg: f64) -> MeshedNetwork {
    let tree = net.tree();
    let mut b = MeshedNetworkBuilder::new(tree.source_voltage());
    for bus in tree.buses() {
        b.add_bus(bus.load);
    }
    for br in tree.branches() {
        b.connect(br.from, br.to, br.z);
    }
    for bp in net.break_points() {
        b.tie(bp.a, bp.b, bp.z, true);
    }
    for g in net.generators() {
        b.generator(PvBus { p_gen: g.p_gen * dg, ..*g });
    }
    b.build().expect("scenario rebuild must validate")
}

fn assert_close(a: &[Complex], b: &[Complex], tol: f64, who: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((*x - *y).abs() <= tol, "{who}: bus {i}: {x:?} vs {y:?}");
    }
}

fn radial_baseline(net: &RadialNetwork, cfg: &SolverConfig) -> (SolveResult, SolveResult) {
    let serial = SerialSolver::new(HostProps::paper_rig()).solve(net, cfg);
    let mut gpu = GpuSolver::new(Device::paper_rig());
    let on_gpu = gpu.solve(net, cfg);
    assert!(serial.converged() && on_gpu.converged(), "radial baseline must converge");
    (serial, on_gpu)
}

fn main() {
    let smoke = std::env::var("E17_SMOKE").is_ok();
    let cfg = eval_config();
    let outer = OuterConfig::default();
    let spec = GenSpec::default();

    let sizes: &[usize] = if smoke { &[255] } else { &[1023, 4095, 16_383, 65_535] };

    // Correctness anchor first: the IEEE 123-bus DG feeder solves
    // identically on serial and GPU backends.
    let anchor = ieee::ieee123_dg();
    let a_serial = MeshSolver::new(SerialSolver::new(HostProps::paper_rig())).solve(&anchor, &cfg);
    let a_gpu = MeshSolver::new(GpuSolver::new(Device::paper_rig())).solve(&anchor, &cfg);
    assert!(a_serial.converged() && a_gpu.converged(), "ieee123-dg must converge");
    assert_eq!(a_serial.outer_iterations, a_gpu.outer_iterations, "ieee123-dg outer iterations");
    assert_close(
        &a_serial.inner.v,
        &a_gpu.inner.v,
        1e-9 * anchor.tree().source_voltage().abs(),
        "ieee123-dg serial vs gpu",
    );
    println!(
        "anchor: ieee123-dg converges in {} outer iterations on both backends \
         ({} loops, {} generators)\n",
        a_serial.outer_iterations,
        anchor.break_points().len(),
        anchor.generators().len(),
    );

    let mut table = Table::new(
        "E17: weakly-meshed + DG outer loop, cost over the radial baseline",
        &[
            "buses",
            "loops",
            "gens",
            "backend",
            "outer",
            "inner iters",
            "modeled total",
            "vs radial",
        ],
    );

    let mut outer_iters_headline = 0u32;
    for (i, &n) in sizes.iter().enumerate() {
        let mut rng = rng_for(170 + i as u64);
        // Balanced trees keep the level count logarithmic — E17 measures
        // the outer loop's cost, not the deep-tree launch-overhead
        // pathology (that is E8's subject).
        let net = balanced_binary(n, &spec, &mut rng);
        let meshed = dg_feeder(&net, 3, 4, &mut rng);
        let v0 = net.source_voltage().abs();
        let (base_serial, base_gpu) = radial_baseline(&net, &cfg);

        let serial = MeshSolver::new(SerialSolver::new(HostProps::paper_rig()))
            .with_outer(outer)
            .solve(&meshed, &cfg);
        let gpu = MeshSolver::new(GpuSolver::new(Device::paper_rig()))
            .with_outer(outer)
            .solve(&meshed, &cfg);
        assert!(serial.converged(), "{n} buses: serial meshed solve: {}", serial.status);
        assert!(gpu.converged(), "{n} buses: gpu meshed solve: {}", gpu.status);
        assert_eq!(
            serial.outer_iterations, gpu.outer_iterations,
            "{n} buses: backends must agree on the outer trajectory"
        );
        assert_close(&serial.inner.v, &gpu.inner.v, 1e-9 * v0, "serial vs gpu");

        for (backend, res, base) in
            [("serial", &serial, &base_serial), ("gpu", &gpu, &base_gpu)]
        {
            table.sample(&res.inner.timing);
            table.row(&[
                &n,
                &meshed.break_points().len(),
                &meshed.generators().len(),
                &backend,
                &res.outer_iterations,
                &res.inner.iterations,
                &us(res.inner.timing.total_us()),
                &format!("{:.1}x", res.inner.timing.total_us() / base.timing.total_us()),
            ]);
        }
        outer_iters_headline = serial.outer_iterations;
    }
    table.emit("e17_mesh");

    // ---- Batched DG-penetration sweep vs serial outer-loop re-solves ----
    // The amortization sweet spot mirrors E9's: a mid-size feeder where
    // per-launch overhead (not raw bus count) dominates the per-scenario
    // cost, swept over a large penetration family in one batched loop.
    let sweep_n = if smoke { 255 } else { 4095 };
    let n_scenarios = if smoke { 8 } else { 256 };
    let mut rng = rng_for(177);
    let sweep_tree = balanced_binary(sweep_n, &spec, &mut rng);
    let meshed = dg_feeder(&sweep_tree, 3, 4, &mut rng);
    let v0 = meshed.tree().source_voltage().abs();
    let scales: Vec<f64> =
        (0..n_scenarios).map(|s| 1.5 * s as f64 / (n_scenarios - 1) as f64).collect();

    let mut tbs = TensorBatchSolver::new(Device::paper_rig());
    let batch = solve_dg_batch(&mut tbs, &meshed, &scales, &cfg, &outer)
        .expect("modeled device does not fail");
    assert!(batch.converged(), "batched DG sweep worst: {}", batch.worst_status());

    let mut serial_total_us = 0.0;
    let parity_stride = (n_scenarios / 4).max(1);
    for (s, &dg) in scales.iter().enumerate() {
        let scen = scenario(&meshed, dg);
        let r = MeshSolver::new(SerialSolver::new(HostProps::paper_rig()))
            .with_outer(outer)
            .solve(&scen, &cfg);
        assert!(r.converged(), "scenario {s} (dg {dg:.2}): {}", r.status);
        serial_total_us += r.inner.timing.total_us();
        if s % parity_stride == 0 {
            assert_close(&batch.v[s], &r.inner.v, 1e-5 * v0, "batched vs serial scenario");
        }
    }
    let speedup = serial_total_us / batch.total_us;
    println!(
        "\nbatched DG sweep ({sweep_n}-bus feeder): {n_scenarios} penetration scenarios \
         (0–150% nameplate), {} outer rounds, {} in one batched loop vs {} serial — \
         {speedup:.1}x, {:.0} scenarios per modeled second",
        batch.outer_rounds,
        us(batch.total_us),
        us(serial_total_us),
        batch.scenarios_per_sec,
    );
    if smoke {
        assert!(speedup > 0.0, "smoke: batched sweep must produce a throughput figure");
    } else {
        assert!(
            speedup >= 10.0,
            "acceptance: batched DG sweep must be >=10x serial outer-loop re-solves, \
             got {speedup:.1}x"
        );
    }

    summary::record_metric("e17_mesh", "dg_batch_speedup", speedup);
    summary::record_metric("e17_mesh", "dg_scenarios_per_sec", batch.scenarios_per_sec);
    summary::record_metric("e17_mesh", "outer_iters_headline", f64::from(outer_iters_headline));
}
