//! E2 — GPU-only speedup versus tree size (transfers excluded).
//!
//! Reproduces the abstract's scaling claim: "for the parts of the
//! computation that entirely run on the GPU, larger speedups are
//! achieved as the size of the distribution tree increases."
//!
//! "GPU-only" = modeled kernel time of the iterative sweeps (injection,
//! backward, forward, convergence kernels), excluding the topology
//! upload, the result download and the per-iteration scalar read-back;
//! compared to the serial CPU time of the same sweep phases.
//!
//! Run: `cargo run -p fbs-bench --release --bin exp_e2_kernel_speedup`

use fbs::{GpuSolver, SerialSolver};
use fbs_bench::{eval_config, rng_for, speedup, us, validate_or_die, Table, PAPER_SIZES};
use powergrid::gen::{balanced_binary, GenSpec};
use simt::{Device, DeviceProps, HostProps};

fn main() {
    let cfg = eval_config();
    let spec = GenSpec::default();
    let mut table = Table::new(
        "E2: Sweep-only (GPU-resident) runtime and speedup vs tree size",
        &["buses", "serial sweeps", "gpu sweeps", "sweep speedup", "total speedup"],
    );

    let mut last_x = 0.0;
    let mut monotone_from_4k = true;
    for &n in &PAPER_SIZES {
        let mut rng = rng_for(2);
        let net = balanced_binary(n, &spec, &mut rng);

        let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
        let par = gpu.solve(&net, &cfg);
        validate_or_die(&net, &par, "gpu");

        table.sample(&par.timing);
        let s_sweep = serial.timing.phases.sweep_us();
        let g_sweep = par.timing.sweep_kernel_us();
        let x = s_sweep / g_sweep;
        let total_x = serial.timing.total_us() / par.timing.total_us();
        if n > 4096 && x < last_x {
            monotone_from_4k = false;
        }
        last_x = x;
        table.row(&[&n, &us(s_sweep), &us(g_sweep), &speedup(x), &speedup(total_x)]);
    }

    table.emit("e2_kernel_speedup");
    println!(
        "\nsweep speedup grows monotonically above 4K buses: {}",
        if monotone_from_4k { "yes (matches the abstract)" } else { "NO — check calibration" }
    );
}
