//! The shared table helper every experiment binary renders through: one
//! column-aligned markdown printer with a CSV mirror under `results/`,
//! plus the timing-sample hook that feeds `results/BENCH_summary.json`
//! (see [`crate::summary`]) so the cross-PR perf trajectory is recorded
//! without per-binary boilerplate.

use std::fmt::Display;
use std::fs;
use std::path::{Path, PathBuf};

use fbs::Timing;

use crate::summary;

/// A simple column-aligned markdown table accumulated row by row and
/// mirrored to CSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    modeled_us: Vec<f64>,
    wall_us: Vec<f64>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            modeled_us: Vec::new(),
            wall_us: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Records one measured solve behind the table's headline numbers.
    /// [`Table::emit`] folds the samples into `results/BENCH_summary.json`
    /// as per-experiment medians (modeled and wall µs).
    pub fn sample(&mut self, timing: &Timing) {
        self.modeled_us.push(timing.total_us());
        self.wall_us.push(timing.wall_us);
    }

    /// Renders the table as column-aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("\n## {}\n\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let inner: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>width$}", width = w))
                .collect();
            format!("| {} |\n", inner.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders the rows as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the markdown table, writes `results/<name>.csv` (relative
    /// to the workspace root when run via cargo), and — when timing
    /// samples were recorded — updates the experiment's medians in
    /// `results/BENCH_summary.json`.
    pub fn emit(&self, name: &str) {
        print!("{}", self.to_markdown());
        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match fs::write(&path, self.to_csv()) {
            Ok(()) => println!("\n[written {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
        if !self.modeled_us.is_empty() || !self.wall_us.is_empty() {
            summary::record(name, &self.modeled_us, &self.wall_us);
        }
    }
}

/// `results/` next to the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .map(|ws| ws.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats µs with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 100_000.0 {
        format!("{:.1} ms", v / 1000.0)
    } else {
        format!("{v:.1} µs")
    }
}

/// Formats a speedup factor.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = Table::new("Demo", &["n", "time"]);
        t.row(&[&1024, &"5.0 µs"]);
        t.row(&[&2048, &"9.1 µs"]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 1024 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("n,time\n"));
        assert!(csv.contains("2048,9.1 µs\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("Demo", &["x"]);
        t.row(&[&"a,b"]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(12.34), "12.3 µs");
        assert_eq!(us(250_000.0), "250.0 ms");
        assert_eq!(speedup(3.912), "3.91x");
    }

    #[test]
    fn sample_collects_timing() {
        let mut t = Table::new("Demo", &["x"]);
        let timing = Timing { wall_us: 7.0, ..Timing::default() };
        t.sample(&timing);
        assert_eq!(t.modeled_us.len(), 1);
        assert_eq!(t.wall_us, vec![7.0]);
    }
}
