//! `results/BENCH_summary.json` — the cross-run perf trajectory.
//!
//! Every experiment binary and micro-bench group folds its headline
//! medians into one machine-readable file, keyed by experiment name, so
//! successive runs (and successive PRs) can be diffed without scraping
//! stdout or re-parsing per-experiment CSVs. The file is read-modify-
//! written: running one experiment updates its own entry and leaves the
//! rest untouched. Modeled medians are deterministic for a fixed seed;
//! wall medians are whatever the current host produced.

use std::collections::BTreeMap;
use std::fs;

use telemetry::json::{self, Value};

use crate::table::results_dir;

/// Median of the samples (NaN-free input assumed), or `None` when empty.
fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let n = s.len();
    Some(if n % 2 == 1 { s[n / 2] } else { 0.5 * (s[n / 2 - 1] + s[n / 2]) })
}

/// Builds the JSON entry for one experiment.
fn entry(modeled_us: &[f64], wall_us: &[f64]) -> Value {
    let mut o = BTreeMap::new();
    if let Some(m) = median(modeled_us) {
        o.insert("median_modeled_us".to_string(), Value::Num(m));
    }
    if let Some(w) = median(wall_us) {
        o.insert("median_wall_us".to_string(), Value::Num(w));
    }
    o.insert(
        "samples".to_string(),
        Value::Num(modeled_us.len().max(wall_us.len()) as f64),
    );
    Value::Obj(o)
}

/// Reads the existing summary's experiment map, tolerating a missing or
/// malformed file (a fresh map in both cases).
fn load_experiments(text: Option<&str>) -> BTreeMap<String, Value> {
    let Some(text) = text else { return BTreeMap::new() };
    match json::parse(text) {
        Ok(Value::Obj(mut root)) => match root.remove("experiments") {
            Some(Value::Obj(map)) => map,
            _ => BTreeMap::new(),
        },
        _ => BTreeMap::new(),
    }
}

/// Serialises the summary document (single line + trailing newline,
/// deterministic key order).
fn render(experiments: BTreeMap<String, Value>) -> String {
    let mut root = BTreeMap::new();
    root.insert("experiments".to_string(), Value::Obj(experiments));
    let mut s = Value::Obj(root).to_json();
    s.push('\n');
    s
}

/// Folds one experiment's timing samples into
/// `results/BENCH_summary.json` as medians. Best-effort like the CSV
/// mirror: I/O failures warn on stderr rather than failing the run.
pub fn record(name: &str, modeled_us: &[f64], wall_us: &[f64]) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("BENCH_summary.json");
    let existing = fs::read_to_string(&path).ok();
    let mut experiments = load_experiments(existing.as_deref());
    experiments.insert(name.to_string(), entry(modeled_us, wall_us));
    match fs::write(&path, render(experiments)) {
        Ok(()) => println!("[summary {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Folds one named scalar metric into an experiment's entry in
/// `results/BENCH_summary.json`, preserving whatever medians [`record`]
/// already wrote for it. Used for headline numbers that are not timing
/// medians — e.g. E9's `scenarios_per_sec` throughput.
pub fn record_metric(name: &str, key: &str, value: f64) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("BENCH_summary.json");
    let existing = fs::read_to_string(&path).ok();
    let mut experiments = load_experiments(existing.as_deref());
    merge_metric(&mut experiments, name, key, value);
    if let Err(e) = fs::write(&path, render(experiments)) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// Inserts `key = value` into `name`'s entry, creating the entry (or
/// replacing a non-object one) as needed.
fn merge_metric(experiments: &mut BTreeMap<String, Value>, name: &str, key: &str, value: f64) {
    let entry = experiments
        .entry(name.to_string())
        .or_insert_with(|| Value::Obj(BTreeMap::new()));
    match entry {
        Value::Obj(o) => {
            o.insert(key.to_string(), Value::Num(value));
        }
        other => {
            let mut o = BTreeMap::new();
            o.insert(key.to_string(), Value::Num(value));
            *other = Value::Obj(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[5.0, 1.0, 9.0]), Some(5.0));
        assert_eq!(median(&[4.0, 2.0, 8.0, 6.0]), Some(5.0));
    }

    #[test]
    fn entry_skips_missing_series() {
        let e = entry(&[2.0, 1.0], &[]);
        assert_eq!(e.get("median_modeled_us").and_then(Value::as_f64), Some(1.5));
        assert!(e.get("median_wall_us").is_none());
        assert_eq!(e.get("samples").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn read_modify_write_preserves_other_entries() {
        let mut first = BTreeMap::new();
        first.insert("e1".to_string(), entry(&[10.0], &[20.0]));
        let text = render(first);
        let mut loaded = load_experiments(Some(&text));
        loaded.insert("e2".to_string(), entry(&[30.0], &[]));
        let text2 = render(loaded);
        let v = json::parse(&text2).unwrap();
        let exps = v.get("experiments").unwrap();
        assert_eq!(
            exps.get("e1").unwrap().get("median_modeled_us").and_then(Value::as_f64),
            Some(10.0)
        );
        assert_eq!(
            exps.get("e2").unwrap().get("median_modeled_us").and_then(Value::as_f64),
            Some(30.0)
        );
    }

    #[test]
    fn merge_metric_preserves_existing_medians() {
        let mut exps = BTreeMap::new();
        exps.insert("e9_batch".to_string(), entry(&[100.0], &[200.0]));
        merge_metric(&mut exps, "e9_batch", "scenarios_per_sec", 50_000.0);
        let e = &exps["e9_batch"];
        assert_eq!(e.get("median_modeled_us").and_then(Value::as_f64), Some(100.0));
        assert_eq!(e.get("scenarios_per_sec").and_then(Value::as_f64), Some(50_000.0));
        // A metric on an experiment with no medians creates the entry.
        merge_metric(&mut exps, "fresh", "k", 1.0);
        assert_eq!(exps["fresh"].get("k").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn malformed_existing_file_starts_fresh() {
        assert!(load_experiments(Some("not json")).is_empty());
        assert!(load_experiments(Some("{\"experiments\": 3}")).is_empty());
        assert!(load_experiments(None).is_empty());
    }
}
