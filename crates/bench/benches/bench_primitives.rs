//! Criterion wall-clock benchmarks of the data-parallel primitives.
//!
//! These measure the *simulator's* host execution speed (how fast the
//! functional emulation runs) — useful for keeping the harness usable.
//! They are NOT device-performance claims; modeled device time is what
//! the `exp_e6_primitives` binary reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use numc::Complex;
use primitives::ops::{AddComplex, AddF64, MaxF64};
use primitives::{reduce, scan_inclusive, segscan_inclusive};
use simt::{Device, DeviceProps};

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_max_f64");
    for &n in &[4096usize, 65_536, 262_144] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut dev = Device::new(DeviceProps::paper_rig());
            let xs: Vec<f64> = (0..n).map(|i| (i % 1000) as f64).collect();
            let buf = dev.alloc_from(&xs);
            b.iter(|| reduce::<f64, MaxF64>(&mut dev, &buf));
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_inclusive_f64");
    for &n in &[4096usize, 65_536, 262_144] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut dev = Device::new(DeviceProps::paper_rig());
            let xs: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let buf = dev.alloc_from(&xs);
            let mut out = dev.alloc::<f64>(n);
            b.iter(|| scan_inclusive::<f64, AddF64>(&mut dev, &buf, &mut out));
        });
    }
    group.finish();
}

fn bench_segscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("segscan_inclusive_c64");
    for &n in &[4096usize, 65_536, 262_144] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut dev = Device::new(DeviceProps::paper_rig());
            let xs: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -1.0)).collect();
            let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 32 == 0)).collect();
            let vals = dev.alloc_from(&xs);
            let fl = dev.alloc_from(&flags);
            let mut out = dev.alloc::<Complex>(n);
            b.iter(|| segscan_inclusive::<Complex, AddComplex>(&mut dev, &vals, &fl, &mut out));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reduce, bench_scan, bench_segscan
}
criterion_main!(benches);
