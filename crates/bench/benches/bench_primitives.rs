//! Wall-clock micro-benchmarks of the data-parallel primitives.
//!
//! These measure the *simulator's* host execution speed (how fast the
//! functional emulation runs) — useful for keeping the harness usable.
//! They are NOT device-performance claims; modeled device time is what
//! the `exp_e6_primitives` binary reports.
//!
//! Run: `cargo bench -p fbs-bench --bench bench_primitives`

use fbs_bench::micro::{MicroBench, MicroReport};
use numc::Complex;
use primitives::ops::{AddComplex, AddF64, MaxF64};
use primitives::{reduce, scan_inclusive, segscan_inclusive};
use simt::{Device, DeviceProps};

const SIZES: [usize; 3] = [4096, 65_536, 262_144];

fn main() {
    let mut report = MicroReport::new("primitives");
    let schedule = MicroBench::new(2, 15);

    for &n in &SIZES {
        let mut dev = Device::new(DeviceProps::paper_rig());
        let xs: Vec<f64> = (0..n).map(|i| (i % 1000) as f64).collect();
        let buf = dev.alloc_from(&xs);
        schedule.run(&mut report, &format!("reduce_max_f64/{n}"), n, || {
            reduce::<f64, MaxF64>(&mut dev, &buf);
        });
    }

    for &n in &SIZES {
        let mut dev = Device::new(DeviceProps::paper_rig());
        let xs: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let buf = dev.alloc_from(&xs);
        let mut out = dev.alloc::<f64>(n);
        schedule.run(&mut report, &format!("scan_inclusive_f64/{n}"), n, || {
            scan_inclusive::<f64, AddF64>(&mut dev, &buf, &mut out);
        });
    }

    for &n in &SIZES {
        let mut dev = Device::new(DeviceProps::paper_rig());
        let xs: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -1.0)).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 32 == 0)).collect();
        let vals = dev.alloc_from(&xs);
        let fl = dev.alloc_from(&flags);
        let mut out = dev.alloc::<Complex>(n);
        schedule.run(&mut report, &format!("segscan_inclusive_c64/{n}"), n, || {
            segscan_inclusive::<Complex, AddComplex>(&mut dev, &vals, &fl, &mut out);
        });
    }

    report.emit();
}
