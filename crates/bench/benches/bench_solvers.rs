//! Criterion wall-clock benchmarks of the three solvers.
//!
//! Serial and multicore numbers are real host performance of this
//! library; the GPU number is the *simulation cost* of the device solver
//! (functional emulation), not a device-performance claim — modeled
//! device time is what `exp_e1_total_speedup` reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fbs::{GpuSolver, MulticoreSolver, SerialSolver, SolverArrays, SolverConfig};
use powergrid::gen::{balanced_binary, GenSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

const SIZES: [usize; 3] = [4096, 32_768, 131_072];

fn nets() -> Vec<(usize, SolverArrays)> {
    SIZES
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(99);
            let net = balanced_binary(n, &GenSpec::default(), &mut rng);
            (n, SolverArrays::new(&net))
        })
        .collect()
}

fn bench_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_serial");
    let cfg = SolverConfig::default();
    for (n, arrays) in nets() {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &arrays, |b, a| {
            let solver = SerialSolver::new(HostProps::paper_rig());
            b.iter(|| solver.solve_arrays(a, &cfg));
        });
    }
    group.finish();
}

fn bench_multicore(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_multicore");
    let cfg = SolverConfig::default();
    for (n, arrays) in nets() {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &arrays, |b, a| {
            let solver = MulticoreSolver::new(HostProps::paper_rig(), 8);
            b.iter(|| solver.solve_arrays(a, &cfg));
        });
    }
    group.finish();
}

fn bench_gpu_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_gpu_simulation");
    group.sample_size(10);
    let cfg = SolverConfig::default();
    for (n, arrays) in nets() {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &arrays, |b, a| {
            b.iter(|| {
                let mut solver = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
                solver.solve_arrays(a, &cfg)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_serial, bench_multicore, bench_gpu_simulation
}
criterion_main!(benches);
