//! Wall-clock micro-benchmarks of the three solvers.
//!
//! Serial and multicore numbers are real host performance of this
//! library; the GPU number is the *simulation cost* of the device solver
//! (functional emulation), not a device-performance claim — modeled
//! device time is what `exp_e1_total_speedup` reports.
//!
//! Run: `cargo bench -p fbs-bench --bench bench_solvers`

use fbs::{GpuSolver, MulticoreSolver, SerialSolver, SolverArrays, SolverConfig};
use fbs_bench::micro::{MicroBench, MicroReport};
use powergrid::gen::{balanced_binary, GenSpec};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

const SIZES: [usize; 3] = [4096, 32_768, 131_072];

fn nets() -> Vec<(usize, SolverArrays)> {
    SIZES
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(99);
            let net = balanced_binary(n, &GenSpec::default(), &mut rng);
            (n, SolverArrays::new(&net))
        })
        .collect()
}

fn main() {
    let mut report = MicroReport::new("solvers");
    let cfg = SolverConfig::default();

    for (n, arrays) in nets() {
        let solver = SerialSolver::new(HostProps::paper_rig());
        MicroBench::new(2, 15).run(&mut report, &format!("solve_serial/{n}"), n, || {
            solver.solve_arrays(&arrays, &cfg);
        });
    }

    for (n, arrays) in nets() {
        let solver = MulticoreSolver::new(HostProps::paper_rig(), 8);
        MicroBench::new(2, 15).run(&mut report, &format!("solve_multicore/{n}"), n, || {
            solver.solve_arrays(&arrays, &cfg);
        });
    }

    for (n, arrays) in nets() {
        MicroBench::new(1, 5).run(&mut report, &format!("solve_gpu_simulation/{n}"), n, || {
            let mut solver = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
            solver.solve_arrays(&arrays, &cfg);
        });
    }

    report.emit();
}
