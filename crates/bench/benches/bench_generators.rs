//! Criterion wall-clock benchmarks of topology generation and
//! level-order preprocessing (the host-side setup path of every solve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use powergrid::gen::{balanced_binary, random_tree, GenSpec};
use powergrid::LevelOrder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_binary_tree");
    for &n in &[16_384usize, 131_072] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                balanced_binary(n, &GenSpec::default(), &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_random_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_random_tree");
    for &n in &[16_384usize, 131_072] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                random_tree(n, 16, &GenSpec::default(), &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_level_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("level_order");
    for &n in &[16_384usize, 131_072] {
        let mut rng = StdRng::seed_from_u64(7);
        let net = balanced_binary(n, &GenSpec::default(), &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| LevelOrder::new(net));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generate, bench_random_tree, bench_level_order
}
criterion_main!(benches);
