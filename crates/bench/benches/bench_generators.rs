//! Wall-clock micro-benchmarks of topology generation and level-order
//! preprocessing (the host-side setup path of every solve).
//!
//! Run: `cargo bench -p fbs-bench --bench bench_generators`

use fbs_bench::micro::{MicroBench, MicroReport};
use powergrid::gen::{balanced_binary, random_tree, GenSpec};
use powergrid::LevelOrder;
use rng::rngs::StdRng;
use rng::SeedableRng;

const SIZES: [usize; 2] = [16_384, 131_072];

fn main() {
    let mut report = MicroReport::new("generators");
    let schedule = MicroBench::new(2, 15);

    for &n in &SIZES {
        schedule.run(&mut report, &format!("generate_binary_tree/{n}"), n, || {
            let mut rng = StdRng::seed_from_u64(7);
            balanced_binary(n, &GenSpec::default(), &mut rng);
        });
    }

    for &n in &SIZES {
        schedule.run(&mut report, &format!("generate_random_tree/{n}"), n, || {
            let mut rng = StdRng::seed_from_u64(7);
            random_tree(n, 16, &GenSpec::default(), &mut rng);
        });
    }

    for &n in &SIZES {
        let mut rng = StdRng::seed_from_u64(7);
        let net = balanced_binary(n, &GenSpec::default(), &mut rng);
        schedule.run(&mut report, &format!("level_order/{n}"), n, || {
            LevelOrder::new(&net);
        });
    }

    report.emit();
}
