//! Post-solve physics validation.
//!
//! Independent checks that a [`crate::SolveResult`] actually
//! satisfies circuit laws on the original network — used by tests and by
//! the experiment harness before any timing is reported.

use numc::Complex;
use powergrid::RadialNetwork;

use crate::report::SolveResult;

/// Physics residuals of a solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhysicsReport {
    /// Max over buses of |KCL residual| (amperes): branch current in
    /// minus load current and child branch currents out.
    pub max_kcl_amps: f64,
    /// Max over non-root buses of |KVL residual| (volts):
    /// `V_parent − V_bus − Z·J`.
    pub max_kvl_volts: f64,
    /// |source power − (loads + losses)| (VA).
    pub power_balance_va: f64,
    /// Lowest bus-voltage magnitude divided by the source magnitude.
    pub min_voltage_pu: f64,
}

/// Computes the physics residuals of a result against its network.
pub fn check(net: &RadialNetwork, res: &SolveResult) -> PhysicsReport {
    let n = net.num_buses();
    assert_eq!(res.v.len(), n, "result/network size mismatch");

    // Child adjacency from parent pointers.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in 0..n {
        if let Some(p) = net.parent(b) {
            children[p].push(b);
        }
    }

    let mut max_kcl = 0.0f64;
    let mut max_kvl = 0.0f64;
    for (b, kids) in children.iter().enumerate() {
        // KCL: J_in(b) = I_load(b) + Σ J_in(child).
        let s = net.buses()[b].load;
        let i_load =
            if s == Complex::ZERO { Complex::ZERO } else { (s / res.v[b]).conj() };
        let child_sum: Complex = kids.iter().map(|&c| res.j[c]).sum();
        let kcl = res.j[b] - i_load - child_sum;
        max_kcl = max_kcl.max(kcl.abs());

        // KVL along the feeding branch.
        if let Some(br) = net.parent_branch(b) {
            let kvl = res.v[br.from] - res.v[b] - br.z * res.j[b];
            max_kvl = max_kvl.max(kvl.abs());
        }
    }

    let source = res.source_power(net);
    let expected = net.buses().iter().enumerate().fold(Complex::ZERO, |acc, (b, bus)| {
        // Power actually drawn at the solved voltage (constant-power
        // loads draw exactly S when the solve converged).
        let _ = b;
        acc + bus.load
    }) + res.losses(net);

    let v0 = net.source_voltage().abs();
    let min_pu = res.min_voltage().0 / v0;

    PhysicsReport {
        max_kcl_amps: max_kcl,
        max_kvl_volts: max_kvl,
        power_balance_va: (source - expected).abs(),
        min_voltage_pu: min_pu,
    }
}

/// Asserts that the residuals are small enough for a converged solve:
/// KCL/KVL at solver precision, power balance within `rel` of the source
/// power. Panics with the offending numbers otherwise.
pub fn assert_physical(net: &RadialNetwork, res: &SolveResult, rel: f64) {
    assert!(res.converged(), "cannot validate an unconverged solve");
    let rep = check(net, res);
    let v0 = net.source_voltage().abs();
    let s_scale = net.total_load().abs().max(1.0);
    let i_scale = s_scale / v0;
    assert!(
        rep.max_kcl_amps <= rel * i_scale.max(1.0),
        "KCL residual {} A exceeds {} of feeder current scale",
        rep.max_kcl_amps,
        rel
    );
    assert!(
        rep.max_kvl_volts <= rel * v0,
        "KVL residual {} V exceeds {}·|V0|",
        rep.max_kvl_volts,
        rel
    );
    assert!(
        rep.power_balance_va <= (rel * s_scale).max(1e-6) * 10.0,
        "power imbalance {} VA on a {} VA system",
        rep.power_balance_va,
        s_scale
    );
    assert!(rep.min_voltage_pu > 0.5, "voltage collapse: {} pu", rep.min_voltage_pu);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SerialSolver, SolverConfig};
    use numc::c;
    use powergrid::ieee::ieee13;
    use simt::HostProps;

    #[test]
    fn converged_solve_is_physical() {
        let net = ieee13();
        let res = SerialSolver::new(HostProps::paper_rig()).solve(&net, &SolverConfig::default());
        assert_physical(&net, &res, 1e-4);
        let rep = check(&net, &res);
        // Power balance should be tight at 1e-6 relative tolerance.
        assert!(rep.power_balance_va < 50.0, "{rep:?}");
        assert!(rep.min_voltage_pu > 0.85 && rep.min_voltage_pu <= 1.0, "{rep:?}");
    }

    #[test]
    fn corrupted_result_fails_validation() {
        let net = ieee13();
        let mut res =
            SerialSolver::new(HostProps::paper_rig()).solve(&net, &SolverConfig::default());
        res.j[3] += c(100.0, 0.0); // break KCL
        let rep = check(&net, &res);
        assert!(rep.max_kcl_amps > 50.0);
    }

    #[test]
    #[should_panic(expected = "unconverged")]
    fn unconverged_results_cannot_be_validated() {
        let net = ieee13();
        let mut res =
            SerialSolver::new(HostProps::paper_rig()).solve(&net, &SolverConfig::default());
        res.status = crate::SolveStatus::MaxIterations;
        assert_physical(&net, &res, 1e-6);
    }
}
