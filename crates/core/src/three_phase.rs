//! Unbalanced three-phase forward-backward sweep.
//!
//! The production form of the paper's method: real feeders are
//! unbalanced, so voltages/currents are per-phase triples ([`CVec3`])
//! and every branch carries a full 3×3 phase impedance matrix
//! ([`CMat3`]) with Carson mutual coupling. The sweep structure is
//! unchanged —
//!
//! 1. injection per phase: `I_φ = conj(S_φ / V_φ)`,
//! 2. backward: per-level segmented scan of `CVec3` branch currents
//!    (the primitives are generic over the element type, so the same
//!    kernels carry 48-byte phase triples),
//! 3. forward: `V = V_parent − Z·J` where `Z·J` is a 3×3 complex
//!    mat-vec — ~8× the arithmetic per bus of the single-phase solver,
//!    which shifts kernels from latency- toward compute/bandwidth-bound
//!    and moves the GPU crossover to smaller trees (experiment E11).
//! 4. convergence on the worst phase: `max_bus max_φ |ΔV_φ|`.
//!
//! Both a serial reference and a GPU solver are provided and tested
//! against each other; a balanced three-phase system degenerates to
//! three rotated copies of the single-phase solution, which the tests
//! exploit as an oracle.

use std::time::Instant;

use numc::{CMat3, CVec3, Complex};
use powergrid::three_phase::ThreePhaseNetwork;
use powergrid::LevelOrder;
use primitives::ops::{AddCVec3, MaxAbsF64, ScanOp};
use primitives::{fill, launch_map, reduce, segscan_inclusive_range};
use simt::{Device, HostProps};

use telemetry::Recorder;

use crate::config::SolverConfig;
use crate::obs::Obs;
use crate::report::{PhaseTimes, Timing};
use crate::status::{ConvergenceMonitor, SolveStatus};

/// Per-phase injection current at the present voltage.
#[inline]
fn inject3(s: CVec3, v: CVec3) -> CVec3 {
    let one = |s: Complex, v: Complex| {
        if s == Complex::ZERO {
            Complex::ZERO
        } else {
            (s / v).conj()
        }
    };
    CVec3 { a: one(s.a, v.a), b: one(s.b, v.b), c: one(s.c, v.c) }
}

/// Modeled flops of one per-phase injection.
const INJ3_FLOPS: u64 = 3 * (Complex::DIV_FLOPS + 1);
/// Modeled flops of one forward update (mat-vec + subtract + norm).
const FWD3_FLOPS: u64 = CMat3::MULVEC_FLOPS + CVec3::ADD_FLOPS + 12;

/// Level-ordered three-phase solver arrays.
#[derive(Clone, Debug)]
pub struct Arrays3 {
    /// Shared level-order layout.
    pub levels: LevelOrder,
    /// Slack voltage set.
    pub source: CVec3,
    /// Per-position per-phase loads, VA.
    pub s: Vec<CVec3>,
    /// Per-position feeding-branch impedance matrices, ohms.
    pub z: Vec<CMat3>,
    /// Parent positions.
    pub parent_pos: Vec<u32>,
    /// Children ranges and segment metadata (as in the single-phase
    /// arrays).
    pub child_lo: Vec<u32>,
    /// One past the last child position.
    pub child_hi: Vec<u32>,
    /// Segmented-scan head flags.
    pub head_flags: Vec<u32>,
    /// Last-child gather index per position with children.
    pub seg_last: Vec<u32>,
}

impl Arrays3 {
    /// Builds the arrays for a three-phase network.
    pub fn new(net: &ThreePhaseNetwork) -> Self {
        let levels = net.level_order();
        let n = levels.len();
        let s = levels.order.iter().map(|&b| net.buses()[b as usize].load).collect();
        let z = levels
            .order
            .iter()
            .map(|&b| net.parent_branch(b as usize).map_or(CMat3::ZERO, |br| br.z))
            .collect();
        let seg_last = (0..n)
            .map(|p| if levels.child_lo[p] < levels.child_hi[p] { levels.child_hi[p] - 1 } else { 0 })
            .collect();
        Arrays3 {
            source: net.source_voltage(),
            s,
            z,
            parent_pos: levels.parent_pos.clone(),
            child_lo: levels.child_lo.clone(),
            child_hi: levels.child_hi.clone(),
            head_flags: levels.head_flags.clone(),
            seg_last,
            levels,
        }
    }

    /// Bus count.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Never empty after validation.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }
}

/// Result of a three-phase solve.
#[derive(Clone, Debug)]
pub struct Solve3Result {
    /// Per-bus phase voltages, indexed by bus id.
    pub v: Vec<CVec3>,
    /// Per-bus branch phase currents (into the bus), indexed by bus id.
    pub j: Vec<CVec3>,
    /// Iterations executed.
    pub iterations: u32,
    /// How the iteration loop ended.
    pub status: SolveStatus,
    /// Final worst-phase `|ΔV|`, volts.
    pub residual: f64,
    /// Timing summary.
    pub timing: Timing,
}

impl Solve3Result {
    /// Whether the tolerance was met.
    pub fn converged(&self) -> bool {
        self.status.is_converged()
    }

    /// Worst (lowest) phase voltage magnitude over all buses and phases,
    /// with its bus. Non-finite magnitudes are surfaced, not dropped (as
    /// in [`crate::SolveResult::min_voltage`]); the fold runs per phase
    /// because `CVec3::abs_min` uses `f64::min`, which drops a lone NaN
    /// phase.
    pub fn min_phase_voltage(&self) -> (f64, usize) {
        let (mag, flat) = crate::report::min_magnitude_surfacing_nonfinite(
            self.v.iter().flat_map(|v| v.phases().into_iter().map(|p| p.abs())),
        );
        (mag, flat / 3)
    }

    /// Largest voltage-unbalance factor over all buses, with its bus.
    pub fn max_unbalance(&self) -> (f64, usize) {
        self.v
            .iter()
            .enumerate()
            .map(|(i, v)| (v.unbalance(), i))
            .fold((0.0, 0), |acc, x| if x.0 > acc.0 { x } else { acc })
    }
}

/// The three-phase analogue of [`crate::report::invalid_config_result`]:
/// flat-start voltages, zero iterations, `SolveStatus::InvalidConfig`.
pub(crate) fn invalid_config_result3(n: usize, v0: CVec3) -> Solve3Result {
    Solve3Result {
        v: vec![v0; n],
        j: vec![CVec3::ZERO; n],
        iterations: 0,
        status: SolveStatus::InvalidConfig,
        residual: f64::INFINITY,
        timing: Timing::default(),
    }
}

/// Serial reference three-phase FBS solver.
#[derive(Clone, Debug, Default)]
pub struct Serial3Solver {
    host: HostProps,
    recorder: Option<Recorder>,
}

impl Serial3Solver {
    /// Creates a solver modeled on the given host.
    pub fn new(host: HostProps) -> Self {
        Serial3Solver { host, recorder: None }
    }

    /// Attaches a telemetry recorder: per-iteration/per-phase spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Solves a three-phase network.
    pub fn solve(&self, net: &ThreePhaseNetwork, cfg: &SolverConfig) -> Solve3Result {
        let a = Arrays3::new(net);
        self.solve_arrays(&a, cfg)
    }

    /// Solves with pre-built arrays.
    pub fn solve_arrays(&self, a: &Arrays3, cfg: &SolverConfig) -> Solve3Result {
        let wall0 = Instant::now();
        let n = a.len();
        let v0 = a.source;
        if cfg.validate().is_err() {
            return invalid_config_result3(n, v0);
        }
        let mut monitor = ConvergenceMonitor::new(cfg, v0.abs_max());
        // Per-bus state: S, V, I, J (48 B each) + Z (144 B) + topology.
        let working_set = 360 * n as u64;

        let mut v = vec![v0; n];
        let mut i_inj = vec![CVec3::ZERO; n];
        let mut j = vec![CVec3::ZERO; n];

        let mut phases =
            PhaseTimes { setup_us: self.host.region_time_us(0, 256 * n as u64), ..Default::default() };
        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut residual_history = Vec::new();
        let mut status = SolveStatus::MaxIterations;
        let obs = Obs::new(self.recorder.as_ref(), "solver.serial3");

        while iterations < cfg.max_iter {
            iterations += 1;
            let iter_t0 = phases.total_us();

            for p in 0..n {
                i_inj[p] = inject3(a.s[p], v[p]);
            }
            phases.injection_us +=
                self.host.region_time_us_ws(INJ3_FLOPS * n as u64, 144 * n as u64, working_set);
            obs.phase("injection", iter_t0, phases.total_us());
            let bwd_t0 = phases.total_us();

            for p in (0..n).rev() {
                let mut acc = i_inj[p];
                for &jc in &j[a.child_lo[p] as usize..a.child_hi[p] as usize] {
                    acc += jc;
                }
                j[p] = acc;
            }
            phases.backward_us += self.host.region_time_us_ws(
                CVec3::ADD_FLOPS * (n as u64 - 1),
                144 * n as u64,
                working_set,
            );
            obs.phase("backward", bwd_t0, phases.total_us());
            let fwd_t0 = phases.total_us();

            // NaN-propagating fold: `d > delta` is false for NaN and
            // would hide corrupt phases from the convergence norm.
            let mut delta: f64 = 0.0;
            for p in 1..n {
                let parent = a.parent_pos[p] as usize;
                let new_v = v[parent] - a.z[p].mul_vec(j[p]);
                let d = (new_v - v[p]).abs_max();
                delta = MaxAbsF64::combine(delta, d);
                v[p] = new_v;
            }
            phases.forward_us += self.host.region_time_us_ws(
                FWD3_FLOPS * (n as u64 - 1),
                336 * (n as u64 - 1),
                working_set,
            );
            obs.phase("forward", fwd_t0, phases.total_us());
            phases.convergence_us += self.host.region_time_us(1, 8);

            residual = delta;
            residual_history.push(delta);
            obs.iteration(iterations, iter_t0, phases.total_us(), delta);
            if let Some(s) = monitor.observe(iterations, delta) {
                status = s;
                break;
            }
            if let Some(budget) = cfg.deadline_us {
                let elapsed = phases.total_us();
                if elapsed >= budget {
                    status = SolveStatus::DeadlineExceeded {
                        at_iteration: iterations,
                        elapsed_us: elapsed as u64,
                    };
                    break;
                }
            }
        }
        let _ = residual_history;

        let timing = Timing {
            phases,
            transfer_us: 0.0,
            transfer_sweep_us: 0.0,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        };
        Solve3Result {
            v: a.levels.unpermute(&v),
            j: a.levels.unpermute(&j),
            iterations,
            status,
            residual,
            timing,
        }
    }
}

/// GPU three-phase FBS solver (level-synchronous, segmented scan over
/// phase triples).
pub struct Gpu3Solver {
    device: Device,
    recorder: Option<Recorder>,
}

impl Gpu3Solver {
    /// Creates a solver on the given device.
    pub fn new(device: Device) -> Self {
        Gpu3Solver { device, recorder: None }
    }

    /// Attaches a telemetry recorder: per-iteration/per-phase spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Solves a three-phase network.
    pub fn solve(&mut self, net: &ThreePhaseNetwork, cfg: &SolverConfig) -> Solve3Result {
        let a = Arrays3::new(net);
        self.solve_arrays(&a, cfg)
    }

    /// Solves with pre-built arrays.
    pub fn solve_arrays(&mut self, a: &Arrays3, cfg: &SolverConfig) -> Solve3Result {
        let wall0 = Instant::now();
        let dev = &mut self.device;
        let n = a.len();
        let num_levels = a.levels.num_levels();
        let v0 = a.source;
        if cfg.validate().is_err() {
            return invalid_config_result3(n, v0);
        }
        let mut monitor = ConvergenceMonitor::new(cfg, v0.abs_max());

        let mut phases = PhaseTimes::default();
        let mut transfer_us = 0.0;
        let mut transfer_sweep_us = 0.0;

        let mark = dev.timeline().mark();
        let s_buf = dev.alloc_from(&a.s);
        let z_buf = dev.alloc_from(&a.z);
        let parent_buf = dev.alloc_from(&a.parent_pos);
        let child_lo_buf = dev.alloc_from(&a.child_lo);
        let child_hi_buf = dev.alloc_from(&a.child_hi);
        let flags_buf = dev.alloc_from(&a.head_flags);
        let seg_last_buf = dev.alloc_from(&a.seg_last);
        let mut v_buf = dev.alloc::<CVec3>(n);
        fill(dev, &mut v_buf, v0);
        let mut i_buf = dev.alloc::<CVec3>(n);
        let mut j_buf = dev.alloc::<CVec3>(n);
        let mut delta_buf = dev.alloc::<f64>(n);
        fill(dev, &mut delta_buf, 0.0);
        let mut scan_buf = dev.alloc::<CVec3>(n);
        let b = dev.timeline().breakdown_since(mark);
        phases.setup_us += b.total_us();
        transfer_us += b.htod_us + b.dtoh_us;
        let obs = Obs::new(self.recorder.as_ref(), "solver.gpu3");
        obs.phase("setup", 0.0, phases.setup_us);

        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut status = SolveStatus::MaxIterations;

        while iterations < cfg.max_iter {
            iterations += 1;
            let iter_t0 = phases.total_us();

            // Injection.
            let mark = dev.timeline().mark();
            {
                let s_v = s_buf.view();
                let v_v = v_buf.view();
                let i_v = i_buf.view_mut();
                launch_map(dev, n, "fbs3_inject", move |t, p| {
                    let s = t.ld(&s_v, p);
                    let v = t.ld(&v_v, p);
                    t.flops(INJ3_FLOPS);
                    t.st(&i_v, p, inject3(s, v));
                });
            }
            phases.injection_us += dev.timeline().breakdown_since(mark).total_us();
            obs.phase("injection", iter_t0, phases.total_us());
            let bwd_t0 = phases.total_us();

            // Backward sweep.
            let mark = dev.timeline().mark();
            for l in (0..num_levels).rev() {
                let range = a.levels.level_range(l);
                let (lo, len) = (range.start, range.len());
                if l + 1 < num_levels {
                    let crange = a.levels.level_range(l + 1);
                    segscan_inclusive_range::<CVec3, AddCVec3>(
                        dev,
                        &j_buf,
                        &flags_buf,
                        crange.start,
                        crange.end,
                        &mut scan_buf,
                    );
                }
                let i_v = i_buf.view();
                let lo_v = child_lo_buf.view();
                let hi_v = child_hi_buf.view();
                let last_v = seg_last_buf.view();
                let scan_v = scan_buf.view();
                let j_v = j_buf.view_mut();
                launch_map(dev, len, "fbs3_backward_combine", move |t, k| {
                    let p = lo + k;
                    let mut acc = t.ld(&i_v, p);
                    if t.ld(&lo_v, p) < t.ld(&hi_v, p) {
                        let tail = t.ld(&last_v, p) as usize;
                        t.flops(CVec3::ADD_FLOPS);
                        acc += t.ld(&scan_v, tail);
                    }
                    t.st(&j_v, p, acc);
                });
            }
            phases.backward_us += dev.timeline().breakdown_since(mark).total_us();
            obs.phase("backward", bwd_t0, phases.total_us());
            let fwd_t0 = phases.total_us();

            // Forward sweep.
            let mark = dev.timeline().mark();
            for l in 1..num_levels {
                let range = a.levels.level_range(l);
                let (lo, len) = (range.start, range.len());
                let z_v = z_buf.view();
                let par_v = parent_buf.view();
                let j_v = j_buf.view();
                let d_v = delta_buf.view_mut();
                let v_v = v_buf.view_mut();
                launch_map(dev, len, "fbs3_forward", move |t, k| {
                    let p = lo + k;
                    let parent = t.ld(&par_v, p) as usize;
                    let vp = t.ld_mut(&v_v, parent);
                    let z = t.ld(&z_v, p);
                    let jb = t.ld(&j_v, p);
                    let old = t.ld_mut(&v_v, p);
                    let new_v = vp - z.mul_vec(jb);
                    t.flops(FWD3_FLOPS);
                    t.st(&v_v, p, new_v);
                    t.st(&d_v, p, (new_v - old).abs_max());
                });
            }
            phases.forward_us += dev.timeline().breakdown_since(mark).total_us();
            obs.phase("forward", fwd_t0, phases.total_us());
            let cvg_t0 = phases.total_us();

            // Convergence.
            let mark = dev.timeline().mark();
            let delta = reduce::<f64, MaxAbsF64>(dev, &delta_buf);
            let b = dev.timeline().breakdown_since(mark);
            phases.convergence_us += b.total_us();
            obs.phase("convergence", cvg_t0, phases.total_us());
            transfer_us += b.htod_us + b.dtoh_us;
            transfer_sweep_us += b.htod_us + b.dtoh_us;

            residual = delta;
            obs.iteration(iterations, iter_t0, phases.total_us(), delta);
            if let Some(s) = monitor.observe(iterations, delta) {
                status = s;
                break;
            }
            if let Some(budget) = cfg.deadline_us {
                let elapsed = phases.total_us();
                if elapsed >= budget {
                    status = SolveStatus::DeadlineExceeded {
                        at_iteration: iterations,
                        elapsed_us: elapsed as u64,
                    };
                    break;
                }
            }
        }

        let mark = dev.timeline().mark();
        let v_pos = dev.dtoh(&v_buf);
        let j_pos = dev.dtoh(&j_buf);
        let b = dev.timeline().breakdown_since(mark);
        let td_t0 = phases.total_us();
        phases.teardown_us += b.total_us();
        obs.phase("teardown", td_t0, phases.total_us());
        transfer_us += b.htod_us + b.dtoh_us;

        let timing = Timing {
            phases,
            transfer_us,
            transfer_sweep_us,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        };
        Solve3Result {
            v: a.levels.unpermute(&v_pos),
            j: a.levels.unpermute(&j_pos),
            iterations,
            status,
            residual,
            timing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSolver;
    use numc::c;
    use powergrid::three_phase::{ieee13_unbalanced, ThreePhaseBuilder};
    use powergrid::NetworkBuilder;
    use simt::DeviceProps;

    fn gpu3() -> Gpu3Solver {
        Gpu3Solver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
    }

    /// A balanced three-phase network with diagonal impedances must
    /// reproduce the single-phase solution on every phase (rotated by
    /// the phase angles).
    #[test]
    fn balanced_system_degenerates_to_single_phase() {
        // Single-phase original: 3-bus chain.
        let mut b1 = NetworkBuilder::new(c(2400.0, 0.0));
        b1.add_bus(Complex::ZERO);
        b1.add_bus(c(50e3, 20e3));
        b1.add_bus(c(30e3, 10e3));
        b1.connect(0, 1, c(0.4, 0.3));
        b1.connect(1, 2, c(0.5, 0.2));
        let net1 = b1.build().unwrap();

        // Balanced three-phase copy.
        let mut b3 = ThreePhaseBuilder::new(CVec3::balanced(2400.0));
        b3.add_bus(CVec3::ZERO);
        b3.add_bus(CVec3::splat(c(50e3, 20e3)));
        b3.add_bus(CVec3::splat(c(30e3, 10e3)));
        b3.connect(0, 1, CMat3::diag(c(0.4, 0.3)));
        b3.connect(1, 2, CMat3::diag(c(0.5, 0.2)));
        let net3 = b3.build().unwrap();

        let cfg = SolverConfig::default();
        let r1 = SerialSolver::new(HostProps::paper_rig()).solve(&net1, &cfg);
        let r3 = Serial3Solver::new(HostProps::paper_rig()).solve(&net3, &cfg);
        assert!(r1.converged() && r3.converged());
        assert_eq!(r1.iterations, r3.iterations, "identical per-phase iterates");

        // Phase a is un-rotated: matches the single-phase solution.
        for bus in 0..3 {
            assert!(
                (r3.v[bus].a - r1.v[bus]).abs() < 1e-6,
                "bus {bus}: {:?} vs {:?}",
                r3.v[bus].a,
                r1.v[bus]
            );
            // Phase magnitudes agree across phases (balanced).
            assert!(r3.v[bus].unbalance() < 1e-9);
        }
    }

    #[test]
    fn gpu_matches_serial_on_unbalanced_ieee13() {
        let net = ieee13_unbalanced();
        let cfg = SolverConfig::default();
        let s = Serial3Solver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let g = gpu3().solve(&net, &cfg);
        assert!(s.converged() && g.converged());
        assert_eq!(s.iterations, g.iterations);
        for bus in 0..net.num_buses() {
            for (x, y) in s.v[bus].phases().iter().zip(g.v[bus].phases()) {
                assert!((*x - y).abs() < 1e-6, "bus {bus}");
            }
        }
    }

    #[test]
    fn unbalanced_feeder_shows_phase_separation() {
        let net = ieee13_unbalanced();
        let res = Serial3Solver::new(HostProps::paper_rig()).solve(&net, &SolverConfig::default());
        assert!(res.converged());
        let (unb, bus) = res.max_unbalance();
        assert!(unb > 0.005, "published ieee13 loading is visibly unbalanced: {unb} at {bus}");
        // Phase with the heaviest load sags hardest at bus 675 (a-phase
        // 485 kW vs b-phase 68 kW).
        let v675 = res.v[12];
        assert!(v675.a.abs() < v675.b.abs(), "{v675:?}");
    }

    #[test]
    fn kcl_holds_per_phase() {
        let net = ieee13_unbalanced();
        let res = Serial3Solver::new(HostProps::paper_rig()).solve(&net, &SolverConfig::new(1e-10, 200));
        assert!(res.converged());
        let n = net.num_buses();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for bus in 0..n {
            if let Some(p) = net.parent(bus) {
                children[p].push(bus);
            }
        }
        for (bus, kids) in children.iter().enumerate() {
            let i_load = inject3(net.buses()[bus].load, res.v[bus]);
            let child_sum = kids.iter().fold(CVec3::ZERO, |acc, &c| acc + res.j[c]);
            let kcl = res.j[bus] - i_load - child_sum;
            assert!(kcl.abs_max() < 1e-4, "bus {bus}: KCL residual {:?}", kcl);
        }
    }

    #[test]
    fn mutual_coupling_matters() {
        // The same feeder with mutual terms zeroed must produce a
        // *different* solution — guards against accidentally ignoring
        // the off-diagonals.
        let net = ieee13_unbalanced();
        let mut uncoupled = ThreePhaseBuilder::new(net.source_voltage());
        for bus in net.buses() {
            uncoupled.add_bus(bus.load);
        }
        for br in net.branches() {
            let mut z = CMat3::ZERO;
            for p in 0..3 {
                z.m[p][p] = br.z.m[p][p];
            }
            uncoupled.connect(br.from, br.to, z);
        }
        let uncoupled = uncoupled.build().unwrap();

        let cfg = SolverConfig::default();
        let with = Serial3Solver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let without = Serial3Solver::new(HostProps::paper_rig()).solve(&uncoupled, &cfg);
        let max_diff = (0..net.num_buses())
            .map(|b| (with.v[b] - without.v[b]).abs_max())
            .fold(0.0f64, f64::max);
        assert!(max_diff > 1.0, "coupling must move voltages by volts, got {max_diff}");
    }
}
