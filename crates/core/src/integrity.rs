//! Shadow verification — the last of the three integrity nets.
//!
//! Canary guards catch buffer overruns at the allocation boundary and
//! checked transfers catch corruption on the wire
//! ([`simt::Device::try_htod_checked`] /
//! [`simt::Device::try_dtoh_checked`]); neither can catch a *wrong
//! answer* produced by corrupted compute. The [`IntegritySampler`]
//! closes that hole: a seeded 1-in-K sample of answered requests is
//! re-solved on the CPU oracle ([`SerialSolver`] / [`Serial3Solver`])
//! and the answered voltages are compared magnitude-wise against the
//! oracle's, using the same 1e-9 V bar the repo's property suites pin.
//!
//! Sampling is deterministic: the same seed and the same answer stream
//! shadow-verify the same requests, so soak runs replay byte-identically
//! with the sampler armed. Verdicts land on an attached [`Recorder`] as
//! `integrity.*` counters/gauges.

use crate::serial::SerialSolver;
use crate::service::{Outcome, Request};
use crate::three_phase::Serial3Solver;
use crate::SolverArrays;
use simt::HostProps;
use telemetry::Recorder;

/// Tunables of one [`IntegritySampler`].
#[derive(Clone, Copy, Debug)]
pub struct IntegrityConfig {
    /// Shadow-verify roughly 1 in this many answered requests
    /// (0 disables sampling entirely, 1 verifies every answer).
    pub sample_every: u64,
    /// Seed of the sampling decision stream.
    pub seed: u64,
    /// Per-bus voltage-magnitude parity bar against the oracle, volts.
    pub tol_v: f64,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig { sample_every: 16, seed: 0x51de_c4ec, tol_v: 1e-9 }
    }
}

/// Aggregate shadow-verification counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IntegrityStats {
    /// Answered requests offered to the sampler.
    pub answered: u64,
    /// Answers shadow-verified on the CPU oracle.
    pub sampled: u64,
    /// Shadow verifications that matched within the bar.
    pub verified: u64,
    /// Shadow verifications that diverged from the oracle — each one is
    /// an undetected corruption escaping the lower nets.
    pub mismatches: u64,
    /// Worst per-bus `||V|_answer − |V|_oracle|` seen, volts.
    pub worst_err_v: f64,
}

/// One shadow-verification outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntegrityVerdict {
    /// Whether the answer matched the oracle within the bar.
    pub ok: bool,
    /// Worst per-bus voltage-magnitude deviation, volts.
    pub err_v: f64,
    /// For batch answers, the scenario the sampler picked.
    pub scenario: Option<usize>,
}

/// SplitMix64 — the repo's standalone decision-stream hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded 1-in-K CPU-oracle re-solver for answered requests.
pub struct IntegritySampler {
    cfg: IntegrityConfig,
    host: HostProps,
    stats: IntegrityStats,
    recorder: Option<Recorder>,
}

impl IntegritySampler {
    /// A sampler re-solving on the given host model.
    pub fn new(cfg: IntegrityConfig, host: HostProps) -> Self {
        IntegritySampler { cfg, host, stats: IntegrityStats::default(), recorder: None }
    }

    /// Attaches a telemetry recorder; verdicts land as `integrity.*`
    /// counters and [`IntegritySampler::publish`] exports the gauges.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> &IntegrityStats {
        &self.stats
    }

    /// Whether the `n`-th answered request is shadow-verified.
    fn picks(&self, n: u64) -> bool {
        match self.cfg.sample_every {
            0 => false,
            1 => true,
            k => splitmix(self.cfg.seed ^ n).is_multiple_of(k),
        }
    }

    /// Offers one answered request to the sampler. Returns the verdict
    /// when this answer was sampled, `None` when it was passed over (or
    /// carries no verifiable answer).
    pub fn observe(&mut self, req: &Request, outcome: &Outcome) -> Option<IntegrityVerdict> {
        if !matches!(
            outcome,
            Outcome::Solved(_) | Outcome::Solved3(_) | Outcome::Batch(_)
        ) {
            return None;
        }
        let n = self.stats.answered;
        self.stats.answered += 1;
        if !self.picks(n) {
            return None;
        }
        let verdict = self.shadow_solve(req, outcome, n)?;
        self.stats.sampled += 1;
        self.stats.worst_err_v = self.stats.worst_err_v.max(verdict.err_v);
        if verdict.ok {
            self.stats.verified += 1;
        } else {
            self.stats.mismatches += 1;
        }
        if let Some(rec) = &self.recorder {
            rec.counter_add("integrity.sampled", 1);
            rec.counter_add(
                if verdict.ok { "integrity.verified" } else { "integrity.mismatches" },
                1,
            );
            rec.observe("integrity.err_v", verdict.err_v);
        }
        Some(verdict)
    }

    /// Publishes `integrity.*` gauges on the attached recorder.
    pub fn publish(&self) {
        let Some(rec) = &self.recorder else { return };
        let s = &self.stats;
        rec.gauge_set("integrity.answered", s.answered as f64);
        rec.gauge_set("integrity.sampled", s.sampled as f64);
        rec.gauge_set("integrity.verified", s.verified as f64);
        rec.gauge_set("integrity.mismatches", s.mismatches as f64);
        rec.gauge_set("integrity.worst_err_v", s.worst_err_v);
    }

    /// Re-solves the sampled answer on the CPU oracle and compares.
    fn shadow_solve(
        &self,
        req: &Request,
        outcome: &Outcome,
        n: u64,
    ) -> Option<IntegrityVerdict> {
        match (req, outcome) {
            (Request::Solve { net, cfg }, Outcome::Solved(res)) => {
                let oracle = SerialSolver::new(self.host.clone()).solve(net, cfg);
                Some(self.compare(&res.v, &oracle.v, None))
            }
            (Request::Solve3 { net, cfg }, Outcome::Solved3(res)) => {
                let oracle = Serial3Solver::new(self.host.clone()).solve(net, cfg);
                let err = res
                    .v
                    .iter()
                    .zip(&oracle.v)
                    .flat_map(|(a, b)| {
                        a.phases()
                            .into_iter()
                            .zip(b.phases())
                            .map(|(x, y)| (x.abs() - y.abs()).abs())
                    })
                    .fold(0.0f64, f64::max);
                Some(IntegrityVerdict { ok: err <= self.cfg.tol_v, err_v: err, scenario: None })
            }
            (Request::Batch { net, scenarios, cfg }, Outcome::Batch(res)) => {
                if scenarios.is_empty() || res.v.len() != scenarios.len() {
                    return None;
                }
                // One seeded scenario per sampled batch: K answers in, a
                // spread of scenarios out.
                let s = (splitmix(self.cfg.seed ^ n ^ 0xBA7C_5CEB) % scenarios.len() as u64)
                    as usize;
                let mut a = SolverArrays::new(net);
                for (p, slot) in a.s.iter_mut().enumerate() {
                    *slot = scenarios[s][a.levels.order[p] as usize];
                }
                let oracle = SerialSolver::new(self.host.clone()).solve_arrays(&a, cfg);
                Some(self.compare(&res.v[s], &oracle.v, Some(s)))
            }
            _ => None,
        }
    }

    fn compare(
        &self,
        answered: &[numc::Complex],
        oracle: &[numc::Complex],
        scenario: Option<usize>,
    ) -> IntegrityVerdict {
        let err = answered
            .iter()
            .zip(oracle)
            .map(|(a, b)| (a.abs() - b.abs()).abs())
            .fold(0.0f64, f64::max);
        IntegrityVerdict { ok: err <= self.cfg.tol_v, err_v: err, scenario }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SerialSolver, SolverConfig};
    use powergrid::ieee::ieee13;
    use numc::Complex;

    fn cfg() -> SolverConfig {
        SolverConfig::new(1e-12, 200)
    }

    fn answered() -> (Request, Outcome) {
        let net = ieee13();
        let res = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg());
        (Request::Solve { net, cfg: cfg() }, Outcome::Solved(res))
    }

    #[test]
    fn sampling_is_seeded_one_in_k_and_deterministic() {
        let run = |seed: u64| {
            let mut s = IntegritySampler::new(
                IntegrityConfig { sample_every: 4, seed, ..IntegrityConfig::default() },
                HostProps::paper_rig(),
            );
            let (req, out) = answered();
            let picks: Vec<bool> =
                (0..64).map(|_| s.observe(&req, &out).is_some()).collect();
            picks
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same picks");
        assert_ne!(a, run(8), "different seed, different picks");
        let hits = a.iter().filter(|&&p| p).count();
        assert!(hits >= 4 && hits <= 40, "1-in-4 sampling picked {hits}/64");
    }

    #[test]
    fn a_clean_answer_verifies_and_a_corrupted_one_is_flagged() {
        let mut s = IntegritySampler::new(
            IntegrityConfig { sample_every: 1, ..IntegrityConfig::default() },
            HostProps::paper_rig(),
        );
        let (req, out) = answered();
        let v = s.observe(&req, &out).expect("sample_every=1 samples everything");
        assert!(v.ok, "clean answer diverged by {:e} V", v.err_v);

        // Corrupt one bus voltage well past the bar.
        let Outcome::Solved(mut res) = out else { unreachable!() };
        res.v[6] += Complex::new(1e-6, 0.0);
        let v = s.observe(&req, &Outcome::Solved(res)).expect("sampled");
        assert!(!v.ok, "corrupted answer passed at {:e} V", v.err_v);
        assert_eq!(s.stats().mismatches, 1);
        assert_eq!(s.stats().verified, 1);
    }

    #[test]
    fn batch_answers_verify_one_seeded_scenario() {
        let net = ieee13();
        let scenarios: Vec<Vec<Complex>> = (0..6)
            .map(|k| {
                net.buses()
                    .iter()
                    .map(|b| b.load * (0.6 + 0.1 * k as f64))
                    .collect()
            })
            .collect();
        let serial = SerialSolver::new(HostProps::paper_rig());
        let (v, j): (Vec<_>, Vec<_>) = scenarios
            .iter()
            .map(|sc| {
                let mut a = SolverArrays::new(&net);
                for (p, slot) in a.s.iter_mut().enumerate() {
                    *slot = sc[a.levels.order[p] as usize];
                }
                let r = serial.solve_arrays(&a, &cfg());
                (r.v, r.j)
            })
            .unzip();
        let statuses = vec![crate::SolveStatus::Converged; 6];
        let res = crate::BatchResult {
            v,
            j,
            iterations: 10,
            statuses,
            residual: 0.0,
            timing: crate::Timing::default(),
            fault_report: None,
        };
        let mut s = IntegritySampler::new(
            IntegrityConfig { sample_every: 1, ..IntegrityConfig::default() },
            HostProps::paper_rig(),
        );
        let req = Request::Batch { net, scenarios, cfg: cfg() };
        let verdict = s.observe(&req, &Outcome::Batch(res)).expect("sampled");
        assert!(verdict.ok, "clean batch diverged by {:e} V", verdict.err_v);
        assert!(verdict.scenario.is_some());
    }

    #[test]
    fn counters_land_on_the_recorder() {
        let rec = Recorder::new();
        let mut s = IntegritySampler::new(
            IntegrityConfig { sample_every: 1, ..IntegrityConfig::default() },
            HostProps::paper_rig(),
        )
        .with_recorder(rec.clone());
        let (req, out) = answered();
        s.observe(&req, &out);
        s.publish();
        let (_, reg) = rec.snapshot();
        let counters: std::collections::BTreeMap<&str, u64> = reg.counters().collect();
        assert_eq!(counters["integrity.sampled"], 1);
        assert_eq!(counters["integrity.verified"], 1);
        let gauges: std::collections::BTreeMap<&str, f64> = reg.gauges().collect();
        assert_eq!(gauges["integrity.answered"], 1.0);
        assert_eq!(gauges["integrity.mismatches"], 0.0);
    }
}
