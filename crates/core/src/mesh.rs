//! Weakly-meshed networks and distributed generation.
//!
//! The radial sweeps in this crate exploit the tree structure of
//! distribution feeders; real feeders carry a handful of normally-closed
//! tie switches (weak loops) and, increasingly, distributed generators
//! holding voltage set-points. This module closes both gaps with the
//! classic *compensation* construction (Shirmohammadi et al.), keeping
//! the radial inner solvers — serial, multicore, GPU — completely
//! unchanged:
//!
//! * **Break-point compensation.** Each closed tie is opened at a break
//!   point by [`powergrid::MeshedNetwork`]'s spanning-tree extraction.
//!   After each inner radial solve, the voltage mismatch across break
//!   point `j` is `E_j = V_a − V_b − z_tie·J_j`. The loop currents are
//!   corrected by one dense k×k complex solve `Z·ΔJ = E`, where `Z` is
//!   the Thevenin loop-impedance matrix (`Z_ij` = signed overlap of the
//!   two loops' tree paths, `Z_ii` additionally carries the tie's own
//!   impedance), then injected into the next inner solve as equivalent
//!   constant-power loads `S_a += V_a·conj(J)`, `S_b −= V_b·conj(J)`.
//! * **PV-bus outer loop.** Each generator ([`powergrid::PvBus`]) holds
//!   `|V|` at its set-point by adjusting reactive output with the
//!   root-path-reactance sensitivity `Δq ≈ err·|V|/x_th`. Hitting a Q
//!   limit switches the bus to PQ (fixed at the limit); it re-enters PV
//!   only once the desired Q falls back inside the limits by a
//!   hysteresis margin, and a per-generator mode-flip budget turns
//!   genuine limit-cycling into a structural failure instead of a
//!   silently burned iteration cap.
//!
//! Both corrections share one outer loop and one [`OuterStatus`], so
//! divergence and limit-cycling surface in [`SolveStatus`] (as
//! [`SolveStatus::OuterDiverged`], CLI exit code 9) rather than
//! masquerading as `MaxIterations`.

use numc::{c, solve_dense, CVec3, Complex};
use powergrid::three_phase::{ThreePhaseBuilder, ThreePhaseNetwork};
use powergrid::{MeshedNetwork, NetworkBuilder, PvBus, RadialNetwork};
use simt::HostProps;
use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::gpu::GpuSolver;
use crate::multicore::MulticoreSolver;
use crate::obs::Obs;
use crate::recovery::{Resilient3Solver, ResilienceError, ResilientSolver};
use crate::report::{FaultReport, SolveResult, Timing};
use crate::serial::SerialSolver;
use crate::status::SolveStatus;
use crate::tensor_batch::TensorBatchSolver;
use crate::three_phase::{Arrays3, Gpu3Solver, Serial3Solver, Solve3Result};

/// Knobs of the mesh/DG outer loop (the inner sweeps keep using
/// [`SolverConfig`] untouched).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OuterConfig {
    /// Maximum outer iterations (each runs one full inner solve).
    pub max_outer: u32,
    /// Outer convergence tolerance, relative to the source-voltage
    /// magnitude — both the break-point mismatch `max|E_j|` and the
    /// worst PV set-point error must fall under it.
    pub tol_rel: f64,
    /// Hysteresis for PV re-entry after a Q-limit clamp, as a fraction
    /// of the generator's `q_max − q_min` range: the desired Q must come
    /// back inside the limit by this margin before the bus flips back to
    /// PV. Damps chattering right at a limit.
    pub hysteresis: f64,
    /// Damping on the PV reactive-power update (1.0 = full Newton step
    /// on the root-path-reactance sensitivity). Values below 1 trade a
    /// few outer iterations for robustness when generators couple
    /// through shared trunk impedance.
    pub damping: f64,
    /// Per-generator PV↔PQ mode-flip budget; exceeding it is declared a
    /// limit cycle ([`OuterStatus::LimitCycle`]).
    pub max_mode_flips: u32,
    /// Consecutive outer iterations the mismatch may grow before the
    /// outer loop is declared divergent.
    pub patience: u32,
}

impl Default for OuterConfig {
    fn default() -> Self {
        OuterConfig {
            max_outer: 40,
            tol_rel: 1e-6,
            hysteresis: 0.05,
            damping: 0.7,
            max_mode_flips: 6,
            patience: 4,
        }
    }
}

impl OuterConfig {
    /// Builder: outer iteration cap.
    pub fn with_max_outer(mut self, max_outer: u32) -> Self {
        self.max_outer = max_outer;
        self
    }

    /// Builder: relative outer tolerance.
    pub fn with_tol(mut self, tol_rel: f64) -> Self {
        self.tol_rel = tol_rel;
        self
    }

    /// `true` when every knob is usable.
    pub fn is_valid(&self) -> bool {
        self.max_outer >= 1
            && self.tol_rel.is_finite()
            && self.tol_rel > 0.0
            && self.hysteresis.is_finite()
            && (0.0..=0.5).contains(&self.hysteresis)
            && self.damping.is_finite()
            && self.damping > 0.0
            && self.damping <= 1.0
            && self.patience >= 1
    }
}

/// How the mesh/DG outer loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OuterStatus {
    /// The network had no loops and no generators; exactly one inner
    /// solve ran and no outer machinery was engaged.
    Radial,
    /// Break-point mismatch and PV errors met the outer tolerance.
    Converged {
        /// Outer iterations spent (≥ 1).
        outer_iterations: u32,
    },
    /// The outer cap was reached with a finite, non-exploding mismatch —
    /// slow coupling, not structural failure.
    MaxOuterIterations,
    /// The mismatch grew without bound (or went non-finite, or the loop
    /// Thevenin system was singular).
    Diverged {
        /// Outer iteration (1-based) at which divergence was declared.
        at_outer: u32,
    },
    /// A generator exhausted its PV↔PQ mode-flip budget.
    LimitCycle {
        /// Outer iteration (1-based) at which the budget ran out.
        at_outer: u32,
    },
    /// An inner radial solve failed (or timed out) before the outer loop
    /// could settle; the inner [`SolveStatus`] carries the detail.
    InnerFailed {
        /// Outer iteration (1-based) of the failing inner solve.
        at_outer: u32,
    },
}

impl std::fmt::Display for OuterStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OuterStatus::Radial => write!(f, "radial"),
            OuterStatus::Converged { outer_iterations } => {
                write!(f, "converged ({outer_iterations} outer iterations)")
            }
            OuterStatus::MaxOuterIterations => write!(f, "max-outer-iterations"),
            OuterStatus::Diverged { at_outer } => {
                write!(f, "diverged (outer iteration {at_outer})")
            }
            OuterStatus::LimitCycle { at_outer } => {
                write!(f, "limit-cycle (outer iteration {at_outer})")
            }
            OuterStatus::InnerFailed { at_outer } => {
                write!(f, "inner-failed (outer iteration {at_outer})")
            }
        }
    }
}

/// Operating mode of one generator at the end of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenMode {
    /// Holding its voltage set-point (Q inside the limits).
    Pv,
    /// Clamped at `q_min`, behaving as a PQ bus.
    ClampedMin,
    /// Clamped at `q_max`, behaving as a PQ bus.
    ClampedMax,
}

impl std::fmt::Display for GenMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GenMode::Pv => "pv",
            GenMode::ClampedMin => "clamped-at-qmin",
            GenMode::ClampedMax => "clamped-at-qmax",
        })
    }
}

/// Result of one meshed/DG solve.
#[derive(Clone, Debug)]
pub struct MeshResult {
    /// The final inner solve (voltages and branch currents by bus id,
    /// with timing/iterations *accumulated over every inner solve* of
    /// the outer loop). Its own `status` is the last inner outcome.
    pub inner: SolveResult,
    /// Overall status: the inner status when the outer loop settled
    /// (or never engaged), [`SolveStatus::OuterDiverged`] on outer
    /// divergence or limit-cycling, [`SolveStatus::MaxIterations`] on
    /// outer-cap exhaustion.
    pub status: SolveStatus,
    /// How the outer loop ended.
    pub outer_status: OuterStatus,
    /// Outer iterations run (0 for a plain radial network).
    pub outer_iterations: u32,
    /// Final break-point mismatch `max_j |E_j|`, volts (0 with no loops).
    pub breakpoint_residual: f64,
    /// Final worst PV set-point error over PV-mode generators, volts
    /// (0 with no generators in PV mode).
    pub pv_error: f64,
    /// Final loop (tie) currents, one per break point, amperes.
    pub loop_currents: Vec<Complex>,
    /// Final reactive output per generator, vars.
    pub q_gen: Vec<f64>,
    /// Final operating mode per generator.
    pub gen_modes: Vec<GenMode>,
    /// Total PV↔PQ mode flips across all generators.
    pub mode_flips: u32,
}

impl MeshResult {
    /// `true` when the overall status met the tolerance.
    pub fn converged(&self) -> bool {
        self.status.is_converged()
    }
}

/// A radial sweep backend the mesh outer loop can drive: anything that
/// can re-solve prepared arrays from a warm start. Implemented by the
/// serial, multicore and GPU solvers; the resilient supervisor has its
/// own entry point ([`solve_meshed_resilient`]) because its
/// checkpoint/rollback machinery owns device lifetimes.
pub trait SweepBackend {
    /// Backend name for reports.
    fn name(&self) -> &'static str;
    /// One inner radial solve over `a`, warm-started from `v_init`
    /// (indexed by bus id) when given.
    fn solve_warm_arrays(
        &mut self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> SolveResult;
}

impl SweepBackend for SerialSolver {
    fn name(&self) -> &'static str {
        "serial"
    }
    fn solve_warm_arrays(
        &mut self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> SolveResult {
        self.solve_warm(a, cfg, v_init)
    }
}

impl SweepBackend for MulticoreSolver {
    fn name(&self) -> &'static str {
        "multicore"
    }
    fn solve_warm_arrays(
        &mut self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> SolveResult {
        self.solve_warm(a, cfg, v_init)
    }
}

impl SweepBackend for GpuSolver {
    fn name(&self) -> &'static str {
        "gpu"
    }
    fn solve_warm_arrays(
        &mut self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> SolveResult {
        self.solve_warm(a, cfg, v_init)
    }
}

/// The precomputed, topology-only part of a meshed/DG problem: base
/// loads, the Thevenin loop-impedance matrix and per-generator voltage
/// sensitivities. Shared by [`MeshSolver`], the resilient entry point
/// and the tensor-batched DG sweep — none of it changes across outer
/// iterations or scenarios.
#[derive(Clone, Debug)]
pub struct MeshProblem {
    /// Base constant-power loads by bus id (no DG, no compensation).
    base: Vec<Complex>,
    /// Generator records.
    gens: Vec<PvBus>,
    /// Root-path reactance at each generator bus, ohms (PV sensitivity).
    x_th: Vec<f64>,
    /// Break-point endpoints and tie impedances `(a, b, z_tie)`.
    bps: Vec<(usize, usize, Complex)>,
    /// Row-major k×k Thevenin loop-impedance matrix.
    thevenin: Vec<Complex>,
}

impl MeshProblem {
    /// Precomputes the compensation data for a meshed network.
    pub fn new(net: &MeshedNetwork) -> Self {
        let tree = net.tree();
        let base: Vec<Complex> = tree.buses().iter().map(|b| b.load).collect();
        let gens: Vec<PvBus> = net.generators().to_vec();
        let x_th = gens
            .iter()
            .map(|g| root_path_impedance(tree, g.bus).im.max(1e-9))
            .collect();

        let bps: Vec<(usize, usize, Complex)> =
            net.break_points().iter().map(|bp| (bp.a, bp.b, bp.z)).collect();
        let k = bps.len();
        // Signed tree-path incidence per loop: σ_i(branch) = +1 for
        // branches on root-path(a_i), −1 on root-path(b_i); shared
        // prefixes cancel, leaving exactly the a→b tree path.
        let sigmas: Vec<std::collections::HashMap<usize, f64>> = bps
            .iter()
            .map(|&(a, b, _)| {
                let mut sig = std::collections::HashMap::new();
                for bus in root_path(tree, a) {
                    *sig.entry(bus).or_insert(0.0) += 1.0;
                }
                for bus in root_path(tree, b) {
                    *sig.entry(bus).or_insert(0.0) -= 1.0;
                }
                sig.retain(|_, s| *s != 0.0);
                sig
            })
            .collect();
        let mut thevenin = vec![Complex::ZERO; k * k];
        for i in 0..k {
            for jj in 0..k {
                let mut z = Complex::ZERO;
                for (&bus, &si) in &sigmas[i] {
                    if let Some(&sj) = sigmas[jj].get(&bus) {
                        let zb = tree.parent_branch(bus).expect("non-root bus has a parent").z;
                        z += zb * (si * sj);
                    }
                }
                thevenin[i * k + jj] = z;
            }
            thevenin[i * k + i] += bps[i].2;
        }

        MeshProblem { base, gens, x_th, bps, thevenin }
    }

    /// Number of loops (break points).
    pub fn num_loops(&self) -> usize {
        self.bps.len()
    }

    /// Number of generators.
    pub fn num_gens(&self) -> usize {
        self.gens.len()
    }

    /// The row-major k×k Thevenin loop-impedance matrix (tests compare
    /// it against hand-computed references).
    pub fn thevenin(&self) -> &[Complex] {
        &self.thevenin
    }

    /// A fresh outer-loop state: zero loop currents, generators in PV
    /// mode at `Q = 0` (clamped into their limits).
    pub fn initial_state(&self) -> MeshState {
        MeshState {
            j_loop: vec![Complex::ZERO; self.bps.len()],
            q: self.gens.iter().map(|g| 0.0f64.clamp(g.q_min, g.q_max)).collect(),
            modes: vec![GenMode::Pv; self.gens.len()],
            flips: vec![0; self.gens.len()],
        }
    }

    /// The constant-power loads (by bus id) the next inner solve should
    /// use: base loads minus DG injections (`p_gen` scaled by
    /// `dg_scale`) minus/plus the break-point compensation converted to
    /// power at the latest voltages `v`.
    pub fn loads(&self, state: &MeshState, v: &[Complex], dg_scale: f64) -> Vec<Complex> {
        let mut s = self.base.clone();
        for (gi, g) in self.gens.iter().enumerate() {
            s[g.bus] -= c(g.p_gen * dg_scale, state.q[gi]);
        }
        for (j, &(a, b, _)) in self.bps.iter().enumerate() {
            let jj = state.j_loop[j];
            s[a] += v[a] * jj.conj();
            s[b] -= v[b] * jj.conj();
        }
        s
    }

    /// One outer correction from the solved voltages `v` (by bus id):
    /// measures the break-point mismatch, solves the Thevenin system for
    /// the loop-current update, and steps every generator's Q toward its
    /// set-point with limit/hysteresis handling. Returns the mismatch
    /// measured *before* the update (the quantity the outer loop
    /// converges on).
    pub fn step(&self, state: &mut MeshState, v: &[Complex], outer: &OuterConfig) -> OuterStep {
        let k = self.bps.len();
        // Break-point mismatch and compensation update.
        let mut e: Vec<Complex> = self
            .bps
            .iter()
            .enumerate()
            .map(|(j, &(a, b, z))| v[a] - v[b] - z * state.j_loop[j])
            .collect();
        let bp_residual = e.iter().map(|x| x.abs()).fold(0.0, f64::max);
        let mut singular = false;
        if k > 0 {
            let mut z = self.thevenin.clone();
            match solve_dense(&mut z, &mut e, k) {
                Ok(()) => {
                    for (jj, dj) in state.j_loop.iter_mut().zip(&e) {
                        *jj += *dj;
                    }
                }
                Err(_) => singular = true,
            }
        }

        // PV outer step with Q-limit clamping and hysteresis.
        let vm: Vec<f64> = self.gens.iter().map(|g| v[g.bus].abs()).collect();
        let (pv_error, limit_cycle) = pv_step(&self.gens, &self.x_th, state, &vm, outer);

        OuterStep { bp_residual, pv_error, singular, limit_cycle }
    }
}

/// One PV-control step over every generator, shared by the single- and
/// three-phase outer loops: Newton Q update on the root-path-reactance
/// sensitivity, Q-limit clamping with hysteresis re-entry, mode-flip
/// accounting. `vm` is the controlled voltage magnitude per generator
/// (the bus magnitude single-phase, the mean phase magnitude
/// three-phase). Returns `(pv_error, limit_cycle)`.
fn pv_step(
    gens: &[PvBus],
    x_th: &[f64],
    state: &mut MeshState,
    vm: &[f64],
    outer: &OuterConfig,
) -> (f64, bool) {
    let mut pv_error = 0.0f64;
    let mut limit_cycle = false;
    for (gi, g) in gens.iter().enumerate() {
        let vm = vm[gi];
        let err = g.v_set - vm;
        let dq = outer.damping * err * vm / x_th[gi];
        let desired = state.q[gi] + dq;
        let hyst = outer.hysteresis * (g.q_max - g.q_min);
        let mode = state.modes[gi];
        let new_mode = match mode {
            GenMode::Pv if desired > g.q_max => GenMode::ClampedMax,
            GenMode::Pv if desired < g.q_min => GenMode::ClampedMin,
            GenMode::ClampedMax if desired < g.q_max - hyst => GenMode::Pv,
            GenMode::ClampedMin if desired > g.q_min + hyst => GenMode::Pv,
            m => m,
        };
        if new_mode != mode {
            state.flips[gi] += 1;
            if state.flips[gi] > outer.max_mode_flips {
                limit_cycle = true;
            }
        }
        state.modes[gi] = new_mode;
        let q_before = state.q[gi];
        state.q[gi] = match new_mode {
            GenMode::Pv => desired.clamp(g.q_min, g.q_max),
            GenMode::ClampedMax => g.q_max,
            GenMode::ClampedMin => g.q_min,
        };
        // Only PV-mode buses owe their set-point; clamped buses are
        // honest PQ buses at the limit.
        if new_mode == GenMode::Pv {
            pv_error = pv_error.max(err.abs());
        }
        // Whatever the mode, the solution just measured was computed
        // with the *previous* Q: an applied Q change means the
        // voltages are stale by about Δq·x_th/|V|, so a limit clamp
        // (which zeroes the set-point obligation) cannot declare
        // convergence before one consistent re-solve.
        let dv_stale = (state.q[gi] - q_before).abs() * x_th[gi] / vm.max(1.0);
        pv_error = pv_error.max(dv_stale);
    }
    (pv_error, limit_cycle)
}

/// Mutable outer-loop state: loop currents plus per-generator Q, mode
/// and flip counters. One per scenario in batched sweeps.
#[derive(Clone, Debug)]
pub struct MeshState {
    /// Loop (tie) current per break point, amperes, flowing a→b.
    pub j_loop: Vec<Complex>,
    /// Reactive output per generator, vars.
    pub q: Vec<f64>,
    /// Operating mode per generator.
    pub modes: Vec<GenMode>,
    /// PV↔PQ mode flips per generator.
    pub flips: Vec<u32>,
}

impl MeshState {
    /// Total mode flips across all generators.
    pub fn total_flips(&self) -> u32 {
        self.flips.iter().sum()
    }
}

/// What one [`MeshProblem::step`] measured and decided.
#[derive(Clone, Copy, Debug)]
pub struct OuterStep {
    /// `max_j |E_j|` before the update, volts.
    pub bp_residual: f64,
    /// Worst PV set-point error over PV-mode generators, volts.
    pub pv_error: f64,
    /// The Thevenin system was singular (degenerate tie impedances).
    pub singular: bool,
    /// Some generator exceeded its mode-flip budget this step.
    pub limit_cycle: bool,
}

impl OuterStep {
    /// The scalar the outer loop converges on.
    pub fn mismatch(&self) -> f64 {
        self.bp_residual.max(self.pv_error)
    }
}

/// The meshed/DG solver: an outer compensation loop wrapped around any
/// [`SweepBackend`].
pub struct MeshSolver<B> {
    backend: B,
    outer: OuterConfig,
    recorder: Option<Recorder>,
}

impl<B: SweepBackend> MeshSolver<B> {
    /// Wraps a radial backend with the default outer configuration.
    pub fn new(backend: B) -> Self {
        MeshSolver { backend, outer: OuterConfig::default(), recorder: None }
    }

    /// Sets the outer-loop configuration.
    pub fn with_outer(mut self, outer: OuterConfig) -> Self {
        self.outer = outer;
        self
    }

    /// Attaches a telemetry recorder: the inner solves emit their usual
    /// spans, and the outer loop adds `mesh.breakpoint_residual` samples
    /// plus a `solver.outer_iterations` histogram observation per solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Solves a weakly-meshed/DG network.
    pub fn solve(&mut self, net: &MeshedNetwork, cfg: &SolverConfig) -> MeshResult {
        let outer = self.outer;
        let rec = self.recorder.clone();
        let backend = &mut self.backend;
        let arrays = SolverArrays::new(net.tree());
        let mut a = arrays;
        drive_outer::<std::convert::Infallible>(net, cfg, &outer, rec.as_ref(), &mut |loads, warm| {
            a.s = a.levels.permute(loads);
            Ok(backend.solve_warm_arrays(&a, cfg, warm))
        })
        .unwrap_or_else(|e| match e {})
    }
}

/// Solves a weakly-meshed/DG network under the fault-tolerant
/// supervisor: every inner radial solve runs through
/// [`ResilientSolver::solve`], so checkpoint/rollback, certification and
/// GPU→CPU degradation compose with the outer loop unchanged. Fault
/// reports are accumulated across outer iterations.
pub fn solve_meshed_resilient(
    solver: &mut ResilientSolver,
    net: &MeshedNetwork,
    cfg: &SolverConfig,
    outer: &OuterConfig,
) -> Result<MeshResult, ResilienceError> {
    let tree = net.tree();
    let n = tree.num_buses();
    let source = tree.source_voltage();
    let branches: Vec<_> = tree.branches().to_vec();
    drive_outer(net, cfg, outer, None, &mut |loads, _warm| {
        // The supervisor owns its device sessions, so the outer loop
        // hands it a freshly patched network instead of raw arrays (and
        // forgoes warm starts — recovery certification assumes the flat
        // start is known clean).
        let mut b = NetworkBuilder::with_capacity(source, n);
        for &load in loads {
            b.add_bus(load);
        }
        for br in &branches {
            b.connect(br.from, br.to, br.z);
        }
        let patched = b.build().expect("patched tree keeps the validated topology");
        solver.solve(&patched, cfg)
    })
}

/// Inner-solve callback for [`drive_outer`]: compensated loads plus an
/// optional warm-start voltage profile.
type InnerSolve<'a, E> = dyn FnMut(&[Complex], Option<&[Complex]>) -> Result<SolveResult, E> + 'a;

/// The shared outer loop: repeatedly build compensated loads, run one
/// inner solve through `inner`, and apply [`MeshProblem::step`] until
/// the mismatch settles or fails structurally.
fn drive_outer<E>(
    net: &MeshedNetwork,
    cfg: &SolverConfig,
    outer: &OuterConfig,
    rec: Option<&Recorder>,
    inner: &mut InnerSolve<'_, E>,
) -> Result<MeshResult, E> {
    let tree = net.tree();
    let n = tree.num_buses();
    let v0 = tree.source_voltage();
    let problem = MeshProblem::new(net);
    let state = problem.initial_state();
    let obs = Obs::new(rec, "solver.mesh");

    if cfg.validate().is_err() || !outer.is_valid() {
        let inner_res = crate::report::invalid_config_result(n, v0);
        return Ok(finish(inner_res, SolveStatus::InvalidConfig, OuterStatus::Radial, 0, &state, 0.0, 0.0, rec));
    }

    // No loops, no generators: one plain inner solve, zero outer overhead.
    if problem.num_loops() == 0 && problem.num_gens() == 0 {
        let res = inner(&problem.base, None)?;
        let status = res.status;
        return Ok(finish(res, status, OuterStatus::Radial, 0, &state, 0.0, 0.0, rec));
    }

    let tol_v = outer.tol_rel * v0.abs();
    let cap_v = cfg.divergence_cap_volts(v0.abs());
    let mut state = state;
    let mut v: Vec<Complex> = vec![v0; n];
    let mut total = Timing::default();
    let mut total_inner_iters = 0u32;
    let mut faults = FaultAccumulator::default();
    let mut last: Option<SolveResult> = None;
    let mut prev_mismatch = f64::INFINITY;
    let mut growth = 0u32;
    let mut outcome: Option<(SolveStatus, OuterStatus)> = None;
    let mut step = OuterStep { bp_residual: 0.0, pv_error: 0.0, singular: false, limit_cycle: false };
    let mut outer_iters = 0u32;

    for it in 1..=outer.max_outer {
        outer_iters = it;
        let loads = problem.loads(&state, &v, 1.0);
        let warm = (it > 1).then_some(v.as_slice());
        let res = inner(&loads, warm)?;
        accumulate(&mut total, &res.timing);
        total_inner_iters += res.iterations;
        faults.fold(res.fault_report.as_ref());
        if !res.status.is_converged() {
            let status = res.status;
            outcome = Some((status, OuterStatus::InnerFailed { at_outer: it }));
            last = Some(res);
            break;
        }
        v.copy_from_slice(&res.v);
        step = problem.step(&mut state, &v, outer);
        obs.phase("outer", total.total_us(), total.total_us());
        if let Some(r) = rec {
            r.counter_sample("mesh.breakpoint_residual", total.total_us(), step.bp_residual);
        }
        let m = step.mismatch();
        last = Some(res);
        if step.singular || !m.is_finite() || m > cap_v {
            outcome = Some((
                SolveStatus::OuterDiverged { at_outer: it },
                OuterStatus::Diverged { at_outer: it },
            ));
            break;
        }
        if step.limit_cycle {
            outcome = Some((
                SolveStatus::OuterDiverged { at_outer: it },
                OuterStatus::LimitCycle { at_outer: it },
            ));
            break;
        }
        if m <= tol_v {
            let status = last.as_ref().expect("an inner solve just ran").status;
            outcome = Some((status, OuterStatus::Converged { outer_iterations: it }));
            break;
        }
        growth = if m > prev_mismatch { growth + 1 } else { 0 };
        if growth >= outer.patience {
            outcome = Some((
                SolveStatus::OuterDiverged { at_outer: it },
                OuterStatus::Diverged { at_outer: it },
            ));
            break;
        }
        prev_mismatch = m;
    }

    let (status, outer_status) =
        outcome.unwrap_or((SolveStatus::MaxIterations, OuterStatus::MaxOuterIterations));
    let mut res = last.expect("max_outer >= 1 guarantees at least one inner solve");
    res.timing = total;
    res.iterations = total_inner_iters;
    faults.fold(None); // no-op; keeps the accumulator used symmetrically
    if let Some(fr) = faults.into_report() {
        res.fault_report = Some(fr);
    }
    Ok(finish(res, status, outer_status, outer_iters, &state, step.bp_residual, step.pv_error, rec))
}

#[allow(clippy::too_many_arguments)]
fn finish(
    inner: SolveResult,
    status: SolveStatus,
    outer_status: OuterStatus,
    outer_iterations: u32,
    state: &MeshState,
    breakpoint_residual: f64,
    pv_error: f64,
    rec: Option<&Recorder>,
) -> MeshResult {
    if let Some(r) = rec {
        r.observe("solver.outer_iterations", f64::from(outer_iterations));
    }
    MeshResult {
        inner,
        status,
        outer_status,
        outer_iterations,
        breakpoint_residual,
        pv_error,
        loop_currents: state.j_loop.clone(),
        q_gen: state.q.clone(),
        gen_modes: state.modes.clone(),
        mode_flips: state.total_flips(),
    }
}

/// Sums inner-solve timings so the final [`MeshResult`] reports the cost
/// of the whole outer loop, not just its last inner solve.
fn accumulate(total: &mut Timing, t: &Timing) {
    total.phases.setup_us += t.phases.setup_us;
    total.phases.injection_us += t.phases.injection_us;
    total.phases.backward_us += t.phases.backward_us;
    total.phases.forward_us += t.phases.forward_us;
    total.phases.convergence_us += t.phases.convergence_us;
    total.phases.teardown_us += t.phases.teardown_us;
    total.transfer_us += t.transfer_us;
    total.transfer_sweep_us += t.transfer_sweep_us;
    total.wall_us += t.wall_us;
}

/// Accumulates fault reports across the outer loop's inner solves.
#[derive(Default)]
struct FaultAccumulator {
    report: Option<FaultReport>,
}

impl FaultAccumulator {
    fn fold(&mut self, fr: Option<&FaultReport>) {
        let Some(fr) = fr else { return };
        let acc = self.report.get_or_insert_with(FaultReport::default);
        acc.faults_injected += fr.faults_injected;
        acc.rollbacks += fr.rollbacks;
        acc.retries += fr.retries;
        acc.checkpoints += fr.checkpoints;
        acc.checkpoint_us += fr.checkpoint_us;
        acc.corruptions_detected += fr.corruptions_detected;
        for b in &fr.backends {
            if acc.backends.last() != Some(b) {
                acc.backends.push(b.clone());
            }
        }
    }

    fn into_report(self) -> Option<FaultReport> {
        self.report
    }
}

/// Result of one tensor-batched DG-scale sweep ([`solve_dg_batch`]).
#[derive(Clone, Debug)]
pub struct DgBatchResult {
    /// Per-scenario bus voltages, `[scenario][bus id]`, from each
    /// scenario's final inner solve.
    pub v: Vec<Vec<Complex>>,
    /// Per-scenario overall status (same mapping as [`MeshResult`]).
    pub statuses: Vec<SolveStatus>,
    /// Per-scenario outer outcome.
    pub outer_statuses: Vec<OuterStatus>,
    /// Per-scenario outer iterations until convergence (or failure).
    pub outer_iterations: Vec<u32>,
    /// Per-scenario final reactive output per generator, vars.
    pub q_gen: Vec<Vec<f64>>,
    /// Per-scenario final operating mode per generator.
    pub gen_modes: Vec<Vec<GenMode>>,
    /// Outer (batched inner solve) rounds actually run.
    pub outer_rounds: u32,
    /// Total modeled time across all batched inner rounds, µs.
    pub total_us: f64,
    /// Modeled throughput: scenarios per modeled device second, over
    /// the *whole* outer loop.
    pub scenarios_per_sec: f64,
}

impl DgBatchResult {
    /// Whether every scenario converged.
    pub fn converged(&self) -> bool {
        self.statuses.iter().all(|s| s.is_converged())
    }

    /// The most severe scenario outcome.
    pub fn worst_status(&self) -> SolveStatus {
        self.statuses.iter().fold(SolveStatus::Converged, |w, &s| w.worse(s))
    }
}

/// Solves a family of DG-penetration scenarios of one weakly-meshed
/// network on the tensor-batched solver: scenario `s` runs the network
/// with every generator's active output scaled by `dg_scales[s]`
/// (`0.0` = no DG, `1.0` = nameplate). All scenarios share one outer
/// loop over a resident [`TensorOuterSession`]: the topology and the
/// per-scenario load slab are uploaded once, each outer round is a
/// *single* batched inner solve that re-iterates from the resident
/// voltages, and between rounds only the sparse load corrections
/// (generator buses and break-point endpoints) and the probe-bus
/// voltages cross the transfer link — so the per-scenario cost is the
/// amortized sweep cost, not a serial outer-loop re-solve and not a
/// per-round slab re-upload. This is the E17 headline path.
///
/// Scenarios that settle (or fail) retire from the batch: their
/// resident state freezes at the deciding round and later sweeps skip
/// them entirely. Device faults are absorbed by the session (rebuild
/// within the recovery budget, serial fallback past it), so `Err`
/// never escapes in practice; the signature keeps the `Result` for
/// call-site stability.
pub fn solve_dg_batch(
    tbs: &mut TensorBatchSolver,
    net: &MeshedNetwork,
    dg_scales: &[f64],
    cfg: &SolverConfig,
    outer: &OuterConfig,
) -> Result<DgBatchResult, simt::DeviceError> {
    let tree = net.tree();
    let n = tree.num_buses();
    let v0 = tree.source_voltage();
    let nb = dg_scales.len();
    assert!(nb >= 1, "batch must contain at least one scenario");
    let problem = MeshProblem::new(net);
    let arrays = SolverArrays::new(tree);

    if cfg.validate().is_err() || !outer.is_valid() {
        return Ok(DgBatchResult {
            v: vec![vec![v0; n]; nb],
            statuses: vec![SolveStatus::InvalidConfig; nb],
            outer_statuses: vec![OuterStatus::Radial; nb],
            outer_iterations: vec![0; nb],
            q_gen: vec![vec![0.0; problem.num_gens()]; nb],
            gen_modes: vec![vec![GenMode::Pv; problem.num_gens()]; nb],
            outer_rounds: 0,
            total_us: 0.0,
            scenarios_per_sec: 0.0,
        });
    }

    let tol_v = outer.tol_rel * v0.abs();
    let cap_v = cfg.divergence_cap_volts(v0.abs());
    let mut states: Vec<MeshState> = (0..nb).map(|_| problem.initial_state()).collect();
    let mut v: Vec<Vec<Complex>> = vec![vec![v0; n]; nb];
    let mut outcome: Vec<Option<(SolveStatus, OuterStatus)>> = vec![None; nb];
    let mut outer_iters = vec![0u32; nb];
    let mut prev_mismatch = vec![f64::INFINITY; nb];
    let mut growth = vec![0u32; nb];
    let mut rounds = 0u32;

    // The outer driver only ever reads voltages at generator buses and
    // break-point endpoints ([`MeshProblem::step`]/[`loads`]), so those
    // are the only buses the session reads back between rounds.
    let mut probe_set = std::collections::BTreeSet::new();
    for g in net.generators() {
        probe_set.insert(g.bus);
    }
    for bp in net.break_points() {
        probe_set.insert(bp.a);
        probe_set.insert(bp.b);
    }
    let probes: Vec<usize> = probe_set.into_iter().collect();

    // One cheap serial solve of the base tree seeds every scenario's
    // first batched round: the DG/compensation corrections only move a
    // handful of loads off the base case, so the whole family starts a
    // few iterations from its fixed points instead of a cold sweep
    // away. The pre-solve is charged to the batch total.
    let base = SerialSolver::new(HostProps::paper_rig()).solve_warm(&arrays, cfg, None);
    let warm = base.status.is_converged().then_some(base.v);
    let mut total_us = base.timing.total_us();

    let chunk = tbs.chunk_capacity().max(1);
    let mut start = 0;
    while start < nb {
        let end = (start + chunk).min(nb);
        let width = end - start;
        let mut loads: Vec<Vec<Complex>> = (start..end)
            .map(|s| problem.loads(&states[s], &v[s], dg_scales[s]))
            .collect();
        let mut session = tbs.outer_session(&arrays, &loads, &probes, warm.as_deref(), cfg);
        let mut live = width;

        // Inexact-outer tolerance ladder: rounds far from outer
        // convergence only feed the compensation/PV correction, so
        // their inner solves stop at a loose tolerance; once the worst
        // live mismatch closes to within 100× the outer tolerance the
        // rounds run tight. Convergence is only ever declared off a
        // tight round, so the answer is exactly as converged as before
        // — the ladder saves iterations, not accuracy.
        let loose_cfg =
            SolverConfig { tol_rel: cfg.tol_rel.clamp(1e-4, 1e-2), ..*cfg };
        let ladder = loose_cfg.tol_rel > cfg.tol_rel;
        let mut worst_live = f64::INFINITY;

        for it in 1..=outer.max_outer {
            if live == 0 {
                break;
            }
            rounds = rounds.max(it);
            let tight = !ladder || worst_live <= 100.0 * tol_v;
            // Each round re-iterates from the resident voltages — the
            // compensation/PV update only nudged a handful of loads, so
            // the re-solve needs a few iterations, not the cold count.
            let round = session.solve_round(if tight { cfg } else { &loose_cfg });
            let mut next_worst = 0.0f64;
            let mut updates = Vec::new();
            #[allow(clippy::needless_range_loop)] // ls indexes four parallel arrays
            for ls in 0..width {
                let s = start + ls;
                if outcome[s].is_some() {
                    continue;
                }
                outer_iters[s] = it;
                if !round.statuses[ls].is_converged() {
                    outcome[s] =
                        Some((round.statuses[ls], OuterStatus::InnerFailed { at_outer: it }));
                    session.retire(ls);
                    live -= 1;
                    continue;
                }
                for (k, &bus) in probes.iter().enumerate() {
                    v[s][bus] = round.probe_v[ls][k];
                }
                let step = problem.step(&mut states[s], &v[s], outer);
                let m = step.mismatch();
                if step.singular || !m.is_finite() || m > cap_v {
                    outcome[s] = Some((
                        SolveStatus::OuterDiverged { at_outer: it },
                        OuterStatus::Diverged { at_outer: it },
                    ));
                    session.retire(ls);
                    live -= 1;
                    continue;
                }
                if step.limit_cycle {
                    outcome[s] = Some((
                        SolveStatus::OuterDiverged { at_outer: it },
                        OuterStatus::LimitCycle { at_outer: it },
                    ));
                    session.retire(ls);
                    live -= 1;
                    continue;
                }
                if tight && m <= tol_v {
                    outcome[s] = Some((
                        round.statuses[ls],
                        OuterStatus::Converged { outer_iterations: it },
                    ));
                    session.retire(ls);
                    live -= 1;
                    continue;
                }
                growth[s] = if m > prev_mismatch[s] { growth[s] + 1 } else { 0 };
                if growth[s] >= outer.patience {
                    outcome[s] = Some((
                        SolveStatus::OuterDiverged { at_outer: it },
                        OuterStatus::Diverged { at_outer: it },
                    ));
                    session.retire(ls);
                    live -= 1;
                    continue;
                }
                prev_mismatch[s] = m;
                next_worst = next_worst.max(m);
                // Ship only the loads the outer step actually moved —
                // generator buses and break-point endpoints.
                let fresh = problem.loads(&states[s], &v[s], dg_scales[s]);
                for (bus, (&old, &new)) in loads[ls].iter().zip(&fresh).enumerate() {
                    if old != new {
                        updates.push((ls, bus, new));
                    }
                }
                loads[ls] = fresh;
            }
            worst_live = next_worst;
            session.update_loads(&updates);
        }

        let report = session.finish(cfg);
        total_us += report.total_us;
        for (ls, vs) in report.v.into_iter().enumerate() {
            v[start + ls] = vs;
        }
        start = end;
    }

    let (statuses, outer_statuses): (Vec<_>, Vec<_>) = outcome
        .into_iter()
        .map(|o| o.unwrap_or((SolveStatus::MaxIterations, OuterStatus::MaxOuterIterations)))
        .unzip();
    let scenarios_per_sec =
        if total_us > 0.0 { nb as f64 / (total_us * 1e-6) } else { 0.0 };
    Ok(DgBatchResult {
        v,
        statuses,
        outer_statuses,
        outer_iterations: outer_iters,
        q_gen: states.iter().map(|st| st.q.clone()).collect(),
        gen_modes: states.iter().map(|st| st.modes.clone()).collect(),
        outer_rounds: rounds,
        total_us,
        scenarios_per_sec,
    })
}

/// Result of one three-phase DG solve ([`solve3_dg`]). Three-phase
/// networks are radial by construction, so only the PV-bus half of the
/// outer loop engages — no break points, no loop currents.
#[derive(Clone, Debug)]
pub struct Mesh3Result {
    /// The final inner three-phase solve (per-bus phase voltages and
    /// currents, timing/iterations accumulated over every inner solve).
    pub inner: Solve3Result,
    /// Overall status (same mapping as [`MeshResult::status`]).
    pub status: SolveStatus,
    /// How the outer loop ended.
    pub outer_status: OuterStatus,
    /// Outer iterations run (0 for a generator-free network).
    pub outer_iterations: u32,
    /// Final worst PV set-point error over PV-mode generators, volts.
    pub pv_error: f64,
    /// Final reactive output per generator (total over the three
    /// phases), vars.
    pub q_gen: Vec<f64>,
    /// Final operating mode per generator.
    pub gen_modes: Vec<GenMode>,
    /// Total PV↔PQ mode flips across all generators.
    pub mode_flips: u32,
}

impl Mesh3Result {
    /// `true` when the overall status met the tolerance.
    pub fn converged(&self) -> bool {
        self.status.is_converged()
    }
}

/// A three-phase sweep backend the DG outer loop can drive. Implemented
/// by [`Serial3Solver`] and [`Gpu3Solver`]; [`Resilient3Solver`] has its
/// own entry point ([`solve3_dg_resilient`]) because it owns device
/// lifetimes and returns `Result`.
pub trait Sweep3Backend {
    /// Backend name for reports.
    fn name(&self) -> &'static str;
    /// One inner three-phase solve over prepared arrays.
    fn solve3_arrays(&mut self, a: &Arrays3, cfg: &SolverConfig) -> Solve3Result;
}

impl Sweep3Backend for Serial3Solver {
    fn name(&self) -> &'static str {
        "serial3"
    }
    fn solve3_arrays(&mut self, a: &Arrays3, cfg: &SolverConfig) -> Solve3Result {
        self.solve_arrays(a, cfg)
    }
}

impl Sweep3Backend for Gpu3Solver {
    fn name(&self) -> &'static str {
        "gpu3"
    }
    fn solve3_arrays(&mut self, a: &Arrays3, cfg: &SolverConfig) -> Solve3Result {
        self.solve_arrays(a, cfg)
    }
}

/// Solves a three-phase network with distributed generators: the PV-bus
/// outer loop around any [`Sweep3Backend`]. A generator is balanced —
/// `p_gen` and the dispatched Q split equally across the phases, and the
/// set-point regulates the *mean* phase magnitude (regulators on real
/// feeders act on an average or a single monitored phase; the mean keeps
/// the control scalar smooth under unbalance).
pub fn solve3_dg<B: Sweep3Backend>(
    backend: &mut B,
    net: &ThreePhaseNetwork,
    cfg: &SolverConfig,
    outer: &OuterConfig,
    rec: Option<&Recorder>,
) -> Mesh3Result {
    let mut a = Arrays3::new(net);
    drive_outer3::<std::convert::Infallible>(net, cfg, outer, rec, &mut |loads| {
        a.s = a.levels.permute(loads);
        Ok(backend.solve3_arrays(&a, cfg))
    })
    .unwrap_or_else(|e| match e {})
}

/// Solves a three-phase DG network under the fault-tolerant supervisor:
/// every inner solve runs through [`Resilient3Solver::solve`], so
/// recovery and degradation compose with the PV outer loop unchanged.
pub fn solve3_dg_resilient(
    solver: &mut Resilient3Solver,
    net: &ThreePhaseNetwork,
    cfg: &SolverConfig,
    outer: &OuterConfig,
) -> Result<Mesh3Result, ResilienceError> {
    let source = net.source_voltage();
    let branches: Vec<_> = net.branches().to_vec();
    drive_outer3(net, cfg, outer, None, &mut |loads| {
        // The supervisor takes a network, not arrays: hand it a patched
        // copy with the generators folded into the loads (and no `gen`
        // records, so the patched net is an honest PQ-only feeder).
        let mut b = ThreePhaseBuilder::new(source);
        for &load in loads {
            b.add_bus(load);
        }
        for br in &branches {
            b.connect(br.from, br.to, br.z);
        }
        let patched = b.build().expect("patched feeder keeps the validated topology");
        solver.solve(&patched, cfg)
    })
}

/// The three-phase outer loop: PV control only (three-phase networks are
/// radial, so there is nothing to compensate). Shares the mode machine,
/// hysteresis, stale-voltage accounting and limit-cycle budget with the
/// single-phase loop through [`pv_step`].
fn drive_outer3<E>(
    net: &ThreePhaseNetwork,
    cfg: &SolverConfig,
    outer: &OuterConfig,
    rec: Option<&Recorder>,
    inner: &mut dyn FnMut(&[CVec3]) -> Result<Solve3Result, E>,
) -> Result<Mesh3Result, E> {
    let n = net.num_buses();
    let v0 = net.source_voltage();
    let v0m = mean_phase_mag(v0);
    let gens: Vec<PvBus> = net.generators().to_vec();
    let base: Vec<CVec3> = net.buses().iter().map(|b| b.load).collect();
    let obs = Obs::new(rec, "solver.mesh3");

    let mut state = MeshState {
        j_loop: Vec::new(),
        q: gens.iter().map(|g| 0.0f64.clamp(g.q_min, g.q_max)).collect(),
        modes: vec![GenMode::Pv; gens.len()],
        flips: vec![0; gens.len()],
    };

    if cfg.validate().is_err() || !outer.is_valid() {
        let inner_res = crate::three_phase::invalid_config_result3(n, v0);
        return Ok(finish3(inner_res, SolveStatus::InvalidConfig, OuterStatus::Radial, 0, &state, 0.0, rec));
    }

    // No generators: one plain inner solve, zero outer overhead.
    if gens.is_empty() {
        let res = inner(&base)?;
        let status = res.status;
        return Ok(finish3(res, status, OuterStatus::Radial, 0, &state, 0.0, rec));
    }

    // Mean-diagonal root-path reactance per generator, divided by 3:
    // the dispatched Q splits equally across the phases, so the mean
    // phase magnitude moves by `(q/3)·x̄/|V|` per unit of *total* Q —
    // the balanced analogue of the single-phase `x_th` sensitivity.
    let x_th: Vec<f64> = gens
        .iter()
        .map(|g| {
            let mut x = 0.0;
            let mut b = g.bus;
            while let Some(br) = net.parent_branch(b) {
                x += (br.z.m[0][0].im + br.z.m[1][1].im + br.z.m[2][2].im) / 3.0;
                b = br.from;
            }
            (x / 3.0).max(1e-9)
        })
        .collect();

    let tol_v = outer.tol_rel * v0m;
    let cap_v = cfg.divergence_cap_volts(v0m);
    let mut total = Timing::default();
    let mut total_inner_iters = 0u32;
    let mut last: Option<Solve3Result> = None;
    let mut prev_mismatch = f64::INFINITY;
    let mut growth = 0u32;
    let mut outcome: Option<(SolveStatus, OuterStatus)> = None;
    let mut pv_error = 0.0;
    let mut outer_iters = 0u32;

    for it in 1..=outer.max_outer {
        outer_iters = it;
        let loads: Vec<CVec3> = {
            let mut l = base.clone();
            for (gi, g) in gens.iter().enumerate() {
                let s_phase = c(g.p_gen, state.q[gi]) / 3.0;
                let inj = CVec3 { a: s_phase, b: s_phase, c: s_phase };
                l[g.bus] -= inj;
            }
            l
        };
        let res = inner(&loads)?;
        accumulate(&mut total, &res.timing);
        total_inner_iters += res.iterations;
        if !res.status.is_converged() {
            let status = res.status;
            outcome = Some((status, OuterStatus::InnerFailed { at_outer: it }));
            last = Some(res);
            break;
        }
        let vm: Vec<f64> = gens.iter().map(|g| mean_phase_mag(res.v[g.bus])).collect();
        let (err, limit_cycle) = pv_step(&gens, &x_th, &mut state, &vm, outer);
        pv_error = err;
        obs.phase("outer", total.total_us(), total.total_us());
        last = Some(res);
        if !err.is_finite() || err > cap_v {
            outcome = Some((
                SolveStatus::OuterDiverged { at_outer: it },
                OuterStatus::Diverged { at_outer: it },
            ));
            break;
        }
        if limit_cycle {
            outcome = Some((
                SolveStatus::OuterDiverged { at_outer: it },
                OuterStatus::LimitCycle { at_outer: it },
            ));
            break;
        }
        if err <= tol_v {
            let status = last.as_ref().expect("an inner solve just ran").status;
            outcome = Some((status, OuterStatus::Converged { outer_iterations: it }));
            break;
        }
        growth = if err > prev_mismatch { growth + 1 } else { 0 };
        if growth >= outer.patience {
            outcome = Some((
                SolveStatus::OuterDiverged { at_outer: it },
                OuterStatus::Diverged { at_outer: it },
            ));
            break;
        }
        prev_mismatch = err;
    }

    let (status, outer_status) =
        outcome.unwrap_or((SolveStatus::MaxIterations, OuterStatus::MaxOuterIterations));
    let mut res = last.expect("max_outer >= 1 guarantees at least one inner solve");
    res.timing = total;
    res.iterations = total_inner_iters;
    Ok(finish3(res, status, outer_status, outer_iters, &state, pv_error, rec))
}

fn finish3(
    inner: Solve3Result,
    status: SolveStatus,
    outer_status: OuterStatus,
    outer_iterations: u32,
    state: &MeshState,
    pv_error: f64,
    rec: Option<&Recorder>,
) -> Mesh3Result {
    if let Some(r) = rec {
        r.observe("solver.outer_iterations", f64::from(outer_iterations));
    }
    Mesh3Result {
        inner,
        status,
        outer_status,
        outer_iterations,
        pv_error,
        q_gen: state.q.clone(),
        gen_modes: state.modes.clone(),
        mode_flips: state.total_flips(),
    }
}

/// Mean phase-voltage magnitude (the three-phase PV control scalar).
fn mean_phase_mag(v: CVec3) -> f64 {
    (v.a.abs() + v.b.abs() + v.c.abs()) / 3.0
}

/// Branch impedance sum from `bus` up to the root (the PV sensitivity
/// path).
fn root_path_impedance(tree: &RadialNetwork, bus: usize) -> Complex {
    let mut z = Complex::ZERO;
    let mut b = bus;
    while let Some(br) = tree.parent_branch(b) {
        z += br.z;
        b = tree.parent(b).expect("a bus with a parent branch has a parent");
    }
    z
}

/// Bus ids (each identifying its parent branch) on the path from `bus`
/// up to — excluding — the root.
fn root_path(tree: &RadialNetwork, bus: usize) -> Vec<usize> {
    let mut path = Vec::new();
    let mut b = bus;
    while tree.parent_branch(b).is_some() {
        path.push(b);
        b = tree.parent(b).expect("a bus with a parent branch has a parent");
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::Backend;
    use numc::{approx_eq_eps, CMat3};
    use powergrid::ieee::ieee123_dg;
    use powergrid::{MeshedNetworkBuilder, PvBus};
    use simt::{Device, DeviceProps, FaultPlan, HostProps};

    fn serial_mesh() -> MeshSolver<SerialSolver> {
        MeshSolver::new(SerialSolver::new(HostProps::paper_rig()))
    }

    /// Root 0 — 1 — 2 ladder with a closed tie 2→0: one loop.
    fn ladder_loop(load2: Complex) -> MeshedNetwork {
        let mut b = MeshedNetworkBuilder::new(c(1000.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(Complex::ZERO);
        b.add_bus(load2);
        b.connect(0, 1, c(1.0, 0.5));
        b.connect(1, 2, c(1.0, 0.5));
        b.tie(2, 0, c(0.5, 0.25), true);
        b.build().unwrap()
    }

    #[test]
    fn thevenin_matrix_matches_hand_computed_single_loop() {
        let net = ladder_loop(c(10_000.0, 2_000.0));
        let p = MeshProblem::new(&net);
        assert_eq!(p.num_loops(), 1);
        // Loop impedance = tree path (z01 + z12) + tie impedance.
        let want = c(1.0, 0.5) + c(1.0, 0.5) + c(0.5, 0.25);
        assert!((p.thevenin()[0] - want).abs() < 1e-12, "{:?}", p.thevenin());
    }

    #[test]
    fn radial_network_is_passed_through_bitwise() {
        let mut b = MeshedNetworkBuilder::new(c(1000.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(5_000.0, 1_000.0));
        b.add_bus(c(2_000.0, 500.0));
        b.connect(0, 1, c(1.0, 0.5));
        b.connect(1, 2, c(1.0, 0.5));
        b.tie(2, 0, c(0.5, 0.25), false); // open tie: inert
        let net = b.build().unwrap();
        let cfg = SolverConfig::default();
        let res = serial_mesh().solve(&net, &cfg);
        assert_eq!(res.outer_status, OuterStatus::Radial);
        assert_eq!(res.outer_iterations, 0);
        let radial = SerialSolver::new(HostProps::paper_rig()).solve(net.tree(), &cfg);
        assert_eq!(res.inner.v, radial.v, "no loops and no gens must be the plain solve");
        assert_eq!(res.inner.iterations, radial.iterations);
    }

    #[test]
    fn closed_tie_supports_the_remote_bus_voltage() {
        let net = ladder_loop(c(10_000.0, 2_000.0));
        let cfg = SolverConfig::default();
        let res = serial_mesh().solve(&net, &cfg);
        assert!(res.converged(), "got {}", res.status);
        assert!(matches!(res.outer_status, OuterStatus::Converged { .. }));
        // KVL across the (virtually closed) tie must hold.
        let jt = res.loop_currents[0];
        let e = res.inner.v[2] - res.inner.v[0] - c(0.5, 0.25) * jt;
        assert!(e.abs() <= 2.0 * 1e-6 * 1000.0, "tie KVL violated: |E| = {}", e.abs());
        assert!(jt.abs() > 1.0, "the tie must actually carry current");
        // The second feed path raises the loaded bus's voltage.
        let radial = SerialSolver::new(HostProps::paper_rig()).solve(net.tree(), &cfg);
        assert!(res.inner.v[2].abs() > radial.v[2].abs() + 0.1);
    }

    #[test]
    fn pv_generator_with_wide_limits_holds_its_set_point() {
        let mut b = MeshedNetworkBuilder::new(c(1000.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(20_000.0, 8_000.0));
        b.add_bus(c(10_000.0, 3_000.0));
        b.connect(0, 1, c(1.0, 0.8));
        b.connect(1, 2, c(1.0, 0.8));
        b.generator(PvBus { bus: 2, p_gen: 5_000.0, v_set: 985.0, q_min: -1e6, q_max: 1e6 });
        let net = b.build().unwrap();
        let res = serial_mesh().solve(&net, &SolverConfig::default());
        assert!(res.converged(), "got {}", res.status);
        assert_eq!(res.gen_modes[0], GenMode::Pv);
        assert!(
            (res.inner.v[2].abs() - 985.0).abs() < 1e-2,
            "|V| = {} must sit at the set-point",
            res.inner.v[2].abs()
        );
        assert!(res.q_gen[0].abs() > 1.0, "holding the set-point takes real vars");
    }

    #[test]
    fn clamped_generator_behaves_as_pq_at_the_limit() {
        let mut b = MeshedNetworkBuilder::new(c(1000.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(20_000.0, 8_000.0));
        b.add_bus(c(10_000.0, 3_000.0));
        b.connect(0, 1, c(1.0, 0.8));
        b.connect(1, 2, c(1.0, 0.8));
        // The set-point needs far more vars than the limit allows.
        let q_max = 2_000.0;
        b.generator(PvBus { bus: 2, p_gen: 5_000.0, v_set: 995.0, q_min: -2_000.0, q_max });
        let net = b.build().unwrap();
        // Tight tolerances: once clamped the gen is *exactly* a PQ load,
        // so the only daylight between the two solves is solver tolerance.
        let mut cfg = SolverConfig::default();
        cfg.tol_rel = 1e-13;
        let res = serial_mesh()
            .with_outer(OuterConfig::default().with_tol(1e-12))
            .solve(&net, &cfg);
        assert!(res.converged(), "got {}", res.status);
        assert_eq!(res.gen_modes[0], GenMode::ClampedMax);
        assert_eq!(res.q_gen[0], q_max);
        assert!(res.inner.v[2].abs() < 995.0, "a clamped gen cannot reach the set-point");

        // Reference: the identical network with the generator replaced
        // by an explicit PQ load drawing (−p_gen, −q_max).
        let mut b = MeshedNetworkBuilder::new(c(1000.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(20_000.0, 8_000.0));
        b.add_bus(c(10_000.0, 3_000.0) - c(5_000.0, q_max));
        b.connect(0, 1, c(1.0, 0.8));
        b.connect(1, 2, c(1.0, 0.8));
        let pq_net = b.build().unwrap();
        let pq = SerialSolver::new(HostProps::paper_rig()).solve(pq_net.tree(), &cfg);
        for (a, b) in res.inner.v.iter().zip(&pq.v) {
            assert!((*a - *b).abs() < 1e-9 * 1000.0, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn exhausted_flip_budget_is_a_structural_limit_cycle() {
        let mut b = MeshedNetworkBuilder::new(c(1000.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(20_000.0, 8_000.0));
        b.connect(0, 1, c(1.0, 0.8));
        b.generator(PvBus { bus: 1, p_gen: 0.0, v_set: 995.0, q_min: -3_000.0, q_max: 3_000.0 });
        let net = b.build().unwrap();
        // A zero flip budget turns the first clamp into a limit cycle:
        // the structural-failure path, exit code 9.
        let outer = OuterConfig { max_mode_flips: 0, ..OuterConfig::default() };
        let res = serial_mesh().with_outer(outer).solve(&net, &SolverConfig::default());
        assert!(matches!(res.outer_status, OuterStatus::LimitCycle { .. }), "{}", res.outer_status);
        assert!(matches!(res.status, SolveStatus::OuterDiverged { .. }));
        assert_eq!(res.status.exit_code(), 9);
        assert!(res.status.is_failure());
    }

    #[test]
    fn all_backends_agree_on_ieee123_dg() {
        let net = ieee123_dg();
        let cfg = SolverConfig::default();
        let serial = serial_mesh().solve(&net, &cfg);
        assert!(serial.converged(), "serial: {}", serial.status);
        assert!(serial.outer_iterations >= 2, "loops + DG must engage the outer loop");
        assert!(serial.loop_currents.iter().any(|j| j.abs() > 0.01));

        let mut mc = MeshSolver::new(MulticoreSolver::new(HostProps::paper_rig(), 8));
        let m = mc.solve(&net, &cfg);
        assert!(m.converged(), "multicore: {}", m.status);

        let mut gpu = MeshSolver::new(GpuSolver::new(Device::new(DeviceProps::paper_rig())));
        let g = gpu.solve(&net, &cfg);
        assert!(g.converged(), "gpu: {}", g.status);

        let scale = net.tree().source_voltage().abs();
        for i in 0..net.tree().num_buses() {
            assert!(
                (serial.inner.v[i] - m.inner.v[i]).abs() <= 1e-9 * scale,
                "serial vs multicore at bus {i}"
            );
            assert!(
                (serial.inner.v[i] - g.inner.v[i]).abs() <= 1e-9 * scale,
                "serial vs gpu at bus {i}"
            );
        }
        for (a, b) in serial.q_gen.iter().zip(&m.q_gen) {
            assert!(approx_eq_eps(*a, *b, 1e-6, 1e-3), "{a} vs {b}");
        }
    }

    #[test]
    fn invalid_configs_are_reported_not_run() {
        let net = ladder_loop(c(1_000.0, 0.0));
        let mut cfg = SolverConfig::default();
        cfg.max_iter = 0;
        let res = serial_mesh().solve(&net, &cfg);
        assert_eq!(res.status, SolveStatus::InvalidConfig);
        let bad_outer = OuterConfig { tol_rel: f64::NAN, ..OuterConfig::default() };
        let res = serial_mesh().with_outer(bad_outer).solve(&net, &SolverConfig::default());
        assert_eq!(res.status, SolveStatus::InvalidConfig);
    }

    #[test]
    fn resilient_mesh_solve_composes_with_fault_recovery() {
        let net = ieee123_dg();
        let cfg = SolverConfig::default();
        let outer = OuterConfig::default();
        let reference = serial_mesh().solve(&net, &cfg);
        assert!(reference.converged());

        // Fault-free supervisor run matches the plain mesh solve.
        let mut clean =
            ResilientSolver::new(Backend::Gpu, DeviceProps::paper_rig(), HostProps::paper_rig());
        let res = solve_meshed_resilient(&mut clean, &net, &cfg, &outer).unwrap();
        assert!(res.converged(), "got {}", res.status);
        let scale = net.tree().source_voltage().abs();
        for (a, b) in res.inner.v.iter().zip(&reference.inner.v) {
            assert!((*a - *b).abs() <= 1e-6 * scale, "{a:?} vs {b:?}");
        }

        // Seeded faults: the answer must still match, with the recovery
        // visible in the accumulated fault report.
        let mut faulty =
            ResilientSolver::new(Backend::Gpu, DeviceProps::paper_rig(), HostProps::paper_rig())
                .with_fault_plan(FaultPlan::seeded(20260808, 0.01));
        let res = solve_meshed_resilient(&mut faulty, &net, &cfg, &outer).unwrap();
        assert!(res.converged(), "got {}", res.status);
        for (a, b) in res.inner.v.iter().zip(&reference.inner.v) {
            assert!((*a - *b).abs() <= 1e-6 * scale, "{a:?} vs {b:?}");
        }
        let fr = res.inner.fault_report.as_ref().expect("faulted run carries a report");
        assert!(fr.faults_injected > 0);
    }

    #[test]
    fn batched_dg_sweep_matches_serial_outer_loop_per_scenario() {
        let net = ieee123_dg();
        let cfg = SolverConfig::default();
        let outer = OuterConfig::default();
        let scales = [0.0, 0.5, 1.0, 1.5];
        let mut tbs = TensorBatchSolver::new(Device::paper_rig());
        let batch = solve_dg_batch(&mut tbs, &net, &scales, &cfg, &outer).unwrap();
        assert!(batch.converged(), "worst: {}", batch.worst_status());
        assert!(batch.scenarios_per_sec > 0.0);

        let scale_v = net.tree().source_voltage().abs();
        for (s, &dg) in scales.iter().enumerate() {
            // Serial reference: the same scenario as a standalone meshed
            // network with scaled generator output.
            let mut b = MeshedNetworkBuilder::new(net.tree().source_voltage());
            for bus in net.tree().buses() {
                b.add_bus(bus.load);
            }
            for br in net.tree().branches() {
                b.connect(br.from, br.to, br.z);
            }
            for bp in net.break_points() {
                b.tie(bp.a, bp.b, bp.z, true);
            }
            for t in net.ties() {
                if !t.closed {
                    b.tie(t.from, t.to, t.z, false);
                }
            }
            for g in net.generators() {
                b.generator(PvBus { p_gen: g.p_gen * dg, ..*g });
            }
            let scen = b.build().unwrap();
            let serial = serial_mesh().with_outer(outer).solve(&scen, &cfg);
            assert!(serial.converged(), "scenario {s}: {}", serial.status);
            for i in 0..scen.tree().num_buses() {
                assert!(
                    (batch.v[s][i] - serial.inner.v[i]).abs() <= 1e-5 * scale_v,
                    "scenario {s} bus {i}: {:?} vs {:?}",
                    batch.v[s][i],
                    serial.inner.v[i]
                );
            }
            for (a, b) in batch.q_gen[s].iter().zip(&serial.q_gen) {
                assert!(approx_eq_eps(*a, *b, 1e-3, 1.0), "scenario {s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn mesh_telemetry_lands_in_the_registry() {
        let rec = Recorder::new();
        let net = ieee123_dg();
        let mut solver = serial_mesh().with_recorder(rec.clone());
        let res = solver.solve(&net, &SolverConfig::default());
        assert!(res.converged());
        let (_, reg) = rec.snapshot();
        let hists: Vec<&str> = reg.histograms().map(|(n, _)| n).collect();
        assert!(hists.contains(&"solver.outer_iterations"), "{hists:?}");
    }

    /// Balanced 0 — 1 — 2 three-phase feeder, optionally with a
    /// generator at bus 2.
    fn feeder3(gen: Option<PvBus>) -> ThreePhaseNetwork {
        let mut b = ThreePhaseBuilder::new(CVec3::balanced(2400.0));
        let load = CVec3 {
            a: c(15_000.0, 4_000.0),
            b: c(15_000.0, 4_000.0),
            c: c(15_000.0, 4_000.0),
        };
        b.add_bus(CVec3::ZERO);
        b.add_bus(load);
        b.add_bus(load);
        b.connect(0, 1, CMat3::diag(c(1.2, 0.9)));
        b.connect(1, 2, CMat3::diag(c(1.0, 0.8)));
        if let Some(g) = gen {
            b.generator(g);
        }
        b.build().unwrap()
    }

    #[test]
    fn three_phase_without_generators_is_a_plain_solve() {
        let net = feeder3(None);
        let cfg = SolverConfig::default();
        let mut serial = Serial3Solver::new(HostProps::paper_rig());
        let plain = serial.solve(&net, &cfg);
        let r = solve3_dg(&mut serial, &net, &cfg, &OuterConfig::default(), None);
        assert_eq!(r.outer_status, OuterStatus::Radial);
        assert_eq!(r.outer_iterations, 0);
        assert!(r.converged());
        for (a, b) in r.inner.v.iter().zip(&plain.v) {
            assert_eq!(a, b, "generator-free 3φ solve must be a bitwise pass-through");
        }
    }

    #[test]
    fn three_phase_pv_generator_holds_mean_phase_magnitude() {
        let v_set = 2392.0;
        let gen = PvBus { bus: 2, p_gen: 10_000.0, v_set, q_min: -150_000.0, q_max: 150_000.0 };
        let net = feeder3(Some(gen));
        let cfg = SolverConfig::default();

        let mut serial = Serial3Solver::new(HostProps::paper_rig());
        let sagged = serial.solve(&net, &cfg);
        let vm0 = (sagged.v[2].a.abs() + sagged.v[2].b.abs() + sagged.v[2].c.abs()) / 3.0;
        assert!(vm0 < v_set - 1.0, "test wants a sagged feeder, got {vm0}");

        let r = solve3_dg(&mut serial, &net, &cfg, &OuterConfig::default(), None);
        assert!(r.converged(), "{:?}", r.outer_status);
        assert!(r.outer_iterations >= 2);
        let vm = (r.inner.v[2].a.abs() + r.inner.v[2].b.abs() + r.inner.v[2].c.abs()) / 3.0;
        assert!((vm - v_set).abs() < 1e-2, "mean |V| {vm} vs set-point {v_set}");
        assert_eq!(r.gen_modes[0], GenMode::Pv);
        assert!(r.q_gen[0] > 0.0, "supporting the voltage takes capacitive vars");

        // The GPU backend lands on the same operating point.
        let mut gpu = Gpu3Solver::new(Device::paper_rig());
        let g = solve3_dg(&mut gpu, &net, &cfg, &OuterConfig::default(), None);
        assert!(g.converged());
        for (a, b) in g.inner.v.iter().zip(&r.inner.v) {
            assert!((a.a - b.a).abs() < 1e-6 && (a.b - b.b).abs() < 1e-6 && (a.c - b.c).abs() < 1e-6);
        }
        assert!(approx_eq_eps(g.q_gen[0], r.q_gen[0], 1e-6, 1e-3));
    }

    #[test]
    fn three_phase_clamped_generator_rides_at_its_limit() {
        // Limits far too small to reach the set-point: the generator
        // must clamp at q_max and stay there.
        let gen = PvBus { bus: 2, p_gen: 5_000.0, v_set: 2395.0, q_min: -800.0, q_max: 800.0 };
        let net = feeder3(Some(gen));
        let cfg = SolverConfig::default();
        let mut serial = Serial3Solver::new(HostProps::paper_rig());
        let r = solve3_dg(&mut serial, &net, &cfg, &OuterConfig::default(), None);
        assert!(r.converged(), "{:?}", r.outer_status);
        assert_eq!(r.gen_modes[0], GenMode::ClampedMax);
        assert!((r.q_gen[0] - 800.0).abs() < 1e-12);
    }

    #[test]
    fn three_phase_resilient_solve_composes_with_fault_recovery() {
        let gen = PvBus { bus: 2, p_gen: 10_000.0, v_set: 2392.0, q_min: -150_000.0, q_max: 150_000.0 };
        let net = feeder3(Some(gen));
        let cfg = SolverConfig::default();
        let mut serial = Serial3Solver::new(HostProps::paper_rig());
        let want = solve3_dg(&mut serial, &net, &cfg, &OuterConfig::default(), None);

        let mut res = Resilient3Solver::new(DeviceProps::paper_rig(), HostProps::paper_rig())
            .with_fault_plan(FaultPlan::seeded(20260808, 0.01));
        let got = solve3_dg_resilient(&mut res, &net, &cfg, &OuterConfig::default()).unwrap();
        assert!(got.converged(), "{:?}", got.outer_status);
        for (a, b) in got.inner.v.iter().zip(&want.inner.v) {
            assert!((a.a - b.a).abs() < 1e-6 && (a.b - b.b).abs() < 1e-6 && (a.c - b.c).abs() < 1e-6);
        }
    }
}
