//! Structured convergence status and the shared loop-exit classifier.
//!
//! Every solver in this crate drives its host-side iteration loop off one
//! scalar: the ∞-norm of the voltage update. A bare `converged: bool`
//! cannot distinguish the four ways that loop can end — met the
//! tolerance, ran out of iterations, blew up, or produced NaN/±Inf — and
//! the last two used to masquerade as the first because `f64::max` and
//! `d > delta` comparisons both silently drop NaN. [`SolveStatus`] makes
//! the outcome explicit, and [`ConvergenceMonitor`] centralises the
//! classification so all six solvers agree on it iteration-for-iteration.

use std::fmt;

use crate::config::SolverConfig;

/// How a solve's iteration loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// The ∞-norm voltage update met the tolerance.
    Converged,
    /// Converged, but only after the resilient supervisor rolled back
    /// and replayed past injected device faults. The answer is as good
    /// as [`SolveStatus::Converged`]; the variant records that the run
    /// was not clean.
    Recovered {
        /// Device faults observed during the solve.
        faults: u32,
        /// Rollback/retry attempts the supervisor spent.
        retries: u32,
    },
    /// The iteration cap was reached with a finite, non-exploding
    /// residual (slow convergence or a bound oscillation).
    MaxIterations,
    /// The solve ran out of time budget before meeting the tolerance.
    /// The voltages are the (partial, finite) state at the abort point —
    /// usable for diagnostics, not for operating decisions.
    DeadlineExceeded {
        /// Iterations completed when the deadline tripped (≥ 0; a solve
        /// aborted before its first sweep reports 0).
        at_iteration: u32,
        /// Modeled time elapsed when the deadline tripped, µs (for a
        /// wall-clock watchdog abort, the wall time instead).
        elapsed_us: u64,
    },
    /// The configuration failed validation (e.g. `max_iter == 0` poked
    /// in through the public fields); the solve never started.
    InvalidConfig,
    /// The residual exceeded the divergence cap, or grew for
    /// `divergence_patience` consecutive iterations.
    Diverged {
        /// Iteration (1-based) at which divergence was declared.
        at_iteration: u32,
    },
    /// The residual went NaN or ±Inf — voltages collapsed through zero
    /// (`I = conj(S/V)` with `V → 0`) or overflowed.
    NumericalFailure {
        /// Iteration (1-based) at which the residual went non-finite.
        at_iteration: u32,
    },
    /// The weakly-meshed/DG *outer* loop (break-point compensation +
    /// PV-bus Q adjustment, [`crate::mesh`]) diverged or limit-cycled
    /// while the inner sweeps themselves were healthy. Distinct from
    /// [`SolveStatus::Diverged`] so operators can tell "the feeder
    /// physics blew up" from "the loop/DG coupling cannot settle";
    /// outer-loop *slowness* (cap reached with a shrinking mismatch) is
    /// reported as [`SolveStatus::MaxIterations`] instead.
    OuterDiverged {
        /// Outer iteration (1-based) at which the failure was declared.
        at_outer: u32,
    },
}

impl SolveStatus {
    /// `true` for [`SolveStatus::Converged`] and
    /// [`SolveStatus::Recovered`] — both met the tolerance.
    pub fn is_converged(self) -> bool {
        matches!(self, SolveStatus::Converged | SolveStatus::Recovered { .. })
    }

    /// `true` for the abnormal exits ([`SolveStatus::Diverged`],
    /// [`SolveStatus::NumericalFailure`] and
    /// [`SolveStatus::InvalidConfig`]); `MaxIterations` and
    /// `DeadlineExceeded` are slow, not broken.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            SolveStatus::Diverged { .. }
                | SolveStatus::OuterDiverged { .. }
                | SolveStatus::NumericalFailure { .. }
                | SolveStatus::InvalidConfig
        )
    }

    /// Severity rank for batch-wide summaries (higher is worse).
    fn severity(self) -> u8 {
        match self {
            SolveStatus::Converged => 0,
            SolveStatus::Recovered { .. } => 1,
            SolveStatus::MaxIterations => 2,
            SolveStatus::DeadlineExceeded { .. } => 3,
            SolveStatus::Diverged { .. } => 4,
            SolveStatus::OuterDiverged { .. } => 5,
            SolveStatus::NumericalFailure { .. } => 6,
            SolveStatus::InvalidConfig => 7,
        }
    }

    /// The worse of two statuses (batch reductions keep the most severe
    /// scenario outcome).
    pub fn worse(self, other: SolveStatus) -> SolveStatus {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }

    /// Process exit code for CLI front-ends: 0 converged, 2 iteration cap,
    /// 3 diverged, 4 numerical failure, 6 deadline exceeded, 7 invalid
    /// config, 8 data-integrity failure, 9 outer-loop divergence (1 is
    /// reserved for usage/IO errors, 5 for unrecoverable device loss).
    pub fn exit_code(self) -> u8 {
        match self {
            SolveStatus::Converged | SolveStatus::Recovered { .. } => 0,
            SolveStatus::MaxIterations => 2,
            SolveStatus::Diverged { .. } => 3,
            SolveStatus::NumericalFailure { .. } => 4,
            SolveStatus::DeadlineExceeded { .. } => 6,
            SolveStatus::InvalidConfig => 7,
            SolveStatus::OuterDiverged { .. } => 9,
        }
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStatus::Converged => write!(f, "converged"),
            SolveStatus::Recovered { faults, retries } => {
                write!(f, "recovered ({faults} faults, {retries} retries)")
            }
            SolveStatus::MaxIterations => write!(f, "max-iterations"),
            SolveStatus::DeadlineExceeded { at_iteration, elapsed_us } => {
                write!(f, "deadline-exceeded (iteration {at_iteration}, {elapsed_us} µs)")
            }
            SolveStatus::InvalidConfig => write!(f, "invalid-config"),
            SolveStatus::Diverged { at_iteration } => {
                write!(f, "diverged (iteration {at_iteration})")
            }
            SolveStatus::NumericalFailure { at_iteration } => {
                write!(f, "numerical-failure (iteration {at_iteration})")
            }
            SolveStatus::OuterDiverged { at_outer } => {
                write!(f, "outer-diverged (outer iteration {at_outer})")
            }
        }
    }
}

/// Per-iteration residual classifier shared by every solver.
///
/// Feed it each iteration's ∞-norm residual via [`observe`]; it answers
/// with `Some(status)` when the loop should stop. The checks, in order:
///
/// 1. non-finite residual → [`SolveStatus::NumericalFailure`],
/// 2. residual ≤ tolerance → [`SolveStatus::Converged`],
/// 3. residual > `divergence_cap · |V₀|` → [`SolveStatus::Diverged`],
/// 4. residual grew for `divergence_patience` consecutive iterations →
///    [`SolveStatus::Diverged`].
///
/// Healthy solves only ever trip check 2, so iteration counts are
/// byte-identical to the pre-monitor loops.
///
/// [`observe`]: ConvergenceMonitor::observe
#[derive(Clone, Debug)]
pub struct ConvergenceMonitor {
    tol: f64,
    cap: f64,
    patience: u32,
    prev: f64,
    growth_streak: u32,
}

impl ConvergenceMonitor {
    /// Creates a monitor for a solve with the given source-voltage
    /// magnitude (both the tolerance and the divergence cap scale with
    /// it).
    pub fn new(cfg: &SolverConfig, source_mag: f64) -> Self {
        ConvergenceMonitor {
            tol: cfg.tol_volts(source_mag),
            cap: cfg.divergence_cap_volts(source_mag),
            patience: cfg.divergence_patience,
            prev: f64::INFINITY,
            growth_streak: 0,
        }
    }

    /// Absolute voltage tolerance of this solve, volts.
    pub fn tol(&self) -> f64 {
        self.tol
    }

    /// Absolute divergence cap of this solve, volts.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Classifies iteration `iteration`'s residual. `Some(status)` means
    /// the loop must stop with that status; `None` means keep iterating.
    pub fn observe(&mut self, iteration: u32, residual: f64) -> Option<SolveStatus> {
        if !residual.is_finite() {
            return Some(SolveStatus::NumericalFailure { at_iteration: iteration });
        }
        if residual <= self.tol {
            return Some(SolveStatus::Converged);
        }
        if residual > self.cap {
            return Some(SolveStatus::Diverged { at_iteration: iteration });
        }
        if residual > self.prev {
            self.growth_streak += 1;
            if self.growth_streak >= self.patience {
                return Some(SolveStatus::Diverged { at_iteration: iteration });
            }
        } else {
            self.growth_streak = 0;
        }
        self.prev = residual;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SolverConfig {
        SolverConfig::new(1e-6, 100)
    }

    #[test]
    fn converged_when_residual_meets_tolerance() {
        let mut m = ConvergenceMonitor::new(&cfg(), 100.0);
        assert_eq!(m.observe(1, 1.0), None);
        assert_eq!(m.observe(2, 1e-5), Some(SolveStatus::Converged));
    }

    #[test]
    fn nan_and_inf_are_numerical_failures_not_convergence() {
        let mut m = ConvergenceMonitor::new(&cfg(), 100.0);
        assert_eq!(
            m.observe(3, f64::NAN),
            Some(SolveStatus::NumericalFailure { at_iteration: 3 })
        );
        let mut m = ConvergenceMonitor::new(&cfg(), 100.0);
        assert_eq!(
            m.observe(1, f64::INFINITY),
            Some(SolveStatus::NumericalFailure { at_iteration: 1 })
        );
    }

    #[test]
    fn residual_over_cap_diverges_immediately() {
        let mut m = ConvergenceMonitor::new(&cfg(), 100.0);
        // Default cap is 1e3·|V₀| = 1e5 V here.
        assert_eq!(m.observe(1, 2e5), Some(SolveStatus::Diverged { at_iteration: 1 }));
    }

    #[test]
    fn sustained_growth_diverges_after_patience() {
        let mut m = ConvergenceMonitor::new(&cfg(), 100.0);
        let patience = cfg().divergence_patience;
        let mut r = 1.0;
        let mut stopped = None;
        for k in 1..=patience + 1 {
            r *= 1.5; // grows every iteration, stays under the cap
            if let Some(s) = m.observe(k, r) {
                stopped = Some((k, s));
                break;
            }
        }
        let (k, s) = stopped.expect("sustained growth must be declared divergence");
        assert_eq!(s, SolveStatus::Diverged { at_iteration: k });
        // Iteration 1 establishes the baseline; growth is counted from
        // iteration 2 on, so the streak fills at `patience + 1`.
        assert_eq!(k, patience + 1, "patience counts consecutive growing iterations");
    }

    #[test]
    fn a_single_growth_blip_is_forgiven() {
        let mut m = ConvergenceMonitor::new(&cfg(), 100.0);
        assert_eq!(m.observe(1, 10.0), None);
        assert_eq!(m.observe(2, 12.0), None, "one uptick is not divergence");
        assert_eq!(m.observe(3, 8.0), None);
        for k in 0..cfg().divergence_patience {
            // Alternating decay never accumulates a streak.
            let r = 7.0 - 0.1 * k as f64;
            assert_eq!(m.observe(4 + k, r), None);
        }
    }

    #[test]
    fn healthy_geometric_decay_runs_to_convergence() {
        let mut m = ConvergenceMonitor::new(&cfg(), 7200.0);
        let mut r = 700.0;
        for k in 1..60 {
            r *= 0.5;
            match m.observe(k, r) {
                None => continue,
                Some(SolveStatus::Converged) => return,
                Some(other) => panic!("healthy decay misclassified as {other:?}"),
            }
        }
        panic!("decay must reach the tolerance");
    }

    #[test]
    fn severity_order_and_worse() {
        let dl = SolveStatus::DeadlineExceeded { at_iteration: 3, elapsed_us: 900 };
        let d = SolveStatus::Diverged { at_iteration: 2 };
        let n = SolveStatus::NumericalFailure { at_iteration: 5 };
        assert_eq!(SolveStatus::Converged.worse(SolveStatus::MaxIterations), SolveStatus::MaxIterations);
        assert_eq!(SolveStatus::MaxIterations.worse(dl), dl);
        assert_eq!(dl.worse(d), d);
        assert_eq!(d.worse(n), n);
        assert_eq!(n.worse(SolveStatus::InvalidConfig), SolveStatus::InvalidConfig);
        assert_eq!(n.worse(SolveStatus::Converged), n);
    }

    #[test]
    fn exit_codes_are_distinct_and_reserved() {
        let codes = [
            SolveStatus::Converged.exit_code(),
            SolveStatus::MaxIterations.exit_code(),
            SolveStatus::Diverged { at_iteration: 1 }.exit_code(),
            SolveStatus::NumericalFailure { at_iteration: 1 }.exit_code(),
            SolveStatus::DeadlineExceeded { at_iteration: 1, elapsed_us: 1 }.exit_code(),
            SolveStatus::InvalidConfig.exit_code(),
            SolveStatus::OuterDiverged { at_outer: 1 }.exit_code(),
        ];
        assert_eq!(codes[0], 0);
        for (i, &a) in codes.iter().enumerate() {
            assert_ne!(a, 1, "exit 1 is reserved for usage errors");
            assert_ne!(a, 5, "exit 5 is reserved for unrecoverable device loss");
            for &b in &codes[i + 1..] {
                assert_ne!(a, b, "exit codes must be distinct");
            }
        }
    }

    #[test]
    fn deadline_is_slow_not_broken() {
        let dl = SolveStatus::DeadlineExceeded { at_iteration: 4, elapsed_us: 1234 };
        assert!(!dl.is_converged());
        assert!(!dl.is_failure(), "a deadline miss is a scheduling event, not corruption");
        assert_eq!(dl.exit_code(), 6);
        assert_eq!(dl.to_string(), "deadline-exceeded (iteration 4, 1234 µs)");
    }

    #[test]
    fn outer_divergence_is_a_failure_ranked_between_diverged_and_numerical() {
        let od = SolveStatus::OuterDiverged { at_outer: 3 };
        let d = SolveStatus::Diverged { at_iteration: 2 };
        let n = SolveStatus::NumericalFailure { at_iteration: 5 };
        assert!(od.is_failure());
        assert!(!od.is_converged());
        assert_eq!(od.exit_code(), 9);
        assert_eq!(d.worse(od), od);
        assert_eq!(od.worse(n), n);
        assert_eq!(od.to_string(), "outer-diverged (outer iteration 3)");
    }

    #[test]
    fn invalid_config_is_a_failure() {
        assert!(SolveStatus::InvalidConfig.is_failure());
        assert!(!SolveStatus::InvalidConfig.is_converged());
        assert_eq!(SolveStatus::InvalidConfig.to_string(), "invalid-config");
    }

    #[test]
    fn recovered_counts_as_converged_but_ranks_worse() {
        let r = SolveStatus::Recovered { faults: 3, retries: 2 };
        assert!(r.is_converged());
        assert!(!r.is_failure());
        assert_eq!(r.exit_code(), 0, "a recovered answer is still a good answer");
        assert_eq!(SolveStatus::Converged.worse(r), r);
        assert_eq!(r.worse(SolveStatus::MaxIterations), SolveStatus::MaxIterations);
        assert_eq!(r.to_string(), "recovered (3 faults, 2 retries)");
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(SolveStatus::Converged.to_string(), "converged");
        assert_eq!(
            SolveStatus::NumericalFailure { at_iteration: 7 }.to_string(),
            "numerical-failure (iteration 7)"
        );
    }
}
