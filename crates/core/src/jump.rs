//! Depth-insensitive GPU solver — the "jump" formulation.
//!
//! The paper's topology discussion identifies deep trees as the
//! level-synchronous method's weakness: every level costs at least one
//! kernel launch, so a chain of depth 64K pays 64K launches per sweep.
//! This module removes the depth dependence entirely; it is the natural
//! "future work" extension of the paper's own primitives:
//!
//! * **Backward sweep, fused**: in *preorder* ([`powergrid::DfsOrder`])
//!   every subtree is contiguous, so all branch currents at once are
//!   `J_d = P[d + size_d] − P[d]` where `P` is one whole-array exclusive
//!   prefix scan of the injections — O(1) kernel launches per iteration
//!   instead of O(depth).
//! * **Forward sweep via pointer jumping** (tree doubling, Wyllie 1979):
//!   the voltage at a bus is `V₀ − Σ_path Z·J`; per-edge drops are
//!   combined along root paths in `⌈log₂ depth⌉` ping-pong rounds of
//!   `D'[d] = D[d] + D[ptr[d]]; ptr'[d] = ptr[ptr[d]]`.
//!
//! Kernel launches per iteration: ~10 + 2·⌈log₂ depth⌉, independent of
//! topology (the experiment `exp_e8_deep_trees` quantifies the win on
//! chains). The price is O(n log depth) total work in the forward sweep
//! versus the level method's O(n) — wide shallow trees still favour the
//! level-synchronous solver.
//!
//! Numerics: the fused backward computes subtree sums as prefix-sum
//! differences, so results can differ from the level method by
//! cancellation-level rounding (≪ solver tolerance); iterates therefore
//! converge to the same fixed point but may occasionally take one
//! iteration more or fewer.

use std::time::Instant;

use numc::Complex;
use powergrid::{DfsOrder, RadialNetwork, DFS_NO_PARENT};
use primitives::ops::{AddComplex, MaxAbsF64};
use primitives::{fill, launch_map, reduce, scan_exclusive};
use simt::Device;

use crate::config::SolverConfig;
use crate::report::{PhaseTimes, SolveResult, Timing};
use crate::status::{ConvergenceMonitor, SolveStatus};

/// Preorder solver arrays (the jump solver's analog of
/// [`crate::SolverArrays`]).
#[derive(Clone, Debug)]
pub struct JumpArrays {
    /// The preorder permutation and subtree metadata.
    pub dfs: DfsOrder,
    /// Source voltage.
    pub source: Complex,
    /// Loads in preorder.
    pub s: Vec<Complex>,
    /// Feeding-branch impedance in preorder (zero at root).
    pub z: Vec<Complex>,
    /// Parent preorder position (root points at itself so jumping is a
    /// no-op there).
    pub parent_or_self: Vec<u32>,
    /// Subtree sizes in preorder.
    pub subtree_size: Vec<u32>,
}

impl JumpArrays {
    /// Builds the preorder arrays for a network.
    pub fn new(net: &RadialNetwork) -> Self {
        let dfs = DfsOrder::new(net);
        let s = dfs.order.iter().map(|&b| net.buses()[b as usize].load).collect();
        let z = dfs
            .order
            .iter()
            .map(|&b| net.parent_branch(b as usize).map_or(Complex::ZERO, |br| br.z))
            .collect();
        let parent_or_self = dfs
            .parent_pos
            .iter()
            .enumerate()
            .map(|(d, &p)| if p == DFS_NO_PARENT { d as u32 } else { p })
            .collect();
        JumpArrays {
            source: net.source_voltage(),
            s,
            z,
            parent_or_self,
            subtree_size: dfs.subtree_size.clone(),
            dfs,
        }
    }

    /// Bus count.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Never empty after network validation.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }
}

/// The depth-insensitive GPU solver.
pub struct JumpSolver {
    device: Device,
}

impl JumpSolver {
    /// Creates a solver on the given device.
    pub fn new(device: Device) -> Self {
        JumpSolver { device }
    }

    /// The underlying device (timeline inspection).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Solves a network from scratch.
    pub fn solve(&mut self, net: &RadialNetwork, cfg: &SolverConfig) -> SolveResult {
        let arrays = JumpArrays::new(net);
        self.solve_arrays(&arrays, cfg)
    }

    /// Solves with pre-built preorder arrays.
    pub fn solve_arrays(&mut self, a: &JumpArrays, cfg: &SolverConfig) -> SolveResult {
        let wall0 = Instant::now();
        let dev = &mut self.device;
        let n = a.len();
        let v0 = a.source;
        let mut monitor = ConvergenceMonitor::new(cfg, v0.abs());
        let jump_rounds = ceil_log2(a.dfs.max_depth.max(1) as usize);

        let mut phases = PhaseTimes::default();
        let mut transfer_us = 0.0;
        let mut transfer_sweep_us = 0.0;

        // ---- Setup ----
        let mark = dev.timeline().mark();
        let s_buf = dev.alloc_from(&a.s);
        let z_buf = dev.alloc_from(&a.z);
        let parent_buf = dev.alloc_from(&a.parent_or_self);
        let size_buf = dev.alloc_from(&a.subtree_size);
        let mut v_buf = dev.alloc::<Complex>(n);
        fill(dev, &mut v_buf, v0);
        let mut i_buf = dev.alloc::<Complex>(n);
        let mut excl_buf = dev.alloc::<Complex>(n);
        let mut j_buf = dev.alloc::<Complex>(n);
        let mut delta_buf = dev.alloc::<f64>(n);
        fill(dev, &mut delta_buf, 0.0);
        // Ping-pong state for pointer jumping.
        let mut d_a = dev.alloc::<Complex>(n);
        let mut d_b = dev.alloc::<Complex>(n);
        let mut ptr_a = dev.alloc::<u32>(n);
        let mut ptr_b = dev.alloc::<u32>(n);
        let b = dev.timeline().breakdown_since(mark);
        phases.setup_us += b.total_us();
        transfer_us += b.htod_us + b.dtoh_us;

        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut residual_history = Vec::new();
        let mut status = SolveStatus::MaxIterations;

        while iterations < cfg.max_iter {
            iterations += 1;

            // ---- Injection ----
            let mark = dev.timeline().mark();
            {
                let s_v = s_buf.view();
                let v_v = v_buf.view();
                let i_v = i_buf.view_mut();
                launch_map(dev, n, "jump_inject", move |t, d| {
                    let s = t.ld(&s_v, d);
                    let out = if s == Complex::ZERO {
                        Complex::ZERO
                    } else {
                        let v = t.ld(&v_v, d);
                        t.flops(Complex::DIV_FLOPS + 1);
                        (s / v).conj()
                    };
                    t.st(&i_v, d, out);
                });
            }
            phases.injection_us += dev.timeline().breakdown_since(mark).total_us();

            // ---- Backward sweep, fused: one scan + one map ----
            let mark = dev.timeline().mark();
            scan_exclusive::<Complex, AddComplex>(dev, &i_buf, &mut excl_buf);
            {
                let e_v = excl_buf.view();
                let i_v = i_buf.view();
                let m_v = size_buf.view();
                let j_v = j_buf.view_mut();
                launch_map(dev, n, "jump_subtree_sum", move |t, d| {
                    let m = t.ld(&m_v, d) as usize;
                    let lo = t.ld(&e_v, d);
                    // P[d+m]: one past the array end means "grand total",
                    // reconstructed from the last exclusive entry + last
                    // injection (avoids an n+1-sized scan buffer).
                    let hi = if d + m < n {
                        t.ld(&e_v, d + m)
                    } else {
                        let last = n - 1;
                        t.flops(Complex::ADD_FLOPS);
                        t.ld(&e_v, last) + t.ld(&i_v, last)
                    };
                    t.flops(Complex::ADD_FLOPS);
                    t.st(&j_v, d, hi - lo);
                });
            }
            phases.backward_us += dev.timeline().breakdown_since(mark).total_us();

            // ---- Forward sweep: per-edge drops, then pointer jumping ----
            let mark = dev.timeline().mark();
            {
                let z_v = z_buf.view();
                let j_v = j_buf.view();
                let p_v = parent_buf.view();
                let d_v = d_a.view_mut();
                let ptr_v = ptr_a.view_mut();
                launch_map(dev, n, "jump_edge_drop", move |t, d| {
                    let z = t.ld(&z_v, d);
                    let jb = t.ld(&j_v, d);
                    t.flops(Complex::MUL_FLOPS);
                    t.st(&d_v, d, z * jb);
                    let p = t.ld(&p_v, d);
                    t.st(&ptr_v, d, p);
                });
            }
            let (mut cur_d, mut cur_ptr, mut nxt_d, mut nxt_ptr) =
                (&mut d_a, &mut ptr_a, &mut d_b, &mut ptr_b);
            for _ in 0..jump_rounds {
                {
                    let d_in = cur_d.view();
                    let ptr_in = cur_ptr.view();
                    let d_out = nxt_d.view_mut();
                    let ptr_out = nxt_ptr.view_mut();
                    launch_map(dev, n, "jump_round", move |t, d| {
                        let p = t.ld(&ptr_in, d) as usize;
                        let mine = t.ld(&d_in, d);
                        let theirs = t.ld(&d_in, p);
                        t.flops(Complex::ADD_FLOPS);
                        t.st(&d_out, d, mine + theirs);
                        let pp = t.ld(&ptr_in, p);
                        t.st(&ptr_out, d, pp);
                    });
                }
                std::mem::swap(&mut cur_d, &mut nxt_d);
                std::mem::swap(&mut cur_ptr, &mut nxt_ptr);
            }
            {
                let d_v = cur_d.view();
                let v_v = v_buf.view_mut();
                let delta_v = delta_buf.view_mut();
                launch_map(dev, n, "jump_voltage", move |t, d| {
                    let old = t.ld_mut(&v_v, d);
                    let drop_ = t.ld(&d_v, d);
                    let new_v = v0 - drop_;
                    t.flops(Complex::ADD_FLOPS + 4);
                    t.st(&v_v, d, new_v);
                    t.st(&delta_v, d, (new_v - old).abs());
                });
            }
            phases.forward_us += dev.timeline().breakdown_since(mark).total_us();

            // ---- Convergence ----
            let mark = dev.timeline().mark();
            let delta = reduce::<f64, MaxAbsF64>(dev, &delta_buf);
            let b = dev.timeline().breakdown_since(mark);
            phases.convergence_us += b.total_us();
            transfer_us += b.htod_us + b.dtoh_us;
            transfer_sweep_us += b.htod_us + b.dtoh_us;

            residual = delta;
            residual_history.push(delta);
            if let Some(s) = monitor.observe(iterations, delta) {
                status = s;
                break;
            }
        }

        // ---- Teardown ----
        let mark = dev.timeline().mark();
        let v_pos = dev.dtoh(&v_buf);
        let j_pos = dev.dtoh(&j_buf);
        let b = dev.timeline().breakdown_since(mark);
        phases.teardown_us += b.total_us();
        transfer_us += b.htod_us + b.dtoh_us;

        let timing = Timing {
            phases,
            transfer_us,
            transfer_sweep_us,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        };
        SolveResult {
            v: a.dfs.unpermute(&v_pos),
            j: a.dfs.unpermute(&j_pos),
            iterations,
            status,
            residual,
            residual_history,
            timing,
        }
    }
}

fn ceil_log2(x: usize) -> u32 {
    debug_assert!(x >= 1);
    usize::BITS - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSolver;
    use numc::c;
    use powergrid::gen::{balanced_binary, chain, star, GenSpec};
    use powergrid::ieee::{ieee13, ieee37};
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::{DeviceProps, HostProps};

    fn jump() -> JumpSolver {
        JumpSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
    }

    fn assert_voltages_match(net: &RadialNetwork, a: &SolveResult, b: &SolveResult) {
        let scale = net.source_voltage().abs();
        for bus in 0..net.num_buses() {
            assert!(
                (a.v[bus] - b.v[bus]).abs() < 1e-5 * scale,
                "bus {bus}: {:?} vs {:?}",
                a.v[bus],
                b.v[bus]
            );
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 16), 16);
        assert_eq!(ceil_log2((1 << 16) + 1), 17);
    }

    #[test]
    fn matches_serial_on_ieee_feeders() {
        let cfg = SolverConfig::default();
        for net in [ieee13(), ieee37()] {
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let res = jump().solve(&net, &cfg);
            assert!(res.converged());
            assert_voltages_match(&net, &serial, &res);
            crate::validate::assert_physical(&net, &res, 1e-4);
        }
    }

    #[test]
    fn matches_serial_on_generated_topologies() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(81);
        for net in [
            balanced_binary(2047, &spec, &mut rng),
            chain(1500, &spec, &mut rng),
            star(1000, &spec, &mut rng),
        ] {
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let res = jump().solve(&net, &cfg);
            assert!(res.converged());
            assert_voltages_match(&net, &serial, &res);
        }
    }

    #[test]
    fn launch_count_is_depth_insensitive() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(82);
        // A 4096-bus chain: the level solver would need ~4096 launches
        // per sweep; the jump solver needs 2·log₂(4096) = 24 per forward.
        let net = chain(4096, &spec, &mut rng);
        let mut solver = jump();
        let res = solver.solve(&net, &cfg);
        assert!(res.converged());
        let launches = solver.device().timeline().breakdown().kernels;
        let per_iter = launches as f64 / res.iterations as f64;
        assert!(
            per_iter < 60.0,
            "jump solver must stay O(log depth) launches/iter, got {per_iter}"
        );
    }

    #[test]
    fn beats_level_solver_on_deep_trees_in_modeled_time() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(83);
        let net = chain(8192, &spec, &mut rng);
        let level = crate::GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
            .solve(&net, &cfg);
        let jumped = jump().solve(&net, &cfg);
        assert!(level.converged() && jumped.converged());
        assert!(
            jumped.timing.total_us() * 20.0 < level.timing.total_us(),
            "jump {} µs vs level {} µs",
            jumped.timing.total_us(),
            level.timing.total_us()
        );
    }

    #[test]
    fn single_bus_trivially_converges() {
        let mut b = powergrid::NetworkBuilder::new(c(240.0, 0.0));
        b.add_bus(Complex::ZERO);
        let net = b.build().unwrap();
        let res = jump().solve(&net, &SolverConfig::default());
        assert!(res.converged());
        assert_eq!(res.v[0], c(240.0, 0.0));
    }

    #[test]
    fn jump_arrays_shapes() {
        let net = ieee13();
        let a = JumpArrays::new(&net);
        assert_eq!(a.len(), 13);
        assert!(!a.is_empty());
        assert_eq!(a.parent_or_self[0], 0, "root self-loops");
        assert_eq!(a.subtree_size[0], 13);
        assert_eq!(a.z[0], Complex::ZERO);
    }
}
