//! Depth-insensitive GPU solver — the "jump" formulation.
//!
//! The paper's topology discussion identifies deep trees as the
//! level-synchronous method's weakness: every level costs at least one
//! kernel launch, so a chain of depth 64K pays 64K launches per sweep.
//! This module removes the depth dependence entirely; it is the natural
//! "future work" extension of the paper's own primitives:
//!
//! * **Backward sweep, fused**: in *preorder* ([`powergrid::DfsOrder`])
//!   every subtree is contiguous, so all branch currents at once are
//!   `J_d = P[d + size_d] − P[d]` where `P` is one whole-array exclusive
//!   prefix scan of the injections — O(1) kernel launches per iteration
//!   instead of O(depth).
//! * **Forward sweep via pointer jumping** (tree doubling, Wyllie 1979):
//!   the voltage at a bus is `V₀ − Σ_path Z·J`; per-edge drops are
//!   combined along root paths in `⌈log₂ depth⌉` ping-pong rounds of
//!   `D'[d] = D[d] + D[ptr[d]]; ptr'[d] = ptr[ptr[d]]`.
//!
//! Kernel launches per iteration: ~10 + 2·⌈log₂ depth⌉, independent of
//! topology (the experiment `exp_e8_deep_trees` quantifies the win on
//! chains). The price is O(n log depth) total work in the forward sweep
//! versus the level method's O(n) — wide shallow trees still favour the
//! level-synchronous solver.
//!
//! Numerics: the fused backward computes subtree sums as prefix-sum
//! differences, so results can differ from the level method by
//! cancellation-level rounding (≪ solver tolerance); iterates therefore
//! converge to the same fixed point but may occasionally take one
//! iteration more or fewer.

use std::time::Instant;

use numc::Complex;
use powergrid::{DfsOrder, RadialNetwork, DFS_NO_PARENT};
use primitives::ops::{AddComplex, MaxAbsF64, ScanOp};
use primitives::{try_fill, try_launch_map, try_reduce, try_scan_exclusive};
use simt::{Device, DeviceBuffer, DeviceError};
use telemetry::Recorder;

use crate::config::SolverConfig;
use crate::obs::Obs;
use crate::recovery::SweepSession;
use crate::report::{PhaseTimes, SolveResult, Timing};
use crate::status::{ConvergenceMonitor, SolveStatus};

/// Preorder solver arrays (the jump solver's analog of
/// [`crate::SolverArrays`]).
#[derive(Clone, Debug)]
pub struct JumpArrays {
    /// The preorder permutation and subtree metadata.
    pub dfs: DfsOrder,
    /// Source voltage.
    pub source: Complex,
    /// Loads in preorder.
    pub s: Vec<Complex>,
    /// Feeding-branch impedance in preorder (zero at root).
    pub z: Vec<Complex>,
    /// Parent preorder position (root points at itself so jumping is a
    /// no-op there).
    pub parent_or_self: Vec<u32>,
    /// Subtree sizes in preorder.
    pub subtree_size: Vec<u32>,
}

impl JumpArrays {
    /// Builds the preorder arrays for a network.
    pub fn new(net: &RadialNetwork) -> Self {
        let dfs = DfsOrder::new(net);
        let s = dfs.order.iter().map(|&b| net.buses()[b as usize].load).collect();
        let z = dfs
            .order
            .iter()
            .map(|&b| net.parent_branch(b as usize).map_or(Complex::ZERO, |br| br.z))
            .collect();
        let parent_or_self = dfs
            .parent_pos
            .iter()
            .enumerate()
            .map(|(d, &p)| if p == DFS_NO_PARENT { d as u32 } else { p })
            .collect();
        JumpArrays {
            source: net.source_voltage(),
            s,
            z,
            parent_or_self,
            subtree_size: dfs.subtree_size.clone(),
            dfs,
        }
    }

    /// Bus count.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Never empty after network validation.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }
}

/// The depth-insensitive GPU solver.
pub struct JumpSolver {
    device: Device,
    recorder: Option<Recorder>,
}

impl JumpSolver {
    /// Creates a solver on the given device.
    pub fn new(device: Device) -> Self {
        JumpSolver { device, recorder: None }
    }

    /// Attaches a telemetry recorder: per-iteration/per-phase spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// The underlying device (timeline inspection).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Solves a network from scratch.
    pub fn solve(&mut self, net: &RadialNetwork, cfg: &SolverConfig) -> SolveResult {
        let arrays = JumpArrays::new(net);
        self.solve_arrays(&arrays, cfg)
    }

    /// Solves with pre-built preorder arrays.
    pub fn solve_arrays(&mut self, a: &JumpArrays, cfg: &SolverConfig) -> SolveResult {
        self.try_solve_arrays(a, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`JumpSolver::solve`]: surfaces injected faults and
    /// device loss as [`DeviceError`] instead of panicking.
    pub fn try_solve(
        &mut self,
        net: &RadialNetwork,
        cfg: &SolverConfig,
    ) -> Result<SolveResult, DeviceError> {
        let arrays = JumpArrays::new(net);
        self.try_solve_arrays(&arrays, cfg)
    }

    /// Fallible [`JumpSolver::solve_arrays`].
    pub fn try_solve_arrays(
        &mut self,
        a: &JumpArrays,
        cfg: &SolverConfig,
    ) -> Result<SolveResult, DeviceError> {
        let wall0 = Instant::now();
        if cfg.validate().is_err() {
            return Ok(crate::report::invalid_config_result(a.len(), a.source));
        }
        let mut monitor = ConvergenceMonitor::new(cfg, a.source.abs());
        let obs = Obs::new(self.recorder.as_ref(), "solver.jump");
        let mut sess = JumpSession::with_obs(&mut self.device, a, obs.clone())?;

        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut residual_history = Vec::new();
        let mut status = SolveStatus::MaxIterations;

        while iterations < cfg.max_iter {
            iterations += 1;
            let iter_t0 = sess.elapsed_modeled_us();
            let delta = sess.iterate()?;
            obs.iteration(iterations, iter_t0, sess.elapsed_modeled_us(), delta);
            residual = delta;
            residual_history.push(delta);
            if let Some(s) = monitor.observe(iterations, delta) {
                status = s;
                break;
            }
            if let Some(budget) = cfg.deadline_us {
                let elapsed = sess.elapsed_modeled_us();
                if elapsed >= budget {
                    status = SolveStatus::DeadlineExceeded {
                        at_iteration: iterations,
                        elapsed_us: elapsed as u64,
                    };
                    break;
                }
            }
        }

        let (v_pos, j_pos) = sess.download()?;
        let timing = sess.timing(wall0);
        Ok(SolveResult {
            v: a.dfs.unpermute(&v_pos),
            j: a.dfs.unpermute(&j_pos),
            iterations,
            status,
            residual,
            residual_history,
            timing,
            fault_report: None,
        })
    }
}

/// One jump-formulation solve in progress (the [`crate::gpu::GpuSession`]
/// counterpart for preorder arrays); same session split, same purpose:
/// the recovery supervisor steps it an iteration at a time.
pub(crate) struct JumpSession<'a> {
    dev: &'a mut Device,
    a: &'a JumpArrays,
    jump_rounds: u32,
    s_buf: DeviceBuffer<Complex>,
    z_buf: DeviceBuffer<Complex>,
    parent_buf: DeviceBuffer<u32>,
    size_buf: DeviceBuffer<u32>,
    v_buf: DeviceBuffer<Complex>,
    i_buf: DeviceBuffer<Complex>,
    excl_buf: DeviceBuffer<Complex>,
    j_buf: DeviceBuffer<Complex>,
    delta_buf: DeviceBuffer<f64>,
    d_a: DeviceBuffer<Complex>,
    d_b: DeviceBuffer<Complex>,
    ptr_a: DeviceBuffer<u32>,
    ptr_b: DeviceBuffer<u32>,
    phases: PhaseTimes,
    transfer_us: f64,
    transfer_sweep_us: f64,
    recovery_us: f64,
    obs: Obs,
}

impl<'a> JumpSession<'a> {
    /// Uploads topology and state (charged to the setup phase). Phase
    /// spans are recorded through `obs` on the session's modeled clock;
    /// pass `Obs::default()` for an uninstrumented session.
    pub(crate) fn with_obs(
        dev: &'a mut Device,
        a: &'a JumpArrays,
        obs: Obs,
    ) -> Result<Self, DeviceError> {
        let n = a.len();
        let v0 = a.source;
        let jump_rounds = ceil_log2(a.dfs.max_depth.max(1) as usize);
        let mut phases = PhaseTimes::default();

        let mark = dev.timeline().mark();
        let s_buf = dev.try_alloc_from(&a.s)?;
        let z_buf = dev.try_alloc_from(&a.z)?;
        let parent_buf = dev.try_alloc_from(&a.parent_or_self)?;
        let size_buf = dev.try_alloc_from(&a.subtree_size)?;
        let mut v_buf = dev.try_alloc::<Complex>(n)?;
        try_fill(dev, &mut v_buf, v0)?;
        let i_buf = dev.try_alloc::<Complex>(n)?;
        let excl_buf = dev.try_alloc::<Complex>(n)?;
        let j_buf = dev.try_alloc::<Complex>(n)?;
        let mut delta_buf = dev.try_alloc::<f64>(n)?;
        try_fill(dev, &mut delta_buf, 0.0)?;
        // Ping-pong state for pointer jumping.
        let d_a = dev.try_alloc::<Complex>(n)?;
        let d_b = dev.try_alloc::<Complex>(n)?;
        let ptr_a = dev.try_alloc::<u32>(n)?;
        let ptr_b = dev.try_alloc::<u32>(n)?;
        let b = dev.timeline().breakdown_since(mark);
        phases.setup_us += b.total_us();
        let transfer_us = b.htod_us + b.dtoh_us;
        obs.phase("setup", 0.0, phases.setup_us);

        Ok(JumpSession {
            dev,
            a,
            jump_rounds,
            s_buf,
            z_buf,
            parent_buf,
            size_buf,
            v_buf,
            i_buf,
            excl_buf,
            j_buf,
            delta_buf,
            d_a,
            d_b,
            ptr_a,
            ptr_b,
            phases,
            transfer_us,
            transfer_sweep_us: 0.0,
            recovery_us: 0.0,
            obs,
        })
    }

    /// Timing summary as of now.
    pub(crate) fn timing(&self, wall0: Instant) -> Timing {
        Timing {
            phases: self.phases,
            transfer_us: self.transfer_us,
            transfer_sweep_us: self.transfer_sweep_us,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        }
    }

    /// Modeled µs spent on checkpoint/restore/verify traffic.
    #[allow(dead_code)]
    pub(crate) fn recovery_us(&self) -> f64 {
        self.recovery_us
    }
}

impl SweepSession for JumpSession<'_> {
    fn elapsed_modeled_us(&self) -> f64 {
        self.phases.total_us() + self.recovery_us
    }

    fn iterate(&mut self) -> Result<f64, DeviceError> {
        let dev = &mut *self.dev;
        let a = self.a;
        let n = a.len();
        let v0 = a.source;

        // ---- Injection ----
        let mark = dev.timeline().mark();
        {
            let s_v = self.s_buf.view();
            let v_v = self.v_buf.view();
            let i_v = self.i_buf.view_mut();
            try_launch_map(dev, n, "jump_inject", move |t, d| {
                let s = t.ld(&s_v, d);
                let out = if s == Complex::ZERO {
                    Complex::ZERO
                } else {
                    let v = t.ld(&v_v, d);
                    t.flops(Complex::DIV_FLOPS + 1);
                    (s / v).conj()
                };
                t.st(&i_v, d, out);
            })?;
        }
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.injection_us += dev.timeline().breakdown_since(mark).total_us();
        self.obs.phase("injection", t0, self.phases.total_us() + self.recovery_us);

        // ---- Backward sweep, fused: one scan + one map ----
        let mark = dev.timeline().mark();
        try_scan_exclusive::<Complex, AddComplex>(dev, &self.i_buf, &mut self.excl_buf)?;
        {
            let e_v = self.excl_buf.view();
            let i_v = self.i_buf.view();
            let m_v = self.size_buf.view();
            let j_v = self.j_buf.view_mut();
            try_launch_map(dev, n, "jump_subtree_sum", move |t, d| {
                let m = t.ld(&m_v, d) as usize;
                let lo = t.ld(&e_v, d);
                // P[d+m]: one past the array end means "grand total",
                // reconstructed from the last exclusive entry + last
                // injection (avoids an n+1-sized scan buffer).
                let hi = if d + m < n {
                    t.ld(&e_v, d + m)
                } else {
                    let last = n - 1;
                    t.flops(Complex::ADD_FLOPS);
                    t.ld(&e_v, last) + t.ld(&i_v, last)
                };
                t.flops(Complex::ADD_FLOPS);
                t.st(&j_v, d, hi - lo);
            })?;
        }
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.backward_us += dev.timeline().breakdown_since(mark).total_us();
        self.obs.phase("backward", t0, self.phases.total_us() + self.recovery_us);

        // ---- Forward sweep: per-edge drops, then pointer jumping ----
        let mark = dev.timeline().mark();
        {
            let z_v = self.z_buf.view();
            let j_v = self.j_buf.view();
            let p_v = self.parent_buf.view();
            let d_v = self.d_a.view_mut();
            let ptr_v = self.ptr_a.view_mut();
            try_launch_map(dev, n, "jump_edge_drop", move |t, d| {
                let z = t.ld(&z_v, d);
                let jb = t.ld(&j_v, d);
                t.flops(Complex::MUL_FLOPS);
                t.st(&d_v, d, z * jb);
                let p = t.ld(&p_v, d);
                t.st(&ptr_v, d, p);
            })?;
        }
        let (mut cur_d, mut cur_ptr, mut nxt_d, mut nxt_ptr) =
            (&mut self.d_a, &mut self.ptr_a, &mut self.d_b, &mut self.ptr_b);
        for _ in 0..self.jump_rounds {
            {
                let d_in = cur_d.view();
                let ptr_in = cur_ptr.view();
                let d_out = nxt_d.view_mut();
                let ptr_out = nxt_ptr.view_mut();
                try_launch_map(dev, n, "jump_round", move |t, d| {
                    let p = t.ld(&ptr_in, d) as usize;
                    let mine = t.ld(&d_in, d);
                    let theirs = t.ld(&d_in, p);
                    t.flops(Complex::ADD_FLOPS);
                    t.st(&d_out, d, mine + theirs);
                    let pp = t.ld(&ptr_in, p);
                    t.st(&ptr_out, d, pp);
                })?;
            }
            std::mem::swap(&mut cur_d, &mut nxt_d);
            std::mem::swap(&mut cur_ptr, &mut nxt_ptr);
        }
        {
            let d_v = cur_d.view();
            let v_v = self.v_buf.view_mut();
            let delta_v = self.delta_buf.view_mut();
            try_launch_map(dev, n, "jump_voltage", move |t, d| {
                let old = t.ld_mut(&v_v, d);
                let drop_ = t.ld(&d_v, d);
                let new_v = v0 - drop_;
                t.flops(Complex::ADD_FLOPS + 4);
                t.st(&v_v, d, new_v);
                t.st(&delta_v, d, (new_v - old).abs());
            })?;
        }
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.forward_us += dev.timeline().breakdown_since(mark).total_us();
        self.obs.phase("forward", t0, self.phases.total_us() + self.recovery_us);

        // ---- Convergence ----
        let mark = dev.timeline().mark();
        let delta = try_reduce::<f64, MaxAbsF64>(dev, &self.delta_buf)?;
        let b = dev.timeline().breakdown_since(mark);
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.convergence_us += b.total_us();
        self.obs.phase("convergence", t0, self.phases.total_us() + self.recovery_us);
        self.transfer_us += b.htod_us + b.dtoh_us;
        self.transfer_sweep_us += b.htod_us + b.dtoh_us;
        Ok(delta)
    }

    fn snapshot(&mut self) -> Result<Vec<Complex>, DeviceError> {
        let mark = self.dev.timeline().mark();
        let v = self.dev.try_dtoh(&self.v_buf)?;
        self.recovery_us += self.dev.timeline().breakdown_since(mark).total_us();
        Ok(v)
    }

    fn restore(&mut self, v_pos: &[Complex]) -> Result<(), DeviceError> {
        let dev = &mut *self.dev;
        let a = self.a;
        let mark = dev.timeline().mark();
        dev.try_htod(&mut self.s_buf, &a.s)?;
        dev.try_htod(&mut self.z_buf, &a.z)?;
        dev.try_htod(&mut self.parent_buf, &a.parent_or_self)?;
        dev.try_htod(&mut self.size_buf, &a.subtree_size)?;
        dev.try_htod(&mut self.v_buf, v_pos)?;
        try_fill(dev, &mut self.delta_buf, 0.0)?;
        self.recovery_us += dev.timeline().breakdown_since(mark).total_us();
        Ok(())
    }

    fn verify_static(&mut self) -> Result<bool, DeviceError> {
        let dev = &mut *self.dev;
        let a = self.a;
        let mark = dev.timeline().mark();
        let ok = dev.try_dtoh(&self.s_buf)? == a.s
            && dev.try_dtoh(&self.z_buf)? == a.z
            && dev.try_dtoh(&self.parent_buf)? == a.parent_or_self
            && dev.try_dtoh(&self.size_buf)? == a.subtree_size;
        self.recovery_us += dev.timeline().breakdown_since(mark).total_us();
        Ok(ok)
    }

    fn download(&mut self) -> Result<(Vec<Complex>, Vec<Complex>), DeviceError> {
        let dev = &mut *self.dev;
        let mark = dev.timeline().mark();
        let v_pos = dev.try_dtoh(&self.v_buf)?;
        let j_pos = dev.try_dtoh(&self.j_buf)?;
        let b = dev.timeline().breakdown_since(mark);
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.teardown_us += b.total_us();
        self.obs.phase("teardown", t0, self.phases.total_us() + self.recovery_us);
        self.transfer_us += b.htod_us + b.dtoh_us;
        Ok((v_pos, j_pos))
    }

    fn host_iterate(&self, v_pos: &[Complex]) -> (f64, Vec<Complex>) {
        let a = self.a;
        let n = a.len();
        let i: Vec<Complex> = (0..n)
            .map(|d| {
                if a.s[d] == Complex::ZERO {
                    Complex::ZERO
                } else {
                    (a.s[d] / v_pos[d]).conj()
                }
            })
            .collect();
        // Preorder puts parents before children, so a reverse pass
        // pushes each subtree total onto its parent.
        let mut j = i;
        for d in (1..n).rev() {
            let parent = a.parent_or_self[d] as usize;
            let jd = j[d];
            j[parent] += jd;
        }
        let mut v_new = v_pos.to_vec();
        v_new[0] = a.source;
        // The device rebuilds every voltage from the source constant, so
        // a corrupted root read-back never perturbs the children — check
        // the root directly (exactly zero in clean runs).
        let mut res = MaxAbsF64::combine(0.0, (a.source - v_pos[0]).abs());
        for d in 1..n {
            let parent = a.parent_or_self[d] as usize;
            let nv = v_new[parent] - a.z[d] * j[d];
            res = MaxAbsF64::combine(res, (nv - v_pos[d]).abs());
            v_new[d] = nv;
        }
        (res, j)
    }

    fn source_mag(&self) -> f64 {
        self.a.source.abs()
    }

    fn faults_observed(&self) -> u32 {
        self.dev.fault_log().len() as u32
    }
}

fn ceil_log2(x: usize) -> u32 {
    debug_assert!(x >= 1);
    usize::BITS - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSolver;
    use numc::c;
    use powergrid::gen::{balanced_binary, chain, star, GenSpec};
    use powergrid::ieee::{ieee13, ieee37};
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::{DeviceProps, HostProps};

    fn jump() -> JumpSolver {
        JumpSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
    }

    fn assert_voltages_match(net: &RadialNetwork, a: &SolveResult, b: &SolveResult) {
        let scale = net.source_voltage().abs();
        for bus in 0..net.num_buses() {
            assert!(
                (a.v[bus] - b.v[bus]).abs() < 1e-5 * scale,
                "bus {bus}: {:?} vs {:?}",
                a.v[bus],
                b.v[bus]
            );
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 16), 16);
        assert_eq!(ceil_log2((1 << 16) + 1), 17);
    }

    #[test]
    fn matches_serial_on_ieee_feeders() {
        let cfg = SolverConfig::default();
        for net in [ieee13(), ieee37()] {
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let res = jump().solve(&net, &cfg);
            assert!(res.converged());
            assert_voltages_match(&net, &serial, &res);
            crate::validate::assert_physical(&net, &res, 1e-4);
        }
    }

    #[test]
    fn matches_serial_on_generated_topologies() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(81);
        for net in [
            balanced_binary(2047, &spec, &mut rng),
            chain(1500, &spec, &mut rng),
            star(1000, &spec, &mut rng),
        ] {
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let res = jump().solve(&net, &cfg);
            assert!(res.converged());
            assert_voltages_match(&net, &serial, &res);
        }
    }

    #[test]
    fn launch_count_is_depth_insensitive() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(82);
        // A 4096-bus chain: the level solver would need ~4096 launches
        // per sweep; the jump solver needs 2·log₂(4096) = 24 per forward.
        let net = chain(4096, &spec, &mut rng);
        let mut solver = jump();
        let res = solver.solve(&net, &cfg);
        assert!(res.converged());
        let launches = solver.device().timeline().breakdown().kernels;
        let per_iter = launches as f64 / res.iterations as f64;
        assert!(
            per_iter < 60.0,
            "jump solver must stay O(log depth) launches/iter, got {per_iter}"
        );
    }

    #[test]
    fn beats_level_solver_on_deep_trees_in_modeled_time() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(83);
        let net = chain(8192, &spec, &mut rng);
        let level = crate::GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
            .solve(&net, &cfg);
        let jumped = jump().solve(&net, &cfg);
        assert!(level.converged() && jumped.converged());
        assert!(
            jumped.timing.total_us() * 20.0 < level.timing.total_us(),
            "jump {} µs vs level {} µs",
            jumped.timing.total_us(),
            level.timing.total_us()
        );
    }

    #[test]
    fn single_bus_trivially_converges() {
        let mut b = powergrid::NetworkBuilder::new(c(240.0, 0.0));
        b.add_bus(Complex::ZERO);
        let net = b.build().unwrap();
        let res = jump().solve(&net, &SolverConfig::default());
        assert!(res.converged());
        assert_eq!(res.v[0], c(240.0, 0.0));
    }

    #[test]
    fn jump_arrays_shapes() {
        let net = ieee13();
        let a = JumpArrays::new(&net);
        assert_eq!(a.len(), 13);
        assert!(!a.is_empty());
        assert_eq!(a.parent_or_self[0], 0, "root self-loops");
        assert_eq!(a.subtree_size[0], 13);
        assert_eq!(a.z[0], Complex::ZERO);
    }
}
