//! The GPU forward-backward sweep solver — the paper's contribution.
//!
//! Level-synchronous formulation on the [`simt`] device:
//!
//! * **Setup** (once): upload loads, impedances and the integer topology
//!   arrays; initialise voltages to the flat start with a fill kernel.
//! * Per iteration:
//!   1. `fbs_inject` — one map over all buses: `I = conj(S/V)`.
//!   2. **Backward sweep**, deepest level → root. For each level, the
//!      children of its buses form head-flag segments of the next level,
//!      so their branch-current sum is a *segmented scan* over that level
//!      followed by a gather of each segment's tail
//!      ([`BackwardStrategy::SegScan`], the paper's pattern), or a direct
//!      per-parent loop ([`BackwardStrategy::Direct`], the ablation).
//!      `fbs_backward_combine` then adds the bus's own injection.
//!   3. **Forward sweep**, root → leaves: one `fbs_forward` map per
//!      level, `V_p = V_parent − Z_p·J_p`, recording `|ΔV_p|`.
//!   4. **Convergence** — ∞-norm *reduction* over the deltas with a
//!      single scalar read-back, the host-side loop control the paper
//!      describes.
//! * **Teardown**: download voltages and branch currents.
//!
//! Every kernel launch, transfer and the per-iteration scalar read-back
//! go through the device timing model; phase attribution uses timeline
//! marks, so the experiment harness can reproduce the paper's breakdown
//! and "GPU-only" numbers exactly.

use std::time::Instant;

use numc::Complex;
use powergrid::RadialNetwork;
use primitives::ops::{AddComplex, MaxAbsF64, ScanOp};
use primitives::{try_fill, try_launch_map, try_reduce, try_segscan_inclusive_range};
use simt::{Device, DeviceBuffer, DeviceError};
use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::obs::Obs;
use crate::recovery::SweepSession;
use crate::report::{PhaseTimes, SolveResult, Timing};
use crate::status::{ConvergenceMonitor, SolveStatus};

/// How the backward sweep aggregates child branch currents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackwardStrategy {
    /// Segmented scan over each child level + gather of segment tails —
    /// the parallel pattern the paper names. Work-efficient regardless of
    /// fan-out skew.
    #[default]
    SegScan,
    /// One thread per parent loops over its children. Fewer launches, but
    /// serialises on high-fan-out buses and its loads never coalesce —
    /// the E7 ablation baseline.
    Direct,
    /// One full-array `J = I` init, then one scatter kernel per level in
    /// which every child `atomicAdd`s its branch current into its
    /// parent's slot — the fewest launches of the per-level strategies,
    /// but same-address atomics serialise on high-fan-out buses (the
    /// atomic unit's conflict chain in the timing model).
    AtomicScatter,
}

/// The GPU (simulated SIMT) forward-backward sweep solver.
pub struct GpuSolver {
    device: Device,
    strategy: BackwardStrategy,
    recorder: Option<Recorder>,
}

impl GpuSolver {
    /// Creates a solver on the given device with the paper's
    /// segmented-scan backward sweep.
    pub fn new(device: Device) -> Self {
        GpuSolver { device, strategy: BackwardStrategy::SegScan, recorder: None }
    }

    /// Creates a solver with an explicit backward-sweep strategy.
    pub fn with_strategy(device: Device, strategy: BackwardStrategy) -> Self {
        GpuSolver { device, strategy, recorder: None }
    }

    /// Attaches a telemetry recorder: per-iteration/per-phase spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// The underlying device (timeline inspection).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The backward-sweep strategy in use.
    pub fn strategy(&self) -> BackwardStrategy {
        self.strategy
    }

    /// Solves a network from scratch.
    pub fn solve(&mut self, net: &RadialNetwork, cfg: &SolverConfig) -> SolveResult {
        let arrays = SolverArrays::new(net);
        self.solve_arrays(&arrays, cfg)
    }

    /// Solves with pre-built level-order arrays.
    pub fn solve_arrays(&mut self, a: &SolverArrays, cfg: &SolverConfig) -> SolveResult {
        self.solve_warm(a, cfg, None)
    }

    /// Solves starting from a previous solution (`v_init` indexed by bus
    /// id) instead of the flat start; the initial state is uploaded
    /// (charged to setup) rather than filled on-device.
    pub fn solve_warm(
        &mut self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> SolveResult {
        self.try_solve_warm(a, cfg, v_init).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`GpuSolver::solve`]: surfaces injected faults and device
    /// loss as [`DeviceError`] instead of panicking.
    pub fn try_solve(
        &mut self,
        net: &RadialNetwork,
        cfg: &SolverConfig,
    ) -> Result<SolveResult, DeviceError> {
        let arrays = SolverArrays::new(net);
        self.try_solve_arrays(&arrays, cfg)
    }

    /// Fallible [`GpuSolver::solve_arrays`].
    pub fn try_solve_arrays(
        &mut self,
        a: &SolverArrays,
        cfg: &SolverConfig,
    ) -> Result<SolveResult, DeviceError> {
        self.try_solve_warm(a, cfg, None)
    }

    /// Fallible [`GpuSolver::solve_warm`].
    pub fn try_solve_warm(
        &mut self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> Result<SolveResult, DeviceError> {
        let wall0 = Instant::now();
        if cfg.validate().is_err() {
            return Ok(crate::report::invalid_config_result(a.len(), a.source));
        }
        let mut monitor = ConvergenceMonitor::new(cfg, a.source.abs());
        let obs = Obs::new(self.recorder.as_ref(), "solver.gpu");
        let mut sess =
            GpuSession::with_obs(&mut self.device, a, self.strategy, v_init, obs.clone())?;

        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut residual_history = Vec::new();
        let mut status = SolveStatus::MaxIterations;

        while iterations < cfg.max_iter {
            iterations += 1;
            let iter_t0 = sess.elapsed_modeled_us();
            let delta = sess.iterate()?;
            obs.iteration(iterations, iter_t0, sess.elapsed_modeled_us(), delta);
            residual = delta;
            residual_history.push(delta);
            if let Some(s) = monitor.observe(iterations, delta) {
                status = s;
                break;
            }
            if let Some(budget) = cfg.deadline_us {
                let elapsed = sess.elapsed_modeled_us();
                if elapsed >= budget {
                    status = SolveStatus::DeadlineExceeded {
                        at_iteration: iterations,
                        elapsed_us: elapsed as u64,
                    };
                    break;
                }
            }
        }

        let (v_pos, j_pos) = sess.download()?;
        let timing = sess.timing(wall0);
        Ok(SolveResult {
            v: a.levels.unpermute(&v_pos),
            j: a.levels.unpermute(&j_pos),
            iterations,
            status,
            residual,
            residual_history,
            timing,
            fault_report: None,
        })
    }
}

/// One level-synchronous solve in progress: device state plus phase
/// accounting, stepped one iteration at a time.
///
/// Splitting the solve into a session is what lets the recovery
/// supervisor ([`crate::recovery::ResilientSolver`]) interleave
/// checkpoints, integrity checks and rollbacks between iterations
/// without duplicating the sweep kernels.
pub(crate) struct GpuSession<'a> {
    dev: &'a mut Device,
    a: &'a SolverArrays,
    strategy: BackwardStrategy,
    s_buf: DeviceBuffer<Complex>,
    z_buf: DeviceBuffer<Complex>,
    parent_buf: DeviceBuffer<u32>,
    child_lo_buf: DeviceBuffer<u32>,
    child_hi_buf: DeviceBuffer<u32>,
    flags_buf: DeviceBuffer<u32>,
    seg_last_buf: DeviceBuffer<u32>,
    v_buf: DeviceBuffer<Complex>,
    i_buf: DeviceBuffer<Complex>,
    j_buf: DeviceBuffer<Complex>,
    delta_buf: DeviceBuffer<f64>,
    scan_buf: DeviceBuffer<Complex>,
    phases: PhaseTimes,
    transfer_us: f64,
    transfer_sweep_us: f64,
    recovery_us: f64,
    obs: Obs,
}

impl<'a> GpuSession<'a> {
    /// Uploads topology and state (charged to the setup phase). Phase
    /// spans are recorded through `obs` on the session's modeled clock;
    /// pass `Obs::default()` for an uninstrumented session.
    pub(crate) fn with_obs(
        dev: &'a mut Device,
        a: &'a SolverArrays,
        strategy: BackwardStrategy,
        v_init: Option<&[Complex]>,
        obs: Obs,
    ) -> Result<Self, DeviceError> {
        let n = a.len();
        let v0 = a.source;
        let mut phases = PhaseTimes::default();

        let mark = dev.timeline().mark();
        let s_buf = dev.try_alloc_from(&a.s)?;
        let z_buf = dev.try_alloc_from(&a.z)?;
        let parent_buf = dev.try_alloc_from(&a.parent_pos)?;
        let child_lo_buf = dev.try_alloc_from(&a.child_lo)?;
        let child_hi_buf = dev.try_alloc_from(&a.child_hi)?;
        let flags_buf = dev.try_alloc_from(&a.head_flags)?;
        let seg_last_buf = dev.try_alloc_from(&a.seg_last)?;
        let mut v_buf = dev.try_alloc::<Complex>(n)?;
        match v_init {
            Some(init) => {
                assert_eq!(init.len(), n, "warm start needs one voltage per bus");
                let by_pos = a.levels.permute(init);
                dev.try_htod_checked(&mut v_buf, &by_pos)?;
            }
            None => try_fill(dev, &mut v_buf, v0)?,
        }
        let i_buf = dev.try_alloc::<Complex>(n)?;
        let j_buf = dev.try_alloc::<Complex>(n)?;
        let mut delta_buf = dev.try_alloc::<f64>(n)?;
        try_fill(dev, &mut delta_buf, 0.0)?;
        let scan_buf = dev.try_alloc::<Complex>(n)?;
        let b = dev.timeline().breakdown_since(mark);
        phases.setup_us += b.total_us();
        let transfer_us = b.htod_us + b.dtoh_us;
        obs.phase("setup", 0.0, phases.setup_us);

        Ok(GpuSession {
            dev,
            a,
            strategy,
            s_buf,
            z_buf,
            parent_buf,
            child_lo_buf,
            child_hi_buf,
            flags_buf,
            seg_last_buf,
            v_buf,
            i_buf,
            j_buf,
            delta_buf,
            scan_buf,
            phases,
            transfer_us,
            transfer_sweep_us: 0.0,
            recovery_us: 0.0,
            obs,
        })
    }

    /// Timing summary as of now (the caller supplies the wall-clock
    /// origin of the whole solve).
    pub(crate) fn timing(&self, wall0: Instant) -> Timing {
        Timing {
            phases: self.phases,
            transfer_us: self.transfer_us,
            transfer_sweep_us: self.transfer_sweep_us,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        }
    }

    /// Modeled µs spent on checkpoint/restore/verify traffic.
    pub(crate) fn recovery_us(&self) -> f64 {
        self.recovery_us
    }
}

impl SweepSession for GpuSession<'_> {
    fn elapsed_modeled_us(&self) -> f64 {
        self.phases.total_us() + self.recovery_us
    }

    fn iterate(&mut self) -> Result<f64, DeviceError> {
        let dev = &mut *self.dev;
        let a = self.a;
        let n = a.len();
        let num_levels = a.num_levels();

        // ---- Injection ----
        let mark = dev.timeline().mark();
        {
            let s_v = self.s_buf.view();
            let v_v = self.v_buf.view();
            let i_v = self.i_buf.view_mut();
            try_launch_map(dev, n, "fbs_inject", move |t, p| {
                let s = t.ld(&s_v, p);
                let out = if s == Complex::ZERO {
                    Complex::ZERO
                } else {
                    let v = t.ld(&v_v, p);
                    t.flops(Complex::DIV_FLOPS + 1);
                    (s / v).conj()
                };
                t.st(&i_v, p, out);
            })?;
        }
        let b = dev.timeline().breakdown_since(mark);
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.injection_us += b.total_us();
        self.obs.phase("injection", t0, self.phases.total_us() + self.recovery_us);

        // ---- Backward sweep: deepest level → root ----
        let mark = dev.timeline().mark();
        if self.strategy == BackwardStrategy::AtomicScatter {
            // Init J = I everywhere, then one child→parent atomic
            // scatter per level: children of a level-(l−1) bus all
            // live at level l, so after the level-l scatter every
            // level-(l−1) branch current is final.
            {
                let i_v = self.i_buf.view();
                let j_v = self.j_buf.view_mut();
                try_launch_map(dev, n, "fbs_backward_init", move |t, p| {
                    let v = t.ld(&i_v, p);
                    t.st(&j_v, p, v);
                })?;
            }
            for l in (1..num_levels).rev() {
                let range = a.levels.level_range(l);
                let (lo, len) = (range.start, range.len());
                let par_v = self.parent_buf.view();
                let j_v = self.j_buf.view_mut();
                try_launch_map(dev, len, "fbs_backward_scatter", move |t, k| {
                    let c = lo + k;
                    let parent = t.ld(&par_v, c) as usize;
                    let jc = t.ld_mut(&j_v, c);
                    t.flops(Complex::ADD_FLOPS);
                    t.atomic_add(&j_v, parent, jc);
                })?;
            }
        }
        for l in (0..num_levels).rev() {
            if self.strategy == BackwardStrategy::AtomicScatter {
                break;
            }
            let range = a.levels.level_range(l);
            let (lo, len) = (range.start, range.len());
            let has_child_level = l + 1 < num_levels;

            if self.strategy == BackwardStrategy::SegScan && has_child_level {
                let crange = a.levels.level_range(l + 1);
                try_segscan_inclusive_range::<Complex, AddComplex>(
                    dev,
                    &self.j_buf,
                    &self.flags_buf,
                    crange.start,
                    crange.end,
                    &mut self.scan_buf,
                )?;
            }

            match self.strategy {
                BackwardStrategy::SegScan => {
                    let i_v = self.i_buf.view();
                    let lo_v = self.child_lo_buf.view();
                    let hi_v = self.child_hi_buf.view();
                    let last_v = self.seg_last_buf.view();
                    let scan_v = self.scan_buf.view();
                    let j_v = self.j_buf.view_mut();
                    try_launch_map(dev, len, "fbs_backward_combine", move |t, k| {
                        let p = lo + k;
                        let mut acc = t.ld(&i_v, p);
                        if t.ld(&lo_v, p) < t.ld(&hi_v, p) {
                            let tail = t.ld(&last_v, p) as usize;
                            t.flops(Complex::ADD_FLOPS);
                            acc += t.ld(&scan_v, tail);
                        }
                        t.st(&j_v, p, acc);
                    })?;
                }
                BackwardStrategy::Direct => {
                    let i_v = self.i_buf.view();
                    let lo_v = self.child_lo_buf.view();
                    let hi_v = self.child_hi_buf.view();
                    let j_v = self.j_buf.view_mut();
                    try_launch_map(dev, len, "fbs_backward_direct", move |t, k| {
                        let p = lo + k;
                        let mut acc = t.ld(&i_v, p);
                        let c_lo = t.ld(&lo_v, p) as usize;
                        let c_hi = t.ld(&hi_v, p) as usize;
                        for c in c_lo..c_hi {
                            t.flops(Complex::ADD_FLOPS);
                            acc += t.ld_mut(&j_v, c);
                        }
                        t.st(&j_v, p, acc);
                    })?;
                }
                BackwardStrategy::AtomicScatter => unreachable!("handled above"),
            }
        }
        let b = dev.timeline().breakdown_since(mark);
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.backward_us += b.total_us();
        self.obs.phase("backward", t0, self.phases.total_us() + self.recovery_us);

        // ---- Forward sweep: root → leaves ----
        let mark = dev.timeline().mark();
        for l in 1..num_levels {
            let range = a.levels.level_range(l);
            let (lo, len) = (range.start, range.len());
            let z_v = self.z_buf.view();
            let par_v = self.parent_buf.view();
            let j_v = self.j_buf.view();
            let d_v = self.delta_buf.view_mut();
            let v_v = self.v_buf.view_mut();
            try_launch_map(dev, len, "fbs_forward", move |t, k| {
                let p = lo + k;
                let parent = t.ld(&par_v, p) as usize;
                let vp = t.ld_mut(&v_v, parent);
                let z = t.ld(&z_v, p);
                let jb = t.ld(&j_v, p);
                let old = t.ld_mut(&v_v, p);
                let new_v = vp - z * jb;
                t.flops(Complex::MUL_FLOPS + Complex::ADD_FLOPS + 4);
                t.st(&v_v, p, new_v);
                t.st(&d_v, p, (new_v - old).abs());
            })?;
        }
        let b = dev.timeline().breakdown_since(mark);
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.forward_us += b.total_us();
        self.obs.phase("forward", t0, self.phases.total_us() + self.recovery_us);

        // ---- Convergence: ∞-norm reduction + scalar read-back ----
        let mark = dev.timeline().mark();
        let delta = try_reduce::<f64, MaxAbsF64>(dev, &self.delta_buf)?;
        let b = dev.timeline().breakdown_since(mark);
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.convergence_us += b.total_us();
        self.obs.phase("convergence", t0, self.phases.total_us() + self.recovery_us);
        self.transfer_us += b.htod_us + b.dtoh_us;
        self.transfer_sweep_us += b.htod_us + b.dtoh_us;
        Ok(delta)
    }

    fn snapshot(&mut self) -> Result<Vec<Complex>, DeviceError> {
        let mark = self.dev.timeline().mark();
        // A checkpoint read must be certified clean: a silently corrupted
        // snapshot would poison every later rollback.
        let v = self.dev.try_dtoh_checked(&self.v_buf)?;
        self.recovery_us += self.dev.timeline().breakdown_since(mark).total_us();
        Ok(v)
    }

    fn restore(&mut self, v_pos: &[Complex]) -> Result<(), DeviceError> {
        let dev = &mut *self.dev;
        let a = self.a;
        let mark = dev.timeline().mark();
        // Statics are re-uploaded wholesale: a bit flip in a topology or
        // impedance buffer is permanent, so a voltage-only rollback would
        // replay the fault instead of erasing it.
        dev.try_htod_checked(&mut self.s_buf, &a.s)?;
        dev.try_htod_checked(&mut self.z_buf, &a.z)?;
        dev.try_htod_checked(&mut self.parent_buf, &a.parent_pos)?;
        dev.try_htod_checked(&mut self.child_lo_buf, &a.child_lo)?;
        dev.try_htod_checked(&mut self.child_hi_buf, &a.child_hi)?;
        dev.try_htod_checked(&mut self.flags_buf, &a.head_flags)?;
        dev.try_htod_checked(&mut self.seg_last_buf, &a.seg_last)?;
        dev.try_htod_checked(&mut self.v_buf, v_pos)?;
        try_fill(dev, &mut self.delta_buf, 0.0)?;
        self.recovery_us += dev.timeline().breakdown_since(mark).total_us();
        Ok(())
    }

    fn verify_static(&mut self) -> Result<bool, DeviceError> {
        let dev = &mut *self.dev;
        let a = self.a;
        let mark = dev.timeline().mark();
        let ok = dev.try_dtoh(&self.s_buf)? == a.s
            && dev.try_dtoh(&self.z_buf)? == a.z
            && dev.try_dtoh(&self.parent_buf)? == a.parent_pos
            && dev.try_dtoh(&self.child_lo_buf)? == a.child_lo
            && dev.try_dtoh(&self.child_hi_buf)? == a.child_hi
            && dev.try_dtoh(&self.flags_buf)? == a.head_flags
            && dev.try_dtoh(&self.seg_last_buf)? == a.seg_last;
        self.recovery_us += dev.timeline().breakdown_since(mark).total_us();
        Ok(ok)
    }

    fn download(&mut self) -> Result<(Vec<Complex>, Vec<Complex>), DeviceError> {
        let dev = &mut *self.dev;
        let mark = dev.timeline().mark();
        let v_pos = dev.try_dtoh_checked(&self.v_buf)?;
        let j_pos = dev.try_dtoh_checked(&self.j_buf)?;
        let b = dev.timeline().breakdown_since(mark);
        let t0 = self.phases.total_us() + self.recovery_us;
        self.phases.teardown_us += b.total_us();
        self.obs.phase("teardown", t0, self.phases.total_us() + self.recovery_us);
        self.transfer_us += b.htod_us + b.dtoh_us;
        Ok((v_pos, j_pos))
    }

    fn host_iterate(&self, v_pos: &[Complex]) -> (f64, Vec<Complex>) {
        let a = self.a;
        let n = a.len();
        let i: Vec<Complex> = (0..n)
            .map(|p| {
                if a.s[p] == Complex::ZERO {
                    Complex::ZERO
                } else {
                    (a.s[p] / v_pos[p]).conj()
                }
            })
            .collect();
        // Children sit at higher positions than their parent in level
        // order, so one reverse pass accumulates every subtree.
        let mut j = vec![Complex::ZERO; n];
        for p in (0..n).rev() {
            let mut acc = i[p];
            for jc in &j[a.child_lo[p] as usize..a.child_hi[p] as usize] {
                acc += *jc;
            }
            j[p] = acc;
        }
        let mut v_new = v_pos.to_vec();
        let mut res = 0.0;
        for p in 1..n {
            let parent = a.parent_pos[p] as usize;
            let nv = v_new[parent] - a.z[p] * j[p];
            res = MaxAbsF64::combine(res, (nv - v_pos[p]).abs());
            v_new[p] = nv;
        }
        (res, j)
    }

    fn source_mag(&self) -> f64 {
        self.a.source.abs()
    }

    fn faults_observed(&self) -> u32 {
        self.dev.fault_log().len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSolver;
    use numc::c;
    use powergrid::gen::{balanced_binary, chain, star, GenSpec};
    use powergrid::ieee::{ieee123_style, ieee13, ieee37};
    use powergrid::NetworkBuilder;
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::{DeviceProps, HostProps};

    fn gpu() -> GpuSolver {
        GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
    }

    fn assert_results_match(a: &SolveResult, b: &SolveResult, scale: f64) {
        assert_eq!(a.v.len(), b.v.len());
        for (x, y) in a.v.iter().zip(&b.v) {
            assert!((*x - *y).abs() <= 1e-9 * scale, "V mismatch: {x:?} vs {y:?}");
        }
        for (x, y) in a.j.iter().zip(&b.j) {
            assert!((*x - *y).abs() <= 1e-6 * scale, "J mismatch: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_serial_on_two_bus() {
        let mut b = NetworkBuilder::new(c(100.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(100.0, 0.0));
        b.connect(0, 1, c(1.0, 0.0));
        let net = b.build().unwrap();
        let cfg = SolverConfig::default();
        let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let parallel = gpu().solve(&net, &cfg);
        assert!(parallel.converged());
        assert_eq!(parallel.iterations, serial.iterations);
        assert_results_match(&serial, &parallel, 100.0);
    }

    #[test]
    fn matches_serial_on_ieee_feeders() {
        let cfg = SolverConfig::default();
        for net in [ieee13(), ieee37(), ieee123_style()] {
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let parallel = gpu().solve(&net, &cfg);
            assert!(parallel.converged(), "GPU solve must converge");
            assert_eq!(parallel.iterations, serial.iterations, "identical iterates");
            assert_results_match(&serial, &parallel, 2500.0);
        }
    }

    #[test]
    fn matches_serial_on_generated_topologies() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(11);
        for net in [
            balanced_binary(1000, &spec, &mut rng),
            chain(300, &spec, &mut rng),
            star(500, &spec, &mut rng),
        ] {
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let parallel = gpu().solve(&net, &cfg);
            assert!(parallel.converged());
            assert_results_match(&serial, &parallel, 7200.0);
        }
    }

    #[test]
    fn direct_strategy_matches_segscan() {
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(3);
        let net = balanced_binary(2047, &spec, &mut rng);
        let cfg = SolverConfig::default();
        let a = GpuSolver::with_strategy(
            Device::with_workers(DeviceProps::paper_rig(), 2),
            BackwardStrategy::SegScan,
        )
        .solve(&net, &cfg);
        let b = GpuSolver::with_strategy(
            Device::with_workers(DeviceProps::paper_rig(), 2),
            BackwardStrategy::Direct,
        )
        .solve(&net, &cfg);
        assert!(a.converged() && b.converged());
        assert_results_match(&a, &b, 7200.0);
    }

    #[test]
    fn timing_phases_are_populated_and_transfers_attributed() {
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(5);
        let net = balanced_binary(511, &spec, &mut rng);
        let res = gpu().solve(&net, &SolverConfig::default());
        let p = &res.timing.phases;
        assert!(p.setup_us > 0.0, "upload charged");
        assert!(p.injection_us > 0.0);
        assert!(p.backward_us > 0.0);
        assert!(p.forward_us > 0.0);
        assert!(p.convergence_us > 0.0);
        assert!(p.teardown_us > 0.0, "download charged");
        assert!(res.timing.transfer_us > 0.0);
        assert!(res.timing.transfer_us < res.timing.total_us());
        // compute-only excludes transfers.
        assert!(res.timing.compute_only_us() < res.timing.total_us());
    }

    #[test]
    fn single_bus_network_converges_trivially() {
        let mut b = NetworkBuilder::new(c(240.0, 0.0));
        b.add_bus(Complex::ZERO);
        let net = b.build().unwrap();
        let res = gpu().solve(&net, &SolverConfig::default());
        assert!(res.converged());
        assert_eq!(res.iterations, 1);
        assert_eq!(res.v[0], c(240.0, 0.0));
    }

    #[test]
    fn deeper_trees_launch_more_kernels() {
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(9);
        let shallow = star(256, &spec, &mut rng);
        let deep = chain(256, &spec, &mut rng);
        let mut g1 = gpu();
        let _ = g1.solve(&shallow, &SolverConfig::default());
        let k_shallow = g1.device().timeline().breakdown().kernels;
        let mut g2 = gpu();
        let _ = g2.solve(&deep, &SolverConfig::default());
        let k_deep = g2.device().timeline().breakdown().kernels;
        assert!(
            k_deep > 10 * k_shallow,
            "chain must launch far more kernels ({k_deep} vs {k_shallow})"
        );
    }
}

#[cfg(test)]
mod atomic_tests {
    use super::*;
    use crate::serial::SerialSolver;
    use powergrid::gen::{balanced_binary, balanced_kary, star, GenSpec};
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::{DeviceProps, HostProps};

    fn atomic_gpu() -> GpuSolver {
        GpuSolver::with_strategy(
            Device::with_workers(DeviceProps::paper_rig(), 2),
            BackwardStrategy::AtomicScatter,
        )
    }

    #[test]
    fn atomic_scatter_matches_serial() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(91);
        for net in [
            balanced_binary(2047, &spec, &mut rng),
            balanced_kary(1000, 8, &spec, &mut rng),
            star(500, &spec, &mut rng),
        ] {
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let res = atomic_gpu().solve(&net, &cfg);
            assert!(res.converged());
            let scale = net.source_voltage().abs();
            for bus in 0..net.num_buses() {
                assert!(
                    (serial.v[bus] - res.v[bus]).abs() < 1e-8 * scale,
                    "bus {bus}: {:?} vs {:?}",
                    serial.v[bus],
                    res.v[bus]
                );
            }
            crate::validate::assert_physical(&net, &res, 1e-4);
        }
    }

    #[test]
    fn atomic_scatter_launches_fewer_backward_kernels_than_segscan() {
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(92);
        let net = balanced_binary(8191, &spec, &mut rng);
        let cfg = SolverConfig::default();

        let mut seg = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
        let _ = seg.solve(&net, &cfg);
        let seg_kernels = seg.device().timeline().breakdown().kernels;

        let mut at = atomic_gpu();
        let _ = at.solve(&net, &cfg);
        let at_kernels = at.device().timeline().breakdown().kernels;
        assert!(
            at_kernels < seg_kernels,
            "atomic scatter must launch fewer kernels ({at_kernels} vs {seg_kernels})"
        );
    }

    #[test]
    fn fanout_contention_slows_the_atomic_strategy() {
        // A star concentrates every atomic on one parent slot. On the
        // same topology, the contention-free segmented scan must beat
        // the atomic scatter's serialised conflict chain.
        let spec = GenSpec::default();
        let cfg = SolverConfig::default();
        let net = star(16_384, &spec, &mut StdRng::seed_from_u64(93));

        let at = atomic_gpu().solve(&net, &cfg);
        let seg = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
            .solve(&net, &cfg);
        let at_per_iter = at.timing.phases.backward_us / at.iterations as f64;
        let seg_per_iter = seg.timing.phases.backward_us / seg.iterations as f64;
        assert!(
            at_per_iter > 1.5 * seg_per_iter,
            "atomic {at_per_iter:.1} µs/iter must exceed segscan {seg_per_iter:.1} µs/iter on a star"
        );
    }
}
